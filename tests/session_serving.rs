//! Integration tests for the `Session` pipeline and batch litmus
//! serving: warm (cached) answers must be byte-identical to cold-start
//! answers, across the whole generated corpus.

use txmm::serve::{serve_source, Served};
use txmm::session::Session;

/// The standard generated corpus (`txmm::corpus::generate`, the same
/// tests `txmm gen` writes to disk and the CI smoke job serves), as
/// `(file, source)` pairs.
fn corpus() -> Vec<(String, String)> {
    txmm::corpus::generate(3)
        .into_iter()
        .map(|(name, src)| (format!("{name}.litmus"), src))
        .collect()
}

/// Serve the corpus once, returning a timing-free fingerprint per test:
/// every verdict (model name, consistency, violated axioms) and the
/// observability answer, in model-registry order.
fn fingerprints(session: &mut Session, corpus: &[(String, String)]) -> Vec<String> {
    corpus
        .iter()
        .map(|(file, src)| match serve_source(session, file, src, None) {
            Served::Report(r) => format!(
                "{}|{}|{:?}|{:?}",
                r.name, r.events, r.verdicts, r.observable
            ),
            Served::Failure(f) => panic!("{}: {}", f.file, f.error),
        })
        .collect()
}

#[test]
fn corpus_is_large_enough() {
    assert!(corpus().len() >= 20, "acceptance floor: 20 litmus files");
}

#[test]
fn warm_verdicts_byte_identical_to_cold() {
    let corpus = corpus();
    let mut session = Session::new();
    let cold = fingerprints(&mut session, &corpus);
    let cold_stats = session.stats();
    assert!(cold_stats.verdict_hits + cold_stats.verdict_misses > 0);

    // Warm pass on the same session: everything served from caches,
    // byte-identical to the cold answers.
    let warm = fingerprints(&mut session, &corpus);
    assert_eq!(cold, warm, "cached verdicts must be byte-identical");
    let warm_stats = session.stats();
    assert_eq!(
        warm_stats.verdict_misses, cold_stats.verdict_misses,
        "warm pass computes nothing new"
    );
    assert!(warm_stats.verdict_hits > cold_stats.verdict_hits);

    // And a completely fresh session agrees too (cache transparency).
    let mut fresh = Session::new();
    assert_eq!(fingerprints(&mut fresh, &corpus), cold);
}

#[test]
fn shipped_cat_twins_agree_across_the_corpus() {
    // Serving with the .cat twins registered: for every test, the .cat
    // verdict of each model matches its native twin.
    let corpus = corpus();
    let mut session = Session::with_shipped_cat();
    for (file, src) in &corpus {
        let Served::Report(r) = serve_source(&mut session, file, src, None) else {
            panic!("{file} must serve");
        };
        for (name, v) in &r.verdicts {
            if let Some(stripped) = name.strip_suffix(".cat") {
                let native = r
                    .verdicts
                    .iter()
                    .find(|(n, _)| n == stripped)
                    .unwrap_or_else(|| panic!("native twin of {name}"));
                assert_eq!(
                    v.is_consistent(),
                    native.1.is_consistent(),
                    "{file}: {name} disagrees with {stripped}"
                );
            }
        }
    }
}

#[test]
fn interning_dedups_repeated_and_symmetric_tests() {
    let corpus = corpus();
    let mut session = Session::new();
    let _ = fingerprints(&mut session, &corpus);
    let interned = session.stats().interned;
    assert!(interned <= corpus.len());
    // Serving the corpus again interns nothing new.
    let _ = fingerprints(&mut session, &corpus);
    assert_eq!(session.stats().interned, interned);
}
