//! End-to-end observability: a client-chosen trace ID must come back on
//! the response with the per-stage span timeline, the `metrics` request
//! must serve valid Prometheus text exposition with non-zero
//! request-latency buckets, and the daemon `stats` JSON must keep every
//! key it had before the metrics registry migration.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::thread;

use txmm::daemon::{Daemon, ListenAddr, PoolConfig, SessionPool};
use txmm::protocol::{parse_json, Json, Request};

fn corpus() -> Vec<(String, String)> {
    txmm::corpus::generate(3)
        .into_iter()
        .map(|(name, src)| (format!("{name}.litmus"), src))
        .collect()
}

/// Send one request and read its response frame (lines up to the blank
/// terminator).
fn roundtrip<S: Read + Write>(stream: &mut BufReader<S>, req: &Request) -> Vec<String> {
    stream
        .get_mut()
        .write_all(format!("{}\n", req.to_line()).as_bytes())
        .expect("send request");
    let mut lines = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = stream.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed mid-frame (got {lines:?})");
        let l = line.trim_end_matches('\n');
        if l.is_empty() {
            return lines;
        }
        lines.push(l.to_string());
    }
}

fn start_daemon(shards: usize) -> (String, thread::JoinHandle<()>) {
    let pool = SessionPool::new(&PoolConfig {
        shards,
        ..PoolConfig::default()
    })
    .expect("pool builds");
    let daemon = Daemon::bind(&ListenAddr::Tcp("127.0.0.1:0".into()), pool).expect("binds");
    let addr = daemon.local_addr().to_string();
    let server = thread::spawn(move || daemon.run().expect("daemon runs"));
    (addr, server)
}

fn check_req(file: &str, src: &str, trace: Option<&str>) -> Request {
    Request::Check {
        file: file.to_string(),
        src: src.to_string(),
        models: None,
        trace: trace.map(str::to_string),
    }
}

#[test]
fn trace_id_comes_back_with_the_span_timeline() {
    let (addr, server) = start_daemon(2);
    let mut stream = BufReader::new(TcpStream::connect(&addr).expect("connect"));
    let (file, src) = corpus().remove(0);

    // Untraced response: no trace metadata at all.
    let plain = roundtrip(&mut stream, &check_req(&file, &src, None));
    assert_eq!(plain.len(), 1);
    assert!(!plain[0].contains("trace_id"), "{}", plain[0]);
    assert!(!plain[0].contains("spans"), "{}", plain[0]);

    // Traced check: same payload plus trace_id + spans, still one JSON
    // line.
    let traced = roundtrip(&mut stream, &check_req(&file, &src, Some("req-0042")));
    assert_eq!(traced.len(), 1);
    let line = &traced[0];
    assert!(
        line.starts_with(plain[0].strip_suffix('}').unwrap()),
        "trace metadata extends the plain payload:\n{line}\n{}",
        plain[0]
    );
    let v = parse_json(line).expect("traced line is JSON");
    assert_eq!(v.get("trace_id").and_then(Json::as_str), Some("req-0042"));
    let spans = v.get("spans").and_then(Json::as_arr).expect("spans array");
    let names: Vec<&str> = spans
        .iter()
        .map(|s| s.get("span").and_then(Json::as_str).expect("span name"))
        .collect();
    for stage in [
        "serve.parse",
        "serve.convert",
        "serve.verdict",
        "serve.observe",
    ] {
        assert!(names.contains(&stage), "{stage} missing from {names:?}");
    }
    // vm.check fires inside the verdict stage when a .cat model runs;
    // with native models only it may be absent — but every span must
    // carry offsets sorted by start.
    let starts: Vec<f64> = spans
        .iter()
        .map(|s| match s.get("start_micros") {
            Some(Json::Num(n)) => *n,
            other => panic!("start_micros = {other:?}"),
        })
        .collect();
    assert!(starts.windows(2).all(|w| w[0] <= w[1]), "{starts:?}");

    // Traced outcomes request: the echo rides on outcome lines too.
    let traced = roundtrip(
        &mut stream,
        &Request::Outcomes {
            file: file.clone(),
            src: src.clone(),
            models: None,
            max_candidates: None,
            trace: Some("req-0043".into()),
        },
    );
    let v = parse_json(&traced[0]).expect("traced outcomes line is JSON");
    assert_eq!(v.get("trace_id").and_then(Json::as_str), Some("req-0043"));
    let spans = v.get("spans").and_then(Json::as_arr).expect("spans array");
    assert!(
        spans
            .iter()
            .any(|s| s.get("span").and_then(Json::as_str) == Some("serve.outcomes")),
        "{traced:?}"
    );

    // Error responses echo the trace too.
    let traced_err = roundtrip(
        &mut stream,
        &check_req("bad.litmus", "t (Marvel)\n", Some("req-0044")),
    );
    assert!(traced_err[0].contains("\"error\""), "{}", traced_err[0]);
    assert!(
        traced_err[0].contains("\"trace_id\":\"req-0044\""),
        "{}",
        traced_err[0]
    );

    let bye = roundtrip(&mut stream, &Request::Shutdown);
    assert_eq!(bye, vec!["{\"ok\":\"shutdown\"}".to_string()]);
    server.join().expect("clean shutdown");
}

/// A tiny Prometheus text-exposition parser: validates comment lines,
/// sample-line shape, label syntax, and returns the samples.
fn parse_exposition(lines: &[String]) -> Vec<(String, String, f64)> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && !s.starts_with(|c: char| c.is_ascii_digit())
    }
    let mut samples = Vec::new();
    let mut typed: Vec<(String, String)> = Vec::new();
    for line in lines {
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.splitn(3, ' ');
            let kind = words.next().expect("comment kind");
            let name = words.next().unwrap_or_default();
            let text = words.next().unwrap_or_default();
            assert!(
                kind == "HELP" || kind == "TYPE",
                "unknown comment kind: {line}"
            );
            assert!(valid_name(name), "bad metric name in comment: {line}");
            if kind == "TYPE" {
                assert!(
                    matches!(text, "counter" | "gauge" | "histogram"),
                    "bad TYPE: {line}"
                );
                typed.push((name.to_string(), text.to_string()));
            }
            continue;
        }
        // Sample line: name{labels} value | name value.
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            assert_eq!(value, "+Inf", "unparseable sample value: {line}");
            f64::INFINITY
        });
        let (name, labels) = match series.split_once('{') {
            Some((n, l)) => {
                let l = l.strip_suffix('}').expect("closing brace");
                for pair in split_labels(l) {
                    let (k, v) = pair.split_once('=').expect("label k=v");
                    assert!(valid_name(k), "bad label name: {line}");
                    assert!(
                        v.starts_with('"') && v.ends_with('"'),
                        "unquoted label value: {line}"
                    );
                }
                (n.to_string(), l.to_string())
            }
            None => (series.to_string(), String::new()),
        };
        assert!(
            valid_name(
                name.trim_end_matches("_bucket")
                    .trim_end_matches("_sum")
                    .trim_end_matches("_count")
            ),
            "bad sample name: {line}"
        );
        // Every sample belongs to a # TYPE'd family.
        assert!(
            typed.iter().any(|(n, _)| {
                name == *n
                    || name == format!("{n}_bucket")
                    || name == format!("{n}_sum")
                    || name == format!("{n}_count")
            }),
            "sample without TYPE: {line}"
        );
        samples.push((name, labels, value));
    }
    samples
}

/// Split a label block on top-level commas (quoted values may contain
/// escaped quotes but never raw newlines).
fn split_labels(l: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut start, mut in_str, mut escape) = (0usize, false, false);
    for (i, c) in l.char_indices() {
        match c {
            _ if escape => escape = false,
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                out.push(&l[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < l.len() {
        out.push(&l[start..]);
    }
    out
}

#[test]
fn metrics_request_serves_valid_prometheus_exposition() {
    let (addr, server) = start_daemon(2);
    let mut stream = BufReader::new(TcpStream::connect(&addr).expect("connect"));

    // Warm the daemon: two passes over a slice of the corpus.
    let slice: Vec<(String, String)> = corpus().into_iter().take(8).collect();
    for _ in 0..2 {
        for (file, src) in &slice {
            let got = roundtrip(&mut stream, &check_req(file, src, None));
            assert_eq!(got.len(), 1);
        }
    }

    let page = roundtrip(&mut stream, &Request::Metrics { prom: true });
    assert!(!page.is_empty());
    let samples = parse_exposition(&page);

    // The request-latency histogram has non-zero check buckets, and the
    // cumulative bucket counts are monotone with +Inf == _count.
    let check_buckets: Vec<&(String, String, f64)> = samples
        .iter()
        .filter(|(n, l, _)| {
            n == "txmm_request_duration_microseconds_bucket" && l.contains("cmd=\"check\"")
        })
        .collect();
    assert!(!check_buckets.is_empty(), "no check latency buckets");
    let counts: Vec<f64> = check_buckets.iter().map(|(_, _, v)| *v).collect();
    assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    assert!(
        *counts.last().unwrap() >= 16.0,
        "16 checks served: {counts:?}"
    );
    let inf = check_buckets
        .iter()
        .find(|(_, l, _)| l.contains("le=\"+Inf\""))
        .expect("+Inf bucket closes the histogram");
    let count = samples
        .iter()
        .find(|(n, l, _)| {
            n == "txmm_request_duration_microseconds_count" && l.contains("cmd=\"check\"")
        })
        .expect("_count sample");
    assert_eq!(inf.2, count.2, "+Inf bucket equals _count");

    // The migrated engine counters surface as registry families.
    for family in [
        "txmm_verdict_cache_hits_total",
        "txmm_verdict_cache_misses_total",
        "txmm_session_interned_executions",
        "txmm_span_duration_microseconds",
        "txmm_shard_queue_wait_microseconds",
        "txmm_requests_total",
        "txmm_prune_delta_answers_total",
        "txmm_prune_fallback_total",
        "txmm_prune_batch_size",
    ] {
        assert!(
            page.iter()
                .any(|l| l.starts_with(&format!("# TYPE {family} "))),
            "family {family} missing from exposition"
        );
    }
    // The warm pass hit the verdict cache.
    let hits: f64 = samples
        .iter()
        .filter(|(n, _, _)| n == "txmm_verdict_cache_hits_total")
        .map(|(_, _, v)| *v)
        .sum();
    assert!(hits >= 8.0, "warm pass produced verdict hits: {hits}");

    // JSON flavour: one line, parseable, same histogram reachable.
    let json = roundtrip(&mut stream, &Request::Metrics { prom: false });
    assert_eq!(json.len(), 1);
    let v = parse_json(&json[0]).expect("metrics JSON parses");
    let metrics = v.get("metrics").expect("metrics object");
    let dur = metrics
        .get("txmm_request_duration_microseconds{cmd=\"check\"}")
        .expect("check duration histogram in JSON dump");
    match dur.get("count") {
        Some(Json::Num(n)) => assert!(*n >= 16.0, "{}", json[0]),
        other => panic!("histogram count = {other:?}"),
    }

    let bye = roundtrip(&mut stream, &Request::Shutdown);
    assert_eq!(bye, vec!["{\"ok\":\"shutdown\"}".to_string()]);
    server.join().expect("clean shutdown");
}

#[test]
fn stats_json_keeps_every_preexisting_key() {
    let (addr, server) = start_daemon(2);
    let mut stream = BufReader::new(TcpStream::connect(&addr).expect("connect"));
    let slice: Vec<(String, String)> = corpus().into_iter().take(6).collect();
    for _ in 0..2 {
        for (file, src) in &slice {
            roundtrip(&mut stream, &check_req(file, src, None));
        }
        for (file, src) in slice.iter().take(2) {
            roundtrip(
                &mut stream,
                &Request::Outcomes {
                    file: file.clone(),
                    src: src.clone(),
                    models: None,
                    max_candidates: None,
                    trace: None,
                },
            );
        }
    }
    let stats = roundtrip(&mut stream, &Request::Stats);
    assert_eq!(stats.len(), 1);
    let v = parse_json(&stats[0]).expect("stats is JSON");

    // Compatibility pin: every key the stats answer had before the
    // registry migration must still be present at the top level...
    for key in [
        "shards",
        "served",
        "failures",
        "interned",
        "verdict_hits",
        "verdict_misses",
        "verdict_hit_rate",
        "observability_hits",
        "observability_misses",
        "observability_hit_rate",
        "outcome_entries",
        "outcome_hits",
        "outcome_misses",
        "outcome_hit_rate",
        "outcome_candidates",
        "outcome_classes",
        "compile_hits",
        "compile_misses",
        "compile_hit_rate",
        "compile_entries",
        "compile_micros",
        "prune_subtrees_cut",
        "prune_candidates_skipped",
        "prune_oracle_calls",
        "prune_oracle_micros",
        "prune_delta_answers",
        "prune_fallbacks",
        "prune_batches",
        "prune_batched_placements",
        "stage_micros",
        "per_shard",
    ] {
        assert!(v.get(key).is_some(), "stats lost key {key:?}: {}", stats[0]);
    }
    // ...the stage split keeps its four stages (plus the new `other`)...
    let stages = v.get("stage_micros").expect("stage_micros");
    for key in ["parse", "convert", "verdict", "observe", "other"] {
        assert!(stages.get(key).is_some(), "stage_micros lost {key:?}");
    }
    // ...and the per-shard entries keep their pre-migration fields.
    let per_shard = v.get("per_shard").and_then(Json::as_arr).expect("array");
    assert_eq!(per_shard.len(), 2);
    for shard in per_shard {
        for key in [
            "shard",
            "served",
            "depth",
            "interned",
            "verdict_hits",
            "verdict_misses",
            "outcome_entries",
            "outcome_hits",
            "outcome_misses",
            "compile_hits",
            "compile_misses",
            "compile_entries",
            "compile_micros",
            "prune_subtrees_cut",
            "prune_candidates_skipped",
            "prune_oracle_calls",
            "prune_oracle_micros",
            "prune_delta_answers",
            "prune_fallbacks",
            "prune_batches",
            "prune_batched_placements",
        ] {
            assert!(shard.get(key).is_some(), "per_shard lost {key:?}");
        }
    }

    // The new slowest-requests ring reports real traffic with wall
    // times (the checks and outcomes above all went through it).
    let slowest = v.get("slowest").and_then(Json::as_arr).expect("slowest");
    assert!(!slowest.is_empty(), "{}", stats[0]);
    for entry in slowest {
        assert!(entry.get("what").and_then(Json::as_str).is_some());
        assert!(matches!(entry.get("micros"), Some(Json::Num(_))));
    }
    let micros: Vec<f64> = slowest
        .iter()
        .map(|e| match e.get("micros") {
            Some(Json::Num(n)) => *n,
            other => panic!("micros = {other:?}"),
        })
        .collect();
    assert!(
        micros.windows(2).all(|w| w[0] >= w[1]),
        "slowest-first: {micros:?}"
    );

    let bye = roundtrip(&mut stream, &Request::Shutdown);
    assert_eq!(bye, vec!["{\"ok\":\"shutdown\"}".to_string()]);
    server.join().expect("clean shutdown");
}
