//! Differential tests for consistency-guided pruning: the pruned
//! enumerators must be observationally identical to plain
//! enumerate-then-filter — the same consistent canonical-key sets, the
//! same allowed-outcome tables — on every model space we can afford.
//!
//! Three layers are exercised:
//!
//! * **Structure enumeration** ([`enumerate_consistent`] vs
//!   [`enumerate`] + `model.consistent`): six model spaces at |E| = 3
//!   in the regular suite, the cheap spaces at |E| = 4 behind
//!   `#[ignore]` for the CI `prune-smoke` release job.
//! * **Outcome tables** (pruned Session vs `set_prune(false)`): the
//!   per-model allowed sets, postcondition verdicts and closed-form
//!   candidate counts must agree over the generated corpus, including
//!   its transactional programs.
//! * **`.cat` oracles never over-prune**: on complete executions the
//!   monotone core is a weakening of the full model — it may accept
//!   more, never reject a consistent execution.

use std::collections::HashSet;

use txmm::core::{canon_key, ExecutionAnalysis, PruneOracle};
use txmm::models::{Arch, Armv8, Cpp, Model, Power, Sc, Tsc, X86};
use txmm::synth::{enumerate, enumerate_consistent, EnumConfig};

type Space = (&'static str, EnumConfig, Vec<Box<dyn Model>>);

/// The model spaces of the paper, each paired with the native models
/// whose oracles prune it.
fn spaces(events: usize) -> Vec<Space> {
    let cpp_atomic = EnumConfig {
        arch: Arch::Cpp,
        events,
        max_threads: 2,
        max_locs: 2,
        fences: false,
        deps: false,
        rmws: false,
        txns: true,
        attrs: true,
        atomic_txns: true,
    };
    vec![
        (
            "sc-tsc",
            EnumConfig::hw(Arch::Sc, events),
            vec![Box::new(Sc) as Box<dyn Model>, Box::new(Tsc)],
        ),
        (
            "x86",
            EnumConfig::hw(Arch::X86, events),
            vec![Box::new(X86::base()), Box::new(X86::tm())],
        ),
        (
            "power",
            EnumConfig::hw(Arch::Power, events),
            vec![Box::new(Power::tm())],
        ),
        (
            "armv8",
            EnumConfig::hw(Arch::Armv8, events),
            vec![Box::new(Armv8::tm())],
        ),
        (
            "cpp",
            EnumConfig::hw(Arch::Cpp, events),
            vec![Box::new(Cpp::tm())],
        ),
        ("cpp-atomic-txns", cpp_atomic, vec![Box::new(Cpp::tm())]),
    ]
}

/// The pruned stream equals plain enumerate-then-filter, class for
/// class, and the oracle was actually consulted along the way.
fn assert_pruned_matches_filtered(name: &str, cfg: &EnumConfig, model: &dyn Model) {
    let mut pruned_keys = HashSet::new();
    let mut pruned = 0usize;
    let st = enumerate_consistent(cfg, model, &mut |x| {
        pruned += 1;
        pruned_keys.insert(canon_key(x));
    });
    assert_eq!(
        pruned,
        pruned_keys.len(),
        "{name}: pruned stream emitted a duplicate class"
    );

    let mut plain_keys = HashSet::new();
    enumerate(cfg, &mut |x| {
        if model.consistent(x) {
            plain_keys.insert(canon_key(x));
        }
    });

    assert_eq!(
        pruned_keys, plain_keys,
        "{name}: pruned and filtered consistent-class sets differ"
    );
    if model.prune_oracle(false).is_some() {
        // Exact delta plans answer every probe incrementally, so the
        // full oracle may legitimately never run — but the viability
        // machinery as a whole must have been consulted.
        assert!(
            st.delta_answers + st.oracle_calls > 0,
            "{name}: the oracle never ran"
        );
    }
}

#[test]
fn all_spaces_at_three_events() {
    for (name, cfg, models) in spaces(3) {
        for model in &models {
            assert_pruned_matches_filtered(name, &cfg, model.as_ref());
        }
    }
}

#[test]
#[ignore = "minutes in debug; the CI prune-smoke job runs it in release"]
fn cheap_spaces_at_four_events() {
    for (name, cfg, models) in spaces(4) {
        if !matches!(cfg.arch, Arch::Sc | Arch::X86 | Arch::Cpp) {
            continue; // Power/ARMv8 at |E| = 4 are enumeration-smoke territory.
        }
        for model in &models {
            assert_pruned_matches_filtered(name, &cfg, model.as_ref());
        }
    }
}

/// Outcome tables: a pruned Session and a `set_prune(false)` Session
/// must serve identical per-model answers over the generated corpus —
/// same allowed sets, same postcondition verdicts, same closed-form
/// candidate counts. (Visited-class counts legitimately differ: the
/// pruned walk never materialises classes its oracle refutes.)
#[test]
fn outcome_tables_agree_with_unpruned_session() {
    use txmm::serve::{serve_outcomes_source, ServedOutcomes};
    use txmm::session::Session;

    let corpus = txmm::corpus::generate(3);
    assert!(
        corpus.iter().any(|(name, _)| name.contains("txn")),
        "the corpus must include transactional programs"
    );

    let mut pruned = Session::new();
    let mut unpruned = Session::new();
    unpruned.set_prune(false);

    for (name, src) in &corpus {
        let file = format!("{name}.litmus");
        let a = serve_outcomes_source(&mut pruned, &file, src, None);
        let b = serve_outcomes_source(&mut unpruned, &file, src, None);
        match (a, b) {
            (ServedOutcomes::Report(a), ServedOutcomes::Report(b)) => {
                assert_eq!(a.candidates, b.candidates, "{name}: candidate counts");
                assert_eq!(a.per_model, b.per_model, "{name}: per-model answers");
            }
            (ServedOutcomes::Failure(a), ServedOutcomes::Failure(b)) => {
                assert_eq!(a.error, b.error, "{name}: refusals must match");
            }
            _ => panic!("{name}: one path served, the other refused"),
        }
    }
    let st = pruned.stats();
    assert!(
        st.prune_oracle_calls + st.prune_delta_answers > 0,
        "pruning never engaged: {st:?}"
    );
    assert_eq!(
        unpruned.stats().prune_oracle_calls,
        0,
        "set_prune(false) must bypass the oracles"
    );
}

/// Incremental viability == recompute-from-scratch. With delta
/// validation armed, every probe that the per-model [`DeltaPlan`]
/// answers incrementally is cross-checked inside the engine against a
/// full [`ExecutionAnalysis`] re-derivation: exact plans must agree
/// bit-for-bit, inexact (conservative) plans must never declare a
/// candidate dead that the full oracle still accepts. Any divergence
/// panics inside `probe`, so driving the pruned enumerator over a
/// space *is* the assertion.
fn assert_delta_matches_recompute(events: usize, skip_slow: bool) {
    struct Arm;
    impl Drop for Arm {
        fn drop(&mut self) {
            txmm::core::set_delta_validation(false);
        }
    }
    txmm::core::set_delta_validation(true);
    let _disarm = Arm;

    for (name, cfg, models) in spaces(events) {
        if skip_slow && !matches!(cfg.arch, Arch::Sc | Arch::X86 | Arch::Cpp) {
            continue;
        }
        for model in &models {
            let mut classes = 0usize;
            let st = enumerate_consistent(&cfg, model.as_ref(), &mut |_| classes += 1);
            assert!(classes > 0, "{name}: empty consistent space");
            if model.prune_oracle(false).is_some() {
                assert!(
                    st.delta_answers > 0,
                    "{name}: the delta plan never answered a probe"
                );
            }
        }
    }
}

#[test]
fn delta_viability_matches_recompute_at_three_events() {
    assert_delta_matches_recompute(3, false);
}

#[test]
#[ignore = "minutes in debug; the CI prune-smoke job runs it in release"]
fn delta_viability_matches_recompute_at_four_events() {
    assert_delta_matches_recompute(4, true);
}

/// The parallel per-abort-split walk must be byte-identical to the
/// sequential one: same JSONL report lines for every program in the
/// corpus, in particular the same candidate/class counts and the same
/// ordered allowed-outcome tables. Dead-mask subsumption and worker
/// scheduling may reorder *work*, never *output*.
#[test]
fn parallel_mask_walk_is_byte_identical_to_sequential() {
    use txmm::serve::{outcomes_jsonl_line, serve_outcomes_source};
    use txmm::session::Session;

    let corpus = txmm::corpus::generate(3);
    assert!(
        corpus.iter().any(|(name, _)| name.contains("txn")),
        "the corpus must include transactional programs (abort splits)"
    );

    let mut seq = Session::new();
    seq.set_outcome_workers(1);
    let mut par = Session::new();
    par.set_outcome_workers(4);

    for (name, src) in &corpus {
        let file = format!("{name}.litmus");
        let a = outcomes_jsonl_line(&serve_outcomes_source(&mut seq, &file, src, None));
        let b = outcomes_jsonl_line(&serve_outcomes_source(&mut par, &file, src, None));
        assert_eq!(a, b, "{name}: parallel walk diverged from sequential");
    }
}

/// `.cat` oracles are *weakenings* of their models: on a complete
/// execution, full-model consistency implies oracle viability. (The
/// converse direction is what the downstream re-verdicting handles.)
#[test]
fn cat_oracles_never_overprune_complete_executions() {
    use txmm::cat::{all_cat_models, CatPruneOracle};

    let mut checked = 0usize;
    for model in all_cat_models() {
        let Some(oracle) = CatPruneOracle::derive("probe", &model, true) else {
            continue; // No monotone core: the engine simply doesn't prune.
        };
        let arch = match model.name {
            n if n.starts_with("x86") => Arch::X86,
            n if n.starts_with("power") => Arch::Power,
            n if n.starts_with("armv8") => Arch::Armv8,
            n if n.starts_with("cpp") => Arch::Cpp,
            _ => Arch::Sc,
        };
        let mut spot_checks = 0usize;
        enumerate(&EnumConfig::hw(arch, 3), &mut |x| {
            // Keep the per-model cost bounded: every 17th class is a
            // deterministic spot-check sample of the space.
            spot_checks += 1;
            if !spot_checks.is_multiple_of(17) {
                return;
            }
            let full = model.consistent(x).expect("full model evaluates");
            let a = ExecutionAnalysis::with_fr(x, x.fr());
            if full {
                assert!(
                    oracle.viable(&a),
                    "{}: oracle rejected a consistent execution",
                    model.name
                );
            }
        });
        checked += 1;
    }
    assert!(checked >= 4, "expected oracles for most shipped models");
}
