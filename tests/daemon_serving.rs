//! Integration tests for `txmm-serverd`: the socket daemon over the
//! sharded Session pool must answer concurrent clients byte-identically
//! to one-shot `txmm serve`, and shut down cleanly on request.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::thread;

use txmm::daemon::{Daemon, ListenAddr, PoolConfig, SessionPool};
use txmm::protocol::Request;
use txmm::serve::{
    jsonl_line, outcomes_jsonl_line, serve_file, serve_outcomes_source, serve_source,
};
use txmm::session::Session;

/// The standard generated corpus (50 tests at the default events=3).
fn corpus() -> Vec<(String, String)> {
    txmm::corpus::generate(3)
        .into_iter()
        .map(|(name, src)| (format!("{name}.litmus"), src))
        .collect()
}

/// Send one request and read its response frame (lines up to the blank
/// terminator).
fn roundtrip<S: Read + Write>(stream: &mut BufReader<S>, req: &Request) -> Vec<String> {
    stream
        .get_mut()
        .write_all(format!("{}\n", req.to_line()).as_bytes())
        .expect("send request");
    let mut lines = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = stream.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed mid-frame (got {lines:?})");
        let l = line.trim_end_matches('\n');
        if l.is_empty() {
            return lines;
        }
        lines.push(l.to_string());
    }
}

fn start_daemon(shards: usize) -> (String, thread::JoinHandle<()>) {
    let pool = SessionPool::new(&PoolConfig {
        shards,
        ..PoolConfig::default()
    })
    .expect("pool builds");
    let daemon = Daemon::bind(&ListenAddr::Tcp("127.0.0.1:0".into()), pool).expect("binds");
    let addr = daemon.local_addr().to_string();
    let server = thread::spawn(move || daemon.run().expect("daemon runs"));
    (addr, server)
}

#[test]
fn concurrent_clients_byte_identical_to_one_shot_serve() {
    let corpus = corpus();
    assert!(corpus.len() >= 50, "the full generated corpus");

    // One-shot reference lines, from a plain sequential Session.
    let mut session = Session::new();
    let expect: Vec<String> = corpus
        .iter()
        .map(|(f, s)| jsonl_line(&serve_source(&mut session, f, s, None)))
        .collect();

    let (addr, server) = start_daemon(4);

    // >= 4 concurrent clients, each checking the whole corpus over one
    // connection (interleaving shard traffic).
    let mut clients = Vec::new();
    for c in 0..5 {
        let addr = addr.clone();
        let corpus = corpus.clone();
        let expect = expect.clone();
        clients.push(thread::spawn(move || {
            let mut stream = BufReader::new(TcpStream::connect(&addr).expect("connect"));
            for ((file, src), want) in corpus.iter().zip(&expect) {
                let got = roundtrip(
                    &mut stream,
                    &Request::Check {
                        file: file.clone(),
                        src: src.clone(),
                        models: None,
                        trace: None,
                    },
                );
                assert_eq!(got, vec![want.clone()], "client {c}: {file}");
            }
        }));
    }
    for c in clients {
        c.join().expect("client succeeds");
    }

    // stats reflects the traffic; models lists the registry.
    let mut stream = BufReader::new(TcpStream::connect(&addr).expect("connect"));
    let stats = roundtrip(&mut stream, &Request::Stats);
    assert_eq!(stats.len(), 1);
    assert!(stats[0].contains("\"shards\":4"), "{}", stats[0]);
    assert!(stats[0].contains("\"failures\":0"), "{}", stats[0]);
    assert!(
        txmm::protocol::parse_json(&stats[0]).is_ok(),
        "stats is JSON: {}",
        stats[0]
    );
    let models = roundtrip(&mut stream, &Request::Models);
    assert!(models.iter().any(|l| l.contains("\"model\":\"x86-tm\"")));

    // Clean shutdown: acknowledged, and the accept loop exits.
    let bye = roundtrip(&mut stream, &Request::Shutdown);
    assert_eq!(bye, vec!["{\"ok\":\"shutdown\"}".to_string()]);
    server.join().expect("daemon thread exits cleanly");
}

#[test]
fn batch_request_matches_one_shot_directory_serve() {
    let dir = std::env::temp_dir().join(format!("txmm-daemon-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    for (i, (name, src)) in corpus().into_iter().enumerate() {
        std::fs::write(dir.join(format!("{i:02}-{name}")), src).expect("write");
    }

    // One-shot reference: serve_file over the sorted directory listing,
    // exactly what `txmm serve <dir>` prints.
    let files = txmm::serve::collect_litmus_files(&dir).expect("listing");
    let mut session = Session::new();
    let expect: Vec<String> = files
        .iter()
        .map(|f| jsonl_line(&serve_file(&mut session, f, None)))
        .collect();

    let (addr, server) = start_daemon(3);
    let mut stream = BufReader::new(TcpStream::connect(&addr).expect("connect"));
    let got = roundtrip(
        &mut stream,
        &Request::Batch {
            dir: dir.display().to_string(),
            models: None,
        },
    );
    assert_eq!(got, expect, "batch output is byte-identical");

    let bye = roundtrip(&mut stream, &Request::Shutdown);
    assert_eq!(bye, vec!["{\"ok\":\"shutdown\"}".to_string()]);
    server.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn outcomes_requests_byte_identical_to_one_shot() {
    // The daemon's `outcomes` answers must be byte-identical to the
    // one-shot engine over the same sources, including the stats the
    // outcome-set cache accumulates along the way.
    let corpus: Vec<(String, String)> = corpus().into_iter().take(16).collect();
    let mut session = Session::new();
    let expect: Vec<String> = corpus
        .iter()
        .map(|(f, s)| outcomes_jsonl_line(&serve_outcomes_source(&mut session, f, s, None)))
        .collect();

    let (addr, server) = start_daemon(3);
    let mut stream = BufReader::new(TcpStream::connect(&addr).expect("connect"));
    for pass in 0..2 {
        for ((file, src), want) in corpus.iter().zip(&expect) {
            let got = roundtrip(
                &mut stream,
                &Request::Outcomes {
                    file: file.clone(),
                    src: src.clone(),
                    models: None,
                    max_candidates: None,
                    trace: None,
                },
            );
            assert_eq!(got, vec![want.clone()], "pass {pass}: {file}");
        }
    }
    // The second pass served every table from the outcome-set cache.
    let stats = roundtrip(&mut stream, &Request::Stats);
    let v = txmm::protocol::parse_json(&stats[0]).expect("stats is JSON");
    let num = |k: &str| match v.get(k) {
        Some(txmm::protocol::Json::Num(n)) => *n,
        other => panic!("stats[{k}] = {other:?}"),
    };
    assert!(num("outcome_entries") > 0.0, "{}", stats[0]);
    assert!(
        num("outcome_hits") >= num("outcome_misses"),
        "warm pass must hit: {}",
        stats[0]
    );
    assert!(
        num("outcome_candidates") >= num("outcome_classes"),
        "{}",
        stats[0]
    );
    assert!(stats[0].contains("\"outcome_hit_rate\":0."), "{}", stats[0]);
    // The oracle-backed models served their tables through the pruned
    // walk, so the prune counters tick and every shard reports them
    // (aggregate + 3 shards).
    assert!(num("prune_oracle_calls") > 0.0, "{}", stats[0]);
    assert!(num("prune_oracle_micros") > 0.0, "{}", stats[0]);
    for key in [
        "\"prune_subtrees_cut\"",
        "\"prune_candidates_skipped\"",
        "\"prune_oracle_calls\"",
        "\"prune_oracle_micros\"",
        "\"prune_delta_answers\"",
        "\"prune_fallbacks\"",
        "\"prune_batches\"",
        "\"prune_batched_placements\"",
    ] {
        assert_eq!(stats[0].matches(key).count(), 4, "{key}: {}", stats[0]);
    }

    let bye = roundtrip(&mut stream, &Request::Shutdown);
    assert_eq!(bye, vec!["{\"ok\":\"shutdown\"}".to_string()]);
    server.join().expect("clean shutdown");
}

/// Four competing writes to one location plus five reads: 4! coherence
/// orders × 5^5 rf choices = 75,000 candidate executions — past the
/// default 65,536 enumeration cap, so it can only be served by raising
/// `max_candidates` over the wire.
fn post_litmus_scale_source() -> String {
    "big (x86)\n\
     Initially: x = 0\n\
     thread 0:\n  x <- 1\n\
     thread 1:\n  x <- 2\n\
     thread 2:\n  x <- 3\n\
     thread 3:\n  x <- 4\n\
     thread 4:\n  r0 <- x\n  r1 <- x\n  r2 <- x\n  r3 <- x\n  r4 <- x\n\
     Test: 4:r0 = 0\n"
        .to_string()
}

#[test]
fn max_candidates_unlocks_post_litmus_scale_outcome_tables() {
    let (addr, server) = start_daemon(1);
    let mut stream = BufReader::new(TcpStream::connect(&addr).expect("connect"));

    // At the default cap the daemon refuses with a structured failure
    // naming both the program size and the limit.
    let refused = roundtrip(
        &mut stream,
        &Request::Outcomes {
            file: "big.litmus".into(),
            src: post_litmus_scale_source(),
            models: Some(vec!["x86".into()]),
            max_candidates: None,
            trace: None,
        },
    );
    assert!(refused[0].contains("\"error\""), "{}", refused[0]);
    assert!(refused[0].contains("75000"), "{}", refused[0]);
    assert!(refused[0].contains("65536"), "{}", refused[0]);

    // Raising the per-request cap serves the full table: the pruned
    // walk only materialises the coherent sliver of the 75,000-strong
    // candidate space.
    let served = roundtrip(
        &mut stream,
        &Request::Outcomes {
            file: "big.litmus".into(),
            src: post_litmus_scale_source(),
            models: Some(vec!["x86".into()]),
            max_candidates: Some(100_000),
            trace: None,
        },
    );
    assert!(!served[0].contains("\"error\""), "{}", served[0]);
    assert!(served[0].contains("\"candidates\":75000"), "{}", served[0]);
    assert!(served[0].contains("\"x86\":{"), "{}", served[0]);

    // The prune counters account for the part of the space the walk
    // never had to materialise.
    let stats = roundtrip(&mut stream, &Request::Stats);
    let v = txmm::protocol::parse_json(&stats[0]).expect("stats is JSON");
    let num = |k: &str| match v.get(k) {
        Some(txmm::protocol::Json::Num(n)) => *n,
        other => panic!("stats[{k}] = {other:?}"),
    };
    assert!(num("prune_subtrees_cut") > 0.0, "{}", stats[0]);
    assert_eq!(
        num("outcome_candidates") + num("prune_candidates_skipped"),
        75000.0,
        "{}",
        stats[0]
    );

    let bye = roundtrip(&mut stream, &Request::Shutdown);
    assert_eq!(bye, vec!["{\"ok\":\"shutdown\"}".to_string()]);
    server.join().expect("clean shutdown");
}

#[test]
fn reload_swaps_cat_models_without_restart() {
    // A daemon started with --cat answers with the file's semantics;
    // rewriting the file and sending `reload` swaps the model in every
    // shard without dropping the connection, and a broken rewrite
    // answers a structured error while the old model keeps serving.
    let dir = std::env::temp_dir().join(format!("txmm-daemon-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let cat = dir.join("probe.cat");
    std::fs::write(&cat, "acyclic po | com as Order\n").expect("write cat");

    let pool = SessionPool::new(&PoolConfig {
        shards: 2,
        cat_files: vec![cat.clone()],
        ..PoolConfig::default()
    })
    .expect("pool builds");
    let daemon = Daemon::bind(&ListenAddr::Tcp("127.0.0.1:0".into()), pool).expect("binds");
    let addr = daemon.local_addr().to_string();
    let server = thread::spawn(move || daemon.run().expect("daemon runs"));

    let (file, src) = corpus()
        .into_iter()
        .find(|(f, _)| f.contains("sb") && !f.contains("mfence") && !f.contains("txn"))
        .expect("sb test in the corpus");
    let check = Request::Outcomes {
        file: file.clone(),
        src: src.clone(),
        models: Some(vec!["probe".into()]),
        max_candidates: None,
        trace: None,
    };
    let mut stream = BufReader::new(TcpStream::connect(&addr).expect("connect"));
    let before = roundtrip(&mut stream, &check);
    assert!(
        before[0].contains("\"probe\":{\"post\":\"forbidden\""),
        "SC-strength probe forbids SB: {}",
        before[0]
    );

    // Weaken the model on disk and hot-reload.
    std::fs::write(&cat, "acyclic poloc | com as Coherence\n").expect("rewrite cat");
    let ok = roundtrip(&mut stream, &Request::Reload);
    assert_eq!(
        ok,
        vec![format!(
            "{{\"ok\":\"reload\",\"models\":[\"probe\"],\"shards\":2}}"
        )]
    );
    let after = roundtrip(&mut stream, &check);
    assert!(
        after[0].contains("\"probe\":{\"post\":\"allowed\""),
        "coherence-only probe allows SB: {}",
        after[0]
    );

    // A parse error aborts the reload with a structured frame...
    std::fs::write(&cat, "acyclic ((\n").expect("break cat");
    let err = roundtrip(&mut stream, &Request::Reload);
    assert!(err[0].starts_with("{\"error\""), "{}", err[0]);
    assert!(err[0].contains("\"code\":\"reload\""), "{}", err[0]);
    // ...and the previous model keeps serving, byte-identically.
    let still = roundtrip(&mut stream, &check);
    assert_eq!(still, after, "old model keeps serving after failed reload");

    // The compile-cache surfaces in stats: the serving shard's live
    // model specialised at least one per-event tier (a miss plus an
    // entry), re-served it from cache (hits), and accrued compile time.
    let stats = roundtrip(&mut stream, &Request::Stats);
    let v = txmm::protocol::parse_json(&stats[0]).expect("stats is JSON");
    let num = |k: &str| match v.get(k) {
        Some(txmm::protocol::Json::Num(n)) => *n,
        other => panic!("stats[{k}] = {other:?}"),
    };
    assert!(num("compile_misses") >= 1.0, "{}", stats[0]);
    assert!(num("compile_entries") >= 1.0, "{}", stats[0]);
    assert!(num("compile_hits") >= 1.0, "{}", stats[0]);
    assert!(num("compile_micros") > 0.0, "{}", stats[0]);
    assert!(stats[0].contains("\"compile_hit_rate\":0."), "{}", stats[0]);
    // Both shards report the per-shard compile fields (aggregate + 2).
    assert_eq!(
        stats[0].matches("\"compile_micros\"").count(),
        3,
        "{}",
        stats[0]
    );

    let bye = roundtrip(&mut stream, &Request::Shutdown);
    assert_eq!(bye, vec!["{\"ok\":\"shutdown\"}".to_string()]);
    server.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connection_limit_returns_structured_busy_error() {
    let pool = SessionPool::new(&PoolConfig {
        shards: 1,
        ..PoolConfig::default()
    })
    .expect("pool builds");
    let daemon = Daemon::bind(&ListenAddr::Tcp("127.0.0.1:0".into()), pool)
        .expect("binds")
        .with_max_conns(1);
    let addr = daemon.local_addr().to_string();
    let server = thread::spawn(move || daemon.run().expect("daemon runs"));

    // First connection occupies the single slot (and proves it serves).
    let mut first = BufReader::new(TcpStream::connect(&addr).expect("connect"));
    let models = roundtrip(&mut first, &Request::Models);
    assert!(!models.is_empty());

    // Second connection is refused with one structured busy frame and a
    // close — not a hang, not a bare disconnect.
    let mut second = BufReader::new(TcpStream::connect(&addr).expect("connect"));
    let mut line = String::new();
    second.read_line(&mut line).expect("busy line");
    let busy = line.trim_end();
    assert_eq!(busy, txmm::protocol::busy_line(1), "{busy}");
    let v = txmm::protocol::parse_json(busy).expect("busy line is JSON");
    assert_eq!(v.get("code").and_then(|c| c.as_str()), Some("busy"));
    assert!(busy.contains("\"max_conns\":1"));
    line.clear();
    second.read_line(&mut line).expect("terminator");
    assert_eq!(line, "\n");
    line.clear();
    let n = second.read_line(&mut line).expect("eof");
    assert_eq!(n, 0, "over-limit connection is closed after the frame");

    // The occupied slot still serves; freeing it re-admits clients.
    let models = roundtrip(&mut first, &Request::Models);
    assert!(!models.is_empty());
    drop(first);
    let mut third = loop {
        // The slot frees when the handler notices the close (bounded by
        // its read timeout); probe with `models` until admitted — a
        // refused connection answers the busy frame instead.
        let mut c = BufReader::new(TcpStream::connect(&addr).expect("connect"));
        c.get_mut()
            .write_all(format!("{}\n", Request::Models.to_line()).as_bytes())
            .expect("send probe");
        let mut l = String::new();
        c.read_line(&mut l).expect("first line");
        if l.contains("\"code\":\"busy\"") {
            thread::sleep(std::time::Duration::from_millis(100));
            continue;
        }
        assert!(l.contains("\"model\""), "{l}");
        // Drain the rest of the models frame, then reuse the connection.
        loop {
            l.clear();
            let n = c.read_line(&mut l).expect("frame");
            if n == 0 || l == "\n" {
                break;
            }
        }
        break c;
    };
    let bye = roundtrip(&mut third, &Request::Shutdown);
    assert_eq!(bye, vec!["{\"ok\":\"shutdown\"}".to_string()]);
    server.join().expect("daemon thread exits cleanly");
}

#[test]
fn malformed_requests_keep_the_connection_alive() {
    let (addr, server) = start_daemon(1);
    let mut stream = BufReader::new(TcpStream::connect(&addr).expect("connect"));
    stream
        .get_mut()
        .write_all(b"this is not json\n")
        .expect("send garbage");
    let mut line = String::new();
    stream.read_line(&mut line).expect("error line");
    assert!(line.starts_with("{\"error\""), "{line}");
    line.clear();
    stream.read_line(&mut line).expect("terminator");
    assert_eq!(line, "\n");
    // The same connection still serves real requests.
    let models = roundtrip(&mut stream, &Request::Models);
    assert!(!models.is_empty());
    let bye = roundtrip(&mut stream, &Request::Shutdown);
    assert_eq!(bye, vec!["{\"ok\":\"shutdown\"}".to_string()]);
    server.join().expect("clean shutdown");
}

#[cfg(unix)]
#[test]
fn unix_socket_transport() {
    let path = std::env::temp_dir().join(format!("txmm-daemon-{}.sock", std::process::id()));
    let pool = SessionPool::new(&PoolConfig {
        shards: 2,
        ..PoolConfig::default()
    })
    .expect("pool builds");
    let daemon = Daemon::bind(&ListenAddr::Unix(path.clone()), pool).expect("binds");
    assert_eq!(daemon.local_addr(), format!("unix:{}", path.display()));
    let server = thread::spawn(move || daemon.run().expect("runs"));

    let (file, src) = corpus().remove(0);
    let mut session = Session::new();
    let want = jsonl_line(&serve_source(&mut session, &file, &src, None));

    let mut stream = BufReader::new(
        std::os::unix::net::UnixStream::connect(&path).expect("connect over unix socket"),
    );
    let got = roundtrip(
        &mut stream,
        &Request::Check {
            file,
            src,
            models: None,
            trace: None,
        },
    );
    assert_eq!(got, vec![want]);
    let bye = roundtrip(&mut stream, &Request::Shutdown);
    assert_eq!(bye, vec!["{\"ok\":\"shutdown\"}".to_string()]);
    server.join().expect("clean shutdown");
    assert!(
        !PathBuf::from(&path).exists(),
        "socket file removed on shutdown"
    );
}
