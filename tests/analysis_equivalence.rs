//! The shared-analysis refactor must be verdict-preserving: for every
//! named execution of the paper catalog and every registered model, the
//! verdict through a shared [`ExecutionAnalysis`] is byte-identical to
//! the verdict computed with a private per-check analysis, and the
//! cached derived relations agree with the direct `Execution`
//! derivations they replaced.

use txmm::core::{ExecutionAnalysis, Fence};
use txmm::models::catalog;
use txmm::models::registry::all_models;
use txmm::prelude::*;

/// Every catalog execution, including the C++ variants and the abstract
/// lock-elision shape.
fn all_catalog_executions() -> Vec<(String, Execution)> {
    let mut out: Vec<(String, Execution)> = catalog::all()
        .into_iter()
        .map(|e| (e.name.to_string(), e.exec))
        .collect();
    for rel_acq in [false, true] {
        for txns in [false, true] {
            out.push((
                format!("cpp-mp-{rel_acq}-{txns}"),
                catalog::cpp_mp(rel_acq, txns),
            ));
        }
    }
    out.push(("elision-abstract".to_string(), catalog::elision_abstract()));
    out
}

#[test]
fn verdicts_identical_between_shared_and_private_analysis() {
    for (name, x) in all_catalog_executions() {
        let shared = x.analysis();
        for m in all_models() {
            let via_shared = m.check_analysis(&shared);
            let via_private = m.check(&x);
            assert_eq!(
                via_shared,
                via_private,
                "{name} under {}: shared vs private analysis verdicts differ",
                m.name()
            );
        }
    }
}

#[test]
fn shared_analysis_is_reusable_across_models_in_any_order() {
    // Cache state left behind by one model must never leak into
    // another's verdict: check in both registry orders.
    for (name, x) in all_catalog_executions() {
        let forward = x.analysis();
        let backward = x.analysis();
        let models = all_models();
        let mut fwd: Vec<Verdict> = models.iter().map(|m| m.check_analysis(&forward)).collect();
        let bwd: Vec<Verdict> = models
            .iter()
            .rev()
            .map(|m| m.check_analysis(&backward))
            .collect();
        fwd.reverse();
        assert_eq!(fwd, bwd, "{name}: model order changed a verdict");
    }
}

#[test]
fn cached_relations_match_direct_derivations() {
    for (name, x) in all_catalog_executions() {
        let a = ExecutionAnalysis::new(&x);
        assert_eq!(*a.fr(), x.fr(), "{name}: fr");
        assert_eq!(*a.com(), x.com(), "{name}: com");
        assert_eq!(*a.sloc(), x.sloc(), "{name}: sloc");
        assert_eq!(*a.sthd(), x.sthd(), "{name}: sthd");
        assert_eq!(*a.po_loc(), x.po_loc(), "{name}: po_loc");
        assert_eq!(*a.rfe(), x.rfe(), "{name}: rfe");
        assert_eq!(*a.rfi(), x.rfi(), "{name}: rfi");
        assert_eq!(*a.coe(), x.coe(), "{name}: coe");
        assert_eq!(*a.coi(), x.coi(), "{name}: coi");
        assert_eq!(*a.fre(), x.fre(), "{name}: fre");
        assert_eq!(*a.fri(), x.fri(), "{name}: fri");
        assert_eq!(*a.come(), x.come(), "{name}: come");
        assert_eq!(*a.stxn(), x.stxn(), "{name}: stxn");
        assert_eq!(*a.stxnat(), x.stxnat(), "{name}: stxnat");
        assert_eq!(*a.tfence(), x.tfence(), "{name}: tfence");
        assert_eq!(*a.scr(), x.scr(), "{name}: scr");
        assert_eq!(*a.scrt(), x.scrt(), "{name}: scrt");
        for f in Fence::ALL {
            assert_eq!(*a.fence_rel(f), x.fence_rel(f), "{name}: fence_rel({f:?})");
        }
    }
}

#[test]
fn cat_models_agree_through_shared_builtins() {
    // The .cat evaluator now serves builtins from the analysis; its
    // verdicts must keep matching the native models on the catalog.
    for entry in catalog::all() {
        for (model_name, _) in &entry.expect {
            let Some(cat) = txmm::cat::cat_model(model_name) else {
                continue;
            };
            let native = txmm::models::registry::by_name(model_name).expect("native model");
            assert_eq!(
                cat.consistent(&entry.exec).expect("cat evaluates"),
                native.consistent(&entry.exec),
                "{} under {model_name}",
                entry.name
            );
        }
    }
}
