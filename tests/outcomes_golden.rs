//! Golden program-level outcome sets: the herd-style engine's
//! allowed/forbidden answers on the paper's classic shapes must
//! reproduce the verdict matrix the unit tests in `crates/models`
//! assert on pinned executions — but derived by exhaustive candidate
//! enumeration over the *program* — and the operational hardware
//! simulators' observed outcomes must always be a **subset** of the
//! corresponding sound (transactional) model's allowed set.

use txmm::core::ExecBuilder;
use txmm::litmus::litmus_from_execution;
use txmm::models::shapes::{self, Strength};
use txmm::models::{catalog, Arch};
use txmm::outcomes::unsound_sim_outcomes;
use txmm::session::{ModelRef, Session};

/// The six models the golden matrix ranges over: the SC/TSC pair plus
/// the transactional hardware models (their baselines are asserted via
/// the pinned-execution cross-check below).
const MATRIX_MODELS: [&str; 6] = ["SC", "TSC", "x86-tm", "power-tm", "armv8-tm", "x86"];

fn litmus(name: &str, x: &txmm::core::Execution, arch: Arch) -> txmm::litmus::LitmusTest {
    litmus_from_execution(name, x, arch)
}

/// Plain IRIW: Wx ∥ Rx;Ry ∥ Ry;Rx ∥ Wy, first reads fresh, second reads
/// stale (the non-multicopy-atomicity witness).
fn iriw(txn_writers: bool) -> txmm::core::Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let wx = b.write(t0, 0);
    let t1 = b.new_thread();
    let r1 = b.read(t1, 0);
    let _r2 = b.read(t1, 1);
    let t2 = b.new_thread();
    let r3 = b.read(t2, 1);
    let _r4 = b.read(t2, 0);
    let t3 = b.new_thread();
    let wy = b.write(t3, 1);
    b.rf(wx, r1);
    b.rf(wy, r3);
    if txn_writers {
        b.txn(&[wx]);
        b.txn(&[wy]);
    }
    b.build().expect("iriw well-formed")
}

/// Assert the program-level postcondition verdict for every named model
/// against the expected allowed/forbidden bit.
fn assert_matrix(
    session: &mut Session,
    name: &str,
    x: &txmm::core::Execution,
    arch: Arch,
    expect: &[(&str, bool)],
) {
    let t = litmus(name, x, arch);
    let models: Vec<ModelRef> = expect
        .iter()
        .map(|(m, _)| session.resolve(m).unwrap_or_else(|| panic!("model {m}")))
        .collect();
    let r = session
        .outcomes(&format!("{name}.litmus"), &t, Some(&models))
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    for ((mname, allowed), mo) in expect.iter().zip(&r.per_model) {
        assert_eq!(
            mo.post_allowed,
            Some(*allowed),
            "{name} under {mname}: program-level verdict"
        );
    }
}

/// One golden row: shape name, execution, serving arch, and the
/// per-model allowed/forbidden expectations.
type MatrixRow = (
    &'static str,
    txmm::core::Execution,
    Arch,
    Vec<(&'static str, bool)>,
);

#[test]
fn classic_shapes_reproduce_the_model_matrix() {
    // The canonical rows from crates/models/src/shapes.rs
    // (`verdict_matrix_plain_shapes`), answered program-level.
    let p = Strength::PLAIN;
    let mut s = Session::new();
    let rows: Vec<MatrixRow> = vec![
        (
            "sb",
            shapes::sb(p, p),
            Arch::X86,
            vec![
                ("SC", false),
                ("TSC", false),
                ("x86", true),
                ("x86-tm", true),
                ("power", true),
                ("armv8", true),
            ],
        ),
        (
            "mp",
            shapes::mp(p, p),
            Arch::Power,
            vec![
                ("SC", false),
                ("x86", false),
                ("power", true),
                ("power-tm", true),
                ("armv8", true),
            ],
        ),
        (
            "lb",
            shapes::lb(p, p),
            Arch::Power,
            vec![
                ("SC", false),
                ("x86", false),
                ("power", true),
                ("armv8", true),
                ("armv8-tm", true),
            ],
        ),
    ];
    for (name, x, arch, expect) in rows {
        assert_matrix(&mut s, name, &x, arch, &expect);
    }
}

#[test]
fn transactions_restore_sc_program_level() {
    // Wrapping both sides in transactions forbids every shape under
    // every transactional model (`transactions_restore_sc_for_all_shapes`,
    // program-level this time).
    let t = Strength::TXN;
    let mut s = Session::new();
    for (name, x) in [
        ("sb+txns", shapes::sb(t, t)),
        ("mp+txns", shapes::mp(t, t)),
        ("lb+txns", shapes::lb(t, t)),
    ] {
        assert_matrix(
            &mut s,
            name,
            &x,
            Arch::X86,
            &[
                ("TSC", false),
                ("x86-tm", false),
                ("power-tm", false),
                ("armv8-tm", false),
            ],
        );
    }
    // One transactional side leaves SB visible everywhere
    // (`one_sided_transactions_differ_by_shape`).
    let p = Strength::PLAIN;
    assert_matrix(
        &mut s,
        "sb+txn0",
        &shapes::sb(t, p),
        Arch::X86,
        &[("x86-tm", true), ("power-tm", true)],
    );
    // Writer-txn + reader-dependency MP is forbidden on Power-TM while
    // the dependency-free variant stays allowed.
    let dep = Strength {
        dep: true,
        ..Strength::PLAIN
    };
    assert_matrix(
        &mut s,
        "mp+wtxn+dep",
        &shapes::mp(t, dep),
        Arch::Power,
        &[("power-tm", false)],
    );
    assert_matrix(
        &mut s,
        "mp+wtxn",
        &shapes::mp(t, p),
        Arch::Power,
        &[("power-tm", true)],
    );
}

#[test]
fn iriw_program_level() {
    // IRIW distinguishes the multicopy-atomic architectures (x86, ARMv8
    // needs no help from fences to *allow* it without deps) from SC;
    // transactional writers make the writes multicopy-atomic on Power.
    let mut s = Session::new();
    assert_matrix(
        &mut s,
        "iriw",
        &iriw(false),
        Arch::Power,
        &[("SC", false), ("x86", false), ("power", true)],
    );
    // Cross-check every registered model against the pinned execution.
    for txn in [false, true] {
        let x = iriw(txn);
        let t = litmus("iriw", &x, Arch::Power);
        let pinned = txmm::litmus::execution_from_litmus(&t).expect("pins");
        let all: Vec<ModelRef> = s.models().collect();
        let r = s.outcomes("iriw.litmus", &t, Some(&all)).unwrap();
        for (m, mo) in all.iter().zip(&r.per_model) {
            let direct = s.verdict(&pinned, *m).is_consistent();
            assert_eq!(
                mo.post_allowed,
                Some(direct),
                "iriw(txn={txn}) under {}: program-level vs pinned",
                mo.model
            );
        }
    }
}

#[test]
fn matrix_models_all_resolve() {
    let s = Session::new();
    for m in MATRIX_MODELS {
        assert!(s.resolve(m).is_some(), "{m} registered");
    }
}

#[test]
fn hwsim_observations_subset_of_sound_models() {
    // Soundness direction: everything the operational simulator can
    // observe, the architecture's transactional axiomatic model must
    // allow. Runs the classic shapes ± transactions on all three
    // simulated architectures.
    let p = Strength::PLAIN;
    let t = Strength::TXN;
    let mut s = Session::new();
    let mut checked = 0usize;
    for (arch, model) in [
        (Arch::X86, "x86-tm"),
        (Arch::Power, "power-tm"),
        (Arch::Armv8, "armv8-tm"),
    ] {
        let shapes_list: Vec<(&str, txmm::core::Execution)> = vec![
            ("sb", shapes::sb(p, p)),
            ("sb+txn0", shapes::sb(t, p)),
            ("sb+txns", shapes::sb(t, t)),
            ("mp", shapes::mp(p, p)),
            ("mp+txns", shapes::mp(t, t)),
            ("lb", shapes::lb(p, p)),
            ("lb+txns", shapes::lb(t, t)),
            ("iriw", iriw(false)),
            ("iriw+txnw", iriw(true)),
            ("fig2", catalog::fig2()),
        ];
        let m = s.resolve(model).unwrap();
        for (name, x) in shapes_list {
            let test = litmus(name, &x, arch);
            let r = s
                .outcomes(&format!("{name}.litmus"), &test, Some(&[m]))
                .unwrap_or_else(|e| panic!("{name}@{model}: {e}"));
            let extra = unsound_sim_outcomes(&test, &r.per_model[0].allowed)
                .expect("hardware architectures have simulators");
            assert!(
                extra.is_empty(),
                "{name}@{model}: simulator observed outcomes outside the allowed set: {extra:#?}"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 30);
}
