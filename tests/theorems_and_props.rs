//! Property-based validation of the paper's theorems and of the library
//! invariants, on randomly generated executions.
//!
//! The generator walks a deterministic PRNG
//! ([`txmm::core::rng::SplitMix64`]) over seeds — the offline build
//! cannot fetch proptest — so failures reproduce exactly: rerun with
//! the printed seed.

use txmm::core::rng::SplitMix64;
use txmm::core::{Attrs, ExecBuilder, Execution, TxnClass};
use txmm::models::cpp::theorem_7_2_holds;
use txmm::prelude::*;

const CASES: u64 = 192;

/// A random small execution: up to three threads, up to five events over
/// two locations, arbitrary rf/co choices (well-formed by construction),
/// optional C++ modes.
fn arb_execution(cpp: bool, seed: u64) -> Execution {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut b = ExecBuilder::new();
    for _ in 0..3 {
        b.new_thread();
    }
    let n_events = 1 + rng.below(5);
    for _ in 0..n_events {
        let tid = rng.below(3) as u8;
        let is_write = rng.below(2) == 0;
        let loc = rng.below(2) as u8;
        let e = if is_write {
            b.write(tid, loc)
        } else {
            b.read(tid, loc)
        };
        if cpp {
            match rng.below(4) {
                1 => {
                    b.attr(e, Attrs::ATO);
                }
                2 => {
                    b.attr(
                        e,
                        Attrs::ATO.union(if is_write { Attrs::REL } else { Attrs::ACQ }),
                    );
                }
                3 => {
                    b.attr(e, Attrs::ATO.union(Attrs::SC));
                }
                _ => {}
            }
        }
    }
    let x = b.build_unchecked();
    // Random coherence permutation and rf choice per location.
    let mut b2 = b.clone();
    for l in x.locations() {
        let mut ws: Vec<usize> = x.writes().inter(x.at_loc(l)).iter().collect();
        for i in (1..ws.len()).rev() {
            let j = rng.below(i + 1);
            ws.swap(i, j);
        }
        b2.co_order(&ws);
        for r in x.reads().inter(x.at_loc(l)).iter() {
            let pick = rng.below(ws.len() + 1);
            if pick < ws.len() {
                b2.rf(ws[pick], r);
            }
        }
    }
    b2.build().expect("well-formed by construction")
}

/// Random transaction layout on top of an execution.
fn with_random_txns(x: &Execution, seed: u64, atomic: bool) -> Execution {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xdead_beef);
    let mut txns = Vec::new();
    for t in 0..x.num_threads() {
        let evs: Vec<usize> = x.thread_events(t as u8).collect();
        let mut i = 0;
        while i < evs.len() {
            if rng.below(2) == 0 {
                let len = 1 + rng.below(evs.len() - i);
                txns.push(TxnClass {
                    events: evs[i..i + len].to_vec(),
                    atomic,
                });
                i += len;
            } else {
                i += 1;
            }
        }
    }
    x.with_txns(txns)
}

/// Theorem 7.2 on random C++ executions with atomic transactions.
#[test]
fn theorem_7_2_random() {
    for seed in 0..CASES {
        let x = arb_execution(true, seed);
        let y = with_random_txns(&x, seed, true);
        assert!(y.check_wf().is_ok(), "seed {seed}");
        assert!(theorem_7_2_holds(&y), "seed {seed}");
    }
}

/// Theorem 7.3 on random executions: all-SC atomics, atomic txns,
/// race-free, consistent => TSC-consistent.
#[test]
fn theorem_7_3_random() {
    for seed in 0..CASES {
        let y = with_random_txns(&arb_execution(true, seed), seed, true);
        let m = Cpp::tm();
        let hypotheses = y.ato() == y.sc_events()
            && Cpp::atomic_txns_wellformed(&y)
            && m.consistent(&y)
            && !m.racy(&y);
        if hypotheses {
            assert!(Tsc.consistent(&y), "Theorem 7.3 violated at seed {seed}");
        }
    }
}

/// x86 monotonicity (§8.1) on random executions: growing stxn never
/// resurrects a forbidden execution.
#[test]
fn x86_monotone_random() {
    for seed in 0..CASES {
        let y = with_random_txns(&arb_execution(false, seed), seed, false);
        if !X86::tm().consistent(&y) {
            for z in txmm::verify::txn_extensions(&y) {
                assert!(
                    !X86::tm().consistent(&z),
                    "seed {seed}: adding stxn edges made an inconsistent x86 execution consistent"
                );
            }
        }
    }
}

/// TSC is stronger than SC; strong isolation is stronger than weak.
#[test]
fn model_strength_random() {
    for seed in 0..CASES {
        let y = with_random_txns(&arb_execution(false, seed), seed, false);
        if Tsc.consistent(&y) {
            assert!(Sc.consistent(&y), "seed {seed}");
            assert!(txmm::models::strong_isolation(&y), "seed {seed}");
        }
        if txmm::models::strong_isolation(&y) {
            assert!(txmm::models::weak_isolation(&y), "seed {seed}");
        }
    }
}

/// Baselines ignore transactions entirely.
#[test]
fn baselines_ignore_txns() {
    for seed in 0..CASES {
        let y = with_random_txns(&arb_execution(false, seed), seed, false);
        for (with_txns, without) in [
            (
                X86::base().consistent(&y),
                X86::base().consistent(&y.erase_txns()),
            ),
            (
                Power::base().consistent(&y),
                Power::base().consistent(&y.erase_txns()),
            ),
            (
                Armv8::base().consistent(&y),
                Armv8::base().consistent(&y.erase_txns()),
            ),
        ] {
            assert_eq!(with_txns, without, "seed {seed}");
        }
    }
}

/// Litmus construction invariants: per-location write values are
/// unique and contiguous; every read gains a register check.
#[test]
fn litmus_invariants() {
    for seed in 0..CASES {
        let x = arb_execution(false, seed);
        let wv = txmm::litmus::write_values(&x);
        for l in x.locations() {
            let mut vals: Vec<u32> = x
                .writes()
                .inter(x.at_loc(l))
                .iter()
                .map(|w| wv[w])
                .collect();
            vals.sort_unstable();
            let expect: Vec<u32> = (1..=vals.len() as u32).collect();
            assert_eq!(vals, expect, "seed {seed}");
        }
        let t = litmus_from_execution("t", &x, Arch::X86);
        let reg_checks = t
            .post
            .iter()
            .filter(|c| matches!(c, txmm::litmus::Check::Reg { .. }))
            .count();
        assert_eq!(reg_checks, x.reads().len(), "seed {seed}");
    }
}

/// The relational algebra obeys its laws on derived relations.
#[test]
fn relation_laws() {
    for seed in 0..CASES {
        let x = arb_execution(false, seed);
        let com = x.com();
        assert!(com.plus().is_transitive(), "seed {seed}");
        assert_eq!(com.inverse().inverse(), com, "seed {seed}");
        assert!(com.is_subset(&com.star()), "seed {seed}");
        let fr = x.fr();
        // fr never disagrees with coherence direction on well-formed
        // executions: fr ∩ co⁻¹ is empty.
        assert!(fr.inter(&x.co().inverse()).is_empty(), "seed {seed}");
    }
}
