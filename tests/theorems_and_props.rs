//! Property-based validation of the paper's theorems and of the library
//! invariants, on randomly generated executions.

use proptest::prelude::*;
use txmm::core::{Attrs, ExecBuilder, Execution, TxnClass};
use txmm::models::cpp::theorem_7_2_holds;
use txmm::prelude::*;

/// A random small execution: up to three threads, up to six events over
/// two locations, arbitrary rf/co choices (well-formed by construction),
/// optional transactions and C++ modes.
fn arb_execution(cpp: bool) -> impl Strategy<Value = Execution> {
    // events: per event (thread 0..3, kind read/write, loc 0..2, mode 0..4)
    let ev = (0u8..3, any::<bool>(), 0u8..2, 0usize..4);
    (proptest::collection::vec(ev, 1..6), any::<u64>()).prop_map(move |(evs, seed)| {
        let mut b = ExecBuilder::new();
        for _ in 0..3 {
            b.new_thread();
        }
        let mut ids = Vec::new();
        for &(tid, is_write, loc, mode) in &evs {
            let e = if is_write { b.write(tid, loc) } else { b.read(tid, loc) };
            if cpp {
                match mode {
                    1 => {
                        b.attr(e, Attrs::ATO);
                    }
                    2 => {
                        b.attr(
                            e,
                            Attrs::ATO.union(if is_write { Attrs::REL } else { Attrs::ACQ }),
                        );
                    }
                    3 => {
                        b.attr(e, Attrs::ATO.union(Attrs::SC));
                    }
                    _ => {}
                }
            }
            ids.push(e);
        }
        let x = b.build_unchecked();
        // Deterministic pseudo-random rf/co from the seed.
        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut b2 = b.clone();
        for l in x.locations() {
            let mut ws: Vec<usize> = x.writes().inter(x.at_loc(l)).iter().collect();
            // Random coherence permutation.
            for i in (1..ws.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                ws.swap(i, j);
            }
            b2.co_order(&ws);
            for r in x.reads().inter(x.at_loc(l)).iter() {
                let pick = (next() % (ws.len() as u64 + 1)) as usize;
                if pick < ws.len() {
                    b2.rf(ws[pick], r);
                }
            }
        }
        b2.build().expect("well-formed by construction")
    })
}

/// Random transaction layout on top of an execution.
fn with_random_txns(x: &Execution, seed: u64, atomic: bool) -> Execution {
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut txns = Vec::new();
    for t in 0..x.num_threads() {
        let evs = x.thread_events(t as u8);
        let mut i = 0;
        while i < evs.len() {
            if next() % 2 == 0 {
                let len = 1 + (next() as usize) % (evs.len() - i);
                txns.push(TxnClass { events: evs[i..i + len].to_vec(), atomic });
                i += len;
            } else {
                i += 1;
            }
        }
    }
    x.with_txns(txns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 7.2 on random C++ executions with atomic transactions.
    #[test]
    fn theorem_7_2_random((x, seed) in (arb_execution(true), any::<u64>())) {
        let y = with_random_txns(&x, seed, true);
        prop_assert!(y.check_wf().is_ok());
        prop_assert!(theorem_7_2_holds(&y));
    }

    /// Theorem 7.3 on random executions: all-SC atomics, atomic txns,
    /// race-free, consistent => TSC-consistent.
    #[test]
    fn theorem_7_3_random((x, seed) in (arb_execution(true), any::<u64>())) {
        let y = with_random_txns(&x, seed, true);
        let m = Cpp::tm();
        let hypotheses = y.ato() == y.sc_events()
            && Cpp::atomic_txns_wellformed(&y)
            && m.consistent(&y)
            && !m.racy(&y);
        if hypotheses {
            prop_assert!(Tsc.consistent(&y), "Theorem 7.3 violated");
        }
    }

    /// x86 monotonicity (§8.1) on random executions: growing stxn never
    /// resurrects a forbidden execution.
    #[test]
    fn x86_monotone_random((x, seed) in (arb_execution(false), any::<u64>())) {
        let y = with_random_txns(&x, seed, false);
        if !X86::tm().consistent(&y) {
            for z in txmm::verify::txn_extensions(&y) {
                prop_assert!(
                    !X86::tm().consistent(&z),
                    "adding stxn edges made an inconsistent x86 execution consistent"
                );
            }
        }
    }

    /// TSC is stronger than SC; strong isolation is stronger than weak.
    #[test]
    fn model_strength_random((x, seed) in (arb_execution(false), any::<u64>())) {
        let y = with_random_txns(&x, seed, false);
        if Tsc.consistent(&y) {
            prop_assert!(Sc.consistent(&y));
            prop_assert!(txmm::models::strong_isolation(&y));
        }
        if txmm::models::strong_isolation(&y) {
            prop_assert!(txmm::models::weak_isolation(&y));
        }
    }

    /// Baselines ignore transactions entirely.
    #[test]
    fn baselines_ignore_txns((x, seed) in (arb_execution(false), any::<u64>())) {
        let y = with_random_txns(&x, seed, false);
        for (tm, base) in [
            (X86::base().consistent(&y), X86::base().consistent(&y.erase_txns())),
            (Power::base().consistent(&y), Power::base().consistent(&y.erase_txns())),
            (Armv8::base().consistent(&y), Armv8::base().consistent(&y.erase_txns())),
        ] {
            prop_assert_eq!(tm, base);
        }
    }

    /// Litmus construction invariants: per-location write values are
    /// unique and contiguous; every read gains a register check.
    #[test]
    fn litmus_invariants(x in arb_execution(false)) {
        let wv = txmm::litmus::write_values(&x);
        for l in x.locations() {
            let mut vals: Vec<u32> =
                x.writes().inter(x.at_loc(l)).iter().map(|w| wv[w]).collect();
            vals.sort_unstable();
            let expect: Vec<u32> = (1..=vals.len() as u32).collect();
            prop_assert_eq!(vals, expect);
        }
        let t = litmus_from_execution("t", &x, Arch::X86);
        let reg_checks = t
            .post
            .iter()
            .filter(|c| matches!(c, txmm::litmus::Check::Reg { .. }))
            .count();
        prop_assert_eq!(reg_checks, x.reads().len());
    }

    /// The relational algebra obeys its laws on derived relations.
    #[test]
    fn relation_laws(x in arb_execution(false)) {
        let com = x.com();
        prop_assert!(com.plus().is_transitive());
        prop_assert_eq!(com.inverse().inverse(), com.clone());
        prop_assert!(com.is_subset(&com.star()));
        let fr = x.fr();
        // fr never disagrees with coherence direction: fr ; co^-1 has no
        // reflexive pair... stronger: fr ∩ co^-1 empty on wf executions.
        prop_assert!(fr.inter(&x.co().inverse()).is_empty());
    }
}
