//! Golden `count_par` values per architecture, pinned so canonicalisation
//! regressions — over-pruning (counts drop) or under-pruning (counts
//! rise) — fail fast. The counts equal the number of canonical
//! (symmetry-reduced) classes of the default hardware spaces, and were
//! cross-checked against the seed generate-then-dedup path by the
//! differential suite.
//!
//! The CI `enumeration-smoke` job runs this in release mode including
//! the `#[ignore]`d heavyweight bounds.

use txmm::models::{Arch, Armv8, Model, Power, X86};
use txmm::synth::{count_consistent_par, count_par, EnumConfig};

fn golden(arch: Arch, events: usize, expect: usize) {
    let got = count_par(&EnumConfig::hw(arch, events));
    assert_eq!(
        got, expect,
        "{arch:?} |E|={events}: canonical class count drifted (over- or under-pruning)"
    );
}

/// Golden *consistent*-class counts through the pruned walk: drops
/// mean over-pruning, rises mean the oracle or the model weakened.
fn golden_consistent(arch: Arch, model: &dyn Model, events: usize, expect: usize) {
    let (got, _) = count_consistent_par(&EnumConfig::hw(arch, events), model);
    assert_eq!(
        got, expect,
        "{arch:?} |E|={events}: consistent class count drifted"
    );
}

#[test]
fn three_event_counts() {
    golden(Arch::Sc, 3, 2_641);
    golden(Arch::X86, 3, 3_699);
    golden(Arch::Power, 3, 33_193);
    golden(Arch::Armv8, 3, 232_796);
    golden(Arch::Cpp, 3, 3_123);
}

#[test]
fn four_event_counts_cheap_spaces() {
    golden(Arch::Sc, 4, 97_898);
    golden(Arch::X86, 4, 138_678);
    golden(Arch::Cpp, 4, 107_350);
}

#[test]
#[ignore = "seconds in release, minutes in debug; CI runs it in release"]
fn four_event_count_power() {
    golden(Arch::Power, 4, 11_221_961);
}

#[test]
#[ignore = "about a minute in release on one core; CI runs it in release"]
fn four_event_count_armv8() {
    golden(Arch::Armv8, 4, 168_076_198);
}

#[test]
#[ignore = "the |E| = 5 bound the streaming engine unlocks; CI runs it in release"]
fn five_event_count_x86() {
    golden(Arch::X86, 5, 6_094_392);
}

#[test]
fn four_event_consistent_count_x86() {
    golden_consistent(Arch::X86, &X86::tm(), 4, 60_352);
}

#[test]
#[ignore = "seconds in release; the CI prune-smoke job runs it"]
fn five_event_consistent_count_x86() {
    golden_consistent(Arch::X86, &X86::tm(), 5, 1_715_002);
}

#[test]
#[ignore = "the |E| = 6 bound consistency-guided pruning unlocks (~1 min \
            single-core in release); the CI prune-smoke job runs it"]
fn six_event_consistent_count_x86() {
    golden_consistent(Arch::X86, &X86::tm(), 6, 51_415_611);
}

#[test]
#[ignore = "~10 s in release; the CI prune-smoke job runs it"]
fn four_event_consistent_count_power() {
    golden_consistent(Arch::Power, &Power::tm(), 4, 3_441_758);
}

#[test]
#[ignore = "~1 min in release; the CI prune-smoke job runs it"]
fn four_event_consistent_count_armv8() {
    golden_consistent(Arch::Armv8, &Armv8::tm(), 4, 48_749_694);
}

#[test]
#[ignore = "~2 h single-core in release (2,479,467,883 classes; ~11.4B \
            candidates pruned); the CI prune-smoke job runs it"]
fn five_event_consistent_count_power() {
    golden_consistent(Arch::Power, &Power::tm(), 5, 2_479_467_883);
}

// ---- ARMv8 |E| = 5 and |E| = 6: measure-and-pin harnesses ------------
//
// None of these bounds has completed on a single core yet: the
// Power |E| = 4 → 5 wall-clock scale factor is ~700x, which projects
// ARMv8 |E| = 5 to half a day and the |E| = 6 bounds to weeks. There
// is no literal to pin,
// so the harnesses stay behind the existing slow-bench flag: a
// `PRUNE_BENCH_FULL=1` run prints the count, and the first completed
// run promotes it into the `Option` constants below, after which the
// test asserts it like every other golden.

/// Pinned heavyweight consistent-class counts; `None` until a full
/// run has completed (see ROADMAP "Push the pruned frontier").
const FIVE_EVENT_ARMV8: Option<usize> = None;
const SIX_EVENT_POWER: Option<usize> = None;
const SIX_EVENT_ARMV8: Option<usize> = None;

fn golden_consistent_full(arch: Arch, model: &dyn Model, events: usize, pinned: Option<usize>) {
    if std::env::var_os("PRUNE_BENCH_FULL").is_none() {
        eprintln!("{arch:?} |E|={events}: skipped (set PRUNE_BENCH_FULL=1 to run)");
        return;
    }
    let (got, _) = count_consistent_par(&EnumConfig::hw(arch, events), model);
    match pinned {
        Some(expect) => assert_eq!(
            got, expect,
            "{arch:?} |E|={events}: consistent class count drifted"
        ),
        None => println!("{arch:?} |E|={events}: {got} consistent classes — pin this value"),
    }
}

#[test]
#[ignore = "hours single-core; runs only under PRUNE_BENCH_FULL=1"]
fn five_event_consistent_count_armv8() {
    golden_consistent_full(Arch::Armv8, &Armv8::tm(), 5, FIVE_EVENT_ARMV8);
}

#[test]
#[ignore = "most of a day single-core; runs only under PRUNE_BENCH_FULL=1"]
fn six_event_consistent_count_power() {
    golden_consistent_full(Arch::Power, &Power::tm(), 6, SIX_EVENT_POWER);
}

#[test]
#[ignore = "days single-core; runs only under PRUNE_BENCH_FULL=1"]
fn six_event_consistent_count_armv8() {
    golden_consistent_full(Arch::Armv8, &Armv8::tm(), 6, SIX_EVENT_ARMV8);
}
