//! Golden `count_par` values per architecture, pinned so canonicalisation
//! regressions — over-pruning (counts drop) or under-pruning (counts
//! rise) — fail fast. The counts equal the number of canonical
//! (symmetry-reduced) classes of the default hardware spaces, and were
//! cross-checked against the seed generate-then-dedup path by the
//! differential suite.
//!
//! The CI `enumeration-smoke` job runs this in release mode including
//! the `#[ignore]`d heavyweight bounds.

use txmm::models::{Arch, Model, X86};
use txmm::synth::{count_consistent_par, count_par, EnumConfig};

fn golden(arch: Arch, events: usize, expect: usize) {
    let got = count_par(&EnumConfig::hw(arch, events));
    assert_eq!(
        got, expect,
        "{arch:?} |E|={events}: canonical class count drifted (over- or under-pruning)"
    );
}

/// Golden *consistent*-class counts through the pruned walk: drops
/// mean over-pruning, rises mean the oracle or the model weakened.
fn golden_consistent(arch: Arch, model: &dyn Model, events: usize, expect: usize) {
    let (got, _) = count_consistent_par(&EnumConfig::hw(arch, events), model);
    assert_eq!(
        got, expect,
        "{arch:?} |E|={events}: consistent class count drifted"
    );
}

#[test]
fn three_event_counts() {
    golden(Arch::Sc, 3, 2_641);
    golden(Arch::X86, 3, 3_699);
    golden(Arch::Power, 3, 33_193);
    golden(Arch::Armv8, 3, 232_796);
    golden(Arch::Cpp, 3, 3_123);
}

#[test]
fn four_event_counts_cheap_spaces() {
    golden(Arch::Sc, 4, 97_898);
    golden(Arch::X86, 4, 138_678);
    golden(Arch::Cpp, 4, 107_350);
}

#[test]
#[ignore = "seconds in release, minutes in debug; CI runs it in release"]
fn four_event_count_power() {
    golden(Arch::Power, 4, 11_221_961);
}

#[test]
#[ignore = "about a minute in release on one core; CI runs it in release"]
fn four_event_count_armv8() {
    golden(Arch::Armv8, 4, 168_076_198);
}

#[test]
#[ignore = "the |E| = 5 bound the streaming engine unlocks; CI runs it in release"]
fn five_event_count_x86() {
    golden(Arch::X86, 5, 6_094_392);
}

#[test]
fn four_event_consistent_count_x86() {
    golden_consistent(Arch::X86, &X86::tm(), 4, 60_352);
}

#[test]
#[ignore = "seconds in release; the CI prune-smoke job runs it"]
fn five_event_consistent_count_x86() {
    golden_consistent(Arch::X86, &X86::tm(), 5, 1_715_002);
}

#[test]
#[ignore = "the |E| = 6 bound consistency-guided pruning unlocks (~2 min \
            single-core in release); the CI prune-smoke job runs it"]
fn six_event_consistent_count_x86() {
    golden_consistent(Arch::X86, &X86::tm(), 6, 51_415_611);
}
