//! End-to-end lock-elision validation (§1.1, §8.3, Appendix B): the
//! checker, the catalog witnesses, the simulators and the litmus
//! machinery all tell the same story.

use txmm::models::catalog;
use txmm::prelude::*;
use txmm::synth::canon_key;
use txmm::verify::{expand, violates_cr_order};

#[test]
fn armv8_counterexample_matches_example_1_1() {
    let r = check_lock_elision(ElisionTarget::Armv8, None);
    let (abs, conc) = r.counterexample.expect("ARMv8 elision is unsound");
    assert!(violates_cr_order(&abs));
    assert!(Armv8::tm().consistent(&conc));
    // The concrete witness is executable on the ARMv8 simulator.
    let t = litmus_from_execution("witness", &conc, Arch::Armv8);
    assert!(
        ArmSim::default().observable(&t),
        "the bug is dynamically reachable"
    );
}

#[test]
fn fig10_expansion_yields_example_1_1() {
    let ys = expand(&catalog::elision_abstract(), ElisionTarget::Armv8);
    let key = canon_key(&catalog::armv8_elision(false));
    assert!(ys.iter().any(|y| canon_key(y) == key));
}

#[test]
fn dmb_repair_closes_every_expansion() {
    // Every concrete completion of Fig. 10's abstract execution is
    // forbidden once the DMB is in place.
    let ys = expand(&catalog::elision_abstract(), ElisionTarget::Armv8Fixed);
    assert!(!ys.is_empty());
    for y in &ys {
        assert!(
            !Armv8::tm().consistent(y),
            "a DMB-fixed expansion is still consistent"
        );
    }
}

#[test]
fn x86_expansions_all_forbidden() {
    let ys = expand(&catalog::elision_abstract(), ElisionTarget::X86);
    assert!(!ys.is_empty());
    for y in &ys {
        assert!(!X86::tm().consistent(y), "x86 lock elision must hold");
    }
}

#[test]
fn sound_targets_have_no_counterexample() {
    for target in [ElisionTarget::X86, ElisionTarget::Armv8Fixed] {
        let r = check_lock_elision(target, None);
        assert!(
            r.counterexample.is_none(),
            "{} must be sound",
            target.name()
        );
        assert!(r.complete);
    }
}

#[test]
fn power_divergence_documented() {
    // Fig. 6 as printed admits a candidate pair (the paper's own check
    // timed out: Table 2 reports Unknown). The operational Power
    // simulator does NOT exhibit the candidate — evidence that the
    // printed axioms, not the hardware, are the weak point. Both facts
    // are part of the reproduction (EXPERIMENTS.md).
    let r = check_lock_elision(ElisionTarget::Power, None);
    let (_, conc) = r
        .counterexample
        .expect("candidate pair under Fig. 6 as printed");
    assert!(Power::tm().consistent(&conc));
    let t = litmus_from_execution("power-candidate", &conc, Arch::Power);
    assert!(
        !PowerSim::default().observable(&t),
        "the operational machine refuses the candidate outcome"
    );
}

#[test]
fn appendix_b_witness_story() {
    // Second witness: an external load sees an intermediate CR write.
    let x = catalog::armv8_elision_appendix_b(false);
    assert!(Armv8::tm().consistent(&x), "Appendix B witness is admitted");
    let t = litmus_from_execution("appb", &x, Arch::Armv8);
    assert!(ArmSim::default().observable(&t));
    let fixed = catalog::armv8_elision_appendix_b(true);
    assert!(!Armv8::tm().consistent(&fixed));
    let t2 = litmus_from_execution("appb-dmb", &fixed, Arch::Armv8);
    assert!(!ArmSim::default().observable(&t2));
}

#[test]
fn elision_witnesses_cross_checked_in_cat() {
    // The .cat ARMv8 model agrees with the native one on both witnesses
    // and their repairs.
    let m = txmm::cat::cat_model("armv8-tm").expect("shipped");
    assert!(m.consistent(&catalog::armv8_elision(false)).unwrap());
    assert!(!m.consistent(&catalog::armv8_elision(true)).unwrap());
    assert!(m
        .consistent(&catalog::armv8_elision_appendix_b(false))
        .unwrap());
    assert!(!m
        .consistent(&catalog::armv8_elision_appendix_b(true))
        .unwrap());
}
