//! Live walk telemetry, end to end: heartbeat frames must be valid
//! JSONL whose progress fractions climb monotonically, the final frame
//! must agree exactly with the walk's returned counts (pinned against
//! the |E| = 4 x86 golden class count), attaching telemetry must leave
//! served output byte-identical, and the metrics sidecar must answer
//! the daemon's `metrics` wire frame with the walk counters on it.

use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

use txmm::models::{Arch, X86};
use txmm::obs::{serve_metrics, ProgressSink, Reporter, WalkProgress};
use txmm::protocol::{parse_json, Json};
use txmm::serve::{outcomes_jsonl_line, ServedOutcomes};
use txmm::session::Session;
use txmm::synth::{count_consistent_par_progress, par::worker_count, EnumConfig};

fn num(v: &Json, key: &str) -> f64 {
    match v.get(key) {
        Some(Json::Num(n)) => *n,
        other => panic!("expected number at {key:?}, got {other:?}"),
    }
}

fn frames_from(path: &std::path::Path) -> Vec<Json> {
    std::fs::read_to_string(path)
        .expect("progress file readable")
        .lines()
        .map(|l| {
            parse_json(l)
                .unwrap_or_else(|e| panic!("frame is not JSON ({e}): {l}"))
                .get("progress")
                .expect("frame has a progress object")
                .clone()
        })
        .collect()
}

/// One |E| = 4 x86 walk under a fast heartbeat: enough frames to check
/// monotonicity, and a final frame whose totals equal the returned
/// counts and the golden class count.
#[test]
fn heartbeat_frames_are_monotone_and_final_totals_match() {
    let progress = Arc::new(WalkProgress::new());
    let path = std::env::temp_dir().join(format!("txmm-progress-{}.jsonl", std::process::id()));
    let reporter = Reporter::start(
        progress.clone(),
        Duration::from_millis(5),
        ProgressSink::File(path.clone()),
    )
    .expect("reporter starts");
    let (n, stats) = count_consistent_par_progress(
        &EnumConfig::hw(Arch::X86, 4),
        &X86::tm(),
        worker_count(),
        Some(&progress),
    );
    reporter.finish();
    let frames = frames_from(&path);
    let _ = std::fs::remove_file(&path);

    assert!(!frames.is_empty(), "no progress frames were emitted");
    let last = frames.last().expect("final frame");
    assert_eq!(last.get("final"), Some(&Json::Bool(true)), "final marker");
    // The final frame's totals are the walk's totals.
    assert_eq!(n, 60_352, "golden |E|=4 x86 consistent class count");
    assert_eq!(num(last, "classes") as u64, n as u64);
    assert_eq!(num(last, "cuts") as u64, stats.subtrees_cut);
    assert_eq!(num(last, "skipped") as u64, stats.candidates_skipped);
    assert_eq!(
        num(last, "work_done") as u64,
        num(last, "work_total") as u64,
        "the weight plan must be fully consumed"
    );
    assert_eq!(num(last, "fraction"), 1.0);
    // Fractions, candidates and classes never move backwards.
    for pair in frames.windows(2) {
        assert!(num(&pair[1], "work_done") >= num(&pair[0], "work_done"));
        assert!(num(&pair[1], "candidates") >= num(&pair[0], "candidates"));
        assert!(num(&pair[1], "classes") >= num(&pair[0], "classes"));
    }
    // Worker lanes are present and account for every subtree.
    let workers = last.get("workers").and_then(Json::as_arr).expect("lanes");
    assert_eq!(workers.len(), worker_count().max(1));
    let jobs: f64 = workers.iter().map(|w| num(w, "jobs")).sum();
    assert_eq!(jobs as u64, num(last, "subtrees") as u64);
}

/// Serving outcome tables with telemetry attached must produce
/// byte-identical JSONL to a telemetry-free session.
#[test]
fn telemetry_leaves_served_outcomes_byte_identical() {
    use txmm::litmus::litmus_from_execution;
    use txmm::models::catalog;

    let tests = [
        ("sb", catalog::sb(None, false, false), Arch::X86),
        ("fig1", catalog::fig1(), Arch::X86),
        ("mp", catalog::mp(None, false, true), Arch::Power),
    ];
    let mut plain = Session::new();
    let mut telemetered = Session::new();
    let progress = Arc::new(WalkProgress::new());
    telemetered.set_walk_progress(Some(progress.clone()));
    for (name, x, arch) in tests {
        let t = litmus_from_execution(name, &x, arch);
        let file = format!("{name}.litmus");
        let a = plain.outcomes(&file, &t, None).expect("plain serves");
        let b = telemetered
            .outcomes(&file, &t, None)
            .expect("telemetered serves");
        assert_eq!(
            outcomes_jsonl_line(&ServedOutcomes::Report(a)),
            outcomes_jsonl_line(&ServedOutcomes::Report(b)),
            "{name}: telemetry changed the served line"
        );
    }
    let snap = progress.snapshot();
    assert!(snap.candidates > 0, "the walk never reported candidates");
    assert!(snap.done > 0 && snap.done == snap.total);
}

/// The corpus generator must emit the same files whether or not the
/// session carries telemetry (`txmm gen --progress` stdout contract).
#[test]
fn corpus_generation_is_identical_with_telemetry() {
    let plain = txmm::corpus::generate(3);
    let mut session = Session::new();
    let progress = Arc::new(WalkProgress::new());
    session.set_walk_progress(Some(progress.clone()));
    let telemetered = txmm::corpus::generate_on(&session, 3);
    assert_eq!(plain, telemetered);
    assert!(progress.snapshot().done > 0, "gen never reported progress");
}

/// The sidecar speaks the daemon's `metrics` frame: the walk counters
/// of an in-process walk are scrapeable over TCP mid-run.
#[test]
fn metrics_sidecar_exposes_walk_counters() {
    let progress = Arc::new(WalkProgress::new());
    let (_n, _stats) = count_consistent_par_progress(
        &EnumConfig::hw(Arch::X86, 3),
        &X86::tm(),
        2,
        Some(&progress),
    );
    let sidecar = serve_metrics("127.0.0.1:0").expect("sidecar binds");
    let mut stream =
        BufReader::new(std::net::TcpStream::connect(sidecar.addr()).expect("sidecar reachable"));
    stream
        .get_mut()
        .write_all(b"{\"cmd\":\"metrics\",\"format\":\"prom\"}\n")
        .expect("request sent");
    let mut body = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = stream.read_line(&mut line).expect("sidecar responds");
        if n == 0 || line.trim_end_matches('\n').is_empty() {
            break;
        }
        body.push_str(&line);
    }
    assert!(
        body.contains("txmm_walk_subtrees_total"),
        "walk counters missing from the scrape:\n{body}"
    );
    assert!(body.contains("txmm_build_info"), "build info missing");
}
