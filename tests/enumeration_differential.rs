//! Differential tests: the streaming, incrementally-canonicalised
//! enumerator must be observationally identical to the seed
//! generate-then-dedup path — the same canonical-key set and the same
//! candidate count — on every model space, at every bound we can
//! afford.
//!
//! Representatives may differ (the streaming engine emits the
//! automorphism-minimal member of each class, the seed path whichever
//! member it met first), so equality is stated on canonical keys.
//!
//! The cheap spaces run at |E| ≤ 4 in the regular suite; the heavyweight
//! |E| = 4 spaces (Power and ARMv8 with dependencies/attributes, C++
//! with atomic transactions) are `#[ignore]`d here and executed in
//! release mode by the CI `enumeration-smoke` job.

use std::collections::HashSet;

use txmm::core::canon_key;
use txmm::models::Arch;
use txmm::synth::{count_par, enumerate, enumerate_reference, EnumConfig};

/// The six model spaces of the paper: SC/TSC, the three hardware
/// architectures, C++, and C++ with atomic transactions.
fn spaces(events: usize) -> Vec<(&'static str, EnumConfig)> {
    let cpp_atomic = EnumConfig {
        arch: Arch::Cpp,
        events,
        max_threads: 2,
        max_locs: 2,
        fences: false,
        deps: false,
        rmws: false,
        txns: true,
        attrs: true,
        atomic_txns: true,
    };
    vec![
        ("sc-tsc", EnumConfig::hw(Arch::Sc, events)),
        ("x86", EnumConfig::hw(Arch::X86, events)),
        ("power", EnumConfig::hw(Arch::Power, events)),
        ("armv8", EnumConfig::hw(Arch::Armv8, events)),
        ("cpp", EnumConfig::hw(Arch::Cpp, events)),
        ("cpp-atomic-txns", cpp_atomic),
    ]
}

/// Key-set and count equality between the streaming engine (sequential
/// and work-stealing drivers) and the seed reference.
fn assert_stream_matches_reference(name: &str, cfg: &EnumConfig) {
    let mut stream_keys = HashSet::new();
    let mut streamed = 0usize;
    enumerate(cfg, &mut |x| {
        streamed += 1;
        stream_keys.insert(canon_key(x));
    });
    assert_eq!(
        streamed,
        stream_keys.len(),
        "{name}: streaming emitted a duplicate class"
    );

    let mut ref_keys = HashSet::new();
    let mut reference = 0usize;
    enumerate_reference(cfg, &mut |x| {
        reference += 1;
        ref_keys.insert(canon_key(x));
    });
    assert_eq!(reference, ref_keys.len());

    assert_eq!(streamed, reference, "{name}: candidate totals differ");
    assert_eq!(stream_keys, ref_keys, "{name}: canonical-key sets differ");
    assert_eq!(
        count_par(cfg),
        reference,
        "{name}: work-stealing count_par differs"
    );
}

#[test]
fn all_spaces_at_two_and_three_events() {
    for events in [2, 3] {
        for (name, cfg) in spaces(events) {
            assert_stream_matches_reference(name, &cfg);
        }
    }
}

#[test]
fn cheap_spaces_at_four_events() {
    for (name, cfg) in spaces(4) {
        if matches!(name, "sc-tsc" | "x86" | "cpp") {
            assert_stream_matches_reference(name, &cfg);
        }
    }
}

// The heavy |E| = 4 spaces: run with
// `cargo test --release --test enumeration_differential -- --ignored`
// (the CI enumeration-smoke job does).

#[test]
#[ignore = "minutes in debug; CI runs it in release"]
fn power_at_four_events() {
    let (name, cfg) = spaces(4).remove(2);
    assert_eq!(name, "power");
    assert_stream_matches_reference(name, &cfg);
}

#[test]
#[ignore = "minutes in debug; CI runs it in release"]
fn cpp_atomic_txns_at_four_events() {
    let (name, cfg) = spaces(4).remove(5);
    assert_eq!(name, "cpp-atomic-txns");
    assert_stream_matches_reference(name, &cfg);
}

#[test]
#[ignore = "~15 minutes in release (the reference path re-serialises 168M candidates); run on demand"]
fn armv8_at_four_events() {
    let (name, cfg) = spaces(4).remove(3);
    assert_eq!(name, "armv8");
    assert_stream_matches_reference(name, &cfg);
}
