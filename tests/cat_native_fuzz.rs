//! Differential fuzzing between the `.cat` evaluator and the native
//! models at |E| = 4 — one event past the per-crate differential tests,
//! on the full enumerated candidate space.
//!
//! Release builds sweep every enumerated execution; debug builds sample
//! the space with a SplitMix64-driven coin so the suite stays fast. The
//! sampler also drives a second pass with independently randomised
//! transaction layouts, exercising `.cat` lift combinators on shapes the
//! interval enumerator visits in a different order.
//!
//! Since the compile pipeline landed, `CatModel::consistent` runs the
//! bytecode VM, so the native twins above already fuzz the compiled
//! path. The compiled-vs-reference tests below close the loop the other
//! way: every shipped model (and the fencerel twins) must be
//! byte-identical — violation labels included — to the retained AST
//! reference interpreter on the same sampled space.

use txmm::cat::cat_model;
use txmm::core::rng::SplitMix64;
use txmm::core::TxnClass;
use txmm::models::registry::by_name;
use txmm::models::Arch;
use txmm::synth::{enumerate, EnumConfig};

fn fuzz_config(arch: Arch, fences: bool, rmws: bool) -> EnumConfig {
    EnumConfig {
        arch,
        events: 4,
        max_threads: 2,
        max_locs: 2,
        fences,
        deps: false,
        rmws,
        txns: true,
        attrs: false,
        atomic_txns: false,
    }
}

/// Sweep (or sample) the enumerated space, asserting verdict agreement
/// between a `.cat` model and its native twin on every visited
/// execution. `denominator = 1` sweeps the space; larger values sample
/// ~1/denominator of it with the seeded coin.
fn differential_fuzz_sampled(cfg: &EnumConfig, names: &[&str], seed: u64, denominator: usize) {
    for name in names {
        let cat = cat_model(name).expect("shipped model");
        let native = by_name(name).expect("native model");
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut checked = 0usize;
        enumerate(cfg, &mut |x| {
            if denominator > 1 && rng.below(denominator) != 0 {
                return;
            }
            checked += 1;
            let c = cat.consistent(x).expect("cat evaluates");
            let n = native.consistent(x);
            assert_eq!(
                c,
                n,
                "cat vs native {name} disagree on:\n{}",
                txmm::core::display::render(x)
            );
        });
        assert!(checked > 100, "{name}: sampled too little ({checked})");
    }
}

/// The seed behaviour: debug builds sample ~1/24, release sweeps all.
fn differential_fuzz(cfg: &EnumConfig, names: &[&str], seed: u64) {
    let denominator = if cfg!(debug_assertions) { 24 } else { 1 };
    differential_fuzz_sampled(cfg, names, seed, denominator);
}

#[test]
fn x86_cat_matches_native_at_four_events() {
    differential_fuzz(
        &fuzz_config(Arch::X86, true, true),
        &["x86", "x86-tm"],
        0x1234,
    );
}

#[test]
fn sc_cat_matches_native_at_four_events() {
    differential_fuzz(&fuzz_config(Arch::Sc, false, false), &["SC", "TSC"], 0x5678);
}

#[test]
fn power_cat_matches_native_at_four_events() {
    // The Power pair carries the recursive ppo fixpoint on both sides,
    // so even release builds sample (densely) rather than sweep.
    let denominator = if cfg!(debug_assertions) { 48 } else { 6 };
    differential_fuzz_sampled(
        &fuzz_config(Arch::Power, true, true),
        &["power", "power-tm"],
        0x7001,
        denominator,
    );
}

#[test]
fn armv8_cat_matches_native_at_four_events() {
    let denominator = if cfg!(debug_assertions) { 48 } else { 6 };
    differential_fuzz_sampled(
        &fuzz_config(Arch::Armv8, true, true),
        &["armv8", "armv8-tm"],
        0x7002,
        denominator,
    );
}

/// Replace standalone occurrences of `ident` (herd builtin fence
/// relations) with a `fencerel(...)` phrasing, leaving compound
/// identifiers like `ctrlisync` or `synct` alone.
fn replace_ident(src: &str, ident: &str, with: &str) -> String {
    let bytes = src.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut out = String::new();
    let mut i = 0;
    while i < src.len() {
        if src[i..].starts_with(ident)
            && (i == 0 || !is_word(bytes[i - 1]))
            && (i + ident.len() >= src.len() || !is_word(bytes[i + ident.len()]))
        {
            out.push_str(with);
            i += ident.len();
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// The shipped `.cat` source rewritten through herd's `fencerel`
/// combinator — `sync` becomes `fencerel(SYNC)` and so on — asserting
/// that the rewrite actually fired.
fn fencerel_twin_source(name: &str) -> String {
    let (_, src) = txmm::cat::SOURCES
        .iter()
        .find(|(n, _)| *n == name)
        .expect("shipped model");
    let mut s = src.to_string();
    if name.starts_with("power") {
        s = replace_ident(&s, "sync", "fencerel(SYNC)");
        s = replace_ident(&s, "lwsync", "fencerel(LWSYNC)");
        s = replace_ident(&s, "isync", "fencerel(ISYNC)");
    } else {
        s = s.replace("(po ; [DMB] ; po)", "fencerel(DMB)");
        s = s.replace("([R] ; po ; [DMBLD] ; po)", "([R] ; fencerel(DMBLD))");
        s = s.replace(
            "([W] ; po ; [DMBST] ; po ; [W])",
            "([W] ; fencerel(DMBST) ; [W])",
        );
    }
    assert!(s.contains("fencerel("), "{name}: rewrite must fire\n{s}");
    assert_ne!(s, *src);
    s
}

/// SplitMix64-randomised transaction relayouts on top of enumerated
/// transaction-free executions: a different distribution over `stxn`
/// shapes than the interval enumerator's, checked against both models.
fn randomised_txn_fuzz(
    arch: Arch,
    fences: bool,
    cat: &txmm::cat::CatModel,
    native_name: &str,
    seed: u64,
    budget: usize,
) {
    let mut cfg = fuzz_config(arch, fences, false);
    cfg.txns = false;
    let native = by_name(native_name).expect("native model");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut checked = 0usize;
    enumerate(&cfg, &mut |x| {
        if checked >= budget || rng.below(8) != 0 {
            return;
        }
        // Random per-thread transaction brackets.
        let mut txns = Vec::new();
        for t in 0..x.num_threads() {
            let evs: Vec<usize> = x.thread_events(t as u8).collect();
            let mut i = 0;
            while i < evs.len() {
                if rng.below(2) == 0 {
                    let len = 1 + rng.below(evs.len() - i);
                    txns.push(TxnClass {
                        events: evs[i..i + len].to_vec(),
                        atomic: false,
                    });
                    i += len;
                } else {
                    i += 1;
                }
            }
        }
        let y = x.with_txns(txns);
        assert!(y.check_wf().is_ok());
        checked += 1;
        assert_eq!(
            cat.consistent(&y).expect("cat evaluates"),
            native.consistent(&y),
            "cat vs native {native_name} disagree on randomised txn layout:\n{}",
            txmm::core::display::render(&y)
        );
    });
    assert!(checked > 100, "sampled too little ({checked})");
}

/// An enumeration config exercising the architecture a shipped model
/// targets, attrs included where the model reads access modes.
fn config_for(name: &str) -> EnumConfig {
    match name {
        "SC" | "TSC" => fuzz_config(Arch::Sc, false, false),
        n if n.starts_with("x86") => fuzz_config(Arch::X86, true, true),
        n if n.starts_with("power") => fuzz_config(Arch::Power, true, true),
        n if n.starts_with("armv8") => {
            let mut cfg = fuzz_config(Arch::Armv8, true, true);
            cfg.attrs = true;
            cfg
        }
        _ => {
            // C++ access modes multiply the space by 4 per event; three
            // events keep the sweep tractable while still driving every
            // mode-dependent builtin set through the compiled path.
            let mut cfg = fuzz_config(Arch::Cpp, true, false);
            cfg.attrs = true;
            cfg.events = 3;
            cfg
        }
    }
}

/// Sample the enumerated space and assert the compiled pipeline (via
/// the tiered program cache and VM) reproduces the reference AST
/// interpreter's verdict byte-for-byte, violation lists included.
fn vm_reference_differential(
    cfg: &EnumConfig,
    cat: &txmm::cat::CatModel,
    seed: u64,
    denominator: usize,
) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut checked = 0usize;
    enumerate(cfg, &mut |x| {
        if denominator > 1 && rng.below(denominator) != 0 {
            return;
        }
        checked += 1;
        let a = x.analysis();
        let got = cat.check_analysis(&a).expect("compiled model evaluates");
        let want = cat
            .check_analysis_reference(&a)
            .expect("reference interpreter evaluates");
        assert_eq!(
            got.violations(),
            want.violations(),
            "compiled vs reference disagree on:\n{}",
            txmm::core::display::render(x)
        );
    });
    assert!(checked > 100, "sampled too little ({checked})");
}

#[test]
fn compiled_verdicts_match_reference_on_all_shipped_models() {
    let denominator = if cfg!(debug_assertions) { 48 } else { 6 };
    for (i, (name, _)) in txmm::cat::SOURCES.iter().enumerate() {
        let cat = cat_model(name).expect("shipped model");
        vm_reference_differential(&config_for(name), &cat, 0xbeef + i as u64, denominator);
    }
}

/// The fencerel twins go through a different lowering (the dedicated
/// `Fencerel` opcode) than the shipped sources; they too must match the
/// reference interpreter exactly.
#[test]
fn compiled_fencerel_twins_match_reference() {
    let denominator = if cfg!(debug_assertions) { 64 } else { 8 };
    for (name, leaked) in [
        ("power-tm", "power-tm-fencerel-vm"),
        ("armv8-tm", "armv8-tm-fencerel-vm"),
    ] {
        let twin_src = fencerel_twin_source(name);
        let file = txmm::cat::parse(&twin_src).expect("fencerel twin parses");
        let cat = txmm::cat::CatModel::new(leaked, file);
        vm_reference_differential(&config_for(name), &cat, 0x77aa, denominator);
    }
}

#[test]
fn randomised_txn_layouts_agree() {
    let cat = cat_model("x86-tm").expect("shipped model");
    let budget = if cfg!(debug_assertions) { 400 } else { 4000 };
    randomised_txn_fuzz(Arch::X86, false, &cat, "x86-tm", 0x9abc, budget);
}

/// The PR 4 `fencerel` evaluation path under randomised transaction
/// layouts: the shipped Power/ARMv8 transactional models re-phrased
/// through `fencerel(SYNC)` / `fencerel(DMB)` (the herd idiom) must
/// agree with the native models on fence-heavy executions carrying
/// arbitrary `stxn` shapes.
#[test]
fn fencerel_twins_agree_under_randomised_txn_layouts() {
    let budget = if cfg!(debug_assertions) { 150 } else { 600 };
    for (arch, name, leaked) in [
        (Arch::Power, "power-tm", "power-tm-fencerel"),
        (Arch::Armv8, "armv8-tm", "armv8-tm-fencerel"),
    ] {
        let twin_src = fencerel_twin_source(name);
        let file = txmm::cat::parse(&twin_src).expect("fencerel twin parses");
        let cat = txmm::cat::CatModel::new(leaked, file);
        randomised_txn_fuzz(arch, true, &cat, name, 0xfe7c + arch as u64, budget);
    }
}
