//! Differential fuzzing between the `.cat` evaluator and the native
//! models at |E| = 4 — one event past the per-crate differential tests,
//! on the full enumerated candidate space.
//!
//! Release builds sweep every enumerated execution; debug builds sample
//! the space with a SplitMix64-driven coin so the suite stays fast. The
//! sampler also drives a second pass with independently randomised
//! transaction layouts, exercising `.cat` lift combinators on shapes the
//! interval enumerator visits in a different order.

use txmm::cat::cat_model;
use txmm::core::rng::SplitMix64;
use txmm::core::TxnClass;
use txmm::models::registry::by_name;
use txmm::models::Arch;
use txmm::synth::{enumerate, EnumConfig};

fn fuzz_config(arch: Arch, fences: bool, rmws: bool) -> EnumConfig {
    EnumConfig {
        arch,
        events: 4,
        max_threads: 2,
        max_locs: 2,
        fences,
        deps: false,
        rmws,
        txns: true,
        attrs: false,
        atomic_txns: false,
    }
}

/// Sweep (or sample) the enumerated space, asserting verdict agreement
/// between a `.cat` model and its native twin on every visited
/// execution.
fn differential_fuzz(cfg: &EnumConfig, names: &[&str], seed: u64) {
    for name in names {
        let cat = cat_model(name).expect("shipped model");
        let native = by_name(name).expect("native model");
        // Debug builds sample ~1/24 of the space; release sweeps it all.
        let mut rng = SplitMix64::seed_from_u64(seed);
        let sample = cfg!(debug_assertions);
        let mut checked = 0usize;
        enumerate(cfg, &mut |x| {
            if sample && rng.below(24) != 0 {
                return;
            }
            checked += 1;
            let c = cat.consistent(x).expect("cat evaluates");
            let n = native.consistent(x);
            assert_eq!(
                c,
                n,
                "cat vs native {name} disagree on:\n{}",
                txmm::core::display::render(x)
            );
        });
        assert!(checked > 100, "{name}: sampled too little ({checked})");
    }
}

#[test]
fn x86_cat_matches_native_at_four_events() {
    differential_fuzz(
        &fuzz_config(Arch::X86, true, true),
        &["x86", "x86-tm"],
        0x1234,
    );
}

#[test]
fn sc_cat_matches_native_at_four_events() {
    differential_fuzz(&fuzz_config(Arch::Sc, false, false), &["SC", "TSC"], 0x5678);
}

/// SplitMix64-randomised transaction relayouts on top of enumerated
/// transaction-free executions: a different distribution over `stxn`
/// shapes than the interval enumerator's, checked against both models.
#[test]
fn randomised_txn_layouts_agree() {
    let mut cfg = fuzz_config(Arch::X86, false, false);
    cfg.txns = false;
    let cat = cat_model("x86-tm").expect("shipped model");
    let native = by_name("x86-tm").expect("native model");
    let mut rng = SplitMix64::seed_from_u64(0x9abc);
    let mut checked = 0usize;
    let budget = if cfg!(debug_assertions) { 400 } else { 4000 };
    enumerate(&cfg, &mut |x| {
        if checked >= budget || rng.below(8) != 0 {
            return;
        }
        // Random per-thread transaction brackets.
        let mut txns = Vec::new();
        for t in 0..x.num_threads() {
            let evs: Vec<usize> = x.thread_events(t as u8).collect();
            let mut i = 0;
            while i < evs.len() {
                if rng.below(2) == 0 {
                    let len = 1 + rng.below(evs.len() - i);
                    txns.push(TxnClass {
                        events: evs[i..i + len].to_vec(),
                        atomic: false,
                    });
                    i += len;
                } else {
                    i += 1;
                }
            }
        }
        let y = x.with_txns(txns);
        assert!(y.check_wf().is_ok());
        checked += 1;
        assert_eq!(
            cat.consistent(&y).expect("cat evaluates"),
            native.consistent(&y),
            "cat vs native x86-tm disagree on randomised txn layout:\n{}",
            txmm::core::display::render(&y)
        );
    });
    assert!(checked > 100, "sampled too little ({checked})");
}
