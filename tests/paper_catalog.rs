//! Integration: every named execution from the paper gets the paper's
//! verdict from the native models, the `.cat` models, and — where an
//! architecture applies — the operational simulators.

use txmm::cat::cat_model;
use txmm::hwsim::{ArmSim, PowerSim, Simulator, TsoSim};
use txmm::litmus::litmus_from_execution;
use txmm::models::catalog::{self, Expect};
use txmm::models::registry::by_name;
use txmm::prelude::*;

#[test]
fn native_models_match_paper() {
    for entry in catalog::all() {
        for (model_name, expect) in &entry.expect {
            let model = by_name(model_name).expect("registered model");
            assert_eq!(
                model.consistent(&entry.exec),
                matches!(expect, Expect::Consistent),
                "{} under {}",
                entry.name,
                model_name
            );
        }
    }
}

#[test]
fn cat_models_match_paper() {
    for entry in catalog::all() {
        for (model_name, expect) in &entry.expect {
            let m = cat_model(model_name).expect("shipped cat model");
            assert_eq!(
                m.consistent(&entry.exec).expect("evaluates"),
                matches!(expect, Expect::Consistent),
                "{} under cat {}",
                entry.name,
                model_name
            );
        }
    }
}

/// The simulators must never observe what the TM model forbids, and the
/// paper's key allowed behaviours must be observable.
#[test]
fn simulators_respect_model_verdicts() {
    for entry in catalog::all() {
        if !entry.exec.calls().is_empty() {
            continue; // abstract executions have no machine semantics
        }
        type Observable = Box<dyn Fn(&txmm::litmus::LitmusTest) -> bool>;
        for (model_name, expect) in &entry.expect {
            let (arch, observable): (Arch, Observable) = match *model_name {
                "x86-tm" => (Arch::X86, Box::new(|t| TsoSim.observable(t))),
                "armv8-tm" => (Arch::Armv8, Box::new(|t| ArmSim::default().observable(t))),
                "power-tm" => (Arch::Power, Box::new(|t| PowerSim::default().observable(t))),
                _ => continue,
            };
            let t = litmus_from_execution(entry.name, &entry.exec, arch);
            let seen = observable(&t);
            match expect {
                Expect::Forbidden => {
                    assert!(
                        !seen,
                        "{}: forbidden by {} but observable on its simulator",
                        entry.name, model_name
                    );
                }
                Expect::Consistent => {
                    // Consistent does not force observability (hardware
                    // may be conservative), but the flagship allowed
                    // behaviours must show up.
                    if matches!(
                        entry.name,
                        "sb" | "mp" | "armv8-elision" | "armv8-elision-appb" | "fig1"
                    ) {
                        assert!(
                            seen,
                            "{}: expected observable on the {} simulator",
                            entry.name,
                            arch.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn isolation_bounds_hold_on_catalog() {
    // §3.3/§3.4: StrongIsol is implied by TxnOrder (TSC) on every
    // catalog execution: anything TSC admits satisfies strong isolation.
    for entry in catalog::all() {
        if Tsc.consistent(&entry.exec) {
            assert!(
                txmm::models::strong_isolation(&entry.exec),
                "{}: TSC-consistent but not strongly isolated",
                entry.name
            );
        }
        // And weak isolation is weaker than strong isolation.
        if txmm::models::strong_isolation(&entry.exec) {
            assert!(txmm::models::weak_isolation(&entry.exec), "{}", entry.name);
        }
    }
}

#[test]
fn dongol_separation() {
    // §9: the Dongol et al. comparison — our Power model forbids the
    // MP-with-transactions execution (needed for sound compilation from
    // C++), and the C++ model forbids its source. Models "significantly
    // weaker than ours" (no lifted-communication axioms at all) admit
    // it; in our framework even the isolation lifts detect the cycle,
    // confirming our models sit strictly above Dongol et al.'s.
    let x = catalog::dongol();
    assert!(!Power::tm().consistent(&x));
    assert!(!Cpp::tm().consistent(&x));
    assert!(!txmm::models::weak_isolation(&x));
    // The non-transactional baseline allows the underlying MP shape, so
    // the verdict is genuinely transactional.
    assert!(Power::base().consistent(&x.erase_txns()));
}
