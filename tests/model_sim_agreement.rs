//! Cross-validation of the axiomatic models against the operational
//! simulators, over *every* enumerated execution at a small bound.
//!
//! Soundness direction (must always hold): anything a simulator can
//! observe is consistent under the architecture's transactional model —
//! the simulated hardware never exceeds the architecture.
//!
//! (The converse — everything consistent is observable — deliberately
//! fails in places: real implementations are conservative, e.g. the
//! Power simulator never exhibits load buffering, §5.3.)

use txmm::litmus::litmus_from_execution;
use txmm::prelude::*;
use txmm::synth::enumerate;

fn soundness(arch: Arch, events: usize) {
    let model = txmm::models::registry::by_name(match arch {
        Arch::X86 => "x86-tm",
        Arch::Power => "power-tm",
        Arch::Armv8 => "armv8-tm",
        _ => unreachable!(),
    })
    .expect("registered");
    let cfg = EnumConfig {
        arch,
        events,
        max_threads: 2,
        max_locs: 2,
        fences: true,
        deps: arch != Arch::X86,
        rmws: true,
        txns: true,
        attrs: arch == Arch::Armv8,
        atomic_txns: false,
    };
    let stride = if cfg!(debug_assertions) { 5 } else { 1 };
    let mut seen = 0usize;
    let mut observable_count = 0usize;
    let mut total = 0usize;
    enumerate(&cfg, &mut |x| {
        seen += 1;
        if !seen.is_multiple_of(stride) {
            return;
        }
        total += 1;
        let t = litmus_from_execution("t", x, arch);
        let observable = match arch {
            Arch::X86 => TsoSim.observable(&t),
            Arch::Power => PowerSim::default().observable(&t),
            Arch::Armv8 => ArmSim::default().observable(&t),
            _ => unreachable!(),
        };
        if observable {
            observable_count += 1;
            assert!(
                model.consistent(x),
                "{} simulator observes a model-forbidden execution:\n{}",
                arch.name(),
                txmm::core::display::render(x)
            );
        }
    });
    assert!(total > 0);
    assert!(observable_count > 0, "simulator must observe something");
}

#[test]
fn x86_sim_sound_wrt_model() {
    soundness(Arch::X86, 3);
}

#[test]
fn power_sim_sound_wrt_model() {
    soundness(Arch::Power, 3);
}

#[test]
fn armv8_sim_sound_wrt_model() {
    soundness(Arch::Armv8, 3);
}

/// The oracle "hardware" coincides with its model by construction; the
/// conservative Power oracle differs exactly on po∪rf cycles.
#[test]
fn oracle_conservatism_scope() {
    let exact = Oracle::exact(Box::new(Power::tm()));
    let p8 = Oracle::conservative(
        Box::new(Power::tm()),
        vec![txmm::hwsim::Conservatism::NoLoadBuffering],
    );
    let cfg = EnumConfig {
        arch: Arch::Power,
        events: 3,
        max_threads: 2,
        max_locs: 2,
        fences: false,
        deps: true,
        rmws: false,
        txns: true,
        attrs: false,
        atomic_txns: false,
    };
    let mut diffs = 0usize;
    enumerate(&cfg, &mut |x| {
        if exact.admits(x) != p8.admits(x) {
            diffs += 1;
            assert!(
                !x.po().union(x.rf()).is_acyclic(),
                "conservatism must only remove LB shapes"
            );
        }
    });
    let _ = diffs;
}

/// Completeness spot checks: the simulators observe the canonical
/// allowed relaxations of their architectures.
#[test]
fn sims_observe_canonical_relaxations() {
    use txmm::models::catalog;
    let sb = litmus_from_execution("sb", &catalog::sb(None, false, false), Arch::X86);
    assert!(TsoSim.observable(&sb));
    let mp = litmus_from_execution("mp", &catalog::mp(None, false, false), Arch::Power);
    assert!(PowerSim::default().observable(&mp));
    let lb = litmus_from_execution("lb", &catalog::lb(false), Arch::Armv8);
    assert!(ArmSim::default().observable(&lb));
    // And the conservatism knob mirrors POWER8.
    let lbp = litmus_from_execution("lb", &catalog::lb(false), Arch::Power);
    assert!(!PowerSim::default().observable(&lbp));
}
