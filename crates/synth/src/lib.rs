//! # txmm-synth
//!
//! A Memalloy-equivalent synthesiser (§4 of the paper): exhaustive,
//! symmetry-reduced enumeration of candidate executions replaces the
//! Alloy/SAT search, and the ⊏ weakening order of Lustig et al. defines
//! minimally-forbidden ("Forbid") and maximally-allowed ("Allow")
//! conformance suites.
//!
//! * [`enumerate`] — candidate-execution generation per architecture;
//! * [`canon`] — canonical forms (thread/location symmetry reduction);
//! * [`weaken`] — the ⊏ order: event removal, dependency removal,
//!   event downgrade, transaction-boundary stripping;
//! * [`suites`] — Forbid/Allow synthesis with discovery timestamps
//!   (regenerates Table 1 and Fig. 7);
//! * [`diff`] — model-difference search (Memalloy's original mode).
//!
//! ```
//! use txmm_synth::{suites::synthesise, EnumConfig};
//! use txmm_models::{Arch, Sc, Tsc};
//!
//! // At three events, TSC-vs-SC synthesis rediscovers the isolation
//! // shapes of Fig. 3.
//! let mut cfg = EnumConfig::hw(Arch::Sc, 3);
//! cfg.fences = false;
//! cfg.rmws = false;
//! cfg.max_threads = 2;
//! let r = synthesise(&cfg, &Tsc, &Sc, None);
//! assert!(r.forbid.len() >= 4);
//! ```

pub mod canon;
pub mod consistent;
pub mod diff;
pub mod enumerate;
pub mod par;
pub mod steal;
pub mod suites;
pub mod weaken;

pub use canon::canon_key;
pub use consistent::{
    count_consistent, count_consistent_par, count_consistent_par_progress, enumerate_consistent,
    enumerate_consistent_txn_first, enumerate_pruned, oracle_for, visit_pruned_par,
    visit_pruned_par_progress, LeafChecker,
};
pub use diff::{distinguish, distinguish_seq, equivalent, equivalent_seq};
pub use enumerate::{
    count, count_par, count_reference, enumerate, enumerate_reference, enumerate_shape,
    for_each_par, stream_par, visit_par, visit_par_progress, walk_plan, CandSeq, EnumConfig,
    Frontier, Subtree, WalkPlan,
};
pub use par::par_map;
pub use steal::{run_with, run_with_progress, StealStats};
pub use suites::{
    synthesise, synthesise_pruned, synthesise_seq, synthesise_streamed,
    synthesise_streamed_progress, txn_histogram, FoundTest, SuiteResult,
};
pub use weaken::weakenings;
