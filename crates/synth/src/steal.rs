//! A work-stealing deque pool for candidate enumeration.
//!
//! The seed parallelism ([`crate::par::par_map`]) handed out whole
//! thread-shape shards: at |E| ≥ 4 a single large shape holds most of
//! the candidate space, so one worker ends up serialising a core's
//! worth of work while the rest idle. This pool splits *within* a
//! shape: the enumeration frontier is a lazy stream of coarse subtree
//! jobs (one per canonical kind assignment — hundreds to thousands per
//! large shape), each worker owns a deque of jobs, takes from its own
//! back, **steals from the front** of a victim's deque when empty, and
//! refills from the shared frontier in small chunks. The biggest shape
//! therefore spreads across every worker instead of pinning one.
//!
//! The pool is generic over the job type so every sweep (enumeration,
//! synthesis, the metatheory checks) reuses it; per-worker state comes
//! back to the caller for deterministic merging.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use txmm_obs::{WalkProgress, WorkerLane};

/// How many jobs a worker pulls from the frontier per refill. Small
/// enough that late-arriving thieves find work at the frontier, large
/// enough that the frontier lock stays cold.
const REFILL_CHUNK: usize = 8;

/// Counters describing one pool run (the bench reports these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Worker threads that ran.
    pub workers: usize,
    /// Jobs executed in total.
    pub jobs: u64,
    /// Jobs taken from another worker's deque.
    pub steals: u64,
}

/// Process-wide pool telemetry: one handle pair for every run (the
/// pool is invoked per request, so handles must not be re-registered
/// per call).
fn pool_counters() -> &'static (txmm_obs::Counter, txmm_obs::Counter) {
    static COUNTERS: OnceLock<(txmm_obs::Counter, txmm_obs::Counter)> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let obs = txmm_obs::global();
        (
            obs.counter(
                "txmm_steal_jobs_total",
                "Jobs executed by the work-stealing pool.",
            ),
            obs.counter(
                "txmm_steal_steals_total",
                "Jobs taken from another worker's deque.",
            ),
        )
    })
}

impl StealStats {
    /// Fold this run into the global registry.
    fn publish(self) -> StealStats {
        let (jobs, steals) = pool_counters();
        jobs.add(self.jobs);
        steals.add(self.steals);
        self
    }
}

/// Run every job from `jobs` on `workers` work-stealing threads.
///
/// `init(w)` builds worker `w`'s private state; `work(job, state)` runs
/// on whichever worker claimed the job. Returns every worker state (in
/// worker order) plus the run's counters, so callers merge
/// deterministically. With `workers <= 1` the pool degenerates to a
/// plain sequential loop (no threads, no locks on the hot path).
pub fn run_with<J, S, I, FI, FW>(
    jobs: I,
    workers: usize,
    init: FI,
    work: FW,
) -> (Vec<S>, StealStats)
where
    J: Send,
    S: Send,
    I: Iterator<Item = J> + Send,
    FI: Fn(usize) -> S + Sync,
    FW: Fn(J, &mut S) + Sync,
{
    run_with_progress(jobs, workers, None, init, work)
}

/// [`run_with`] with optional live-progress lanes: when `progress` is
/// set, the pool registers one [`WorkerLane`] per worker and keeps
/// per-worker job/steal counts plus busy/idle wall time, so a
/// heartbeat reporter can show utilisation mid-run. With `progress`
/// `None` the hot path is identical to [`run_with`] — no clocks, no
/// extra atomics.
pub fn run_with_progress<J, S, I, FI, FW>(
    jobs: I,
    workers: usize,
    progress: Option<&WalkProgress>,
    init: FI,
    work: FW,
) -> (Vec<S>, StealStats)
where
    J: Send,
    S: Send,
    I: Iterator<Item = J> + Send,
    FI: Fn(usize) -> S + Sync,
    FW: Fn(J, &mut S) + Sync,
{
    if workers <= 1 {
        let lane = progress.map(|p| p.register_workers(1).pop().expect("one registered lane"));
        let mut state = init(0);
        let mut jobs_run = 0u64;
        for job in jobs {
            match &lane {
                Some(l) => {
                    let t0 = Instant::now();
                    work(job, &mut state);
                    l.busy_micros
                        .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                    l.jobs.fetch_add(1, Ordering::Relaxed);
                }
                None => work(job, &mut state),
            }
            jobs_run += 1;
        }
        return (
            vec![state],
            StealStats {
                workers: 1,
                jobs: jobs_run,
                steals: 0,
            }
            .publish(),
        );
    }

    let lanes: Option<Vec<Arc<WorkerLane>>> = progress.map(|p| p.register_workers(workers));
    let frontier = Mutex::new(jobs.fuse());
    let frontier_empty = AtomicBool::new(false);
    let queues: Vec<Mutex<VecDeque<J>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let steals = AtomicU64::new(0);
    let jobs_run = AtomicU64::new(0);

    let lanes_ref = &lanes;
    let next_job = |w: usize| -> Option<J> {
        // Own deque first, newest job (depth-first locality).
        if let Some(j) = queues[w].lock().expect("own deque").pop_back() {
            return Some(j);
        }
        // Refill from the shared frontier.
        if !frontier_empty.load(Ordering::Relaxed) {
            let mut src = frontier.lock().expect("frontier");
            let mut own = queues[w].lock().expect("own deque");
            for _ in 0..REFILL_CHUNK {
                match src.next() {
                    Some(j) => own.push_back(j),
                    None => {
                        frontier_empty.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            if let Some(j) = own.pop_back() {
                return Some(j);
            }
        }
        // Steal the oldest job from the first non-empty victim.
        for v in 1..workers {
            let victim = (w + v) % workers;
            if let Some(j) = queues[victim].lock().expect("victim deque").pop_front() {
                steals.fetch_add(1, Ordering::Relaxed);
                if let Some(ls) = lanes_ref {
                    ls[w].steals.fetch_add(1, Ordering::Relaxed);
                }
                return Some(j);
            }
        }
        None
    };

    let mut states: Vec<Option<S>> = Vec::new();
    states.resize_with(workers, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let next_job = &next_job;
            let init = &init;
            let work = &work;
            let jobs_run = &jobs_run;
            let frontier_empty = &frontier_empty;
            let lane = lanes.as_ref().map(|ls| ls[w].clone());
            handles.push(scope.spawn(move || {
                let mut state = init(w);
                // Idle accounting spans from the first empty claim to
                // the next successful one (a single yield is below
                // microsecond resolution).
                let mut idle_since: Option<Instant> = None;
                loop {
                    match next_job(w) {
                        Some(job) => {
                            match &lane {
                                Some(l) => {
                                    if let Some(t) = idle_since.take() {
                                        l.idle_micros.fetch_add(
                                            t.elapsed().as_micros() as u64,
                                            Ordering::Relaxed,
                                        );
                                    }
                                    let t0 = Instant::now();
                                    work(job, &mut state);
                                    l.busy_micros.fetch_add(
                                        t0.elapsed().as_micros() as u64,
                                        Ordering::Relaxed,
                                    );
                                    l.jobs.fetch_add(1, Ordering::Relaxed);
                                }
                                None => work(job, &mut state),
                            }
                            jobs_run.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            // Nothing anywhere. New jobs only enter via
                            // the frontier, so once it is drained and
                            // every deque came up empty this worker can
                            // retire; in-flight jobs finish on their
                            // holders.
                            if lane.is_some() && idle_since.is_none() {
                                idle_since = Some(Instant::now());
                            }
                            if frontier_empty.load(Ordering::Relaxed) {
                                if let (Some(l), Some(t)) = (&lane, idle_since.take()) {
                                    l.idle_micros.fetch_add(
                                        t.elapsed().as_micros() as u64,
                                        Ordering::Relaxed,
                                    );
                                }
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                state
            }));
        }
        for (w, h) in handles.into_iter().enumerate() {
            states[w] = Some(h.join().expect("pool worker panicked"));
        }
    });

    (
        states.into_iter().map(|s| s.expect("joined")).collect(),
        StealStats {
            workers,
            jobs: jobs_run.load(Ordering::Relaxed),
            steals: steals.load(Ordering::Relaxed),
        }
        .publish(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_jobs_run_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        let (states, stats) = run_with(
            0..500usize,
            4,
            |_| 0usize,
            |j, s| {
                hits[j].fetch_add(1, Ordering::Relaxed);
                *s += 1;
            },
        );
        assert_eq!(stats.jobs, 500);
        assert_eq!(states.iter().sum::<usize>(), 500);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sequential_degenerate_case() {
        let (states, stats) = run_with(
            0..10usize,
            1,
            |_| Vec::new(),
            |j, s: &mut Vec<usize>| s.push(j),
        );
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
        assert_eq!(states[0], (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn one_huge_job_stream_balances() {
        // Jobs with wildly uneven costs: every worker state still merges
        // to the right total, and nothing deadlocks.
        let job = |cost: usize| -> u64 {
            let mut x = 0u64;
            for k in 0..cost {
                x = x.wrapping_add(k as u64);
            }
            x.max(1)
        };
        let costs: Vec<usize> = (0..64)
            .map(|i| if i == 0 { 200_000 } else { 100 })
            .collect();
        let expect: u64 = costs.iter().map(|&c| job(c)).sum();
        let (states, stats) = run_with(
            costs.into_iter(),
            3,
            |_| 0u64,
            |cost, acc| *acc = acc.wrapping_add(job(cost)),
        );
        assert_eq!(stats.jobs, 64);
        assert_eq!(
            states.iter().sum::<u64>(),
            expect,
            "per-worker states merge to the full total"
        );
    }

    #[test]
    fn empty_frontier_terminates() {
        let (states, stats) = run_with(std::iter::empty::<usize>(), 4, |_| (), |_, _| {});
        assert_eq!(stats.jobs, 0);
        assert_eq!(states.len(), 4);
    }
}
