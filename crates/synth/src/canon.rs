//! Canonical forms for executions.
//!
//! The implementation moved into [`txmm_core::canon`] so the arena /
//! canonicalisation layer and the enumerator share one definition —
//! including the *incremental* (prefix) machinery the streaming
//! enumerator prunes with. This module re-exports the stable surface
//! under its historical path.

pub use txmm_core::canon::{canon_key, kind_rows_sorted, label_canonical, struct_canonical, Label};
