//! Canonical forms for executions, used to deduplicate enumerator
//! output under thread and location symmetry.

use txmm_core::{EventKind, Execution, Fence};

fn kind_tag(k: EventKind) -> u8 {
    match k {
        EventKind::Read => 0,
        EventKind::Write => 1,
        EventKind::Fence(f) => {
            2 + match f {
                Fence::MFence => 0,
                Fence::Sync => 1,
                Fence::Lwsync => 2,
                Fence::Isync => 3,
                Fence::Dmb => 4,
                Fence::DmbLd => 5,
                Fence::DmbSt => 6,
                Fence::Isb => 7,
                Fence::CppFence => 8,
            }
        }
        EventKind::Call(c) => 11 + c as u8,
    }
}

/// Serialise the execution under one thread permutation, relabelling
/// locations by first occurrence.
fn serialise(x: &Execution, perm: &[usize]) -> Vec<u8> {
    let nt = x.num_threads();
    // New event order: threads in `perm` order, po order within.
    let mut order: Vec<usize> = Vec::with_capacity(x.len());
    for &t in perm {
        order.extend(x.thread_events(t as u8));
    }
    let mut newid = vec![0usize; x.len()];
    for (new, &old) in order.iter().enumerate() {
        newid[old] = new;
    }
    // Location relabelling by first occurrence in the new order.
    let mut locmap = [u8::MAX; 64];
    let mut next = 0u8;
    let mut out = Vec::with_capacity(x.len() * 4 + 64);
    out.push(nt as u8);
    for &old in &order {
        let ev = x.event(old);
        out.push(ev.tid);
        out.push(kind_tag(ev.kind));
        out.push(ev.attrs.bits());
        match ev.loc {
            Some(l) => {
                if locmap[l as usize] == u8::MAX {
                    locmap[l as usize] = next;
                    next += 1;
                }
                out.push(locmap[l as usize] + 1);
            }
            None => out.push(0),
        }
    }
    // Wait: thread ids themselves must be relabelled, not raw.
    // (Positions already encode the permuted order; patch tids.)
    for (i, &old) in order.iter().enumerate() {
        let t_old = x.event(old).tid as usize;
        let t_new = perm.iter().position(|&p| p == t_old).expect("tid in perm");
        out[1 + i * 4] = t_new as u8;
    }
    let mut push_rel = |tag: u8, rel: &txmm_core::Rel| {
        let mut pairs: Vec<(usize, usize)> =
            rel.pairs().map(|(a, b)| (newid[a], newid[b])).collect();
        pairs.sort_unstable();
        out.push(255);
        out.push(tag);
        for (a, b) in pairs {
            out.push(a as u8);
            out.push(b as u8);
        }
    };
    push_rel(0, x.rf());
    push_rel(1, x.co());
    push_rel(2, x.addr());
    push_rel(3, x.ctrl());
    push_rel(4, x.data());
    push_rel(5, x.rmw());
    // Transactions: sorted class lists with atomic flags.
    let mut classes: Vec<(Vec<usize>, bool)> = x
        .txns()
        .iter()
        .map(|t| {
            let mut evs: Vec<usize> = t.events.iter().map(|&e| newid[e]).collect();
            evs.sort_unstable();
            (evs, t.atomic)
        })
        .collect();
    classes.sort();
    out.push(255);
    out.push(6);
    for (evs, atomic) in classes {
        out.push(254);
        out.push(atomic as u8);
        for e in evs {
            out.push(e as u8);
        }
    }
    out
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for rest in permutations(n - 1) {
        for pos in 0..=rest.len() {
            let mut p = rest.clone();
            p.insert(pos, n - 1);
            out.push(p);
        }
    }
    out
}

/// The canonical key: the lexicographically smallest serialisation over
/// all thread permutations.
pub fn canon_key(x: &Execution) -> Vec<u8> {
    let nt = x.num_threads();
    permutations(nt)
        .into_iter()
        .map(|p| serialise(x, &p))
        .min()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_core::ExecBuilder;

    #[test]
    fn thread_symmetry_collapses() {
        // SB written with threads in either order has the same key.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write(t0, 0);
        b.read(t0, 1);
        let t1 = b.new_thread();
        b.write(t1, 1);
        b.read(t1, 0);
        let x1 = b.build().unwrap();

        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write(t0, 1);
        b.read(t0, 0);
        let t1 = b.new_thread();
        b.write(t1, 0);
        b.read(t1, 1);
        let x2 = b.build().unwrap();

        assert_eq!(canon_key(&x1), canon_key(&x2));
    }

    #[test]
    fn location_relabelling() {
        // Same shape with locations renamed: same key.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write(t0, 2);
        b.read(t0, 2);
        let x1 = b.build().unwrap();
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write(t0, 0);
        b.read(t0, 0);
        let x2 = b.build().unwrap();
        assert_eq!(canon_key(&x1), canon_key(&x2));
    }

    #[test]
    fn different_rf_distinct() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read(t0, 0);
        b.rf(w, r);
        let x1 = b.build().unwrap();
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write(t0, 0);
        b.read(t0, 0); // reads init instead
        let x2 = b.build().unwrap();
        assert_ne!(canon_key(&x1), canon_key(&x2));
    }

    #[test]
    fn txn_membership_distinct() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read(t0, 0);
        b.rf(w, r);
        b.txn(&[w, r]);
        let x1 = b.build().unwrap();
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read(t0, 0);
        b.rf(w, r);
        let x2 = b.build().unwrap();
        assert_ne!(canon_key(&x1), canon_key(&x2));
        // Atomic vs relaxed transactions are distinct too.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read(t0, 0);
        b.rf(w, r);
        b.txn_atomic(&[w, r]);
        let x3 = b.build().unwrap();
        assert_ne!(canon_key(&x1), canon_key(&x3));
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(0).len(), 1);
    }
}
