//! The ⊏ weakening order on executions (§4.2).
//!
//! `X ⊏ Y` holds when `X` is obtained from `Y` by one step of:
//!
//! (i)   removing an event (plus incident edges),
//! (ii)  removing a dependency edge (`addr`, `ctrl`, `data`, `rmw`),
//! (iii) downgrading an event (e.g. acquire-read → plain read), or
//! (v)   making the first or last event of a transaction
//!       non-transactional.
//!
//! Minimally-forbidden tests are those whose every one-step weakening is
//! consistent; maximally-allowed tests are the consistent one-step
//! weakenings of minimally-forbidden ones.

use txmm_core::Execution;
use txmm_models::Arch;

/// All one-step ⊏-predecessors of `x` (well-formed ones only).
pub fn weakenings(x: &Execution, arch: Arch) -> Vec<Execution> {
    let mut out = Vec::new();

    // (i) Remove an event.
    for e in 0..x.len() {
        let y = x.remove_event(e);
        if y.check_wf().is_ok() {
            out.push(y);
        }
    }

    // (ii) Remove a dependency edge.
    for (idx, rel) in [x.addr(), x.ctrl(), x.data(), x.rmw()]
        .into_iter()
        .enumerate()
    {
        for (a, b) in rel.pairs() {
            let mut y = x.clone();
            {
                let (addr, ctrl, data, rmw) = y.deps_mut();
                match idx {
                    0 => addr.remove(a, b),
                    1 => ctrl.remove(a, b),
                    2 => data.remove(a, b),
                    _ => rmw.remove(a, b),
                }
            }
            if y.check_wf().is_ok() {
                out.push(y);
            }
        }
    }

    // (iii) Downgrade an event.
    for e in 0..x.len() {
        for weaker in arch.downgrades(x.event(e)) {
            let mut y = x.clone();
            *y.event_mut(e) = weaker;
            if y.check_wf().is_ok() {
                out.push(y);
            }
        }
    }

    // (v) Strip the first or last event of a transaction. (The paper
    // avoids the middle so transactions stay contiguous.)
    for ti in 0..x.txns().len() {
        let class = &x.txns()[ti];
        let mut strip = |pos: usize| {
            let mut y = x.clone();
            let c = &mut y.txns_mut()[ti];
            c.events.remove(pos);
            if c.events.is_empty() {
                y.txns_mut().remove(ti);
            }
            if y.check_wf().is_ok() {
                out.push(y);
            }
        };
        strip(0);
        if class.events.len() > 1 {
            strip(class.events.len() - 1);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_core::ExecBuilder;
    use txmm_models::catalog;

    #[test]
    fn event_removal_counts() {
        let x = catalog::sb(None, false, false);
        let ws = weakenings(&x, Arch::X86);
        // 4 event removals, nothing else (no deps/attrs/txns).
        assert_eq!(ws.len(), 4);
        assert!(ws.iter().all(|w| w.len() == 3));
    }

    #[test]
    fn txn_stripping() {
        let x = catalog::sb(None, true, true);
        let ws = weakenings(&x, Arch::X86);
        // 4 removals + 2 strips per transaction (first/last).
        assert_eq!(ws.len(), 4 + 4);
        let stripped: Vec<_> = ws.iter().filter(|w| w.len() == 4).collect();
        assert_eq!(stripped.len(), 4);
        for w in stripped {
            // One transaction shrank to a single event.
            assert!(w.txns().iter().any(|t| t.events.len() == 1));
        }
    }

    #[test]
    fn singleton_txn_strip_removes_class() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        b.txn(&[w]);
        let x = b.build().unwrap();
        let ws = weakenings(&x, Arch::X86);
        // Removal of the event, plus one strip (leaving no txn).
        assert_eq!(ws.len(), 2);
        assert!(ws.iter().any(|w| w.len() == 1 && w.txns().is_empty()));
    }

    #[test]
    fn dep_removal() {
        let x = catalog::mp(None, true, false);
        let ws = weakenings(&x, Arch::Power);
        // 4 event removals + 1 addr removal.
        assert_eq!(ws.len(), 5);
        assert!(ws.iter().any(|w| w.len() == 4 && w.addr().is_empty()));
    }

    #[test]
    fn downgrade_acquire() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.read_acq(t0, 0);
        let x = b.build().unwrap();
        let ws = weakenings(&x, Arch::Armv8);
        // Removal + downgrade.
        assert_eq!(ws.len(), 2);
        assert!(ws.iter().any(|w| w.len() == 1 && w.acq().is_empty()));
    }

    #[test]
    fn rmw_edge_removal() {
        let x = catalog::rmw_txn(true);
        let ws = weakenings(&x, Arch::Power);
        assert!(ws.iter().any(|w| w.rmw().is_empty() && w.len() == 2));
    }
}
