//! Exhaustive enumeration of candidate executions, up to a bounded
//! event count, for a given architecture.
//!
//! This replaces Memalloy's SAT search with explicit generation: every
//! well-formed execution over the architecture's event vocabulary is
//! produced exactly once (up to thread and location symmetry).
//!
//! ## The streaming engine
//!
//! The space is sharded by **thread shape** (the non-increasing
//! partition of the event count across threads) and, within a shape, by
//! **kind assignment**: one [`Subtree`] per canonical choice of event
//! kinds. Canonicalisation is *incremental* (see [`txmm_core::canon`]):
//! symmetry-duplicate prefixes are rejected mid-construction — at the
//! kind stage, again when the per-event labels complete, and finally by
//! a stateless automorphism-minimality test on the finished candidate —
//! so the engine streams exactly one representative per symmetry class
//! while carrying **no dedup set and no candidate buffer**.
//!
//! [`Frontier`] is the resumable form of that decomposition: a lazy
//! iterator of subtree jobs. The sequential drivers ([`enumerate`],
//! [`count`]) walk it in order; the parallel drivers ([`visit_par`],
//! [`for_each_par`], [`count_par`], [`stream_par`]) feed it to the
//! work-stealing pool ([`crate::steal`]), which splits *within* a shape
//! — one huge shape no longer serialises a core's worth of work the way
//! the seed shape-shard `par_map` split did.
//!
//! The seed generate-then-dedup pipeline survives as
//! [`enumerate_reference`] / [`count_reference`]: the differential
//! suite checks the streaming engine emits exactly the same canonical
//! classes.

use std::collections::HashSet;

use txmm_core::canon::{
    canon_key, kind_rows_sorted, kind_tag, label_canonical, struct_canonical, Label,
};
use txmm_core::{Attrs, Event, EventKind, Execution, Fence, Rel, TxnClass};
use txmm_models::Arch;

use crate::par::worker_count;
use crate::steal::{run_with, StealStats};

/// What the enumerator may use.
#[derive(Debug, Clone)]
pub struct EnumConfig {
    /// The target architecture (fixes fences and attributes).
    pub arch: Arch,
    /// Exact number of events to generate (callers loop over sizes).
    pub events: usize,
    /// Maximum number of threads.
    pub max_threads: usize,
    /// Maximum number of distinct locations.
    pub max_locs: usize,
    /// Include fence events.
    pub fences: bool,
    /// Include address/data/control dependencies.
    pub deps: bool,
    /// Include read-modify-write pairs.
    pub rmws: bool,
    /// Include transactions.
    pub txns: bool,
    /// Include architecture attributes (ARMv8 acq/rel, C++ modes).
    pub attrs: bool,
    /// For C++: also enumerate atomic transactions.
    pub atomic_txns: bool,
}

impl EnumConfig {
    /// A sensible default for hardware models.
    pub fn hw(arch: Arch, events: usize) -> EnumConfig {
        EnumConfig {
            arch,
            events,
            max_threads: 3,
            max_locs: 3,
            fences: true,
            deps: matches!(arch, Arch::Power | Arch::Armv8),
            rmws: true,
            txns: true,
            attrs: matches!(arch, Arch::Armv8),
            atomic_txns: false,
        }
    }
}

/// Compositions of `n` into at most `k` non-increasing positive parts
/// (thread shapes; non-increasing kills most thread symmetry up front).
fn shapes(n: usize, k: usize, max_part: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    if k == 0 {
        return vec![];
    }
    let mut out = Vec::new();
    for first in (1..=n.min(max_part)).rev() {
        for rest in shapes(n - first, k - 1, first) {
            let mut s = vec![first];
            s.extend(rest);
            out.push(s);
        }
    }
    out
}

pub(crate) fn kinds_for(cfg: &EnumConfig) -> Vec<EventKind> {
    let mut ks = vec![EventKind::Read, EventKind::Write];
    if cfg.fences {
        for &f in cfg.arch.fences() {
            ks.push(EventKind::Fence(f));
        }
    }
    ks
}

fn attr_options(cfg: &EnumConfig, kind: EventKind) -> Vec<Attrs> {
    if !cfg.attrs {
        // C++ accesses still need *some* mode decision even when attrs
        // are off: default to relaxed atomics so programs are race-free
        // by construction... no: keep them plain (non-atomic).
        if cfg.arch == Arch::Cpp {
            if let EventKind::Fence(Fence::CppFence) = kind {
                return vec![Attrs::SC.union(Attrs::ACQ).union(Attrs::REL)];
            }
        }
        return vec![Attrs::NONE];
    }
    match (cfg.arch, kind) {
        (Arch::Armv8, EventKind::Read) => vec![Attrs::NONE, Attrs::ACQ],
        (Arch::Armv8, EventKind::Write) => vec![Attrs::NONE, Attrs::REL],
        (Arch::Cpp, EventKind::Read) => vec![
            Attrs::NONE,
            Attrs::ATO,
            Attrs::ATO.union(Attrs::ACQ),
            Attrs::ATO.union(Attrs::SC).union(Attrs::ACQ),
        ],
        (Arch::Cpp, EventKind::Write) => vec![
            Attrs::NONE,
            Attrs::ATO,
            Attrs::ATO.union(Attrs::REL),
            Attrs::ATO.union(Attrs::SC).union(Attrs::REL),
        ],
        (Arch::Cpp, EventKind::Fence(_)) => vec![
            Attrs::ACQ,
            Attrs::REL,
            Attrs::ACQ.union(Attrs::REL),
            Attrs::SC.union(Attrs::ACQ).union(Attrs::REL),
        ],
        _ => vec![Attrs::NONE],
    }
}

/// Disjoint contiguous interval covers of `0..k` (transaction layouts on
/// one thread): each position is either outside any transaction or in
/// exactly one interval.
fn interval_sets(k: usize) -> Vec<Vec<(usize, usize)>> {
    fn go(i: usize, k: usize) -> Vec<Vec<(usize, usize)>> {
        if i >= k {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        // Position i not in a transaction.
        for rest in go(i + 1, k) {
            out.push(rest);
        }
        // A transaction [i..=j].
        for j in i..k {
            for rest in go(j + 1, k) {
                let mut v = vec![(i, j)];
                v.extend(rest);
                out.push(v);
            }
        }
        out
    }
    go(0, k)
}

/// The thread shapes (non-increasing partitions) the enumeration of
/// `cfg` is sharded over.
pub fn config_shapes(cfg: &EnumConfig) -> Vec<Vec<usize>> {
    shapes(cfg.events, cfg.max_threads, cfg.events)
}

// ---- The resumable frontier --------------------------------------------

/// One unit of stealable work: all candidates of one shape with one
/// (canonical) kind assignment. The location × attribute × relation ×
/// transaction subtree below it is enumerated by whichever worker
/// claims the job.
#[derive(Debug, Clone)]
pub struct Subtree {
    /// Position in the sequential enumeration order (strictly
    /// increasing across the frontier).
    pub seq: u64,
    /// Index into [`config_shapes`].
    pub shape_idx: usize,
    /// Closed-form size proxy for the subtree (rf choices × co
    /// orderings of its kind assignment) — the weight unit of
    /// [`WalkPlan`] progress accounting.
    pub weight: u64,
    /// Kind index per event slot (into the config's kind vocabulary).
    pub(crate) kind_choice: Vec<u8>,
}

/// Total work of one enumeration walk, in [`Subtree::weight`] units.
/// Computed by a dry pass over the frontier (a few thousand odometer
/// steps — negligible against the walk itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkPlan {
    /// Frontier subtrees the walk will claim.
    pub subtrees: u64,
    /// Summed subtree weights (the denominator of "fraction done").
    pub weight: u64,
}

/// Plan the walk over `cfg`: subtree count and total weight.
pub fn walk_plan(cfg: &EnumConfig) -> WalkPlan {
    let mut plan = WalkPlan {
        subtrees: 0,
        weight: 0,
    };
    for sub in Frontier::new(cfg) {
        plan.subtrees += 1;
        plan.weight = plan.weight.saturating_add(sub.weight);
    }
    plan
}

/// The per-subtree weight: with `w` writes and `r` reads in the kind
/// assignment, each read has up to `w + 1` rf sources and the writes
/// admit up to `w!` coherence orders. Labels, dependencies and
/// transaction layouts multiply every subtree of a shape by the same
/// factors, so the proxy ranks subtrees correctly where it matters —
/// a fence-heavy assignment weighs far less than a write-heavy one.
fn subtree_weight(kinds: &[EventKind], kind_choice: &[u8]) -> u64 {
    let mut reads = 0u32;
    let mut writes = 0u64;
    for &i in kind_choice {
        match kinds[i as usize] {
            EventKind::Read => reads += 1,
            EventKind::Write => writes += 1,
            _ => {}
        }
    }
    let mut w = (writes + 1).saturating_pow(reads);
    for k in 2..=writes {
        w = w.saturating_mul(k);
    }
    w.max(1)
}

/// The lazy stream of [`Subtree`] jobs, in sequential enumeration
/// order: shapes outermost, the kind odometer within a shape. Only
/// stage-1-canonical kind assignments (sorted kind rows) are yielded —
/// symmetry-duplicate subtrees are pruned before they ever become work.
///
/// The iterator *is* the resumable enumeration state: the parallel
/// drivers pull from it under a lock, so splitting work is `next()`.
pub struct Frontier {
    shapes: Vec<Vec<usize>>,
    kinds: Vec<EventKind>,
    tags: Vec<u8>,
    /// (shape index, next kind choice); `None` when exhausted.
    state: Option<(usize, Vec<u8>)>,
    seq: u64,
}

impl Frontier {
    /// The frontier over the whole configuration.
    pub fn new(cfg: &EnumConfig) -> Frontier {
        Frontier::over_shapes(cfg, config_shapes(cfg))
    }

    /// A frontier restricted to the given shapes (shape-shard callers).
    fn over_shapes(cfg: &EnumConfig, shapes: Vec<Vec<usize>>) -> Frontier {
        let kinds = kinds_for(cfg);
        let tags = kinds.iter().map(|&k| kind_tag(k)).collect();
        let state = if shapes.is_empty() {
            None
        } else {
            Some((0, vec![0u8; cfg.events]))
        };
        Frontier {
            shapes,
            kinds,
            tags,
            state,
            seq: 0,
        }
    }

    /// The shape of a subtree this frontier yielded.
    pub fn shape(&self, sub: &Subtree) -> &[usize] {
        &self.shapes[sub.shape_idx]
    }

    fn advance(&mut self) {
        let Some((shape_idx, choice)) = self.state.as_mut() else {
            return;
        };
        let n = choice.len();
        let mut i = 0;
        loop {
            if i == n {
                // Odometer wrapped: next shape.
                *shape_idx += 1;
                if *shape_idx >= self.shapes.len() {
                    self.state = None;
                }
                return;
            }
            choice[i] += 1;
            if (choice[i] as usize) < self.kinds.len() {
                return;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

impl Iterator for Frontier {
    type Item = Subtree;

    fn next(&mut self) -> Option<Subtree> {
        loop {
            let (shape_idx, choice) = self.state.as_ref()?;
            let shape = &self.shapes[*shape_idx];
            let tag_row: Vec<u8> = choice.iter().map(|&i| self.tags[i as usize]).collect();
            if kind_rows_sorted(shape, &tag_row) {
                let sub = Subtree {
                    seq: self.seq,
                    shape_idx: *shape_idx,
                    weight: subtree_weight(&self.kinds, choice),
                    kind_choice: choice.clone(),
                };
                self.seq += 1;
                self.advance();
                return Some(sub);
            }
            self.advance();
        }
    }
}

/// Enumerate one subtree, streaming exactly one representative per
/// symmetry class through `visit`.
pub fn enumerate_subtree(
    cfg: &EnumConfig,
    shape: &[usize],
    sub: &Subtree,
    visit: &mut dyn FnMut(&Execution),
) {
    let kinds = kinds_for(cfg);
    let evkinds: Vec<EventKind> = sub.kind_choice.iter().map(|&i| kinds[i as usize]).collect();
    let tids = shape_tids(shape);
    enumerate_labels(cfg, &tids, &evkinds, &mut |events| {
        let labels: Vec<Label> = events
            .iter()
            .map(|ev| Label {
                tag: kind_tag(ev.kind),
                attrs: ev.attrs.bits(),
                loc: ev.loc,
            })
            .collect();
        let Some(auts) = label_canonical(shape, &labels) else {
            return; // Symmetry-duplicate label prefix: prune the
                    // whole relation/transaction subtree.
        };
        assign_structure(cfg, events, &mut |x| struct_canonical(x, &auts), visit);
    });
}

pub(crate) fn shape_tids(shape: &[usize]) -> Vec<u8> {
    let mut tids = Vec::with_capacity(shape.iter().sum());
    for (t, &sz) in shape.iter().enumerate() {
        tids.extend(std::iter::repeat_n(t as u8, sz));
    }
    tids
}

/// Enumerate every candidate execution with the given thread shape,
/// invoking `visit` on each (deduplicated up to symmetry *within* the
/// shape — which is total, since canonical keys never collide across
/// shapes).
pub fn enumerate_shape(cfg: &EnumConfig, shape: &[usize], visit: &mut dyn FnMut(&Execution)) {
    for sub in Frontier::over_shapes(cfg, vec![shape.to_vec()]) {
        enumerate_subtree(cfg, shape, &sub, visit);
    }
}

/// Enumerate all candidate executions of exactly `cfg.events` events,
/// invoking `visit` on each (deduplicated up to symmetry). Streaming
/// and allocation-bounded: no candidate buffer, no dedup set.
pub fn enumerate(cfg: &EnumConfig, visit: &mut dyn FnMut(&Execution)) {
    let frontier = Frontier::new(cfg);
    let shapes = frontier.shapes.clone();
    for sub in frontier {
        enumerate_subtree(cfg, &shapes[sub.shape_idx], &sub, visit);
    }
}

// ---- Parallel drivers ---------------------------------------------------

/// Position of a candidate in the sequential enumeration order:
/// (subtree sequence number, emit index within the subtree). Sorting
/// parallel results by this key reproduces [`enumerate`]'s order
/// exactly.
pub type CandSeq = (u64, u32);

/// Run `visit` over every candidate on `workers` work-stealing threads.
///
/// Each worker owns a private state built by `init`; the states come
/// back in worker order together with the pool counters, so callers
/// merge (and, via [`CandSeq`], order) results deterministically.
pub fn visit_par<S, FI, FV>(
    cfg: &EnumConfig,
    workers: usize,
    init: FI,
    visit: FV,
) -> (Vec<S>, StealStats)
where
    S: Send,
    FI: Fn(usize) -> S + Sync,
    FV: Fn(CandSeq, &Execution, &mut S) + Sync,
{
    visit_par_progress(cfg, workers, None, init, visit)
}

/// [`visit_par`] with optional live progress: the walk plan is
/// declared up front and every completed subtree flushes its weight
/// and emit count into `progress`. With `None` the walk is identical
/// to [`visit_par`].
pub fn visit_par_progress<S, FI, FV>(
    cfg: &EnumConfig,
    workers: usize,
    progress: Option<&txmm_obs::WalkProgress>,
    init: FI,
    visit: FV,
) -> (Vec<S>, StealStats)
where
    S: Send,
    FI: Fn(usize) -> S + Sync,
    FV: Fn(CandSeq, &Execution, &mut S) + Sync,
{
    if let Some(p) = progress {
        p.add_total(walk_plan(cfg).weight);
    }
    let shapes = config_shapes(cfg);
    let frontier = Frontier::over_shapes(cfg, shapes.clone());
    crate::steal::run_with_progress(
        frontier,
        workers,
        progress,
        init,
        |sub: Subtree, state: &mut S| {
            let mut emit = 0u32;
            enumerate_subtree(cfg, &shapes[sub.shape_idx], &sub, &mut |x| {
                visit((sub.seq, emit), x, state);
                emit += 1;
            });
            if let Some(p) = progress {
                p.subtree_done(sub.weight, emit as u64, 0, 0);
            }
        },
    )
}

/// Streaming parallel enumeration: `f` runs on the pool's workers, one
/// call per candidate, in no particular order.
pub fn for_each_par<F: Fn(&Execution) + Sync>(cfg: &EnumConfig, f: F) -> StealStats {
    let (_, stats) = visit_par(cfg, worker_count(), |_| (), |_, x, _| f(x));
    stats
}

/// A bounded stream of enumerated candidates: workers enumerate on a
/// background pool and block once `capacity` candidates are in flight,
/// so a slow consumer never buffers the space (the memory bound the
/// seed `enumerate_par -> Vec<Execution>` materialisation lacked).
///
/// Dropping the iterator aborts the producers: subtrees already being
/// enumerated finish generating (emitting nothing), every remaining
/// frontier subtree is skipped with one atomic load, and the pool
/// drains promptly instead of walking the rest of the space.
pub fn stream_par(cfg: EnumConfig, capacity: usize) -> impl Iterator<Item = Execution> {
    use std::sync::atomic::{AtomicBool, Ordering};
    let (tx, rx) = std::sync::mpsc::sync_channel::<Execution>(capacity.max(1));
    std::thread::spawn(move || {
        let gone = AtomicBool::new(false);
        let shapes = config_shapes(&cfg);
        let frontier = Frontier::over_shapes(&cfg, shapes.clone());
        run_with(
            frontier,
            worker_count(),
            |_| tx.clone(),
            |sub: Subtree, tx| {
                if gone.load(Ordering::Relaxed) {
                    return; // Receiver hung up: skip the whole subtree.
                }
                enumerate_subtree(&cfg, &shapes[sub.shape_idx], &sub, &mut |x| {
                    if gone.load(Ordering::Relaxed) {
                        return;
                    }
                    if tx.send(x.clone()).is_err() {
                        gone.store(true, Ordering::Relaxed);
                    }
                });
            },
        );
    });
    rx.into_iter()
}

/// Count the executions the enumerator produces (test/diagnostic aid).
pub fn count(cfg: &EnumConfig) -> usize {
    let mut n = 0usize;
    enumerate(cfg, &mut |_| n += 1);
    n
}

/// Parallel [`count`] on the work-stealing pool.
pub fn count_par(cfg: &EnumConfig) -> usize {
    let (counts, _) = visit_par(cfg, worker_count(), |_| 0usize, |_, _, n| *n += 1);
    counts.into_iter().sum()
}

// ---- Label enumeration --------------------------------------------------

/// Enumerate locations × attributes for a fixed kind assignment,
/// invoking `sink` with each completed per-event label vector.
pub(crate) fn enumerate_labels(
    cfg: &EnumConfig,
    tids: &[u8],
    kinds: &[EventKind],
    sink: &mut dyn FnMut(&[Event]),
) {
    let n = tids.len();
    let access: Vec<usize> = (0..n).filter(|&e| kinds[e].is_access()).collect();
    // Canonical location assignment: each access gets a loc index no
    // larger than 1 + max of earlier assignments (first-occurrence
    // numbering), bounded by max_locs.
    fn go(
        idx: usize,
        access: &[usize],
        locs: &mut Vec<u8>,
        max_used: i32,
        cfg: &EnumConfig,
        k: &mut dyn FnMut(&[u8]),
    ) {
        if idx == access.len() {
            k(locs);
            return;
        }
        let limit = ((max_used + 1) as usize).min(cfg.max_locs - 1);
        for l in 0..=limit {
            locs.push(l as u8);
            go(idx + 1, access, locs, max_used.max(l as i32), cfg, k);
            locs.pop();
        }
    }
    let mut locs_buf = Vec::new();
    go(0, &access, &mut locs_buf, -1, cfg, &mut |locs| {
        let mut ev_locs = vec![None; n];
        for (i, &e) in access.iter().enumerate() {
            ev_locs[e] = Some(locs[i]);
        }
        assign_attrs(cfg, tids, kinds, &ev_locs, sink);
    });
}

fn assign_attrs(
    cfg: &EnumConfig,
    tids: &[u8],
    kinds: &[EventKind],
    locs: &[Option<u8>],
    sink: &mut dyn FnMut(&[Event]),
) {
    let n = tids.len();
    let options: Vec<Vec<Attrs>> = (0..n).map(|e| attr_options(cfg, kinds[e])).collect();
    let mut choice = vec![0usize; n];
    loop {
        let events: Vec<Event> = (0..n)
            .map(|e| Event {
                kind: kinds[e],
                tid: tids[e],
                loc: locs[e],
                attrs: options[e][choice[e]],
            })
            .collect();
        sink(&events);
        let mut i = 0;
        loop {
            if i == n {
                return;
            }
            choice[i] += 1;
            if choice[i] < options[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

// ---- Structure enumeration ---------------------------------------------

/// The structure choice space over one fully labelled event vector:
/// everything [`assign_structure`] and the pruned walker
/// ([`crate::consistent`]) enumerate once kinds, locations and
/// attributes are fixed.
pub(crate) struct StructureSpace {
    /// Program order: same thread, earlier slot.
    pub(crate) po: Rel,
    /// Subsets of the candidate (po-adjacent same-loc read→write) rmw
    /// pairs.
    pub(crate) rmw_sets: Vec<Vec<(usize, usize)>>,
    /// Dependency slots: (read, po-later event) pairs.
    pub(crate) dep_slots: Vec<(usize, usize)>,
    /// Read events, in slot order.
    pub(crate) reads: Vec<usize>,
    /// Per read: the initial write (`None`) or any same-loc write.
    pub(crate) rf_options: Vec<Vec<Option<usize>>>,
    /// Write events per distinct location, in slot order.
    pub(crate) loc_writes: Vec<Vec<usize>>,
    /// Event slots per thread.
    pub(crate) thread_slots: Vec<Vec<usize>>,
    /// Per thread: the candidate transaction interval layouts.
    pub(crate) txn_options: Vec<Vec<Vec<(usize, usize)>>>,
}

impl StructureSpace {
    pub(crate) fn new(cfg: &EnumConfig, events: &[Event]) -> StructureSpace {
        let n = events.len();
        let mut po = Rel::empty(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if events[a].tid == events[b].tid {
                    po.add(a, b);
                }
            }
        }

        let mut rmw_candidates: Vec<(usize, usize)> = Vec::new();
        if cfg.rmws {
            for a in 0..n {
                if events[a].kind == EventKind::Read
                    && a + 1 < n
                    && events[a + 1].kind == EventKind::Write
                    && events[a].tid == events[a + 1].tid
                    && events[a].loc == events[a + 1].loc
                {
                    // C++ rmw events must be atomic.
                    if cfg.arch == Arch::Cpp
                        && !(events[a].attrs.contains(Attrs::ATO)
                            && events[a + 1].attrs.contains(Attrs::ATO))
                    {
                        continue;
                    }
                    rmw_candidates.push((a, a + 1));
                }
            }
        }
        // Subsets of non-overlapping rmw pairs ((a,a+1) and (a+1,a+2)
        // cannot both be candidates since a+1 is a write; safe).
        let rmw_sets: Vec<Vec<(usize, usize)>> = subsets(&rmw_candidates);

        let mut dep_slots: Vec<(usize, usize)> = Vec::new();
        if cfg.deps {
            for a in 0..n {
                if events[a].kind == EventKind::Read {
                    for b in (a + 1)..n {
                        if events[a].tid == events[b].tid {
                            dep_slots.push((a, b));
                        }
                    }
                }
            }
        }

        let reads: Vec<usize> = (0..n)
            .filter(|&e| events[e].kind == EventKind::Read)
            .collect();
        let rf_options: Vec<Vec<Option<usize>>> = reads
            .iter()
            .map(|&r| {
                let mut opts = vec![None];
                for w in 0..n {
                    if events[w].kind == EventKind::Write && events[w].loc == events[r].loc {
                        opts.push(Some(w));
                    }
                }
                opts
            })
            .collect();

        let locs: Vec<u8> = {
            let mut ls: Vec<u8> = events.iter().filter_map(|e| e.loc).collect();
            ls.sort_unstable();
            ls.dedup();
            ls
        };
        let loc_writes: Vec<Vec<usize>> = locs
            .iter()
            .map(|&l| {
                (0..n)
                    .filter(|&e| events[e].kind == EventKind::Write && events[e].loc == Some(l))
                    .collect()
            })
            .collect();

        let nthreads = events.iter().map(|e| e.tid as usize + 1).max().unwrap_or(0);
        let thread_slots: Vec<Vec<usize>> = (0..nthreads)
            .map(|t| (0..n).filter(|&e| events[e].tid as usize == t).collect())
            .collect();
        let txn_options: Vec<Vec<Vec<(usize, usize)>>> = if cfg.txns {
            thread_slots
                .iter()
                .map(|slots| interval_sets(slots.len()))
                .collect()
        } else {
            thread_slots.iter().map(|_| vec![vec![]]).collect()
        };

        StructureSpace {
            po,
            rmw_sets,
            dep_slots,
            reads,
            rf_options,
            loc_writes,
            thread_slots,
            txn_options,
        }
    }

    /// Leaf candidates per complete rf/co assignment: transaction
    /// layout combinations times the atomic flag (the all-empty layout
    /// is enumerated once, never with `atomic` set).
    pub(crate) fn txn_leaves(&self, cfg: &EnumConfig) -> u64 {
        let t: u64 = self.txn_options.iter().map(|o| o.len() as u64).product();
        if cfg.atomic_txns {
            t.saturating_mul(2).saturating_sub(1)
        } else {
            t
        }
    }
}

/// Enumerate rmw pairs, dependencies, rf, co and transactions over
/// fully labelled events; `keep` decides whether a finished candidate
/// is the class representative (the streaming engine's stateless
/// automorphism test, or the reference path's canon-key dedup set).
fn assign_structure(
    cfg: &EnumConfig,
    events: &[Event],
    keep: &mut dyn FnMut(&Execution) -> bool,
    visit: &mut dyn FnMut(&Execution),
) {
    let n = events.len();
    let space = StructureSpace::new(cfg, events);
    let StructureSpace {
        po,
        rmw_sets,
        dep_slots,
        reads,
        rf_options,
        loc_writes,
        thread_slots,
        txn_options,
    } = &space;
    let po = *po;
    // co: permutations of writes per location.
    let co_options: Vec<Vec<Vec<usize>>> =
        loc_writes.iter().map(|ws| permutations_of(ws)).collect();

    // Iterate the cross product.
    for rmws in rmw_sets {
        let mut rmw = Rel::empty(n);
        for &(a, b) in rmws {
            rmw.add(a, b);
        }
        for_deps(cfg, events, dep_slots, &mut |addr, ctrl, data| {
            for_rf(reads, rf_options, &mut |rf_choice| {
                for_co(&co_options, &mut |co_perms| {
                    let mut rf = Rel::empty(n);
                    for (i, &r) in reads.iter().enumerate() {
                        if let Some(w) = rf_choice[i] {
                            rf.add(w, r);
                        }
                    }
                    let mut co = Rel::empty(n);
                    for perm in co_perms {
                        for i in 0..perm.len() {
                            for j in (i + 1)..perm.len() {
                                co.add(perm[i], perm[j]);
                            }
                        }
                    }
                    for_txns(thread_slots, txn_options, &mut |txn_ivs| {
                        let atomic_opts: &[bool] = if cfg.atomic_txns {
                            &[false, true]
                        } else {
                            &[false]
                        };
                        for &atomic in atomic_opts {
                            let txns: Vec<TxnClass> = txn_ivs
                                .iter()
                                .enumerate()
                                .flat_map(|(t, ivs)| {
                                    let slots = &thread_slots[t];
                                    ivs.iter().map(move |&(i, j)| TxnClass {
                                        events: slots[i..=j].to_vec(),
                                        atomic,
                                    })
                                })
                                .collect();
                            if txns.is_empty() && atomic {
                                continue;
                            }
                            let x = Execution::from_parts(
                                events.to_vec(),
                                po,
                                *addr,
                                *ctrl,
                                *data,
                                rmw,
                                rf,
                                co,
                                txns,
                            );
                            debug_assert!(x.check_wf().is_ok(), "{:?}", x.check_wf());
                            if keep(&x) {
                                visit(&x);
                            }
                        }
                    });
                });
            });
        });
    }
}

// ---- The seed reference path -------------------------------------------

/// The seed generate-then-dedup enumeration: every kind / label /
/// structure combination is built and deduplicated after the fact
/// through a per-shape [`canon_key`] set. Kept as the differential
/// reference for the streaming engine (same canonical classes, in
/// whatever representative the seed path met first) and as the bench
/// baseline the incremental canonicalisation is measured against.
pub fn enumerate_reference(cfg: &EnumConfig, visit: &mut dyn FnMut(&Execution)) {
    let kinds = kinds_for(cfg);
    for shape in config_shapes(cfg) {
        let tids = shape_tids(&shape);
        let n = cfg.events;
        let mut seen: HashSet<Vec<u8>> = HashSet::new();
        let mut kind_choice = vec![0usize; n];
        loop {
            let evkinds: Vec<EventKind> = kind_choice.iter().map(|&i| kinds[i]).collect();
            enumerate_labels(cfg, &tids, &evkinds, &mut |events| {
                assign_structure(cfg, events, &mut |x| seen.insert(canon_key(x)), visit);
            });
            // Odometer.
            let mut i = 0;
            loop {
                if i == n {
                    break;
                }
                kind_choice[i] += 1;
                if kind_choice[i] < kinds.len() {
                    break;
                }
                kind_choice[i] = 0;
                i += 1;
            }
            if i == n {
                break;
            }
        }
    }
}

/// Count over [`enumerate_reference`].
pub fn count_reference(cfg: &EnumConfig) -> usize {
    let mut n = 0usize;
    enumerate_reference(cfg, &mut |_| n += 1);
    n
}

// ---- Structure helpers --------------------------------------------------

fn subsets<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    let mut out = vec![vec![]];
    for item in items {
        let mut more = Vec::new();
        for s in &out {
            let mut s2 = s.clone();
            s2.push(item.clone());
            more.push(s2);
        }
        out.extend(more);
    }
    out
}

fn permutations_of(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &first) in items.iter().enumerate() {
        let mut rest: Vec<usize> = items.to_vec();
        rest.remove(i);
        for mut p in permutations_of(&rest) {
            p.insert(0, first);
            out.push(p);
        }
    }
    out
}

pub(crate) fn for_deps(
    _cfg: &EnumConfig,
    events: &[Event],
    slots: &[(usize, usize)],
    k: &mut dyn FnMut(&Rel, &Rel, &Rel),
) {
    let n = events.len();
    if slots.is_empty() {
        k(&Rel::empty(n), &Rel::empty(n), &Rel::empty(n));
        return;
    }
    // Each slot: 0 none, 1 addr (target access), 2 data (target write),
    // 3 ctrl.
    let opts: Vec<Vec<u8>> = slots
        .iter()
        .map(|&(_, b)| {
            let mut o = vec![0u8, 3];
            if events[b].kind.is_access() {
                o.push(1);
            }
            if events[b].kind == EventKind::Write {
                o.push(2);
            }
            o.sort_unstable();
            o
        })
        .collect();
    let mut choice = vec![0usize; slots.len()];
    loop {
        let mut addr = Rel::empty(n);
        let mut ctrl = Rel::empty(n);
        let mut data = Rel::empty(n);
        for (i, &(a, b)) in slots.iter().enumerate() {
            match opts[i][choice[i]] {
                1 => addr.add(a, b),
                2 => data.add(a, b),
                3 => ctrl.add(a, b),
                _ => {}
            }
        }
        k(&addr, &ctrl, &data);
        let mut i = 0;
        loop {
            if i == slots.len() {
                return;
            }
            choice[i] += 1;
            if choice[i] < opts[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

fn for_rf(reads: &[usize], options: &[Vec<Option<usize>>], k: &mut dyn FnMut(&[Option<usize>])) {
    if reads.is_empty() {
        k(&[]);
        return;
    }
    let mut choice = vec![0usize; reads.len()];
    loop {
        let picked: Vec<Option<usize>> = (0..reads.len()).map(|i| options[i][choice[i]]).collect();
        k(&picked);
        let mut i = 0;
        loop {
            if i == reads.len() {
                return;
            }
            choice[i] += 1;
            if choice[i] < options[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

fn for_co(options: &[Vec<Vec<usize>>], k: &mut dyn FnMut(&[Vec<usize>])) {
    fn go(
        i: usize,
        options: &[Vec<Vec<usize>>],
        acc: &mut Vec<Vec<usize>>,
        k: &mut dyn FnMut(&[Vec<usize>]),
    ) {
        if i == options.len() {
            k(acc);
            return;
        }
        for perm in &options[i] {
            acc.push(perm.clone());
            go(i + 1, options, acc, k);
            acc.pop();
        }
    }
    let mut acc = Vec::new();
    go(0, options, &mut acc, k);
}

/// Per-thread transaction layouts: for each thread, the chosen list of
/// member intervals.
type TxnLayouts = Vec<Vec<(usize, usize)>>;

pub(crate) type TxnVisitor<'k> = &'k mut dyn FnMut(&[Vec<(usize, usize)>]);

pub(crate) fn for_txns(threads: &[Vec<usize>], options: &[TxnLayouts], k: TxnVisitor<'_>) {
    fn go(i: usize, options: &[TxnLayouts], acc: &mut TxnLayouts, k: TxnVisitor<'_>) {
        if i == options.len() {
            k(acc);
            return;
        }
        for ivs in &options[i] {
            acc.push(ivs.clone());
            go(i + 1, options, acc, k);
            acc.pop();
        }
    }
    let _ = threads;
    let mut acc = Vec::new();
    go(0, options, &mut acc, k);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_non_increasing() {
        let ss = shapes(4, 4, 4);
        for s in &ss {
            for w in s.windows(2) {
                assert!(w[0] >= w[1]);
            }
            assert_eq!(s.iter().sum::<usize>(), 4);
        }
        // Partitions of 4: 4, 3+1, 2+2, 2+1+1, 1+1+1+1.
        assert_eq!(ss.len(), 5);
    }

    #[test]
    fn interval_sets_count() {
        // k=1: {}, {[0,0]} = 2. k=2: {}, {[0,0]}, {[1,1]}, {[0,0],[1,1]},
        // {[0,1]} = 5.
        assert_eq!(interval_sets(1).len(), 2);
        assert_eq!(interval_sets(2).len(), 5);
    }

    #[test]
    fn tiny_enumeration_wellformed() {
        let cfg = EnumConfig {
            arch: Arch::X86,
            events: 2,
            max_threads: 2,
            max_locs: 2,
            fences: true,
            deps: false,
            rmws: true,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        let mut total = 0;
        enumerate(&cfg, &mut |x| {
            assert!(x.check_wf().is_ok());
            assert!(txmm_models::Arch::X86.validate(x).is_ok());
            total += 1;
        });
        assert!(total > 10, "got {total}");
    }

    #[test]
    fn enumeration_deterministic() {
        let cfg = EnumConfig::hw(Arch::X86, 3);
        assert_eq!(count(&cfg), count(&cfg));
    }

    #[test]
    fn streaming_emits_no_duplicates() {
        // The stateless incremental canonicalisation must emit exactly
        // one representative per canonical class.
        for cfg in [EnumConfig::hw(Arch::X86, 3), EnumConfig::hw(Arch::Sc, 3)] {
            let mut keys = HashSet::new();
            enumerate(&cfg, &mut |x| {
                assert!(keys.insert(canon_key(x)), "duplicate class emitted");
            });
        }
    }

    #[test]
    fn streaming_matches_reference_classes() {
        // The streaming engine and the seed generate-then-dedup path
        // emit the same canonical-key set (representatives may differ).
        let cfg = EnumConfig::hw(Arch::X86, 3);
        let mut stream_keys = HashSet::new();
        enumerate(&cfg, &mut |x| {
            stream_keys.insert(canon_key(x));
        });
        let mut ref_keys = HashSet::new();
        enumerate_reference(&cfg, &mut |x| {
            ref_keys.insert(canon_key(x));
        });
        assert_eq!(stream_keys.len(), ref_keys.len());
        assert_eq!(stream_keys, ref_keys);
        assert_eq!(count(&cfg), count_reference(&cfg));
    }

    #[test]
    fn parallel_enumeration_matches_sequential() {
        let cfg = EnumConfig::hw(Arch::X86, 3);
        let mut seq = Vec::new();
        enumerate(&cfg, &mut |x| seq.push(canon_key(x)));
        // Work-stealing drivers: same candidates, and sorting by CandSeq
        // reproduces the sequential order exactly.
        let (mut states, _) = visit_par(
            &cfg,
            3,
            |_| Vec::new(),
            |seq, x, s: &mut Vec<(CandSeq, Vec<u8>)>| s.push((seq, canon_key(x))),
        );
        let mut par: Vec<(CandSeq, Vec<u8>)> = states.drain(..).flatten().collect();
        par.sort();
        assert_eq!(par.len(), seq.len());
        for ((_, a), b) in par.iter().zip(&seq) {
            assert_eq!(a, b);
        }
        assert_eq!(count_par(&cfg), count(&cfg));
    }

    #[test]
    fn stream_par_is_bounded_and_complete() {
        let cfg = EnumConfig::hw(Arch::X86, 3);
        let expect = count(&cfg);
        // A tiny channel forces producer back-pressure; the stream still
        // delivers the whole space.
        let got = stream_par(cfg.clone(), 4).count();
        assert_eq!(got, expect);
        // Dropping the stream early stops the producers (no hang, no
        // panic) — take a prefix and let the iterator fall.
        let some: Vec<Execution> = stream_par(cfg, 2).take(5).collect();
        assert_eq!(some.len(), 5);
    }

    #[test]
    fn frontier_is_resumable_and_ordered() {
        let cfg = EnumConfig::hw(Arch::X86, 3);
        let mut frontier = Frontier::new(&cfg);
        let first: Vec<Subtree> = frontier.by_ref().take(3).collect();
        // Subtree sequence numbers are the resume position: pulling the
        // rest later continues exactly where the prefix stopped.
        let rest: Vec<Subtree> = frontier.collect();
        let seqs: Vec<u64> = first.iter().chain(&rest).map(|s| s.seq).collect();
        assert_eq!(seqs, (0..seqs.len() as u64).collect::<Vec<_>>());
        // Walking the subtrees reproduces the sequential enumeration.
        let shapes = config_shapes(&cfg);
        let mut n = 0usize;
        for sub in first.iter().chain(&rest) {
            enumerate_subtree(&cfg, &shapes[sub.shape_idx], sub, &mut |_| n += 1);
        }
        assert_eq!(n, count(&cfg));
    }

    #[test]
    fn enumeration_contains_sb_shape() {
        // The 4-event store-buffering execution (both reads from init)
        // must appear in the x86 enumeration.
        let cfg = EnumConfig {
            arch: Arch::X86,
            events: 4,
            max_threads: 2,
            max_locs: 2,
            fences: false,
            deps: false,
            rmws: false,
            txns: false,
            attrs: false,
            atomic_txns: false,
        };
        let sb_key = canon_key(&txmm_models::catalog::sb(None, false, false));
        let mut found = false;
        enumerate(&cfg, &mut |x| {
            if canon_key(x) == sb_key {
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn armv8_attrs_enumerated() {
        let cfg = EnumConfig {
            arch: Arch::Armv8,
            events: 2,
            max_threads: 2,
            max_locs: 1,
            fences: false,
            deps: false,
            rmws: false,
            txns: false,
            attrs: true,
            atomic_txns: false,
        };
        let mut with_acq = 0;
        enumerate(&cfg, &mut |x| {
            if !x.acq().is_empty() {
                with_acq += 1;
            }
        });
        assert!(with_acq > 0);
    }
}
