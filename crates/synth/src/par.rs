//! A tiny scoped-parallelism helper built on [`std::thread::scope`].
//!
//! The build environment cannot fetch rayon, and the enumeration
//! pipeline only needs one shape of parallelism: map a function over a
//! list of independent work items on every core, preserving item order
//! in the output. Work is handed out via an atomic cursor so uneven
//! items (thread-shape shards differ wildly in size) balance across
//! workers.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads a parallel map uses.
pub fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` in parallel, returning results in item order.
///
/// `f` runs on up to [`worker_count`] threads; items are claimed from a
/// shared atomic cursor, so long items do not serialise behind short
/// ones. Falls back to a plain sequential map for a single worker or a
/// single item.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    // Hand items out by index; collect Option slots so order is kept.
    let work: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot")
                    .take()
                    .expect("item unclaimed");
                let r = f(item);
                *slots[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result mutex")
                .expect("worker filled slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect::<Vec<_>>(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), |i| i), Vec::<u32>::new());
        assert_eq!(par_map(vec![7], |i| i + 1), vec![8]);
    }

    #[test]
    fn uneven_items_balance() {
        // Items with wildly different costs still all complete.
        let out = par_map((0..32usize).collect::<Vec<_>>(), |i| {
            let mut acc = 0u64;
            for k in 0..(i * 10_000) {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 32);
        for (i, (j, _)) in out.iter().enumerate() {
            assert_eq!(i, *j);
        }
    }
}
