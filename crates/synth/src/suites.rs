//! Conformance-suite synthesis (§4.2): the minimally-forbidden
//! ("Forbid") and maximally-allowed ("Allow") test sets of Table 1.
//!
//! Synthesis consumes the streaming enumerator on the work-stealing
//! pool: candidates are checked against the models on whichever worker
//! enumerates them — no buffering wave, no per-candidate clone of the
//! space, and one shared [`txmm_core::ExecutionAnalysis`] per
//! candidate. Found tests carry their position in the sequential
//! enumeration order, so the Forbid suite comes out in the exact order
//! the sequential pipeline would produce after a final sort of the
//! (tiny) result set.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use txmm_core::incr::PruneStats;
use txmm_core::Execution;
use txmm_models::Model;

use crate::canon::canon_key;
use crate::consistent::{oracle_for, visit_pruned_par};
use crate::enumerate::{enumerate, CandSeq, EnumConfig};
use crate::par::worker_count;
use crate::weaken::weakenings;

/// One synthesised test with its discovery time (for Fig. 7).
pub struct FoundTest {
    /// The execution.
    pub exec: Execution,
    /// When it was found, relative to the start of synthesis.
    pub at: Duration,
}

/// The result of synthesising one `|E|` row of Table 1.
pub struct SuiteResult {
    /// Minimally-forbidden tests.
    pub forbid: Vec<FoundTest>,
    /// Maximally-allowed tests (one ⊏-step weakenings of Forbid tests).
    pub allow: Vec<Execution>,
    /// False when the time budget ran out before the space was covered
    /// (the paper's "non-exhaustive" marker).
    pub complete: bool,
    /// How many candidate executions were examined.
    pub candidates: usize,
    /// Total synthesis time.
    pub elapsed: Duration,
}

/// Synthesise the Forbid and Allow sets for `tm` against its non-TM
/// baseline, at exactly `cfg.events` events, checking candidates on the
/// work-stealing pool.
///
/// A candidate `X` lands in Forbid when (a) it has at least one
/// transaction, (b) the transactional model forbids it, (c) the baseline
/// allows it with transactions erased, and (d) it is ⊏-minimal: every
/// one-step weakening is consistent under the transactional model.
pub fn synthesise(
    cfg: &EnumConfig,
    tm: &dyn Model,
    base: &dyn Model,
    budget: Option<Duration>,
) -> SuiteResult {
    synthesise_streamed(cfg, tm, base, budget, worker_count())
}

/// The streamed work-stealing implementation behind [`synthesise`],
/// with the worker count explicit so tests can exercise the
/// split-and-merge logic deterministically regardless of core count.
pub fn synthesise_streamed(
    cfg: &EnumConfig,
    tm: &dyn Model,
    base: &dyn Model,
    budget: Option<Duration>,
    workers: usize,
) -> SuiteResult {
    synthesise_streamed_progress(cfg, tm, base, budget, workers, None)
}

/// [`synthesise_streamed`] with optional live progress: candidates
/// examined and Forbid tests found (as "classes kept") flush into
/// `progress` as the walk runs. With `None` the sweep is identical to
/// [`synthesise_streamed`].
pub fn synthesise_streamed_progress(
    cfg: &EnumConfig,
    tm: &dyn Model,
    base: &dyn Model,
    budget: Option<Duration>,
    workers: usize,
    progress: Option<&txmm_obs::WalkProgress>,
) -> SuiteResult {
    let start = Instant::now();
    let candidates = AtomicUsize::new(0);
    let overrun = AtomicBool::new(false);

    let (states, _) = crate::enumerate::visit_par_progress(
        cfg,
        workers.max(1),
        progress,
        |_| Vec::new(),
        |seq, x, found: &mut Vec<(CandSeq, FoundTest)>| {
            candidates.fetch_add(1, Ordering::Relaxed);
            if let Some(b) = budget {
                if overrun.load(Ordering::Relaxed) || start.elapsed() > b {
                    overrun.store(true, Ordering::Relaxed);
                    return;
                }
            }
            if let Some(f) = forbid_test(cfg, tm, base, x) {
                if let Some(p) = progress {
                    p.add_classes(1);
                }
                found.push((
                    seq,
                    FoundTest {
                        exec: f,
                        at: start.elapsed(),
                    },
                ));
            }
        },
    );
    let mut stamped: Vec<(CandSeq, FoundTest)> = states.into_iter().flatten().collect();
    stamped.sort_by_key(|(seq, _)| *seq);
    let forbid: Vec<FoundTest> = stamped.into_iter().map(|(_, f)| f).collect();
    let complete = !overrun.load(Ordering::Relaxed);

    // Allow set: consistent one-step weakenings, deduplicated.
    let mut allow = Vec::new();
    let mut seen = HashSet::new();
    for f in &forbid {
        for w in weakenings(&f.exec, cfg.arch) {
            if tm.consistent(&w) && seen.insert(canon_key(&w)) {
                allow.push(w);
            }
        }
    }

    SuiteResult {
        forbid,
        allow,
        complete,
        candidates: candidates.into_inner(),
        elapsed: start.elapsed(),
    }
}

/// Is `x` a Forbid test (conditions (a)–(d) above)? Returns the
/// execution to record.
fn forbid_test(
    cfg: &EnumConfig,
    tm: &dyn Model,
    base: &dyn Model,
    x: &Execution,
) -> Option<Execution> {
    if x.txns().is_empty() {
        return None;
    }
    if tm.consistent(x) {
        return None;
    }
    if !base.consistent(&x.erase_txns()) {
        return None;
    }
    // Minimality: every one-step weakening is consistent.
    let minimal = weakenings(x, cfg.arch).iter().all(|w| tm.consistent(w));
    minimal.then(|| x.clone())
}

/// [`synthesise`] over the consistency-pruned stream: the *baseline*
/// model's transaction-agnostic prune oracle cuts rf/co subtrees no
/// completion can rescue. Sound for Forbid search because condition
/// (c) requires the transaction-erased candidate to be baseline-
/// consistent — a candidate whose partial communication relations
/// already violate the baseline's monotone core fails (c) under every
/// transaction layout. Returns the suite together with the prune
/// counters; `candidates` counts the *surviving* candidates examined.
pub fn synthesise_pruned(
    cfg: &EnumConfig,
    tm: &dyn Model,
    base: &dyn Model,
    budget: Option<Duration>,
) -> (SuiteResult, PruneStats) {
    let start = Instant::now();
    let candidates = AtomicUsize::new(0);
    let overrun = AtomicBool::new(false);

    let oracle = oracle_for(base, false);
    let (states, prune, _) = visit_pruned_par(
        cfg,
        oracle,
        worker_count(),
        |_| Vec::new(),
        |seq, x, found: &mut Vec<(CandSeq, FoundTest)>| {
            candidates.fetch_add(1, Ordering::Relaxed);
            if let Some(b) = budget {
                if overrun.load(Ordering::Relaxed) || start.elapsed() > b {
                    overrun.store(true, Ordering::Relaxed);
                    return;
                }
            }
            if let Some(f) = forbid_test(cfg, tm, base, x) {
                found.push((
                    seq,
                    FoundTest {
                        exec: f,
                        at: start.elapsed(),
                    },
                ));
            }
        },
    );
    let mut stamped: Vec<(CandSeq, FoundTest)> = states.into_iter().flatten().collect();
    stamped.sort_by_key(|(seq, _)| *seq);
    let forbid: Vec<FoundTest> = stamped.into_iter().map(|(_, f)| f).collect();
    let complete = !overrun.load(Ordering::Relaxed);

    let mut allow = Vec::new();
    let mut seen = HashSet::new();
    for f in &forbid {
        for w in weakenings(&f.exec, cfg.arch) {
            if tm.consistent(&w) && seen.insert(canon_key(&w)) {
                allow.push(w);
            }
        }
    }

    (
        SuiteResult {
            forbid,
            allow,
            complete,
            candidates: candidates.into_inner(),
            elapsed: start.elapsed(),
        },
        prune,
    )
}

/// The sequential reference implementation of [`synthesise`]; kept for
/// differential tests and the parallel-speedup benchmark.
pub fn synthesise_seq(
    cfg: &EnumConfig,
    tm: &dyn Model,
    base: &dyn Model,
    budget: Option<Duration>,
) -> SuiteResult {
    let start = Instant::now();
    let mut forbid = Vec::new();
    let mut candidates = 0usize;
    let mut complete = true;

    enumerate(cfg, &mut |x| {
        candidates += 1;
        if let Some(b) = budget {
            if start.elapsed() > b {
                complete = false;
                return;
            }
        }
        if let Some(f) = forbid_test(cfg, tm, base, x) {
            forbid.push(FoundTest {
                exec: f,
                at: start.elapsed(),
            });
        }
    });

    let mut allow = Vec::new();
    let mut seen = HashSet::new();
    for f in &forbid {
        for w in weakenings(&f.exec, cfg.arch) {
            if tm.consistent(&w) && seen.insert(canon_key(&w)) {
                allow.push(w);
            }
        }
    }

    SuiteResult {
        forbid,
        allow,
        complete,
        candidates,
        elapsed: start.elapsed(),
    }
}

/// Count how many transactions each Forbid test has (the paper reports
/// the 1/2/3-transaction split in §5.3).
pub fn txn_histogram(forbid: &[FoundTest]) -> [usize; 4] {
    let mut h = [0usize; 4];
    for f in forbid {
        let n = f.exec.txns().len().min(3);
        h[n] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_models::{Arch, Sc, Tsc, X86};

    fn x86_cfg(events: usize) -> EnumConfig {
        EnumConfig {
            arch: Arch::X86,
            events,
            max_threads: 3,
            max_locs: 2,
            fences: true,
            deps: false,
            rmws: true,
            txns: true,
            attrs: false,
            atomic_txns: false,
        }
    }

    #[test]
    fn no_two_event_x86_forbid_tests() {
        // Matches Table 1: |E| = 2 yields zero Forbid tests for x86.
        let r = synthesise(&x86_cfg(2), &X86::tm(), &X86::base(), None);
        assert!(r.complete);
        assert_eq!(r.forbid.len(), 0, "paper reports 0 tests at |E|=2");
    }

    #[test]
    fn three_event_x86_forbid_tests_exist() {
        // Table 1 reports 4 Forbid tests at |E| = 3.
        let r = synthesise(&x86_cfg(3), &X86::tm(), &X86::base(), None);
        assert!(r.complete);
        assert!(
            !r.forbid.is_empty(),
            "isolation-violating 3-event shapes must be found"
        );
        // Every Forbid test: has a txn, is forbidden, baseline-allowed,
        // and minimal.
        for f in &r.forbid {
            assert!(!f.exec.txns().is_empty());
            assert!(!X86::tm().consistent(&f.exec));
            assert!(X86::base().consistent(&f.exec.erase_txns()));
        }
        // And the Allow set is non-empty and strictly weaker.
        assert!(!r.allow.is_empty());
        for a in &r.allow {
            assert!(X86::tm().consistent(a));
        }
    }

    #[test]
    fn tsc_forbid_includes_fig3_shapes() {
        // Running the synthesiser for TSC against SC at |E| = 3 must
        // rediscover the four isolation shapes of Fig. 3.
        let cfg = EnumConfig {
            arch: Arch::Sc,
            events: 3,
            max_threads: 2,
            max_locs: 2,
            fences: false,
            deps: false,
            rmws: false,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        let r = synthesise(&cfg, &Tsc, &Sc, None);
        let keys: HashSet<Vec<u8>> = r.forbid.iter().map(|f| canon_key(&f.exec)).collect();
        for which in ['a', 'b', 'c'] {
            let fig = txmm_models::catalog::fig3(which);
            assert!(
                keys.contains(&canon_key(&fig)),
                "fig3({which}) missing from the TSC Forbid set"
            );
        }
        // fig3(d) is forbidden but NOT ⊏-minimal: removing its external
        // write leaves a coherence violation (an inconsistent weakening),
        // so the synthesiser correctly excludes it.
        let figd = txmm_models::catalog::fig3('d');
        assert!(!Tsc.consistent(&figd));
        assert!(!keys.contains(&canon_key(&figd)));
    }

    #[test]
    fn parallel_synthesis_matches_sequential() {
        let cfg = x86_cfg(3);
        // Force multiple workers, so the work-stealing split-and-merge
        // logic is exercised even on one core.
        let par = synthesise_streamed(&cfg, &X86::tm(), &X86::base(), None, 3);
        let seq = synthesise_seq(&cfg, &X86::tm(), &X86::base(), None);
        assert_eq!(par.candidates, seq.candidates);
        assert_eq!(par.complete, seq.complete);
        let keys = |r: &SuiteResult| {
            r.forbid
                .iter()
                .map(|f| canon_key(&f.exec))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            keys(&par),
            keys(&seq),
            "same Forbid tests in the same order"
        );
        let allow_keys = |r: &SuiteResult| r.allow.iter().map(canon_key).collect::<Vec<_>>();
        assert_eq!(allow_keys(&par), allow_keys(&seq));
    }

    #[test]
    fn pruned_synthesis_matches_plain() {
        let cfg = x86_cfg(3);
        let plain = synthesise(&cfg, &X86::tm(), &X86::base(), None);
        let (pruned, st) = synthesise_pruned(&cfg, &X86::tm(), &X86::base(), None);
        assert!(pruned.complete);
        let keys = |r: &SuiteResult| {
            r.forbid
                .iter()
                .map(|f| canon_key(&f.exec))
                .collect::<HashSet<_>>()
        };
        assert_eq!(keys(&plain), keys(&pruned), "same Forbid tests");
        let allow_keys = |r: &SuiteResult| r.allow.iter().map(canon_key).collect::<HashSet<_>>();
        assert_eq!(allow_keys(&plain), allow_keys(&pruned));
        // The oracle must have cut real work.
        assert!(st.subtrees_cut > 0);
        assert!(pruned.candidates < plain.candidates);
    }

    #[test]
    fn histogram_counts_txns() {
        let r = synthesise(&x86_cfg(3), &X86::tm(), &X86::base(), None);
        let h = txn_histogram(&r.forbid);
        assert_eq!(h[0], 0, "every Forbid test has a transaction");
        assert_eq!(h.iter().sum::<usize>(), r.forbid.len());
    }
}
