//! Conformance-suite synthesis (§4.2): the minimally-forbidden
//! ("Forbid") and maximally-allowed ("Allow") test sets of Table 1.
//!
//! Synthesis is parallel at candidate granularity: enumeration streams
//! candidates (already deduplicated per thread-shape shard) into fixed
//! batches, each batch is split across every core, and each worker
//! filters its slice against the models with one shared
//! [`ExecutionAnalysis`] per candidate. Batch and slice order are
//! preserved, so the Forbid suite comes out in the exact order the
//! sequential pipeline would produce. Model checking dominates
//! generation by an order of magnitude, so this parallelises the right
//! stage even when one thread shape holds most of the space.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use txmm_core::Execution;
use txmm_models::Model;

use crate::canon::canon_key;
use crate::enumerate::{enumerate, EnumConfig};
use crate::par::{par_map, worker_count};
use crate::weaken::weakenings;

/// Candidates buffered between parallel checking waves.
const BATCH: usize = 4096;

/// One synthesised test with its discovery time (for Fig. 7).
pub struct FoundTest {
    /// The execution.
    pub exec: Execution,
    /// When it was found, relative to the start of synthesis.
    pub at: Duration,
}

/// The result of synthesising one `|E|` row of Table 1.
pub struct SuiteResult {
    /// Minimally-forbidden tests.
    pub forbid: Vec<FoundTest>,
    /// Maximally-allowed tests (one ⊏-step weakenings of Forbid tests).
    pub allow: Vec<Execution>,
    /// False when the time budget ran out before the space was covered
    /// (the paper's "non-exhaustive" marker).
    pub complete: bool,
    /// How many candidate executions were examined.
    pub candidates: usize,
    /// Total synthesis time.
    pub elapsed: Duration,
}

/// Synthesise the Forbid and Allow sets for `tm` against its non-TM
/// baseline, at exactly `cfg.events` events, checking candidates in
/// parallel on every core.
///
/// A candidate `X` lands in Forbid when (a) it has at least one
/// transaction, (b) the transactional model forbids it, (c) the baseline
/// allows it with transactions erased, and (d) it is ⊏-minimal: every
/// one-step weakening is consistent under the transactional model.
pub fn synthesise(
    cfg: &EnumConfig,
    tm: &dyn Model,
    base: &dyn Model,
    budget: Option<Duration>,
) -> SuiteResult {
    if worker_count() <= 1 {
        // No parallelism available: skip the batching (and its clones)
        // entirely.
        return synthesise_seq(cfg, tm, base, budget);
    }
    synthesise_batched(cfg, tm, base, budget, worker_count())
}

/// The batched-parallel implementation behind [`synthesise`], with the
/// chunk fan-out factor explicit so tests can exercise the
/// split-and-merge logic deterministically regardless of core count.
pub fn synthesise_batched(
    cfg: &EnumConfig,
    tm: &dyn Model,
    base: &dyn Model,
    budget: Option<Duration>,
    workers: usize,
) -> SuiteResult {
    let start = Instant::now();
    let mut candidates = 0usize;
    let mut complete = true;
    let mut forbid: Vec<FoundTest> = Vec::new();

    // Check one generated batch across every core, preserving order.
    // Each buffered candidate carries its enumeration timestamp so
    // `FoundTest::at` reflects discovery order (Fig. 7's input), not
    // the batch-flush instant.
    type Stamped = (Duration, Execution);
    let check_batch = |batch: &[Stamped], forbid: &mut Vec<FoundTest>| {
        let per_worker = batch.len().div_ceil(workers.max(1)).max(1);
        let found = par_map(batch.chunks(per_worker).collect(), |slice: &[Stamped]| {
            slice
                .iter()
                .filter_map(|(at, x)| {
                    forbid_test(cfg, tm, base, x).map(|f| FoundTest { exec: f, at: *at })
                })
                .collect::<Vec<_>>()
        });
        forbid.extend(found.into_iter().flatten());
    };

    let mut batch: Vec<Stamped> = Vec::with_capacity(BATCH);
    enumerate(cfg, &mut |x| {
        candidates += 1;
        if let Some(b) = budget {
            if start.elapsed() > b {
                complete = false;
                return;
            }
        }
        // Cheap precondition before paying for the clone: a Forbid test
        // needs a transaction.
        if x.txns().is_empty() {
            return;
        }
        batch.push((start.elapsed(), x.clone()));
        if batch.len() >= BATCH {
            check_batch(&batch, &mut forbid);
            batch.clear();
        }
    });
    // Like the sequential path, stop checking once the budget has
    // expired: candidates still buffered at the deadline are dropped
    // (the run is already marked non-exhaustive).
    if complete {
        check_batch(&batch, &mut forbid);
    }

    // Allow set: consistent one-step weakenings, deduplicated.
    let mut allow = Vec::new();
    let mut seen = HashSet::new();
    for f in &forbid {
        for w in weakenings(&f.exec, cfg.arch) {
            if tm.consistent(&w) && seen.insert(canon_key(&w)) {
                allow.push(w);
            }
        }
    }

    SuiteResult {
        forbid,
        allow,
        complete,
        candidates,
        elapsed: start.elapsed(),
    }
}

/// Is `x` a Forbid test (conditions (a)–(d) above)? Returns the
/// execution to record.
fn forbid_test(
    cfg: &EnumConfig,
    tm: &dyn Model,
    base: &dyn Model,
    x: &Execution,
) -> Option<Execution> {
    if x.txns().is_empty() {
        return None;
    }
    if tm.consistent(x) {
        return None;
    }
    if !base.consistent(&x.erase_txns()) {
        return None;
    }
    // Minimality: every one-step weakening is consistent.
    let minimal = weakenings(x, cfg.arch).iter().all(|w| tm.consistent(w));
    minimal.then(|| x.clone())
}

/// The sequential reference implementation of [`synthesise`]; kept for
/// differential tests and the parallel-speedup benchmark.
pub fn synthesise_seq(
    cfg: &EnumConfig,
    tm: &dyn Model,
    base: &dyn Model,
    budget: Option<Duration>,
) -> SuiteResult {
    let start = Instant::now();
    let mut forbid = Vec::new();
    let mut candidates = 0usize;
    let mut complete = true;

    crate::enumerate::enumerate(cfg, &mut |x| {
        candidates += 1;
        if let Some(b) = budget {
            if start.elapsed() > b {
                complete = false;
                return;
            }
        }
        if let Some(f) = forbid_test(cfg, tm, base, x) {
            forbid.push(FoundTest {
                exec: f,
                at: start.elapsed(),
            });
        }
    });

    let mut allow = Vec::new();
    let mut seen = HashSet::new();
    for f in &forbid {
        for w in weakenings(&f.exec, cfg.arch) {
            if tm.consistent(&w) && seen.insert(canon_key(&w)) {
                allow.push(w);
            }
        }
    }

    SuiteResult {
        forbid,
        allow,
        complete,
        candidates,
        elapsed: start.elapsed(),
    }
}

/// Count how many transactions each Forbid test has (the paper reports
/// the 1/2/3-transaction split in §5.3).
pub fn txn_histogram(forbid: &[FoundTest]) -> [usize; 4] {
    let mut h = [0usize; 4];
    for f in forbid {
        let n = f.exec.txns().len().min(3);
        h[n] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_models::{Arch, Sc, Tsc, X86};

    fn x86_cfg(events: usize) -> EnumConfig {
        EnumConfig {
            arch: Arch::X86,
            events,
            max_threads: 3,
            max_locs: 2,
            fences: true,
            deps: false,
            rmws: true,
            txns: true,
            attrs: false,
            atomic_txns: false,
        }
    }

    #[test]
    fn no_two_event_x86_forbid_tests() {
        // Matches Table 1: |E| = 2 yields zero Forbid tests for x86.
        let r = synthesise(&x86_cfg(2), &X86::tm(), &X86::base(), None);
        assert!(r.complete);
        assert_eq!(r.forbid.len(), 0, "paper reports 0 tests at |E|=2");
    }

    #[test]
    fn three_event_x86_forbid_tests_exist() {
        // Table 1 reports 4 Forbid tests at |E| = 3.
        let r = synthesise(&x86_cfg(3), &X86::tm(), &X86::base(), None);
        assert!(r.complete);
        assert!(
            !r.forbid.is_empty(),
            "isolation-violating 3-event shapes must be found"
        );
        // Every Forbid test: has a txn, is forbidden, baseline-allowed,
        // and minimal.
        for f in &r.forbid {
            assert!(!f.exec.txns().is_empty());
            assert!(!X86::tm().consistent(&f.exec));
            assert!(X86::base().consistent(&f.exec.erase_txns()));
        }
        // And the Allow set is non-empty and strictly weaker.
        assert!(!r.allow.is_empty());
        for a in &r.allow {
            assert!(X86::tm().consistent(a));
        }
    }

    #[test]
    fn tsc_forbid_includes_fig3_shapes() {
        // Running the synthesiser for TSC against SC at |E| = 3 must
        // rediscover the four isolation shapes of Fig. 3.
        let cfg = EnumConfig {
            arch: Arch::Sc,
            events: 3,
            max_threads: 2,
            max_locs: 2,
            fences: false,
            deps: false,
            rmws: false,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        let r = synthesise(&cfg, &Tsc, &Sc, None);
        let keys: HashSet<Vec<u8>> = r.forbid.iter().map(|f| canon_key(&f.exec)).collect();
        for which in ['a', 'b', 'c'] {
            let fig = txmm_models::catalog::fig3(which);
            assert!(
                keys.contains(&canon_key(&fig)),
                "fig3({which}) missing from the TSC Forbid set"
            );
        }
        // fig3(d) is forbidden but NOT ⊏-minimal: removing its external
        // write leaves a coherence violation (an inconsistent weakening),
        // so the synthesiser correctly excludes it.
        let figd = txmm_models::catalog::fig3('d');
        assert!(!Tsc.consistent(&figd));
        assert!(!keys.contains(&canon_key(&figd)));
    }

    #[test]
    fn parallel_synthesis_matches_sequential() {
        let cfg = x86_cfg(3);
        // Force the batched path with a fan-out of 3, so the chunked
        // split-and-merge logic is exercised even on one core.
        let par = synthesise_batched(&cfg, &X86::tm(), &X86::base(), None, 3);
        let seq = synthesise_seq(&cfg, &X86::tm(), &X86::base(), None);
        assert_eq!(par.candidates, seq.candidates);
        assert_eq!(par.complete, seq.complete);
        let keys = |r: &SuiteResult| {
            r.forbid
                .iter()
                .map(|f| canon_key(&f.exec))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            keys(&par),
            keys(&seq),
            "same Forbid tests in the same order"
        );
        let allow_keys = |r: &SuiteResult| r.allow.iter().map(canon_key).collect::<Vec<_>>();
        assert_eq!(allow_keys(&par), allow_keys(&seq));
    }

    #[test]
    fn histogram_counts_txns() {
        let r = synthesise(&x86_cfg(3), &X86::tm(), &X86::base(), None);
        let h = txn_histogram(&r.forbid);
        assert_eq!(h[0], 0, "every Forbid test has a transaction");
        assert_eq!(h.iter().sum::<usize>(), r.forbid.len());
    }
}
