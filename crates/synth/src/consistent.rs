//! Consistency-guided enumeration: the streaming engine of
//! [`crate::enumerate`] with the incremental consistency engine of
//! [`txmm_core::incr`] threaded through the relation stages.
//!
//! The plain enumerator materialises every well-formed rf/co/txn
//! combination and leaves consistency to the caller. Here every rf
//! source and every coherence placement is applied to a
//! [`PartialCandidate`] the moment it is chosen, and a per-model
//! [`PruneOracle`] — sound on partial executions by monotonicity —
//! abandons the whole relation subtree the instant the partial
//! communication relations close a forbidden cycle. Pruned subtrees
//! are *counted*, never built.
//!
//! Soundness is the monotonicity argument of `txmm_core::incr`: an
//! oracle rejection certifies that **no completion** of the partial
//! candidate (any rf/co extension, any transaction layout) is
//! consistent, so filtering the pruned stream by the full model check
//! at the leaves yields exactly `enumerate · filter consistent` — the
//! same canonical classes, the same representatives. The differential
//! suite (`tests/pruning_differential.rs`) pins this at |E| ≤ 4 for
//! all six model spaces.
//!
//! The walk composes with the orbit-minimality pruning of
//! [`crate::enumerate`]: kind- and label-canonicalisation cut symmetry
//! duplicates before structure assignment begins, the oracle cuts
//! doomed relation subtrees during it, and the stateless automorphism
//! test picks class representatives at the leaves. Consistency is a
//! class invariant, so the two prunings commute.

use txmm_core::canon::{kind_tag, label_canonical, struct_canonical, Label};
use txmm_core::incr::{judge_batch, NoPrune, PartialCandidate, PruneOracle, PruneStats};
use txmm_core::{Event, EventKind, EventSet, Execution, Rel, TxnClass, TxnFreeBase};
use txmm_models::Model;

use txmm_obs::WalkProgress;

use crate::enumerate::{
    config_shapes, enumerate_labels, for_deps, for_txns, kinds_for, shape_tids, walk_plan, CandSeq,
    EnumConfig, Frontier, StructureSpace, Subtree,
};
use crate::par::worker_count;
use crate::steal::{run_with_progress, StealStats};

/// Process-wide prune telemetry, published once per completed walk
/// (the walks run per request, so handles are created exactly once).
fn publish_prune(st: &PruneStats) {
    use std::sync::OnceLock;
    static COUNTERS: OnceLock<([txmm_obs::Counter; 6], txmm_obs::Histogram)> = OnceLock::new();
    let ([cut, skipped, calls, micros, delta, fallback], batch_size) = COUNTERS.get_or_init(|| {
        let obs = txmm_obs::global();
        (
            [
                obs.counter(
                    "txmm_prune_subtrees_cut_total",
                    "Construction subtrees abandoned on a non-viable partial.",
                ),
                obs.counter(
                    "txmm_prune_candidates_skipped_total",
                    "Complete candidates pruned subtrees would have materialised.",
                ),
                obs.counter("txmm_prune_oracle_calls_total", "Prune-oracle invocations."),
                obs.counter(
                    "txmm_prune_oracle_microseconds_total",
                    "Wall-clock time spent inside prune-oracle calls.",
                ),
                obs.counter(
                    "txmm_prune_delta_answers_total",
                    "Viability probes answered from incremental delta state alone.",
                ),
                obs.counter(
                    "txmm_prune_fallback_total",
                    "Viability probes the delta state could not decide, falling \
                     back to a full analysis re-check.",
                ),
            ],
            obs.histogram(
                "txmm_prune_batch_size",
                "Sibling placements judged per batched prune-oracle call.",
            ),
        )
    });
    cut.add(st.subtrees_cut);
    skipped.add(st.candidates_skipped);
    calls.add(st.oracle_calls);
    micros.add(st.oracle_micros);
    delta.add(st.delta_answers);
    fallback.add(st.fallbacks);
    for (bound, n) in txmm_core::incr::BATCH_BOUNDS.iter().zip(&st.batch_hist) {
        batch_size.record_n(*bound, *n);
    }
}

/// The model's pruning oracle for the given phase, degraded to
/// [`NoPrune`] (plain enumeration) when the model offers nothing sound.
pub fn oracle_for(model: &dyn Model, txns_known: bool) -> &dyn PruneOracle {
    model.prune_oracle(txns_known).unwrap_or(&NoPrune)
}

/// A full-model consistency filter over the pruned leaf stream that
/// shares txn-independent analysis slots across consecutive
/// candidates.
///
/// The walk emits every transaction layout of one completed rf/co
/// assignment back to back; those siblings differ only in `txns`, so
/// `fr`, `com`, the equivalences and the fence relations — the bulk of
/// a full check — are identical. The checker captures them from the
/// first sibling's analysis ([`TxnFreeBase`]) and re-seeds each
/// follow-up analysis after a fingerprint match, re-deriving from
/// scratch only when the underlying structure actually changed.
pub struct LeafChecker<'m> {
    model: &'m dyn Model,
    base: Option<TxnFreeBase>,
}

impl<'m> LeafChecker<'m> {
    pub fn new(model: &'m dyn Model) -> LeafChecker<'m> {
        LeafChecker { model, base: None }
    }

    /// Full-model consistency of `x`, sharing txn-independent slots
    /// with the previous candidate when the structure matches.
    pub fn consistent(&mut self, x: &Execution) -> bool {
        if let Some(b) = &self.base {
            if b.matches(x) {
                return self.model.consistent_analysis(&b.seed(x));
            }
        }
        let a = x.analysis();
        let ok = self.model.consistent_analysis(&a);
        self.base = Some(TxnFreeBase::capture(&a));
        ok
    }
}

// ---- The pruned structure walk -----------------------------------------

/// Shared state of one structure walk: the choice space, the oracle,
/// and the precomputed arity products that let a cut count exactly how
/// many candidates it skipped.
struct Walk<'a> {
    oracle: &'a dyn PruneOracle,
    space: &'a StructureSpace,
    /// Per read: every same-location write (the init read is
    /// `fr`-before all of them).
    read_loc_writes: Vec<EventSet>,
    /// `fact[k] = k!` — orderings of `k` still-unplaced writes.
    fact: Vec<u64>,
    /// `co_suffix[l]` = co orderings over locations `l..` (`m_l!`
    /// suffix product; last entry 1).
    co_suffix: Vec<u64>,
    /// `rf_suffix[i]` = rf assignments over reads `i..` (option-count
    /// suffix product; last entry 1).
    rf_suffix: Vec<u64>,
    /// Leaf candidates per complete rf/co assignment (txn layouts ×
    /// atomic flag).
    txn_leaves: u64,
}

impl<'a> Walk<'a> {
    fn new(
        cfg: &EnumConfig,
        events: &[Event],
        space: &'a StructureSpace,
        oracle: &'a dyn PruneOracle,
    ) -> Walk<'a> {
        let n = events.len();
        let read_loc_writes = space
            .reads
            .iter()
            .map(|&r| {
                let mut s = EventSet::default();
                for w in 0..n {
                    if events[w].kind == EventKind::Write && events[w].loc == events[r].loc {
                        s.insert(w);
                    }
                }
                s
            })
            .collect();
        let mut fact = vec![1u64; n + 1];
        for k in 1..=n {
            fact[k] = fact[k - 1].saturating_mul(k as u64);
        }
        let mut co_suffix = vec![1u64; space.loc_writes.len() + 1];
        for l in (0..space.loc_writes.len()).rev() {
            co_suffix[l] = co_suffix[l + 1].saturating_mul(fact[space.loc_writes[l].len()]);
        }
        let mut rf_suffix = vec![1u64; space.reads.len() + 1];
        for i in (0..space.reads.len()).rev() {
            rf_suffix[i] = rf_suffix[i + 1].saturating_mul(space.rf_options[i].len() as u64);
        }
        Walk {
            oracle,
            space,
            read_loc_writes,
            fact,
            co_suffix,
            rf_suffix,
            txn_leaves: space.txn_leaves(cfg),
        }
    }

    fn cut(&self, st: &mut PruneStats, below: u64) {
        st.subtrees_cut += 1;
        st.candidates_skipped = st.candidates_skipped.saturating_add(below);
    }

    fn apply_rf(&self, i: usize, r: usize, opt: Option<usize>, pc: &mut PartialCandidate) -> bool {
        match opt {
            None => {
                let ws = self.read_loc_writes[i];
                pc.assign_init_read(r, ws);
                !ws.is_empty()
            }
            Some(w) => {
                pc.assign_rf(w, r);
                true
            }
        }
    }

    /// Assign read `i`'s rf source, then recurse; a non-viable
    /// assignment cuts every candidate below it. All sibling options
    /// are probed first — the ones the delta state cannot decide are
    /// materialised and judged in one batched oracle call — and only
    /// then do the viable ones recurse, in the original option order.
    fn rf(
        &self,
        i: usize,
        pc: &mut PartialCandidate,
        st: &mut PruneStats,
        leaf: &mut dyn FnMut(&Execution),
    ) {
        if i == self.space.reads.len() {
            self.co(0, pc, st, leaf);
            return;
        }
        let r = self.space.reads[i];
        let opts = &self.space.rf_options[i];
        let mut viable_mask = 0u64;
        let mut pend_slots: Vec<usize> = Vec::new();
        let mut batch: Vec<(Execution, Rel)> = Vec::new();
        pc.mark();
        for (j, &opt) in opts.iter().enumerate() {
            let added = self.apply_rf(i, r, opt, pc);
            match if added {
                pc.probe(self.oracle, st)
            } else {
                Some(true) // no new edges: nothing to check
            } {
                Some(true) => viable_mask |= 1 << j,
                Some(false) => {}
                None => {
                    pend_slots.push(j);
                    batch.push(pc.materialise());
                }
            }
            pc.rewind();
        }
        if !batch.is_empty() {
            st.record_batch(batch.len());
            let bits = judge_batch(self.oracle, &batch, st);
            for (b, &j) in pend_slots.iter().enumerate() {
                if bits & (1 << b) != 0 {
                    viable_mask |= 1 << j;
                }
            }
        }
        for (j, &opt) in opts.iter().enumerate() {
            if viable_mask & (1 << j) != 0 {
                self.apply_rf(i, r, opt, pc);
                self.rf(i + 1, pc, st, leaf);
                pc.rewind();
            } else {
                self.cut(
                    st,
                    self.rf_suffix[i + 1]
                        .saturating_mul(self.co_suffix[0])
                        .saturating_mul(self.txn_leaves),
                );
            }
        }
        pc.release();
    }

    /// Build location `li`'s coherence order write by write.
    fn co(
        &self,
        li: usize,
        pc: &mut PartialCandidate,
        st: &mut PruneStats,
        leaf: &mut dyn FnMut(&Execution),
    ) {
        if li == self.space.loc_writes.len() {
            leaf(pc.exec());
            return;
        }
        self.place(li, EventSet::default(), 0, pc, st, leaf);
    }

    fn place(
        &self,
        li: usize,
        placed: EventSet,
        k: usize,
        pc: &mut PartialCandidate,
        st: &mut PruneStats,
        leaf: &mut dyn FnMut(&Execution),
    ) {
        let ws = &self.space.loc_writes[li];
        if k == ws.len() {
            self.co(li + 1, pc, st, leaf);
            return;
        }
        let mut viable_mask = 0u64;
        let mut pend_slots: Vec<usize> = Vec::new();
        let mut batch: Vec<(Execution, Rel)> = Vec::new();
        pc.mark();
        for (j, &w) in ws.iter().enumerate() {
            if placed.contains(w) {
                continue;
            }
            pc.push_co(placed, w);
            match if placed.is_empty() {
                Some(true) // the first write adds no edges
            } else {
                pc.probe(self.oracle, st)
            } {
                Some(true) => viable_mask |= 1 << j,
                Some(false) => {}
                None => {
                    pend_slots.push(j);
                    batch.push(pc.materialise());
                }
            }
            pc.rewind();
        }
        if !batch.is_empty() {
            st.record_batch(batch.len());
            let bits = judge_batch(self.oracle, &batch, st);
            for (b, &j) in pend_slots.iter().enumerate() {
                if bits & (1 << b) != 0 {
                    viable_mask |= 1 << j;
                }
            }
        }
        for (j, &w) in ws.iter().enumerate() {
            if placed.contains(w) {
                continue;
            }
            if viable_mask & (1 << j) != 0 {
                pc.push_co(placed, w);
                let mut next = placed;
                next.insert(w);
                self.place(li, next, k + 1, pc, st, leaf);
                pc.rewind();
            } else {
                self.cut(
                    st,
                    self.fact[ws.len() - k - 1]
                        .saturating_mul(self.co_suffix[li + 1])
                        .saturating_mul(self.txn_leaves),
                );
            }
        }
        pc.release();
    }
}

/// Build the transaction classes of one layout choice (`txn_ivs` is
/// one interval list per thread over that thread's slot vector).
fn build_txns(
    thread_slots: &[Vec<usize>],
    txn_ivs: &[Vec<(usize, usize)>],
    atomic: bool,
) -> Vec<TxnClass> {
    txn_ivs
        .iter()
        .enumerate()
        .flat_map(|(t, ivs)| {
            let slots = &thread_slots[t];
            ivs.iter().map(move |&(i, j)| TxnClass {
                events: slots[i..=j].to_vec(),
                atomic,
            })
        })
        .collect()
}

/// Walk the structure space over one labelled event vector with oracle
/// pruning; `visit` receives every surviving class representative.
///
/// Two phase orders:
///
/// * **classic** (`txn_first == false`) — rf/co are walked once per
///   (rmw, deps) choice with a transaction-agnostic oracle, and every
///   transaction layout is expanded at the leaves. Survivors are *not*
///   yet filtered by a full model check.
/// * **txn-first** (`txn_first == true`) — the transaction layout is
///   fixed *before* the rf/co walk and `oracle` must be the model's
///   txns-known oracle with [`PruneOracle::txn_aware_exact`]. Every
///   probe then decides full-model consistency of the partial
///   candidate, so a surviving complete leaf **is** consistent — no
///   downstream model check, no per-layout re-check, no `with_txns`
///   clone. The walk repeats per layout, but probes are answered from
///   delta state, which is far cheaper than a full check at every
///   (leaf × layout).
fn pruned_structures(
    cfg: &EnumConfig,
    events: &[Event],
    oracle: &dyn PruneOracle,
    txn_first: bool,
    st: &mut PruneStats,
    keep: &mut dyn FnMut(&Execution) -> bool,
    visit: &mut dyn FnMut(&Execution),
) {
    let n = events.len();
    let space = StructureSpace::new(cfg, events);
    let mut walk = Walk::new(cfg, events, &space, oracle);
    if txn_first {
        // Layouts are enumerated outside the walk: a cut below skips
        // rf/co assignments of the *current* layout only.
        walk.txn_leaves = 1;
    }
    let atomic_opts: &[bool] = if cfg.atomic_txns {
        &[false, true]
    } else {
        &[false]
    };
    for rmws in &space.rmw_sets {
        let mut rmw = Rel::empty(n);
        for &(a, b) in rmws {
            rmw.add(a, b);
        }
        for_deps(cfg, events, &space.dep_slots, &mut |addr, ctrl, data| {
            let start = |txns: Vec<TxnClass>, walk: &Walk<'_>, st: &mut PruneStats| {
                let base = Execution::from_parts(
                    events.to_vec(),
                    space.po,
                    *addr,
                    *ctrl,
                    *data,
                    rmw,
                    Rel::empty(n),
                    Rel::empty(n),
                    txns,
                );
                let pc = PartialCandidate::with_oracle(base, oracle);
                // Structure-only violations (no rf/co yet) kill the
                // whole subtree at once.
                if !pc.viable(oracle, st) {
                    walk.cut(
                        st,
                        walk.rf_suffix[0]
                            .saturating_mul(walk.co_suffix[0])
                            .saturating_mul(walk.txn_leaves),
                    );
                    return None;
                }
                Some(pc)
            };
            if txn_first {
                for_txns(&space.thread_slots, &space.txn_options, &mut |txn_ivs| {
                    for &atomic in atomic_opts {
                        let txns = build_txns(&space.thread_slots, txn_ivs, atomic);
                        if txns.is_empty() && atomic {
                            continue;
                        }
                        let Some(mut pc) = start(txns, &walk, st) else {
                            continue;
                        };
                        walk.rf(0, &mut pc, st, &mut |x| {
                            debug_assert!(x.check_wf().is_ok(), "{:?}", x.check_wf());
                            if keep(x) {
                                visit(x);
                            }
                        });
                    }
                });
            } else {
                let Some(mut pc) = start(vec![], &walk, st) else {
                    return;
                };
                walk.rf(0, &mut pc, st, &mut |x| {
                    // One clone per completed rf/co assignment; the
                    // layouts cycle through it via `set_txns`.
                    let mut y = x.clone();
                    for_txns(&space.thread_slots, &space.txn_options, &mut |txn_ivs| {
                        for &atomic in atomic_opts {
                            let txns = build_txns(&space.thread_slots, txn_ivs, atomic);
                            if txns.is_empty() && atomic {
                                continue;
                            }
                            y.set_txns(txns);
                            debug_assert!(y.check_wf().is_ok(), "{:?}", y.check_wf());
                            if keep(&y) {
                                visit(&y);
                            }
                        }
                    });
                });
            }
        });
    }
}

/// Walk one frontier subtree with oracle pruning (the pruned analogue
/// of [`crate::enumerate::enumerate_subtree`]). `txn_first` selects
/// the phase order of [`pruned_structures`]; it requires a txns-known
/// oracle with [`PruneOracle::txn_aware_exact`].
pub fn pruned_subtree(
    cfg: &EnumConfig,
    shape: &[usize],
    sub: &Subtree,
    oracle: &dyn PruneOracle,
    txn_first: bool,
    st: &mut PruneStats,
    visit: &mut dyn FnMut(&Execution),
) {
    let kinds = kinds_for(cfg);
    let evkinds: Vec<EventKind> = sub.kind_choice.iter().map(|&i| kinds[i as usize]).collect();
    let tids = shape_tids(shape);
    enumerate_labels(cfg, &tids, &evkinds, &mut |events| {
        let labels: Vec<Label> = events
            .iter()
            .map(|ev| Label {
                tag: kind_tag(ev.kind),
                attrs: ev.attrs.bits(),
                loc: ev.loc,
            })
            .collect();
        let Some(auts) = label_canonical(shape, &labels) else {
            return; // Symmetry-duplicate label prefix.
        };
        pruned_structures(
            cfg,
            events,
            oracle,
            txn_first,
            st,
            &mut |x| struct_canonical(x, &auts),
            visit,
        );
    });
}

// ---- Drivers ------------------------------------------------------------

/// Sequentially walk the whole space with oracle pruning. `visit` sees
/// every class representative the oracle could not rule out; run the
/// full model check on them to recover exactly the consistent classes.
pub fn enumerate_pruned(
    cfg: &EnumConfig,
    oracle: &dyn PruneOracle,
    visit: &mut dyn FnMut(&Execution),
) -> PruneStats {
    walk_pruned(cfg, oracle, false, None, visit)
}

fn walk_pruned(
    cfg: &EnumConfig,
    oracle: &dyn PruneOracle,
    txn_first: bool,
    progress: Option<&WalkProgress>,
    visit: &mut dyn FnMut(&Execution),
) -> PruneStats {
    if let Some(p) = progress {
        p.add_total(walk_plan(cfg).weight);
    }
    let shapes = config_shapes(cfg);
    let mut st = PruneStats::default();
    for sub in Frontier::new(cfg) {
        let before = (st.subtrees_cut, st.candidates_skipped);
        let mut emitted = 0u64;
        pruned_subtree(
            cfg,
            &shapes[sub.shape_idx],
            &sub,
            oracle,
            txn_first,
            &mut st,
            &mut |x| {
                emitted += 1;
                visit(x);
            },
        );
        if let Some(p) = progress {
            p.subtree_done(
                sub.weight,
                emitted,
                st.subtrees_cut - before.0,
                st.candidates_skipped - before.1,
            );
        }
    }
    publish_prune(&st);
    st
}

/// Parallel pruned walk on the work-stealing pool; the per-worker
/// states come back in worker order with the merged prune counters.
/// [`CandSeq`] orders the *surviving* stream deterministically.
pub fn visit_pruned_par<S, FI, FV>(
    cfg: &EnumConfig,
    oracle: &dyn PruneOracle,
    workers: usize,
    init: FI,
    visit: FV,
) -> (Vec<S>, PruneStats, StealStats)
where
    S: Send,
    FI: Fn(usize) -> S + Sync,
    FV: Fn(CandSeq, &Execution, &mut S) + Sync,
{
    visit_pruned_par_mode(cfg, oracle, false, workers, None, init, visit)
}

/// [`visit_pruned_par`] with optional live progress: the walk plan is
/// declared up front, and every completed subtree flushes its weight,
/// emit count and prune-cut deltas into `progress`. With `None` the
/// walk is identical to [`visit_pruned_par`].
pub fn visit_pruned_par_progress<S, FI, FV>(
    cfg: &EnumConfig,
    oracle: &dyn PruneOracle,
    workers: usize,
    progress: Option<&WalkProgress>,
    init: FI,
    visit: FV,
) -> (Vec<S>, PruneStats, StealStats)
where
    S: Send,
    FI: Fn(usize) -> S + Sync,
    FV: Fn(CandSeq, &Execution, &mut S) + Sync,
{
    visit_pruned_par_mode(cfg, oracle, false, workers, progress, init, visit)
}

#[allow(clippy::too_many_arguments)]
fn visit_pruned_par_mode<S, FI, FV>(
    cfg: &EnumConfig,
    oracle: &dyn PruneOracle,
    txn_first: bool,
    workers: usize,
    progress: Option<&WalkProgress>,
    init: FI,
    visit: FV,
) -> (Vec<S>, PruneStats, StealStats)
where
    S: Send,
    FI: Fn(usize) -> S + Sync,
    FV: Fn(CandSeq, &Execution, &mut S) + Sync,
{
    if let Some(p) = progress {
        p.add_total(walk_plan(cfg).weight);
    }
    let shapes = config_shapes(cfg);
    let (pairs, steal) = run_with_progress(
        Frontier::new(cfg),
        workers,
        progress,
        |w| (init(w), PruneStats::default()),
        |sub: Subtree, state: &mut (S, PruneStats)| {
            let mut emit = 0u32;
            let (s, st) = state;
            let before = (st.subtrees_cut, st.candidates_skipped);
            pruned_subtree(
                cfg,
                &shapes[sub.shape_idx],
                &sub,
                oracle,
                txn_first,
                st,
                &mut |x| {
                    visit((sub.seq, emit), x, s);
                    emit += 1;
                },
            );
            if let Some(p) = progress {
                p.subtree_done(
                    sub.weight,
                    emit as u64,
                    st.subtrees_cut - before.0,
                    st.candidates_skipped - before.1,
                );
            }
        },
    );
    let mut states = Vec::with_capacity(pairs.len());
    let mut st = PruneStats::default();
    for (s, ps) in pairs {
        states.push(s);
        st.merge(&ps);
    }
    publish_prune(&st);
    (states, st, steal)
}

/// Enumerate exactly the model-consistent classes of the space,
/// streaming one representative per class through `visit`. The
/// transaction-agnostic oracle accelerates the walk; a [`LeafChecker`]
/// (txn-independent slots shared by reference across the layouts of
/// each rf/co assignment) decides at the leaves.
///
/// The txn-first walk ([`enumerate_consistent_txn_first`]) needs no
/// leaf check at all, but measures *slower* here: repeating the rf/co
/// walk per transaction layout multiplies delta probes (~0.9 µs each,
/// three detectors fed per edge) past the cost of a shared-slot leaf
/// check (~0.5 µs), so the classic order stays the default.
pub fn enumerate_consistent(
    cfg: &EnumConfig,
    model: &dyn Model,
    visit: &mut dyn FnMut(&Execution),
) -> PruneStats {
    let oracle = oracle_for(model, false);
    let mut check = LeafChecker::new(model);
    walk_pruned(cfg, oracle, false, None, &mut |x| {
        if check.consistent(x) {
            visit(x);
        }
    })
}

/// [`enumerate_consistent`] over the **txn-first** walk: transaction
/// layouts are fixed before the rf/co stages and the model's
/// txns-known oracle decides full consistency probe by probe, so the
/// surviving stream needs no leaf check. `None` unless that oracle is
/// [`PruneOracle::txn_aware_exact`] (Power, C++ and `.cat` programs
/// would multiply expensive fallback probes by the layout count).
pub fn enumerate_consistent_txn_first(
    cfg: &EnumConfig,
    model: &dyn Model,
    visit: &mut dyn FnMut(&Execution),
) -> Option<PruneStats> {
    let oracle = oracle_for(model, true);
    if !oracle.txn_aware_exact() {
        return None;
    }
    Some(walk_pruned(cfg, oracle, true, None, visit))
}

/// Count the model-consistent classes (sequential).
pub fn count_consistent(cfg: &EnumConfig, model: &dyn Model) -> (usize, PruneStats) {
    let mut n = 0usize;
    let st = enumerate_consistent(cfg, model, &mut |_| n += 1);
    (n, st)
}

/// Parallel [`count_consistent`] on the work-stealing pool.
pub fn count_consistent_par(cfg: &EnumConfig, model: &dyn Model) -> (usize, PruneStats) {
    count_consistent_par_progress(cfg, model, worker_count(), None)
}

/// [`count_consistent_par`] with optional live progress: classes kept
/// by the leaf check land in `progress` as they are found, so a
/// heartbeat reporter's final frame totals equal the returned count.
pub fn count_consistent_par_progress(
    cfg: &EnumConfig,
    model: &dyn Model,
    workers: usize,
    progress: Option<&WalkProgress>,
) -> (usize, PruneStats) {
    let oracle = oracle_for(model, false);
    let (counts, st, _) = visit_pruned_par_mode(
        cfg,
        oracle,
        false,
        workers,
        progress,
        |_| (0usize, LeafChecker::new(model)),
        |_, x, (n, check)| {
            if check.consistent(x) {
                *n += 1;
                if let Some(p) = progress {
                    p.add_classes(1);
                }
            }
        },
    );
    (counts.into_iter().map(|(n, _)| n).sum(), st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canon_key;
    use crate::enumerate::enumerate;
    use std::collections::HashSet;
    use txmm_models::{Sc, X86};

    /// Pruned-consistent must equal enumerate-then-filter: same
    /// classes, same representatives.
    #[test]
    fn pruned_matches_filtered_enumeration() {
        for (cfg, model) in [
            (
                EnumConfig::hw(txmm_models::Arch::X86, 3),
                &X86::tm() as &dyn Model,
            ),
            (EnumConfig::hw(txmm_models::Arch::Sc, 3), &Sc as &dyn Model),
        ] {
            let mut filtered = HashSet::new();
            enumerate(&cfg, &mut |x| {
                if model.consistent(x) {
                    filtered.insert(canon_key(x));
                }
            });
            let mut pruned = HashSet::new();
            let st = enumerate_consistent(&cfg, model, &mut |x| {
                assert!(pruned.insert(canon_key(x)), "duplicate class");
            });
            assert_eq!(pruned, filtered, "{}", model.name());
            assert!(
                st.delta_answers + st.oracle_calls > 0,
                "viability never consulted"
            );
            assert!(st.subtrees_cut > 0, "nothing pruned at |E|=3?");
        }
    }

    /// The exact-skip arithmetic: skipped + materialised = the closed-
    /// form size of the structure space, pruned or not.
    #[test]
    fn skip_counts_are_exact() {
        let cfg = EnumConfig::hw(txmm_models::Arch::X86, 3);
        let mut total_unpruned = 0u64;
        enumerate(&cfg, &mut |_| total_unpruned += 1);
        // Count *all* survivors (pre-keep candidates are not visible,
        // so compare in class units: survivors + a skipped lower bound
        // cannot exceed the unpruned candidate count).
        let mut survivors = 0u64;
        let st = enumerate_pruned(&cfg, oracle_for(&X86::tm(), false), &mut |_| survivors += 1);
        assert!(survivors <= total_unpruned);
        assert!(st.candidates_skipped > 0);
    }

    /// The txn-first walk yields exactly the classic walk's consistent
    /// classes (and exercises the txns-known exact delta plans, which
    /// the classic walk never builds).
    #[test]
    fn txn_first_matches_classic() {
        for (cfg, model) in [
            (
                EnumConfig::hw(txmm_models::Arch::X86, 3),
                &X86::tm() as &dyn Model,
            ),
            (
                EnumConfig::hw(txmm_models::Arch::Sc, 3),
                &txmm_models::Tsc as &dyn Model,
            ),
        ] {
            let mut classic = HashSet::new();
            enumerate_consistent(&cfg, model, &mut |x| {
                classic.insert(canon_key(x));
            });
            let mut first = HashSet::new();
            let st = enumerate_consistent_txn_first(&cfg, model, &mut |x| {
                assert!(first.insert(canon_key(x)), "duplicate class");
            })
            .expect("txn-aware exact oracle");
            assert_eq!(first, classic, "{}", model.name());
            assert!(st.delta_answers > 0, "txn-aware plan never consulted");
        }
        // Inexact txns-known plans refuse the mode.
        let cfg = EnumConfig::hw(txmm_models::Arch::Power, 3);
        assert!(
            enumerate_consistent_txn_first(&cfg, &txmm_models::Power::tm(), &mut |_| {}).is_none()
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let cfg = EnumConfig::hw(txmm_models::Arch::X86, 3);
        let (seq, seq_st) = count_consistent(&cfg, &X86::tm());
        let (par, par_st) = count_consistent_par(&cfg, &X86::tm());
        assert_eq!(seq, par);
        assert_eq!(seq_st.subtrees_cut, par_st.subtrees_cut);
        assert_eq!(seq_st.candidates_skipped, par_st.candidates_skipped);
    }

    #[test]
    fn no_prune_oracle_still_filters() {
        // A model without an oracle degrades to enumerate-and-check.
        let cfg = EnumConfig::hw(txmm_models::Arch::Sc, 3);
        let mut filtered = 0usize;
        enumerate(&cfg, &mut |x| {
            if Sc.consistent(x) {
                filtered += 1;
            }
        });
        let mut got = 0usize;
        let st = enumerate_pruned(&cfg, &NoPrune, &mut |x| {
            if Sc.consistent(x) {
                got += 1;
            }
        });
        assert_eq!(got, filtered);
        assert_eq!(st.subtrees_cut, 0);
    }
}
