//! Model-difference search: Memalloy's original mode (§4).
//!
//! Given two models `M` and `N`, find executions that are inconsistent
//! under `M` but consistent under `N` — the seed operation behind axiom
//! refinement (§4.1).
//!
//! The search consumes the streaming enumerator on the work-stealing
//! pool ([`crate::enumerate::visit_par`]): candidates are checked on
//! whichever worker enumerates them, witnesses carry their position in
//! the sequential enumeration order, and a final sort makes the
//! parallel result identical to the sequential one (the sequential
//! versions are kept as differential references).

use std::sync::atomic::{AtomicBool, Ordering};

use txmm_core::Execution;
use txmm_models::{consistent_pair, Model};

use crate::enumerate::{enumerate, visit_par, CandSeq, EnumConfig};
use crate::par::worker_count;

/// Executions distinguishing `m` (forbids) from `n` (allows), up to the
/// configured size; keeps the first `limit` witnesses (in enumeration
/// order) when given.
///
/// Runs on the work-stealing pool; the result lists the same witnesses
/// in the same order as [`distinguish_seq`].
pub fn distinguish(
    cfg: &EnumConfig,
    m: &dyn Model,
    n: &dyn Model,
    limit: Option<usize>,
) -> Vec<Execution> {
    let (states, _) = visit_par(
        cfg,
        worker_count(),
        |_| Vec::new(),
        |seq, x, found: &mut Vec<(CandSeq, Execution)>| {
            let (mc, nc) = consistent_pair(m, n, x);
            if !mc && nc {
                found.push((seq, x.clone()));
            }
        },
    );
    let mut all: Vec<(CandSeq, Execution)> = states.into_iter().flatten().collect();
    all.sort_by_key(|(seq, _)| *seq);
    if let Some(l) = limit {
        all.truncate(l);
    }
    all.into_iter().map(|(_, x)| x).collect()
}

/// The sequential reference implementation of [`distinguish`].
pub fn distinguish_seq(
    cfg: &EnumConfig,
    m: &dyn Model,
    n: &dyn Model,
    limit: Option<usize>,
) -> Vec<Execution> {
    let mut out = Vec::new();
    enumerate(cfg, &mut |x| {
        if let Some(l) = limit {
            if out.len() >= l {
                return;
            }
        }
        let (mc, nc) = consistent_pair(m, n, x);
        if !mc && nc {
            out.push(x.clone());
        }
    });
    out
}

/// Are the two models equivalent on every execution up to the bound?
///
/// Candidates stream across the work-stealing pool; the first
/// disagreement anywhere stops every worker at its next candidate.
pub fn equivalent(cfg: &EnumConfig, m: &dyn Model, n: &dyn Model) -> bool {
    let diverged = AtomicBool::new(false);
    crate::enumerate::for_each_par(cfg, |x| {
        if diverged.load(Ordering::Relaxed) {
            return;
        }
        let (mc, nc) = consistent_pair(m, n, x);
        if mc != nc {
            diverged.store(true, Ordering::Relaxed);
        }
    });
    !diverged.load(Ordering::Relaxed)
}

/// The sequential reference implementation of [`equivalent`].
pub fn equivalent_seq(cfg: &EnumConfig, m: &dyn Model, n: &dyn Model) -> bool {
    let mut eq = true;
    enumerate(cfg, &mut |x| {
        if !eq {
            return;
        }
        let (mc, nc) = consistent_pair(m, n, x);
        if mc != nc {
            eq = false;
        }
    });
    eq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canon_key;
    use txmm_models::{Arch, Sc, Tsc, X86};

    #[test]
    fn sc_vs_tsc_differ_only_with_txns() {
        let cfg = EnumConfig {
            arch: Arch::Sc,
            events: 3,
            max_threads: 2,
            max_locs: 2,
            fences: false,
            deps: false,
            rmws: false,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        let found = distinguish(&cfg, &Tsc, &Sc, Some(5));
        assert!(!found.is_empty());
        for x in &found {
            assert!(
                !x.txns().is_empty(),
                "SC = TSC on transaction-free executions"
            );
        }
    }

    #[test]
    fn sc_stronger_than_x86() {
        // SC forbids store buffering; x86 allows it.
        let cfg = EnumConfig {
            arch: Arch::X86,
            events: 4,
            max_threads: 2,
            max_locs: 2,
            fences: false,
            deps: false,
            rmws: false,
            txns: false,
            attrs: false,
            atomic_txns: false,
        };
        let found = distinguish(&cfg, &Sc, &X86::base(), Some(1));
        assert!(!found.is_empty());
        // The reverse direction finds nothing: x86 never forbids what SC
        // allows.
        let rev = distinguish(&cfg, &X86::base(), &Sc, Some(1));
        assert!(rev.is_empty());
    }

    #[test]
    fn model_self_equivalence() {
        let cfg = EnumConfig {
            arch: Arch::X86,
            events: 3,
            max_threads: 2,
            max_locs: 2,
            fences: true,
            deps: false,
            rmws: true,
            txns: false,
            attrs: false,
            atomic_txns: false,
        };
        assert!(equivalent(&cfg, &X86::base(), &X86::base()));
        assert!(
            equivalent(&cfg, &X86::base(), &X86::tm()),
            "equal without transactions"
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let cfg = EnumConfig {
            arch: Arch::Sc,
            events: 3,
            max_threads: 2,
            max_locs: 2,
            fences: false,
            deps: false,
            rmws: false,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        let par: Vec<_> = distinguish(&cfg, &Tsc, &Sc, None)
            .iter()
            .map(canon_key)
            .collect();
        let seq: Vec<_> = distinguish_seq(&cfg, &Tsc, &Sc, None)
            .iter()
            .map(canon_key)
            .collect();
        assert_eq!(par, seq, "same witnesses in the same enumeration order");
        // Limits truncate the same prefix.
        let par2: Vec<_> = distinguish(&cfg, &Tsc, &Sc, Some(3))
            .iter()
            .map(canon_key)
            .collect();
        assert_eq!(par2, seq[..3]);
        assert_eq!(equivalent(&cfg, &Tsc, &Sc), equivalent_seq(&cfg, &Tsc, &Sc));
        assert_eq!(equivalent(&cfg, &Sc, &Sc), equivalent_seq(&cfg, &Sc, &Sc));
    }
}
