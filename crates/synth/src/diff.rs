//! Model-difference search: Memalloy's original mode (§4).
//!
//! Given two models `M` and `N`, find executions that are inconsistent
//! under `M` but consistent under `N` — the seed operation behind axiom
//! refinement (§4.1).

use txmm_core::Execution;
use txmm_models::Model;

use crate::enumerate::{enumerate, EnumConfig};

/// Executions distinguishing `m` (forbids) from `n` (allows), up to the
/// configured size; stops after `limit` witnesses when given.
pub fn distinguish(
    cfg: &EnumConfig,
    m: &dyn Model,
    n: &dyn Model,
    limit: Option<usize>,
) -> Vec<Execution> {
    let mut out = Vec::new();
    enumerate(cfg, &mut |x| {
        if let Some(l) = limit {
            if out.len() >= l {
                return;
            }
        }
        let a = x.analysis();
        if !m.consistent_analysis(&a) && n.consistent_analysis(&a) {
            out.push(x.clone());
        }
    });
    out
}

/// Are the two models equivalent on every execution up to the bound?
pub fn equivalent(cfg: &EnumConfig, m: &dyn Model, n: &dyn Model) -> bool {
    let mut eq = true;
    enumerate(cfg, &mut |x| {
        if !eq {
            return;
        }
        let a = x.analysis();
        if m.consistent_analysis(&a) != n.consistent_analysis(&a) {
            eq = false;
        }
    });
    eq
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_models::{Arch, Sc, Tsc, X86};

    #[test]
    fn sc_vs_tsc_differ_only_with_txns() {
        let cfg = EnumConfig {
            arch: Arch::Sc,
            events: 3,
            max_threads: 2,
            max_locs: 2,
            fences: false,
            deps: false,
            rmws: false,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        let found = distinguish(&cfg, &Tsc, &Sc, Some(5));
        assert!(!found.is_empty());
        for x in &found {
            assert!(
                !x.txns().is_empty(),
                "SC = TSC on transaction-free executions"
            );
        }
    }

    #[test]
    fn sc_stronger_than_x86() {
        // SC forbids store buffering; x86 allows it.
        let cfg = EnumConfig {
            arch: Arch::X86,
            events: 4,
            max_threads: 2,
            max_locs: 2,
            fences: false,
            deps: false,
            rmws: false,
            txns: false,
            attrs: false,
            atomic_txns: false,
        };
        let found = distinguish(&cfg, &Sc, &X86::base(), Some(1));
        assert!(!found.is_empty());
        // The reverse direction finds nothing: x86 never forbids what SC
        // allows.
        let rev = distinguish(&cfg, &X86::base(), &Sc, Some(1));
        assert!(rev.is_empty());
    }

    #[test]
    fn model_self_equivalence() {
        let cfg = EnumConfig {
            arch: Arch::X86,
            events: 3,
            max_threads: 2,
            max_locs: 2,
            fences: true,
            deps: false,
            rmws: true,
            txns: false,
            attrs: false,
            atomic_txns: false,
        };
        assert!(equivalent(&cfg, &X86::base(), &X86::base()));
        assert!(
            equivalent(&cfg, &X86::base(), &X86::tm()),
            "equal without transactions"
        );
    }
}
