//! Model-difference search: Memalloy's original mode (§4).
//!
//! Given two models `M` and `N`, find executions that are inconsistent
//! under `M` but consistent under `N` — the seed operation behind axiom
//! refinement (§4.1).
//!
//! The search is sharded by thread shape like the enumerator itself:
//! shards run on every core via [`crate::par`], results merge in shape
//! order, so the parallel search returns exactly the witnesses the
//! sequential one would (the sequential versions are kept as
//! differential references).

use std::sync::atomic::{AtomicBool, Ordering};

use txmm_core::Execution;
use txmm_models::{consistent_pair, Model};

use crate::enumerate::{config_shapes, enumerate, enumerate_shape, EnumConfig};
use crate::par::par_map;

/// Executions distinguishing `m` (forbids) from `n` (allows), up to the
/// configured size; stops after `limit` witnesses when given.
///
/// Runs shape shards in parallel on every core; the result lists the
/// same witnesses in the same (shape-major) order as
/// [`distinguish_seq`].
pub fn distinguish(
    cfg: &EnumConfig,
    m: &dyn Model,
    n: &dyn Model,
    limit: Option<usize>,
) -> Vec<Execution> {
    let shards = par_map(config_shapes(cfg), |shape| {
        let mut out = Vec::new();
        enumerate_shape(cfg, &shape, &mut |x| {
            if let Some(l) = limit {
                if out.len() >= l {
                    return;
                }
            }
            let (mc, nc) = consistent_pair(m, n, x);
            if !mc && nc {
                out.push(x.clone());
            }
        });
        out
    });
    let mut out: Vec<Execution> = shards.into_iter().flatten().collect();
    if let Some(l) = limit {
        out.truncate(l);
    }
    out
}

/// The sequential reference implementation of [`distinguish`].
pub fn distinguish_seq(
    cfg: &EnumConfig,
    m: &dyn Model,
    n: &dyn Model,
    limit: Option<usize>,
) -> Vec<Execution> {
    let mut out = Vec::new();
    enumerate(cfg, &mut |x| {
        if let Some(l) = limit {
            if out.len() >= l {
                return;
            }
        }
        let (mc, nc) = consistent_pair(m, n, x);
        if !mc && nc {
            out.push(x.clone());
        }
    });
    out
}

/// Are the two models equivalent on every execution up to the bound?
///
/// Shards run in parallel; the first disagreement anywhere stops every
/// other shard early.
pub fn equivalent(cfg: &EnumConfig, m: &dyn Model, n: &dyn Model) -> bool {
    let diverged = AtomicBool::new(false);
    par_map(config_shapes(cfg), |shape| {
        enumerate_shape(cfg, &shape, &mut |x| {
            if diverged.load(Ordering::Relaxed) {
                return;
            }
            let (mc, nc) = consistent_pair(m, n, x);
            if mc != nc {
                diverged.store(true, Ordering::Relaxed);
            }
        });
    });
    !diverged.load(Ordering::Relaxed)
}

/// The sequential reference implementation of [`equivalent`].
pub fn equivalent_seq(cfg: &EnumConfig, m: &dyn Model, n: &dyn Model) -> bool {
    let mut eq = true;
    enumerate(cfg, &mut |x| {
        if !eq {
            return;
        }
        let (mc, nc) = consistent_pair(m, n, x);
        if mc != nc {
            eq = false;
        }
    });
    eq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canon_key;
    use txmm_models::{Arch, Sc, Tsc, X86};

    #[test]
    fn sc_vs_tsc_differ_only_with_txns() {
        let cfg = EnumConfig {
            arch: Arch::Sc,
            events: 3,
            max_threads: 2,
            max_locs: 2,
            fences: false,
            deps: false,
            rmws: false,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        let found = distinguish(&cfg, &Tsc, &Sc, Some(5));
        assert!(!found.is_empty());
        for x in &found {
            assert!(
                !x.txns().is_empty(),
                "SC = TSC on transaction-free executions"
            );
        }
    }

    #[test]
    fn sc_stronger_than_x86() {
        // SC forbids store buffering; x86 allows it.
        let cfg = EnumConfig {
            arch: Arch::X86,
            events: 4,
            max_threads: 2,
            max_locs: 2,
            fences: false,
            deps: false,
            rmws: false,
            txns: false,
            attrs: false,
            atomic_txns: false,
        };
        let found = distinguish(&cfg, &Sc, &X86::base(), Some(1));
        assert!(!found.is_empty());
        // The reverse direction finds nothing: x86 never forbids what SC
        // allows.
        let rev = distinguish(&cfg, &X86::base(), &Sc, Some(1));
        assert!(rev.is_empty());
    }

    #[test]
    fn model_self_equivalence() {
        let cfg = EnumConfig {
            arch: Arch::X86,
            events: 3,
            max_threads: 2,
            max_locs: 2,
            fences: true,
            deps: false,
            rmws: true,
            txns: false,
            attrs: false,
            atomic_txns: false,
        };
        assert!(equivalent(&cfg, &X86::base(), &X86::base()));
        assert!(
            equivalent(&cfg, &X86::base(), &X86::tm()),
            "equal without transactions"
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let cfg = EnumConfig {
            arch: Arch::Sc,
            events: 3,
            max_threads: 2,
            max_locs: 2,
            fences: false,
            deps: false,
            rmws: false,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        let par: Vec<_> = distinguish(&cfg, &Tsc, &Sc, None)
            .iter()
            .map(canon_key)
            .collect();
        let seq: Vec<_> = distinguish_seq(&cfg, &Tsc, &Sc, None)
            .iter()
            .map(canon_key)
            .collect();
        assert_eq!(par, seq, "same witnesses in the same shape-major order");
        // Limits truncate the same prefix.
        let par2: Vec<_> = distinguish(&cfg, &Tsc, &Sc, Some(3))
            .iter()
            .map(canon_key)
            .collect();
        assert_eq!(par2, seq[..3]);
        assert_eq!(equivalent(&cfg, &Tsc, &Sc), equivalent_seq(&cfg, &Tsc, &Sc));
        assert_eq!(equivalent(&cfg, &Sc, &Sc), equivalent_seq(&cfg, &Sc, &Sc));
    }
}
