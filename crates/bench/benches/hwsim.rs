//! Hardware-simulator benchmarks: exhaustive exploration cost per test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txmm_hwsim::{ArmSim, PowerSim, Simulator, TsoSim};
use txmm_litmus::litmus_from_execution;
use txmm_models::{catalog, Arch};

fn bench_sims(c: &mut Criterion) {
    let mut g = c.benchmark_group("hwsim");
    let cases = vec![
        ("sb", catalog::sb(None, false, false)),
        ("sb+txns", catalog::sb(None, true, true)),
        ("mp", catalog::mp(None, false, false)),
        ("iriw+txns", catalog::power_exec3(true)),
    ];
    for (name, x) in &cases {
        let tx86 = litmus_from_execution(name, x, Arch::X86);
        g.bench_with_input(BenchmarkId::new("tso", name), &tx86, |b, t| {
            b.iter(|| TsoSim.run(std::hint::black_box(t)).len())
        });
        let tarm = litmus_from_execution(name, x, Arch::Armv8);
        g.bench_with_input(BenchmarkId::new("armv8", name), &tarm, |b, t| {
            b.iter(|| ArmSim::default().run(std::hint::black_box(t)).len())
        });
        let tpow = litmus_from_execution(name, x, Arch::Power);
        g.bench_with_input(BenchmarkId::new("power", name), &tpow, |b, t| {
            b.iter(|| PowerSim::default().run(std::hint::black_box(t)).len())
        });
    }
    g.bench_function("elision-armv8", |b| {
        let t = litmus_from_execution("elision", &catalog::armv8_elision(false), Arch::Armv8);
        b.iter(|| ArmSim::default().observable(std::hint::black_box(&t)))
    });
    g.finish();
}

criterion_group!(benches, bench_sims);
criterion_main!(benches);
