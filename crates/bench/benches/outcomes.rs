//! Outcome-engine throughput: allowed-final-state tables over the
//! generated 50-test corpus, warm Session vs cold, plus the
//! candidate-space numbers (how many candidates the programs expand to
//! and how many canonical classes survive the symmetry pruning).
//!
//! The headline prints before the criterion measurements:
//!
//! ```text
//! outcomes/headline: corpus=50 candidates=1214 classes=1200 | cold
//! 2506 tables/s | warm 105042 tables/s (41.9x cold)
//! ```

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use txmm::serve::{outcomes_jsonl_line, serve_outcomes_source};
use txmm::session::Session;

fn corpus() -> Vec<(String, String)> {
    txmm::corpus::generate(3)
        .into_iter()
        .map(|(name, src)| (format!("{name}.litmus"), src))
        .collect()
}

/// Serve every corpus program's outcome table once, rendering the JSONL
/// line (the full serving path `txmm outcomes` takes).
fn pass(session: &mut Session, corpus: &[(String, String)]) -> usize {
    let mut bytes = 0usize;
    for (file, src) in corpus {
        let served = serve_outcomes_source(session, file, src, None);
        bytes += outcomes_jsonl_line(&served).len();
    }
    bytes
}

fn headline(corpus: &[(String, String)]) {
    let mut cold_session = Session::new();
    let start = Instant::now();
    pass(&mut cold_session, corpus);
    let cold = start.elapsed();
    let stats = cold_session.stats();

    // Warm: same session, every table from the outcome-set cache.
    let reps = 5;
    let mut warm = Duration::ZERO;
    for _ in 0..reps {
        let start = Instant::now();
        pass(&mut cold_session, corpus);
        warm += start.elapsed();
    }
    let warm = warm / reps;

    let n = corpus.len() as f64;
    println!(
        "outcomes/headline: corpus={} candidates={} classes={} | \
         cold {:.0} tables/s | warm {:.0} tables/s ({:.1}x cold)",
        corpus.len(),
        stats.outcome_candidates,
        stats.outcome_classes,
        n / cold.as_secs_f64(),
        n / warm.as_secs_f64(),
        cold.as_secs_f64() / warm.as_secs_f64(),
    );
}

fn bench_outcomes(c: &mut Criterion) {
    let corpus = corpus();
    headline(&corpus);

    // Cold: a fresh Session per iteration — enumeration, canonical
    // interning and model checking all on the clock.
    c.bench_function("outcomes/cold-corpus", |b| {
        b.iter(|| {
            let mut s = Session::new();
            pass(&mut s, &corpus)
        })
    });

    // Warm: one long-lived Session, tables served from the per-program
    // outcome-set cache.
    let mut warm_session = Session::new();
    pass(&mut warm_session, &corpus);
    c.bench_function("outcomes/warm-corpus", |b| {
        b.iter(|| pass(&mut warm_session, &corpus))
    });
}

criterion_group!(benches, bench_outcomes);
criterion_main!(benches);
