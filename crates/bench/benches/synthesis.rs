//! Table 1 engine benchmarks: enumeration and Forbid/Allow synthesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txmm_bench::table1_config;
use txmm_models::{Arch, Power, Sc, Tsc, X86};
use txmm_synth::{count, count_par, synthesise, synthesise_seq, EnumConfig};

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumerate");
    g.sample_size(10);
    for events in [2, 3] {
        let cfg = table1_config(Arch::X86, events);
        g.bench_with_input(BenchmarkId::new("x86", events), &cfg, |b, cfg| {
            b.iter(|| count(std::hint::black_box(cfg)))
        });
        g.bench_with_input(BenchmarkId::new("x86-par", events), &cfg, |b, cfg| {
            b.iter(|| count_par(std::hint::black_box(cfg)))
        });
    }
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesise");
    g.sample_size(10);
    let x86cfg = table1_config(Arch::X86, 3);
    g.bench_function("x86-forbid-3", |b| {
        b.iter(|| {
            synthesise(&x86cfg, &X86::tm(), &X86::base(), None)
                .forbid
                .len()
        })
    });
    g.bench_function("x86-forbid-3-seq", |b| {
        b.iter(|| {
            synthesise_seq(&x86cfg, &X86::tm(), &X86::base(), None)
                .forbid
                .len()
        })
    });
    let pcfg = table1_config(Arch::Power, 3);
    g.bench_function("power-forbid-3", |b| {
        b.iter(|| {
            synthesise(&pcfg, &Power::tm(), &Power::base(), None)
                .forbid
                .len()
        })
    });
    g.bench_function("power-forbid-3-seq", |b| {
        b.iter(|| {
            synthesise_seq(&pcfg, &Power::tm(), &Power::base(), None)
                .forbid
                .len()
        })
    });
    let tsc_cfg = EnumConfig {
        arch: Arch::Sc,
        events: 3,
        max_threads: 2,
        max_locs: 2,
        fences: false,
        deps: false,
        rmws: false,
        txns: true,
        attrs: false,
        atomic_txns: false,
    };
    g.bench_function("tsc-forbid-3", |b| {
        b.iter(|| synthesise(&tsc_cfg, &Tsc, &Sc, None).forbid.len())
    });
    g.finish();
}

criterion_group!(benches, bench_enumeration, bench_synthesis);
criterion_main!(benches);
