//! Table 2 engine benchmarks: monotonicity, compilation and lock-elision
//! checking.

use criterion::{criterion_group, criterion_main, Criterion};
use txmm_models::{Arch, Power, X86};
use txmm_synth::EnumConfig;
use txmm_verify::{check_compilation, check_lock_elision, check_monotonicity, ElisionTarget};

fn cfg(arch: Arch, events: usize) -> EnumConfig {
    EnumConfig {
        arch,
        events,
        max_threads: 2,
        max_locs: 2,
        fences: true,
        deps: arch == Arch::Power,
        rmws: true,
        txns: true,
        attrs: false,
        atomic_txns: false,
    }
}

fn bench_metatheory(c: &mut Criterion) {
    let mut g = c.benchmark_group("metatheory");
    g.sample_size(10);
    g.bench_function("monotonicity-power-2", |b| {
        b.iter(|| {
            check_monotonicity(&cfg(Arch::Power, 2), &Power::tm(), None)
                .counterexample
                .is_some()
        })
    });
    g.bench_function("monotonicity-x86-3", |b| {
        b.iter(|| {
            check_monotonicity(&cfg(Arch::X86, 3), &X86::tm(), None)
                .counterexample
                .is_none()
        })
    });
    g.bench_function("compile-cpp-to-armv8-3", |b| {
        b.iter(|| {
            check_compilation(3, Arch::Armv8, None)
                .counterexample
                .is_none()
        })
    });
    g.bench_function("elision-armv8", |b| {
        b.iter(|| {
            check_lock_elision(ElisionTarget::Armv8, None)
                .counterexample
                .is_some()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_metatheory);
criterion_main!(benches);
