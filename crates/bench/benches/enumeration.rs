//! Enumeration-throughput benchmarks: the streaming, incrementally
//! canonicalised engine against the seed generate-then-dedup path, and
//! the work-stealing pool against the seed static shape-shard split.
//!
//! The headline is the bound push: `x86-5-stream` enumerates the full
//! |E| = 5 x86 hardware space (6,094,392 canonical classes) in seconds
//! with bounded memory, where the seed path pays |threads|! full-
//! execution serialisations per candidate plus a canonical-key set the
//! size of the space per shape.
//!
//! `shape-imbalance` prints (once, untimed) how much of the |E| = 4
//! candidate space the single largest thread shape holds — the share
//! that bounds any static per-shape split, and the reason the
//! work-stealing pool splits *within* shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txmm_bench::table1_config;
use txmm_models::Arch;
use txmm_synth::enumerate::config_shapes;
use txmm_synth::{
    count, count_par, count_reference, enumerate_shape, par_map, stream_par, EnumConfig,
};

fn bench_streaming_vs_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumerate");
    g.sample_size(10);
    for events in [3, 4] {
        let cfg = EnumConfig::hw(Arch::X86, events);
        g.bench_with_input(BenchmarkId::new("x86-stream", events), &cfg, |b, cfg| {
            b.iter(|| count(std::hint::black_box(cfg)))
        });
        g.bench_with_input(BenchmarkId::new("x86-reference", events), &cfg, |b, cfg| {
            b.iter(|| count_reference(std::hint::black_box(cfg)))
        });
    }
    let power = EnumConfig::hw(Arch::Power, 3);
    g.bench_with_input(BenchmarkId::new("power-stream", 3), &power, |b, cfg| {
        b.iter(|| count(std::hint::black_box(cfg)))
    });
    g.bench_with_input(BenchmarkId::new("power-reference", 3), &power, |b, cfg| {
        b.iter(|| count_reference(std::hint::black_box(cfg)))
    });
    g.finish();
}

/// The seed parallel split: one shard per thread shape, whole shards
/// handed to `par_map`'s worker pool.
fn count_static_shards(cfg: &EnumConfig) -> usize {
    par_map(config_shapes(cfg), |shape| {
        let mut n = 0usize;
        enumerate_shape(cfg, &shape, &mut |_| n += 1);
        n
    })
    .into_iter()
    .sum()
}

fn bench_work_stealing_vs_static(c: &mut Criterion) {
    // Untimed context: the largest shape's share of the space bounds the
    // static split's best case (its wall-clock can never drop below the
    // biggest shard), while the stealing pool splits that shape into
    // hundreds of subtree jobs.
    let cfg = table1_config(Arch::X86, 4);
    let per_shape: Vec<usize> = config_shapes(&cfg)
        .iter()
        .map(|shape| {
            let mut n = 0usize;
            enumerate_shape(&cfg, shape, &mut |_| n += 1);
            n
        })
        .collect();
    let total: usize = per_shape.iter().sum();
    let biggest = per_shape.iter().copied().max().unwrap_or(0);
    eprintln!(
        "shape-imbalance x86-4: {} shapes, biggest holds {}/{} candidates ({:.0}%) — \
         static-split speedup is capped at {:.2}x on any core count",
        per_shape.len(),
        biggest,
        total,
        100.0 * biggest as f64 / total.max(1) as f64,
        total as f64 / biggest.max(1) as f64,
    );

    let mut g = c.benchmark_group("split");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("x86-static-shards", 4), &cfg, |b, cfg| {
        b.iter(|| count_static_shards(std::hint::black_box(cfg)))
    });
    g.bench_with_input(BenchmarkId::new("x86-work-stealing", 4), &cfg, |b, cfg| {
        b.iter(|| count_par(std::hint::black_box(cfg)))
    });
    g.finish();
}

fn bench_five_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("bound-push");
    g.sample_size(10);
    // The |E| = 5 full x86 hardware space: streaming + work stealing
    // completes it in seconds with bounded memory (no candidate vector,
    // no dedup set). The seed path is not benchmarked here — it pays
    // minutes and a space-sized key set.
    let cfg = EnumConfig::hw(Arch::X86, 5);
    g.bench_with_input(BenchmarkId::new("x86-5-stream", 5), &cfg, |b, cfg| {
        b.iter(|| count_par(std::hint::black_box(cfg)))
    });
    g.finish();
}

fn bench_bounded_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream");
    g.sample_size(10);
    // Consuming through the bounded channel (the Session interning
    // path) versus raw counting: the price of streaming delivery.
    let cfg = EnumConfig::hw(Arch::X86, 3);
    g.bench_with_input(BenchmarkId::new("x86-channel", 3), &cfg, |b, cfg| {
        b.iter(|| stream_par(cfg.clone(), 256).count())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_streaming_vs_reference,
    bench_work_stealing_vs_static,
    bench_five_events,
    bench_bounded_stream
);
criterion_main!(benches);
