//! Observability overhead: what the metrics registry and span plumbing
//! cost on the hot path.
//!
//! Before the criterion measurements, a headline comparison is printed
//! pinning the acceptance number: a warm in-process `check` pass with
//! the registry live must stay within 2% of the same pass timed around
//! the registry (the PR 7 baseline is the untraced warm pass — the
//! registry handles were free-standing atomics then, so the untraced
//! number IS the baseline shape; the traced pass shows the worst case
//! with a span timeline recorded per request).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use txmm::daemon::{PoolConfig, SessionPool};
use txmm::obs;

fn corpus() -> Vec<(String, String)> {
    txmm::corpus::generate(3)
        .into_iter()
        .map(|(name, src)| (format!("{name}.litmus"), src))
        .collect()
}

fn warm_pool(corpus: &[(String, String)]) -> SessionPool {
    let pool = SessionPool::new(&PoolConfig {
        shards: 2,
        ..PoolConfig::default()
    })
    .expect("pool builds");
    for (file, src) in corpus {
        pool.check(file, src, None);
    }
    pool
}

/// One warm pass; returns wall-clock time.
fn pass(pool: &SessionPool, corpus: &[(String, String)], traced: bool) -> Duration {
    let start = Instant::now();
    for (file, src) in corpus {
        if traced {
            let trace = obs::Trace::new("bench");
            criterion::black_box(pool.check_traced(file, src, None, &trace));
        } else {
            criterion::black_box(pool.check(file, src, None));
        }
    }
    start.elapsed()
}

fn headline(corpus: &[(String, String)]) {
    let pool = warm_pool(corpus);
    let reps = 20;
    let (mut plain, mut traced) = (Duration::ZERO, Duration::ZERO);
    // Interleave so drift hits both variants equally.
    for _ in 0..reps {
        plain += pass(&pool, corpus, false);
        traced += pass(&pool, corpus, true);
    }
    let per = |d: Duration| d.as_secs_f64() * 1e6 / (reps * corpus.len()) as f64;
    println!(
        "obs-overhead/headline: warm check {:.1} µs/req | traced {:.1} µs/req \
         ({:+.1}% for trace_id + span timeline; acceptance: registry \u{2264} 2% over PR 7 baseline)",
        per(plain),
        per(traced),
        (per(traced) / per(plain) - 1.0) * 100.0,
    );
}

fn bench_obs(c: &mut Criterion) {
    let corpus = corpus();
    headline(&corpus);

    // Registry primitives: the per-event costs every subsystem pays.
    let counter = obs::global().counter("bench_obs_counter_total", "bench counter");
    let histogram = obs::global().histogram("bench_obs_histogram_microseconds", "bench histogram");
    let mut g = c.benchmark_group("obs-primitives");
    g.bench_function("counter-inc", |b| b.iter(|| counter.inc()));
    g.bench_function("histogram-record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            histogram.record(v >> 40);
        })
    });
    // Span guard with no trace installed: the untraced-request cost.
    g.bench_function("span-untraced", |b| {
        b.iter(|| obs::SpanGuard::enter("bench.span").finish())
    });
    // Span guard inside a live trace: the traced-request cost.
    g.bench_function("span-traced", |b| {
        let trace = obs::Trace::new("bench");
        b.iter(|| {
            obs::with_trace(Some(&trace), || {
                obs::SpanGuard::enter("bench.span").finish()
            })
        })
    });
    g.finish();

    // The warm check hot path, in-process (no socket noise), both
    // flavours — the numbers the headline summarises.
    let pool = warm_pool(&corpus);
    let mut g = c.benchmark_group("obs-warm-check");
    g.bench_function("untraced-pass", |b| b.iter(|| pass(&pool, &corpus, false)));
    g.bench_function("traced-pass", |b| b.iter(|| pass(&pool, &corpus, true)));
    g.finish();

    // Rendering: what a Prometheus scrape costs against the warmed-up
    // global registry.
    c.bench_function("obs/render-prom", |b| {
        b.iter(|| criterion::black_box(obs::global().render_prom()).len())
    });
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
