//! Consistency-check throughput for every model (the inner loop of all
//! synthesis and verification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txmm_models::catalog;
use txmm_models::registry::all_models;

fn bench_models(c: &mut Criterion) {
    let execs = vec![
        ("fig2", catalog::fig2()),
        ("sb+txns", catalog::sb(None, true, true)),
        ("iriw+txns", catalog::power_exec3(true)),
        ("elision", catalog::armv8_elision(false)),
    ];
    let mut g = c.benchmark_group("consistency");
    for model in all_models() {
        for (name, x) in &execs {
            g.bench_with_input(BenchmarkId::new(model.name(), name), x, |b, x| {
                b.iter(|| model.consistent(std::hint::black_box(x)))
            });
        }
    }
    g.finish();
}

fn bench_shared_analysis(c: &mut Criterion) {
    // The tentpole measurement: checking every model against one
    // execution with a fresh analysis per model (the old pipeline
    // shape) vs one shared analysis (the new pipeline shape).
    let execs = vec![
        ("fig2", catalog::fig2()),
        ("iriw+txns", catalog::power_exec3(true)),
    ];
    let models = all_models();
    let mut g = c.benchmark_group("analysis-sharing");
    for (name, x) in &execs {
        g.bench_with_input(BenchmarkId::new("fresh-per-model", name), x, |b, x| {
            b.iter(|| {
                models
                    .iter()
                    .filter(|m| m.consistent_analysis(&std::hint::black_box(x).analysis()))
                    .count()
            })
        });
        g.bench_with_input(BenchmarkId::new("shared", name), x, |b, x| {
            b.iter(|| {
                let a = std::hint::black_box(x).analysis();
                models.iter().filter(|m| m.consistent_analysis(&a)).count()
            })
        });
    }
    g.finish();
}

fn bench_cat_vs_native(c: &mut Criterion) {
    let x = catalog::power_exec3(true);
    let native = txmm_models::Power::tm();
    let cat = txmm_cat::cat_model("power-tm").expect("shipped model");
    let mut g = c.benchmark_group("cat-vs-native");
    g.bench_function("native-power-tm", |b| {
        b.iter(|| txmm_models::Model::consistent(&native, std::hint::black_box(&x)))
    });
    g.bench_function("cat-power-tm", |b| {
        b.iter(|| cat.consistent(std::hint::black_box(&x)).expect("evaluates"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_models,
    bench_shared_analysis,
    bench_cat_vs_native
);
criterion_main!(benches);
