//! Compiled `.cat` VM vs the retained AST reference interpreter vs the
//! native Rust models.
//!
//! Two headlines print before the criterion measurements. The first is
//! the PR's acceptance number — compiled checking must be >= 5x the
//! reference interpreter on an |E| <= 4 fuzz-shaped corpus:
//!
//! ```text
//! cat-vm/headline: |E|<=4 corpus=2032 execs x86-tm | native 1.04M
//! checks/s | vm 1.06M checks/s | reference 0.14M checks/s | vm 7.6x
//! reference (2.9x end-to-end)
//! cat-vm/headline: aggregate vm 9.9x reference across the fuzz corpus
//! cat-vm/outcomes: corpus=50 --with-cat | cold 446 tables/s | warm
//! 6252 tables/s (14.0x cold) | compile: 100 misses, 11650 hits, 100
//! tiers, 1015us
//! ```
//!
//! (Measured on the CI container; the VM edges out even the native
//! models on Power/ARMv8 because its row-wise register ops skip the
//! whole-`Rel` temporaries the hand-written `derived()` paths build.)

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txmm::serve::{outcomes_jsonl_line, serve_outcomes_source};
use txmm::session::Session;
use txmm_cat::cat_model;
use txmm_core::Execution;
use txmm_models::registry::by_name;
use txmm_models::{catalog, Arch};
use txmm_synth::{enumerate, EnumConfig};

/// A sampled |E| <= 4 execution corpus in the differential-fuzz shape
/// (fences, RMWs and transaction layouts for `arch`), strided down to
/// ~2000 executions so every timing loop sees the same spread.
fn exec_corpus(arch: Arch) -> Vec<Execution> {
    let cfg = EnumConfig {
        arch,
        events: 4,
        max_threads: 2,
        max_locs: 2,
        fences: true,
        deps: false,
        rmws: true,
        txns: true,
        attrs: false,
        atomic_txns: false,
    };
    let mut all = Vec::new();
    enumerate(&cfg, &mut |x| all.push(x.clone()));
    let stride = (all.len() / 2000).max(1);
    all.into_iter().step_by(stride).collect()
}

/// Items per second for one full pass over `items`, repeating the pass
/// until at least 200ms is on the clock.
fn per_sec<T>(items: &[T], mut work: impl FnMut(&T) -> bool) -> f64 {
    let mut elapsed = Duration::ZERO;
    let mut done = 0usize;
    while elapsed < Duration::from_millis(200) {
        let start = Instant::now();
        for item in items {
            std::hint::black_box(work(std::hint::black_box(item)));
        }
        elapsed += start.elapsed();
        done += items.len();
    }
    done as f64 / elapsed.as_secs_f64()
}

/// The acceptance headline. Checking proper is measured over shared,
/// warmed analyses — the derived-relation caches are identical on both
/// sides, so the ratio isolates the bytecode VM against the AST walk.
/// The end-to-end ratio (per-execution analysis construction on the
/// clock, the `consistent(x)` path) prints alongside it, and the
/// aggregate line at the end is the recorded acceptance number.
fn headline_check_throughput() {
    let mut vm_total = 0f64;
    let mut ref_total = 0f64;
    for (arch, name) in [
        (Arch::X86, "x86-tm"),
        (Arch::Power, "power-tm"),
        (Arch::Armv8, "armv8-tm"),
    ] {
        let execs = exec_corpus(arch);
        let cat = cat_model(name).expect("shipped model");
        let native = by_name(name).expect("native model");
        let analyses: Vec<_> = execs.iter().map(|x| x.analysis()).collect();
        for a in &analyses {
            // Populate every lazy derived relation before timing.
            cat.check_analysis(a).expect("evaluates");
            cat.check_analysis_reference(a).expect("evaluates");
        }
        let native_rate = per_sec(&analyses, |a| native.consistent_analysis(a));
        let vm_rate = per_sec(&analyses, |a| {
            cat.consistent_analysis(a).expect("evaluates")
        });
        let ref_rate = per_sec(&analyses, |a| {
            cat.check_analysis_reference(a)
                .expect("evaluates")
                .violations()
                .is_empty()
        });
        let e2e_vm = per_sec(&execs, |x| cat.consistent(x).expect("evaluates"));
        let e2e_ref = per_sec(&execs, |x| cat.consistent_reference(x).expect("evaluates"));
        println!(
            "cat-vm/headline: |E|<=4 corpus={} execs {name} | native {:.2}M checks/s | \
             vm {:.2}M checks/s | reference {:.2}M checks/s | vm {:.1}x reference \
             ({:.1}x end-to-end)",
            execs.len(),
            native_rate / 1e6,
            vm_rate / 1e6,
            ref_rate / 1e6,
            vm_rate / ref_rate,
            e2e_vm / e2e_ref,
        );
        // Aggregate by mean per-check time, weighting each model evenly.
        vm_total += 1.0 / vm_rate;
        ref_total += 1.0 / ref_rate;
    }
    println!(
        "cat-vm/headline: aggregate vm {:.1}x reference across the fuzz corpus",
        ref_total / vm_total,
    );
}

/// One serving pass: every corpus program's outcome table through the
/// full `txmm outcomes --with-cat` path, JSONL rendering included.
fn outcomes_pass(session: &mut Session, corpus: &[(String, String)]) -> usize {
    let mut bytes = 0usize;
    for (file, src) in corpus {
        bytes += outcomes_jsonl_line(&serve_outcomes_source(session, file, src, None)).len();
    }
    bytes
}

fn litmus_corpus() -> Vec<(String, String)> {
    txmm::corpus::generate(3)
        .into_iter()
        .map(|(name, src)| (format!("{name}.litmus"), src))
        .collect()
}

fn headline_outcomes_with_cat(corpus: &[(String, String)]) {
    // Cold: model compilation and every per-event-count tier
    // specialisation on the clock.
    let mut session = Session::with_shipped_cat();
    let start = Instant::now();
    outcomes_pass(&mut session, corpus);
    let cold = start.elapsed();

    // Warm: same session — outcome-set cache plus a hot compile cache.
    let reps = 5;
    let mut warm = Duration::ZERO;
    for _ in 0..reps {
        let start = Instant::now();
        outcomes_pass(&mut session, corpus);
        warm += start.elapsed();
    }
    let warm = warm / reps;

    let stats = session.stats();
    let n = corpus.len() as f64;
    println!(
        "cat-vm/outcomes: corpus={} --with-cat | cold {:.0} tables/s | \
         warm {:.0} tables/s ({:.1}x cold) | compile: {} misses, {} hits, {} tiers, {}us",
        corpus.len(),
        n / cold.as_secs_f64(),
        n / warm.as_secs_f64(),
        cold.as_secs_f64() / warm.as_secs_f64(),
        stats.compile_misses,
        stats.compile_hits,
        stats.compile_entries,
        stats.compile_micros,
    );
}

/// VM vs reference vs native on the paper's worked examples, per model.
fn bench_check_paths(c: &mut Criterion) {
    let execs = vec![
        ("sb+txns", catalog::sb(None, true, true)),
        ("iriw+txns", catalog::power_exec3(true)),
    ];
    let mut g = c.benchmark_group("cat-vm");
    for name in ["x86-tm", "power-tm", "armv8-tm"] {
        let cat = cat_model(name).expect("shipped model");
        let native = by_name(name).expect("native model");
        for (xname, x) in &execs {
            g.bench_with_input(BenchmarkId::new(format!("{name}/vm"), xname), x, |b, x| {
                b.iter(|| cat.consistent(std::hint::black_box(x)).expect("evaluates"))
            });
            g.bench_with_input(
                BenchmarkId::new(format!("{name}/reference"), xname),
                x,
                |b, x| {
                    b.iter(|| {
                        cat.consistent_reference(std::hint::black_box(x))
                            .expect("evaluates")
                    })
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("{name}/native"), xname),
                x,
                |b, x| b.iter(|| native.consistent(std::hint::black_box(x))),
            );
        }
    }
    g.finish();
}

/// Corpus sweeps through the VM and the reference interpreter — the
/// per-iteration cost of the acceptance headline, criterion-measured.
fn bench_corpus_sweeps(c: &mut Criterion) {
    headline_check_throughput();
    let execs = exec_corpus(Arch::X86);
    let cat = cat_model("x86-tm").expect("shipped model");
    let mut g = c.benchmark_group("cat-vm-corpus");
    g.bench_function("vm", |b| {
        b.iter(|| {
            execs
                .iter()
                .filter(|x| cat.consistent(std::hint::black_box(x)).expect("evaluates"))
                .count()
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            execs
                .iter()
                .filter(|x| {
                    cat.consistent_reference(std::hint::black_box(x))
                        .expect("evaluates")
                })
                .count()
        })
    });
    g.finish();
}

/// Outcome tables with the shipped `.cat` twins registered: cold
/// session (model compilation on the clock) vs warm.
fn bench_outcomes_with_cat(c: &mut Criterion) {
    let corpus = litmus_corpus();
    headline_outcomes_with_cat(&corpus);

    c.bench_function("cat-vm-outcomes/cold", |b| {
        b.iter(|| {
            let mut s = Session::with_shipped_cat();
            outcomes_pass(&mut s, &corpus)
        })
    });
    let mut warm = Session::with_shipped_cat();
    outcomes_pass(&mut warm, &corpus);
    c.bench_function("cat-vm-outcomes/warm", |b| {
        b.iter(|| outcomes_pass(&mut warm, &corpus))
    });
}

criterion_group!(
    benches,
    bench_corpus_sweeps,
    bench_check_paths,
    bench_outcomes_with_cat
);
criterion_main!(benches);
