//! `txmm-serverd` throughput over a real socket: requests/sec on the
//! generated 50-test corpus, cold vs warm and 1 vs N concurrent
//! clients.
//!
//! Before the criterion measurements, a headline comparison is printed:
//! a warm sharded pool against a cold single-shard pass over the same
//! corpus (the acceptance number — warm-pool throughput should be well
//! over 5x the cold single-shard pass, since every verdict and
//! observability answer comes from the shard caches).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use txmm::daemon::{Daemon, ListenAddr, PoolConfig, SessionPool};
use txmm::protocol::Request;

fn corpus() -> Vec<(String, String)> {
    txmm::corpus::generate(3)
        .into_iter()
        .map(|(name, src)| (format!("{name}.litmus"), src))
        .collect()
}

/// Start a daemon; returns its address and the server thread (joined by
/// [`stop`]).
fn start(shards: usize) -> (String, thread::JoinHandle<()>) {
    let pool = SessionPool::new(&PoolConfig {
        shards,
        ..PoolConfig::default()
    })
    .expect("pool builds");
    let daemon = Daemon::bind(&ListenAddr::Tcp("127.0.0.1:0".into()), pool).expect("binds");
    let addr = daemon.local_addr().to_string();
    let server = thread::spawn(move || daemon.run().expect("daemon runs"));
    (addr, server)
}

fn stop(addr: &str, server: thread::JoinHandle<()>) {
    let mut stream = BufReader::new(TcpStream::connect(addr).expect("connect"));
    send(&mut stream, &Request::Shutdown);
    server.join().expect("clean shutdown");
}

fn send(stream: &mut BufReader<TcpStream>, req: &Request) -> usize {
    stream
        .get_mut()
        .write_all(format!("{}\n", req.to_line()).as_bytes())
        .expect("send");
    let mut lines = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        let n = stream.read_line(&mut line).expect("read");
        assert!(n > 0, "server closed mid-frame");
        if line == "\n" {
            return lines;
        }
        lines += 1;
    }
}

/// One client pass: every corpus test as a `check` over one connection.
fn pass(addr: &str, corpus: &[(String, String)]) {
    let mut stream = BufReader::new(TcpStream::connect(addr).expect("connect"));
    for (file, src) in corpus {
        let req = Request::Check {
            file: file.clone(),
            src: src.clone(),
            models: None,
            trace: None,
        };
        assert_eq!(send(&mut stream, &req), 1);
    }
}

/// `clients` concurrent passes; returns the wall-clock duration.
fn concurrent_passes(addr: &str, corpus: &[(String, String)], clients: usize) -> Duration {
    let start = Instant::now();
    thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| pass(addr, corpus));
        }
    });
    start.elapsed()
}

fn headline(corpus: &[(String, String)]) {
    // Cold single-shard: fresh caches, every verdict computed.
    let (addr, server) = start(1);
    let cold = concurrent_passes(&addr, corpus, 1);
    stop(&addr, server);

    // Warm pool: one priming pass, then measured warm passes.
    let (addr, server) = start(0);
    pass(&addr, corpus);
    let reps = 5;
    let mut warm1 = Duration::ZERO;
    for _ in 0..reps {
        warm1 += concurrent_passes(&addr, corpus, 1);
    }
    let warm1 = warm1 / reps;
    let warm4 = concurrent_passes(&addr, corpus, 4);
    stop(&addr, server);

    let n = corpus.len() as f64;
    let rps = |d: Duration, requests: f64| requests / d.as_secs_f64();
    println!(
        "daemon-throughput/headline: corpus={} cold-1-shard {:.0} req/s | \
         warm-pool 1-client {:.0} req/s ({:.1}x cold) | \
         warm-pool 4-clients {:.0} req/s ({:.1}x cold)",
        corpus.len(),
        rps(cold, n),
        rps(warm1, n),
        cold.as_secs_f64() / warm1.as_secs_f64(),
        rps(warm4, 4.0 * n),
        (4.0 * n / warm4.as_secs_f64()) / (n / cold.as_secs_f64()),
    );
}

fn bench_daemon(c: &mut Criterion) {
    let corpus = corpus();
    headline(&corpus);

    // A persistent warm daemon for the criterion measurements.
    let (addr, server) = start(0);
    pass(&addr, &corpus);
    let mut g = c.benchmark_group("daemon");
    g.bench_function("warm-pass-1-client", |b| b.iter(|| pass(&addr, &corpus)));
    g.bench_function("warm-pass-4-clients", |b| {
        b.iter(|| concurrent_passes(&addr, &corpus, 4))
    });
    g.finish();
    stop(&addr, server);

    // Cold single shard, daemon lifecycle included (what a fresh
    // one-shot serve pays).
    c.bench_function("daemon/cold-pass-single-shard", |b| {
        b.iter(|| {
            let (addr, server) = start(1);
            pass(&addr, &corpus);
            stop(&addr, server);
        })
    });
}

criterion_group!(benches, bench_daemon);
criterion_main!(benches);
