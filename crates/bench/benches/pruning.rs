//! Consistency-guided pruning: pruned enumeration vs naive
//! enumerate-then-filter, per architecture, plus pruned outcome-table
//! throughput over the generated corpus.
//!
//! The headline prints before the criterion measurements:
//!
//! ```text
//! pruning/headline x86 |E|=4: naive 0.32s | pruned 0.16s (2.0x) | 60352 consistent
//! pruning/headline x86 |E|=5: naive 12.6s | pruned 4.0s (3.1x) | 1715002 consistent
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use txmm::serve::{outcomes_jsonl_line, serve_outcomes_source};
use txmm::session::Session;
use txmm_models::{Arch, Armv8, Model, Power, Sc, X86};
use txmm_synth::{count_consistent_par, for_each_par, EnumConfig};

/// Enumerate-then-filter: every canonical class is constructed, then
/// the full model votes — the baseline pruning competes against.
fn naive_count(cfg: &EnumConfig, model: &dyn Model) -> usize {
    let n = AtomicUsize::new(0);
    for_each_par(cfg, |x| {
        if model.consistent(x) {
            n.fetch_add(1, Ordering::Relaxed);
        }
    });
    n.into_inner()
}

/// One machine-readable headline row, serialised into `BENCH_prune.json`.
struct Headline {
    name: String,
    events: usize,
    naive_micros: u128,
    pruned_micros: u128,
    consistent: usize,
    subtrees_cut: u64,
    candidates_skipped: u64,
    oracle_calls: u64,
    delta_answers: u64,
    fallbacks: u64,
    batches: u64,
}

fn headline(rows: &mut Vec<Headline>, name: &str, cfg: &EnumConfig, model: &dyn Model) {
    let t0 = Instant::now();
    let naive = naive_count(cfg, model);
    let naive_t = t0.elapsed();
    let t0 = Instant::now();
    let (pruned, st) = count_consistent_par(cfg, model);
    let pruned_t = t0.elapsed();
    assert_eq!(naive, pruned, "{name}: pruned walk drifted from the filter");
    println!(
        "pruning/headline {name} |E|={}: naive {:.2}s | pruned {:.2}s ({:.1}x) | \
         {pruned} consistent, {} subtrees cut, {} skipped",
        cfg.events,
        naive_t.as_secs_f64(),
        pruned_t.as_secs_f64(),
        naive_t.as_secs_f64() / pruned_t.as_secs_f64(),
        st.subtrees_cut,
        st.candidates_skipped,
    );
    rows.push(Headline {
        name: name.to_string(),
        events: cfg.events,
        naive_micros: naive_t.as_micros(),
        pruned_micros: pruned_t.as_micros(),
        consistent: pruned,
        subtrees_cut: st.subtrees_cut,
        candidates_skipped: st.candidates_skipped,
        oracle_calls: st.oracle_calls,
        delta_answers: st.delta_answers,
        fallbacks: st.fallbacks,
        batches: st.batches,
    });
}

/// Write the headline rows as `BENCH_prune.json` at the workspace root
/// so CI and the README numbers have a machine-readable source.
fn write_bench_json(rows: &[Headline]) {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\":\"{}\",\"events\":{},\"naive_micros\":{},\"pruned_micros\":{},\
             \"consistent_classes\":{},\"subtrees_cut\":{},\"candidates_skipped\":{},\
             \"oracle_calls\":{},\"delta_answers\":{},\"fallbacks\":{},\"batches\":{}}}{}\n",
            r.name,
            r.events,
            r.naive_micros,
            r.pruned_micros,
            r.consistent,
            r.subtrees_cut,
            r.candidates_skipped,
            r.oracle_calls,
            r.delta_answers,
            r.fallbacks,
            r.batches,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_prune.json");
    match std::fs::write(path, out) {
        Ok(()) => println!("pruning/headline wrote {path}"),
        Err(e) => eprintln!("pruning/headline could not write {path}: {e}"),
    }
}

fn corpus() -> Vec<(String, String)> {
    txmm::corpus::generate(3)
        .into_iter()
        .map(|(name, src)| (format!("{name}.litmus"), src))
        .collect()
}

fn outcome_pass(session: &mut Session, corpus: &[(String, String)]) -> usize {
    let mut bytes = 0usize;
    for (file, src) in corpus {
        let served = serve_outcomes_source(session, file, src, None);
        bytes += outcomes_jsonl_line(&served).len();
    }
    bytes
}

fn bench_pruning(c: &mut Criterion) {
    // Quick headlines for every architecture with a native oracle.
    // The README numbers — Power |E| = 4 (3.0x) and single-core x86
    // |E| = 5 (3.1x) — take tens of seconds naive and run only under
    // PRUNE_BENCH_FULL=1.
    let mut rows = Vec::new();
    headline(&mut rows, "x86", &EnumConfig::hw(Arch::X86, 4), &X86::tm());
    headline(&mut rows, "sc", &EnumConfig::hw(Arch::Sc, 4), &Sc);
    headline(
        &mut rows,
        "power",
        &EnumConfig::hw(Arch::Power, 3),
        &Power::tm(),
    );
    headline(
        &mut rows,
        "armv8",
        &EnumConfig::hw(Arch::Armv8, 3),
        &Armv8::tm(),
    );
    if std::env::var_os("PRUNE_BENCH_FULL").is_some() {
        headline(
            &mut rows,
            "power",
            &EnumConfig::hw(Arch::Power, 4),
            &Power::tm(),
        );
        headline(&mut rows, "x86", &EnumConfig::hw(Arch::X86, 5), &X86::tm());
    }
    write_bench_json(&rows);

    let x86 = EnumConfig::hw(Arch::X86, 4);
    let model = X86::tm();
    c.bench_function("pruning/x86-e4-naive", |b| {
        b.iter(|| naive_count(&x86, &model))
    });
    c.bench_function("pruning/x86-e4-pruned", |b| {
        b.iter(|| count_consistent_par(&x86, &model).0)
    });

    // Outcome tables through the pruned per-mask walk vs the exhaustive
    // shared table (`set_prune(false)`), cold Session per iteration.
    let corpus = corpus();
    c.bench_function("pruning/outcomes-pruned", |b| {
        b.iter(|| {
            let mut s = Session::new();
            outcome_pass(&mut s, &corpus)
        })
    });
    c.bench_function("pruning/outcomes-table", |b| {
        b.iter(|| {
            let mut s = Session::new();
            s.set_prune(false);
            outcome_pass(&mut s, &corpus)
        })
    });
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
