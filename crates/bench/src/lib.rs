//! # txmm-bench
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation:
//!
//! * `table1` (bin) — Forbid/Allow synthesis per event count for the
//!   transactional x86 and Power models, each test "run" on the
//!   simulated hardware (Table 1);
//! * `fig7` (bin) — the distribution of synthesis times for the largest
//!   x86 Forbid suite (Fig. 7);
//! * `table2` (bin) — the metatheory matrix: monotonicity, C++
//!   compilation, lock elision (Table 2);
//! * `catalog` (bin) — every named execution of the paper with model
//!   verdicts and litmus renderings (Figs. 1–3, 10, §5.2, §8.1, §9,
//!   Ex. 1.1, App. B);
//! * criterion benches (`synthesis`, `metatheory`, `models`, `hwsim`)
//!   measuring the underlying engines.

use std::time::Duration;

use txmm::session::{ModelRef, Session};
use txmm_models::Arch;
use txmm_synth::EnumConfig;

/// The synthesis configuration used for Table 1 rows.
pub fn table1_config(arch: Arch, events: usize) -> EnumConfig {
    EnumConfig {
        arch,
        events,
        max_threads: 3,
        max_locs: 2,
        fences: true,
        deps: arch == Arch::Power,
        rmws: true,
        txns: true,
        attrs: false,
        atomic_txns: false,
    }
}

/// Pretty seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

/// Format a consistency verdict like the paper's tables, served (and
/// cached) by the session.
pub fn verdict_str(session: &mut Session, x: &txmm_core::Execution, m: ModelRef) -> String {
    let v = session.verdict(x, m);
    if v.is_consistent() {
        "consistent".to_string()
    } else {
        format!("forbidden ({})", v.violations().join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_shapes() {
        let c = table1_config(Arch::X86, 4);
        assert_eq!(c.events, 4);
        assert!(!c.deps);
        assert!(table1_config(Arch::Power, 3).deps);
    }

    #[test]
    fn helpers() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.50s");
        let mut s = Session::new();
        let sc = s.resolve("SC").unwrap();
        let x = txmm_models::catalog::fig1();
        assert!(verdict_str(&mut s, &x, sc).contains("consistent"));
        let y = txmm_models::catalog::sb(None, false, false);
        assert!(verdict_str(&mut s, &y, sc).contains("Order"));
    }
}
