//! # txmm-bench
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation:
//!
//! * `table1` (bin) — Forbid/Allow synthesis per event count for the
//!   transactional x86 and Power models, each test "run" on the
//!   simulated hardware (Table 1);
//! * `fig7` (bin) — the distribution of synthesis times for the largest
//!   x86 Forbid suite (Fig. 7);
//! * `table2` (bin) — the metatheory matrix: monotonicity, C++
//!   compilation, lock elision (Table 2);
//! * `catalog` (bin) — every named execution of the paper with model
//!   verdicts and litmus renderings (Figs. 1–3, 10, §5.2, §8.1, §9,
//!   Ex. 1.1, App. B);
//! * criterion benches (`synthesis`, `metatheory`, `models`, `hwsim`)
//!   measuring the underlying engines.

use std::time::Duration;

use txmm::session::{ModelRef, Session};
use txmm_models::Arch;
use txmm_synth::EnumConfig;

/// The synthesis configuration used for Table 1 rows.
pub fn table1_config(arch: Arch, events: usize) -> EnumConfig {
    EnumConfig {
        arch,
        events,
        max_threads: 3,
        max_locs: 2,
        fences: true,
        deps: arch == Arch::Power,
        rmws: true,
        txns: true,
        attrs: false,
        atomic_txns: false,
    }
}

/// Pretty seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

/// Live walk telemetry for the bench drivers, parsed from the process
/// arguments: `--progress[=SECS]` starts a heartbeat reporter on
/// stderr, `--metrics-listen ADDR` a scrapeable metrics sidecar.
/// Returns `None` (zero overhead) when neither flag is present.
///
/// Attach the progress handle with [`Session::set_walk_progress`] and
/// call [`BenchTelemetry::finish`] after the last walk so the final
/// frame's totals match the run.
pub struct BenchTelemetry {
    /// The shared accumulator to hand to the session.
    pub progress: std::sync::Arc<txmm::obs::WalkProgress>,
    reporter: Option<txmm::obs::Reporter>,
    _sidecar: Option<txmm::obs::MetricsSidecar>,
}

impl BenchTelemetry {
    /// Stop the heartbeat, emitting the final frame.
    pub fn finish(self) {
        if let Some(r) = self.reporter {
            r.finish();
        }
    }
}

/// Parse telemetry flags from `std::env::args`; see [`BenchTelemetry`].
pub fn telemetry_from_args() -> Option<BenchTelemetry> {
    let mut interval: Option<f64> = None;
    let mut listen: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--progress" {
            interval = Some(1.0);
        } else if let Some(v) = a.strip_prefix("--progress=") {
            interval = v.parse().ok().filter(|s| *s > 0.0).or(Some(1.0));
        } else if a == "--metrics-listen" {
            listen = args.next();
        }
    }
    if interval.is_none() && listen.is_none() {
        return None;
    }
    txmm::obs::publish_process_info();
    let progress = std::sync::Arc::new(txmm::obs::WalkProgress::new());
    let sidecar = listen.map(|addr| {
        let s = txmm::obs::serve_metrics(&addr).expect("metrics sidecar");
        eprintln!("metrics sidecar listening on {}", s.addr());
        s
    });
    let reporter = interval.map(|secs| {
        txmm::obs::Reporter::start(
            progress.clone(),
            Duration::from_secs_f64(secs),
            txmm::obs::ProgressSink::Stderr,
        )
        .expect("progress reporter")
    });
    Some(BenchTelemetry {
        progress,
        reporter,
        _sidecar: sidecar,
    })
}

/// Format a consistency verdict like the paper's tables, served (and
/// cached) by the session.
pub fn verdict_str(session: &mut Session, x: &txmm_core::Execution, m: ModelRef) -> String {
    let v = session.verdict(x, m);
    if v.is_consistent() {
        "consistent".to_string()
    } else {
        format!("forbidden ({})", v.violations().join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_shapes() {
        let c = table1_config(Arch::X86, 4);
        assert_eq!(c.events, 4);
        assert!(!c.deps);
        assert!(table1_config(Arch::Power, 3).deps);
    }

    #[test]
    fn helpers() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.50s");
        let mut s = Session::new();
        let sc = s.resolve("SC").unwrap();
        let x = txmm_models::catalog::fig1();
        assert!(verdict_str(&mut s, &x, sc).contains("consistent"));
        let y = txmm_models::catalog::sb(None, false, false);
        assert!(verdict_str(&mut s, &y, sc).contains("Order"));
    }
}
