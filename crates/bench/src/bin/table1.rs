//! Regenerates **Table 1**: synthesis of transactional conformance tests
//! for x86 and Power, with each test "run" on the simulated hardware.
//!
//! Columns follow the paper: per event count, synthesis time, the number
//! of Forbid tests (T) with how many were seen (S) / not seen (¬S) on
//! the implementation, and the same for the Allow tests.
//!
//! Bounds: the paper reaches |E| = 7 (x86) / 6 (Power) with a SAT
//! backend and multi-hour budgets; the default here is |E| ≤ 4 so the
//! table regenerates in minutes. Set `TXMM_MAX_EVENTS=5` (and some
//! patience) for a deeper run. Expected *shape*: Forbid tests are never
//! observed; most Allow tests are observed, with the Power gap coming
//! from load-buffering shapes (§5.3).

use txmm::session::Session;
use txmm_bench::{secs, table1_config};
use txmm_models::Arch;
use txmm_synth::{txn_histogram, FoundTest};

fn run_arch(session: &mut Session, arch: Arch, tm: &str, base: &str, max_events: usize) {
    let tm = session.resolve(tm).expect("registered model");
    let base = session.resolve(base).expect("registered model");
    println!("Arch.  |E|  Synth(s)  Forbid:  T    S   ¬S   Allow:  T    S   ¬S");
    let mut totals = [0usize; 6];
    let mut all_forbid: Vec<FoundTest> = Vec::new();
    for events in 2..=max_events {
        let cfg = table1_config(arch, events);
        let r = session.synthesise(&cfg, tm, base, None);
        let fs = r.forbid.len();
        let f_seen = r
            .forbid
            .iter()
            .filter(|f| session.observable(&f.exec, arch) == Some(true))
            .count();
        let a_seen = r
            .allow
            .iter()
            .filter(|a| session.observable(a, arch) == Some(true))
            .count();
        let als = r.allow.len();
        println!(
            "{:<6} {:<4} {:<9} {:>10} {:>4} {:>4} {:>10} {:>4} {:>4}{}",
            arch.name(),
            events,
            secs(r.elapsed),
            fs,
            f_seen,
            fs - f_seen,
            als,
            a_seen,
            als - a_seen,
            if r.complete { "" } else { "  (non-exhaustive)" },
        );
        totals[0] += fs;
        totals[1] += f_seen;
        totals[2] += fs - f_seen;
        totals[3] += als;
        totals[4] += a_seen;
        totals[5] += als - a_seen;
        all_forbid.extend(r.forbid);
    }
    println!(
        "Total ({}):            {:>10} {:>4} {:>4} {:>10} {:>4} {:>4}",
        arch.name(),
        totals[0],
        totals[1],
        totals[2],
        totals[3],
        totals[4],
        totals[5],
    );
    let h = txn_histogram(&all_forbid);
    let total = totals[0].max(1);
    println!(
        "Forbid transaction histogram: 1 txn {}%, 2 txns {}%, 3 txns {}%",
        h[1] * 100 / total,
        h[2] * 100 / total,
        h[3] * 100 / total
    );
    if totals[1] == 0 {
        println!(
            "=> no Forbid test observable on the simulated hardware: the {} model is not too strong",
            arch.name()
        );
    } else {
        println!(
            "=> WARNING: {} Forbid tests observed — model too strong!",
            totals[1]
        );
    }
    if let Some(pct) = (totals[4] * 100).checked_div(totals[3]) {
        println!(
            "=> {pct}% of Allow tests observable (paper: 83% x86 / 88% Power; Power gap = LB shapes)"
        );
    }
    println!();
}

fn main() {
    let max_events: usize = std::env::var("TXMM_MAX_EVENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("== Table 1: testing the transactional x86 and Power models ==");
    println!("   (paper bounds: |E| ≤ 7/6 with SAT + hours; ours: |E| ≤ {max_events})\n");
    let tele = txmm_bench::telemetry_from_args();
    let mut session = Session::new();
    if let Some(t) = &tele {
        session.set_walk_progress(Some(t.progress.clone()));
    }
    run_arch(&mut session, Arch::X86, "x86-tm", "x86", max_events);
    run_arch(&mut session, Arch::Power, "power-tm", "power", max_events);
    if let Some(t) = tele {
        t.finish();
    }
}
