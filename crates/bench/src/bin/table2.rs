//! Regenerates **Table 2**: the metatheory matrix — monotonicity (§8.1),
//! C++-to-hardware compilation (§8.2) and lock elision (§8.3).
//!
//! Expected shape (matching the paper): monotonicity counterexamples for
//! Power and ARMv8 at |E| = 2 (found in well under a second), none for
//! x86/C++; compilation sound everywhere; a lock-elision counterexample
//! for ARMv8 only — with one documented divergence: for Power the paper
//! timed out (Unknown), while our bounded checker finds a candidate pair
//! under Fig. 6 as printed (see EXPERIMENTS.md).

use txmm::session::Session;
use txmm_bench::secs;
use txmm_core::display;
use txmm_models::Arch;
use txmm_synth::EnumConfig;
use txmm_verify::ElisionTarget;

fn mono_cfg(arch: Arch, events: usize) -> EnumConfig {
    EnumConfig {
        arch,
        events,
        max_threads: 2,
        max_locs: 2,
        fences: true,
        deps: matches!(arch, Arch::Power | Arch::Armv8),
        rmws: true,
        txns: true,
        attrs: matches!(arch, Arch::Armv8 | Arch::Cpp),
        atomic_txns: arch == Arch::Cpp,
    }
}

fn main() {
    let verbose = std::env::var("TXMM_VERBOSE").is_ok();
    println!("== Table 2: metatheoretical results ==\n");
    println!(
        "{:<14} {:<14} {:>7} {:>10}   C'ex?",
        "Property", "Target", "Events", "Time"
    );
    let session = Session::new();

    // Monotonicity (paper: x86@6 ✗, Power@2 ✓, ARMv8@2 ✓, C++@6 ✗).
    let mono: Vec<(&str, &str, Arch, usize)> = vec![
        ("Monotonicity", "x86-tm", Arch::X86, 4),
        ("Monotonicity", "power-tm", Arch::Power, 2),
        ("Monotonicity", "armv8-tm", Arch::Armv8, 2),
        ("Monotonicity", "cpp-tm", Arch::Cpp, 3),
    ];
    for (prop, model, arch, events) in mono {
        let model = session.resolve(model).expect("registered model");
        let r = session.check_monotonicity(&mono_cfg(arch, events), model, None);
        println!(
            "{:<14} {:<14} {:>7} {:>10}   {}",
            prop,
            arch.name(),
            events,
            secs(r.elapsed),
            match &r.counterexample {
                Some(_) => "YES (paper: YES for Power/ARMv8)",
                None => "no",
            }
        );
        if verbose {
            if let Some((x, y)) = &r.counterexample {
                println!("--- inconsistent X:\n{}", display::render(x));
                println!("--- consistent Y (more stxn):\n{}", display::render(y));
            }
        }
    }

    // Compilation (paper: sound to all three at 6 events).
    for target in [Arch::X86, Arch::Power, Arch::Armv8] {
        let r = session.check_compilation(3, target, None);
        println!(
            "{:<14} {:<14} {:>7} {:>10}   {}",
            "Compilation",
            format!("C++/{}", target.name()),
            3,
            secs(r.elapsed),
            if r.counterexample.is_some() {
                "YES (unexpected!)"
            } else {
                "no"
            }
        );
    }

    // Lock elision (paper: x86 U, Power U, ARMv8 YES in 63s, fixed U).
    for target in [
        ElisionTarget::X86,
        ElisionTarget::Power,
        ElisionTarget::Armv8,
        ElisionTarget::Armv8Fixed,
    ] {
        let r = session.check_lock_elision(target, None);
        let verdict = match (&r.counterexample, target) {
            (Some(_), ElisionTarget::Armv8) => "YES — Example 1.1 (paper: YES, 63s)",
            (Some(_), ElisionTarget::Power) => {
                "YES candidate (paper: timeout/Unknown — see EXPERIMENTS.md)"
            }
            (Some(_), _) => "YES (unexpected!)",
            (None, _) => "no (exhaustive at this bound)",
        };
        println!(
            "{:<14} {:<14} {:>7} {:>10}   {}",
            "Lock elision",
            target.name(),
            9,
            secs(r.elapsed),
            verdict
        );
        if verbose {
            if let Some((x, y)) = &r.counterexample {
                println!("--- abstract X (violates CROrder):\n{}", display::render(x));
                println!("--- concrete Y (consistent):\n{}", display::render(y));
            }
        }
    }

    println!("\nRun with TXMM_VERBOSE=1 to print the counterexample executions.");
}
