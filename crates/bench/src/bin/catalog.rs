//! Prints every named execution from the paper — Figs. 1, 2, 3, 10, the
//! §5.2 Power executions, Remark 5.1, §8.1, §9, Example 1.1 and
//! Appendix B — with model verdicts (native and `.cat`), litmus
//! renderings, and simulator observability.
//!
//! All checking goes through one [`Session`]: native and `.cat` models
//! resolve from its unified registry, verdicts and observability are
//! served from its per-execution caches.

use txmm::session::Session;
use txmm_bench::verdict_str;
use txmm_core::display;
use txmm_litmus::{litmus_from_execution, render};
use txmm_models::catalog;

fn main() {
    let show_litmus = std::env::var("TXMM_LITMUS").is_ok();
    let mut session = Session::with_shipped_cat();
    for entry in catalog::all() {
        println!("==== {} ({}) ====", entry.name, entry.paper_ref);
        println!("{}", entry.description);
        println!("{}", display::render(&entry.exec));
        // Warm the verdict cache for every model this entry mentions
        // (native and .cat twin) with one shared analysis; the loop
        // below then prints pure cache hits.
        let mentioned: Vec<_> = entry
            .expect
            .iter()
            .flat_map(|(name, _)| {
                [
                    session.resolve(name),
                    session.resolve(&format!("{name}.cat")),
                ]
            })
            .flatten()
            .collect();
        session.verdicts_for(&entry.exec, &mentioned);
        for (model_name, expect) in &entry.expect {
            let model = session.resolve(model_name).expect("registered model");
            let line = verdict_str(&mut session, &entry.exec, model);
            let ok =
                line.starts_with("consistent") == matches!(expect, catalog::Expect::Consistent);
            let cat_note = match session.resolve(&format!("{model_name}.cat")) {
                Some(cat) => {
                    let cv = session.verdict(&entry.exec, cat);
                    if cv
                        .violations()
                        .iter()
                        .any(|v| v.starts_with("cat-eval-error"))
                    {
                        format!(" [cat error: {}]", cv.violations().join(", "))
                    } else if cv.is_consistent() == line.starts_with("consistent") {
                        " [cat agrees]".to_string()
                    } else {
                        " [cat DISAGREES]".to_string()
                    }
                }
                None => String::new(),
            };
            println!(
                "  {:<10} {}{}{}",
                model_name,
                line,
                if ok { "" } else { "  <-- MISMATCH" },
                cat_note
            );
        }
        // Simulator observability where an architecture applies (the
        // session returns None for SC/C++ and for abstract lock-call
        // executions).
        let arch = txmm::corpus::entry_arch(&entry.expect);
        if let Some(seen) = session.observable(&entry.exec, arch) {
            println!(
                "  hardware simulator ({}): {}",
                arch.name(),
                if seen { "SEEN" } else { "not seen" }
            );
            if show_litmus {
                let t = litmus_from_execution(entry.name, &entry.exec, arch);
                println!("\n{}", render::assembly(&t));
            }
        }
        println!();
    }
    let stats = session.stats();
    println!(
        "session: {} executions interned, {} verdict misses, {} hits",
        stats.interned, stats.verdict_misses, stats.verdict_hits
    );
    println!("Set TXMM_LITMUS=1 to print the per-architecture litmus listings.");
}
