//! Prints every named execution from the paper — Figs. 1, 2, 3, 10, the
//! §5.2 Power executions, Remark 5.1, §8.1, §9, Example 1.1 and
//! Appendix B — with model verdicts (native and `.cat`), litmus
//! renderings, and simulator observability.

use txmm_bench::verdict_str_analysis;
use txmm_cat::cat_model;
use txmm_core::display;
use txmm_hwsim::{ArmSim, PowerSim, Simulator, TsoSim};
use txmm_litmus::{litmus_from_execution, render};
use txmm_models::registry::by_name;
use txmm_models::{catalog, Arch};

fn main() {
    let show_litmus = std::env::var("TXMM_LITMUS").is_ok();
    for entry in catalog::all() {
        println!("==== {} ({}) ====", entry.name, entry.paper_ref);
        println!("{}", entry.description);
        println!("{}", display::render(&entry.exec));
        // One analysis per catalog entry, shared by every model verdict.
        let analysis = entry.exec.analysis();
        for (model_name, expect) in &entry.expect {
            let model = by_name(model_name).expect("registered model");
            let line = verdict_str_analysis(model.as_ref(), &analysis);
            let ok =
                line.starts_with("consistent") == matches!(expect, catalog::Expect::Consistent);
            let cat_note = match cat_model(model_name) {
                Some(cm) => match cm.consistent_analysis(&analysis) {
                    Ok(c) => {
                        if c == line.starts_with("consistent") {
                            " [cat agrees]".to_string()
                        } else {
                            " [cat DISAGREES]".to_string()
                        }
                    }
                    Err(e) => format!(" [cat error: {e}]"),
                },
                None => String::new(),
            };
            println!(
                "  {:<10} {}{}{}",
                model_name,
                line,
                if ok { "" } else { "  <-- MISMATCH" },
                cat_note
            );
        }
        // Simulator observability where an architecture applies.
        let arch = entry.expect.iter().find_map(|(m, _)| match *m {
            "x86" | "x86-tm" => Some(Arch::X86),
            "power" | "power-tm" => Some(Arch::Power),
            "armv8" | "armv8-tm" => Some(Arch::Armv8),
            _ => None,
        });
        if let Some(arch) = arch {
            if entry.exec.calls().is_empty() {
                let t = litmus_from_execution(entry.name, &entry.exec, arch);
                let seen = match arch {
                    Arch::X86 => TsoSim.observable(&t),
                    Arch::Power => PowerSim::default().observable(&t),
                    Arch::Armv8 => ArmSim::default().observable(&t),
                    _ => unreachable!(),
                };
                println!(
                    "  hardware simulator ({}): {}",
                    arch.name(),
                    if seen { "SEEN" } else { "not seen" }
                );
                if show_litmus {
                    println!("\n{}", render::assembly(&t));
                }
            }
        }
        println!();
    }
    println!("Set TXMM_LITMUS=1 to print the per-architecture litmus listings.");
}
