//! Regenerates **Fig. 7**: the distribution of synthesis times for the
//! largest x86 Forbid suite.
//!
//! The paper's observation: 98% of the 7-event tests are found within 6%
//! of the 34-hour total synthesis time (the tail merely confirms
//! exhaustion). Our enumerative engine at the default |E| = 4 exhibits
//! the same front-loaded shape; the curve is printed as an ASCII plot
//! plus the percentile table.

use txmm::session::Session;
use txmm_bench::table1_config;
use txmm_models::Arch;

fn main() {
    let events: usize = std::env::var("TXMM_MAX_EVENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("== Fig. 7: distribution of synthesis times ({events}-event x86 Forbid tests) ==\n");
    let tele = txmm_bench::telemetry_from_args();
    let mut session = Session::new();
    if let Some(t) = &tele {
        session.set_walk_progress(Some(t.progress.clone()));
    }
    let r = session.synthesise(
        &table1_config(Arch::X86, events),
        session.resolve("x86-tm").expect("registered"),
        session.resolve("x86").expect("registered"),
        None,
    );
    if let Some(t) = tele {
        t.finish();
    }
    let total = r.elapsed;
    let mut times: Vec<f64> = r.forbid.iter().map(|f| f.at.as_secs_f64()).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = times.len();
    if n == 0 {
        println!("no Forbid tests at |E| = {events}");
        return;
    }
    println!(
        "{} tests found; total synthesis time {:.2}s ({} candidates examined)\n",
        n,
        total.as_secs_f64(),
        r.candidates
    );

    // ASCII cumulative curve: 50 columns of time, 20 rows of percentage.
    let width = 50usize;
    let height = 20usize;
    let tmax = total.as_secs_f64().max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    let rows: Vec<usize> = (0..width)
        .map(|col| {
            let t = tmax * (col as f64 + 1.0) / width as f64;
            let found = times.iter().filter(|&&x| x <= t).count();
            let pct = found as f64 / n as f64;
            (((1.0 - pct) * (height as f64 - 1.0)).round() as usize).min(height - 1)
        })
        .collect();
    for (col, &row) in rows.iter().enumerate() {
        grid[row][col] = '*';
    }
    println!("Tests found (%)");
    for (i, row) in grid.iter().enumerate() {
        let label = 100 - i * 100 / (height - 1);
        println!("{label:>4}% |{}", row.iter().collect::<String>());
    }
    println!("      +{}", "-".repeat(width));
    println!(
        "       0{:>width$}",
        format!("{:.2}s", tmax),
        width = width - 1
    );

    println!("\nPercentiles of discovery time (fraction of total synthesis time):");
    for pct in [50, 75, 90, 95, 98, 100] {
        let idx = ((pct * n).div_ceil(100)).clamp(1, n) - 1;
        println!(
            "  {pct:>3}% of tests found within {:>6.2}% of total time",
            times[idx] / tmax * 100.0
        );
    }
    println!("\n(paper: 98% of tests within 6% of total; the long tail only confirms exhaustion)");
}
