//! An operational Power simulator: out-of-order commit per thread over a
//! *propagation-based* storage subsystem (non-multicopy-atomic), in the
//! spirit of the PLDI'11 Power machine, with the Power 2.07 TM facility.
//!
//! Storage keeps a per-location coherence list; each thread holds a
//! *view* (how far along each coherence list it has seen). Writes enter
//! the coherence list when committed and propagate to other threads one
//! step at a time. Barriers are cumulative: each write carries the
//! snapshot its thread's last barrier took, and may not propagate to a
//! thread that has not yet seen that snapshot. `sync` additionally
//! stalls until everything the thread has seen is visible everywhere.
//!
//! Transactions follow the Power ISA: `tbegin`/`tend` act as cumulative
//! barriers; transactional stores propagate *fully* at commit ("robust
//! architectural support", Cain et al. §4.2); conflicts abort eagerly.

use std::collections::HashSet;

use txmm_litmus::{DepKind, Instr, LitmusTest, Op};

use crate::outcome::{Outcome, OutcomeSet, Simulator, MAX_LOCS};

/// A committed write in a coherence list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct WriteRec {
    value: u32,
    /// Barrier snapshot: this write may not propagate to a thread whose
    /// view is behind this (per-location coherence indices).
    preds: [u8; MAX_LOCS],
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Txn {
    id: usize,
    read_set: u8,
    write_locs: u8,
    writes: Vec<(u8, u32)>,
    span: (usize, usize),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Thread {
    committed: u32,
    regs: Vec<u32>,
    /// view[l] = number of coherence-list entries of location l this
    /// thread has seen.
    view: [u8; MAX_LOCS],
    /// Snapshot taken by the last barrier this thread committed.
    snapshot: [u8; MAX_LOCS],
    txn: Option<Txn>,
    monitor: Option<(u8, u8)>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    co: Vec<Vec<WriteRec>>,
    threads: Vec<Thread>,
    txn_ok: Vec<bool>,
}

impl Thread {
    fn is_committed(&self, i: usize) -> bool {
        self.committed & (1 << i) != 0
    }

    fn commit(&mut self, i: usize) {
        self.committed |= 1 << i;
    }
}

/// The Power simulator. `restrict_load_buffering` keeps stores from
/// committing before earlier loads — POWER8 hardware never exhibits LB
/// (§5.3 of the paper), so this is on by default.
#[derive(Debug, Clone, Copy)]
pub struct PowerSim {
    /// Stores wait for all po-earlier loads (default true).
    pub restrict_load_buffering: bool,
}

impl Default for PowerSim {
    fn default() -> PowerSim {
        PowerSim {
            restrict_load_buffering: true,
        }
    }
}

fn loc_of(op: &Op) -> Option<u8> {
    match op {
        Op::Load { loc, .. } | Op::Store { loc, .. } => Some(*loc),
        _ => None,
    }
}

fn fence_between(instrs: &[Instr], j: usize, i: usize, f: txmm_core::Fence) -> bool {
    instrs[j + 1..i]
        .iter()
        .any(|x| matches!(x.op, Op::Fence(k, _) if k == f))
}

impl PowerSim {
    /// Must `j` commit before `i` on the same thread?
    fn ordered(&self, instrs: &[Instr], j: usize, i: usize) -> bool {
        use txmm_core::Fence;
        let oj = &instrs[j].op;
        let oi = &instrs[i].op;
        if matches!(oj, Op::TxBegin { .. } | Op::TxEnd)
            || matches!(oi, Op::TxBegin { .. } | Op::TxEnd)
        {
            return true;
        }
        // sync is a full barrier; it must also commit in order.
        if fence_between(instrs, j, i, Fence::Sync)
            || matches!(oj, Op::Fence(Fence::Sync, _))
            || matches!(oi, Op::Fence(Fence::Sync, _))
        {
            return true;
        }
        // lwsync orders everything except W -> R; the fence itself
        // commits in order with its surroundings (it snapshots).
        if matches!(oj, Op::Fence(Fence::Lwsync, _)) || matches!(oi, Op::Fence(Fence::Lwsync, _)) {
            return true;
        }
        if fence_between(instrs, j, i, Fence::Lwsync)
            && !(matches!(oj, Op::Store { .. }) && matches!(oi, Op::Load { .. }))
        {
            return true;
        }
        // Same-location order.
        if let (Some(a), Some(b)) = (loc_of(oj), loc_of(oi)) {
            if a == b {
                return true;
            }
        }
        if self.restrict_load_buffering
            && matches!(oj, Op::Load { .. })
            && matches!(oi, Op::Store { .. })
        {
            return true;
        }
        for d in &instrs[i].deps {
            if d.on == j {
                match d.kind {
                    DepKind::Addr | DepKind::Data => return true,
                    DepKind::Ctrl => {
                        // ctrl orders stores; ctrl+isync orders loads
                        // too. On Power, ctrl may begin at a
                        // store-exclusive (footnote 3) — honoured here.
                        if matches!(oi, Op::Store { .. })
                            || fence_between(instrs, j, i, Fence::Isync)
                        {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    fn ready(&self, instrs: &[Instr], th: &Thread, i: usize) -> bool {
        if th.is_committed(i) {
            return false;
        }
        (0..i).all(|j| th.is_committed(j) || !self.ordered(instrs, j, i))
    }

    fn conflict(state: &mut State, actor: usize, loc: u8, is_write: bool) {
        let bit = 1u8 << loc;
        for t in 0..state.threads.len() {
            if t == actor {
                continue;
            }
            let hit = match &state.threads[t].txn {
                Some(txn) => (txn.write_locs & bit != 0) || (is_write && txn.read_set & bit != 0),
                None => false,
            };
            if hit {
                let txn = state.threads[t].txn.take().expect("hit implies txn");
                state.txn_ok[txn.id] = false;
                for i in txn.span.0..=txn.span.1 {
                    state.threads[t].commit(i);
                }
            }
        }
    }

    /// Append a write to the coherence list and make it visible to its
    /// own thread.
    fn push_write(state: &mut State, t: usize, loc: u8, value: u32) {
        let preds = state.threads[t].snapshot;
        state.co[loc as usize].push(WriteRec { value, preds });
        state.threads[t].view[loc as usize] = state.co[loc as usize].len() as u8;
        Self::conflict(state, t, loc, true);
    }

    /// Make thread `t` see the whole coherence list of `loc`, pulling in
    /// each included write's barrier snapshot transitively (a coherent
    /// cacheline fetch). Transactional reads use this: HTM conflict
    /// tracking works at the coherence level, so a transactional load
    /// always observes the globally latest committed write.
    fn force_see(state: &mut State, t: usize, loc: usize) {
        let mut want = [0u8; MAX_LOCS];
        want[loc] = state.co[loc].len() as u8;
        loop {
            let mut changed = false;
            for l in 0..MAX_LOCS {
                let cur = state.threads[t].view[l].max(want[l]);
                if cur > state.threads[t].view[l] {
                    // Fold in the snapshots of newly visible writes.
                    for idx in state.threads[t].view[l]..cur {
                        let preds = state.co[l][idx as usize].preds;
                        for l2 in 0..MAX_LOCS {
                            if preds[l2] > want[l2] && preds[l2] > state.threads[t].view[l2] {
                                want[l2] = preds[l2];
                            }
                        }
                    }
                    state.threads[t].view[l] = cur;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Is the thread's sync obligation met: everything it has seen is
    /// visible everywhere?
    fn fully_propagated(state: &State, t: usize) -> bool {
        let v = &state.threads[t].view;
        state
            .threads
            .iter()
            .all(|th| (0..MAX_LOCS).all(|l| th.view[l] >= v[l]))
    }

    fn txn_span(instrs: &[Instr], begin: usize) -> (usize, usize) {
        let end = instrs[begin + 1..]
            .iter()
            .position(|i| matches!(i.op, Op::TxEnd))
            .map(|off| begin + 1 + off)
            .expect("TxBegin without TxEnd");
        (begin, end)
    }

    fn step(&self, test: &LitmusTest, state: &State, t: usize, i: usize) -> Option<State> {
        use txmm_core::Fence;
        let instrs = &test.threads[t];
        let mut s = state.clone();
        match &instrs[i].op {
            Op::Load { reg, loc, mode } => {
                s.threads[t].commit(i);
                let li = *loc as usize;
                let in_txn = s.threads[t].txn.is_some();
                if in_txn || mode.exclusive {
                    // Transactional loads and load-exclusives are
                    // coherent fetches: lwarx takes the coherence
                    // granule, so it observes the globally latest write
                    // (this is what makes RMWIsol hold on hardware).
                    Self::force_see(&mut s, t, li);
                }
                let v = if let Some(txn) = s.threads[t].txn.as_mut() {
                    txn.read_set |= 1 << *loc;
                    if let Some(&(_, v)) = txn.writes.iter().rev().find(|(l, _)| l == loc) {
                        v
                    } else {
                        let view = s.threads[t].view[li] as usize;
                        if view == 0 {
                            0
                        } else {
                            s.co[li][view - 1].value
                        }
                    }
                } else {
                    let view = s.threads[t].view[li] as usize;
                    if view == 0 {
                        0
                    } else {
                        s.co[li][view - 1].value
                    }
                };
                s.threads[t].regs[*reg] = v;
                if mode.exclusive {
                    s.threads[t].monitor = Some((*loc, s.co[li].len() as u8));
                }
                Self::conflict(&mut s, t, *loc, false);
            }
            Op::Store { loc, value, mode } => {
                if mode.exclusive {
                    match s.threads[t].monitor.take() {
                        Some((mloc, mlen))
                            if mloc == *loc && s.co[*loc as usize].len() as u8 == mlen => {}
                        _ => return None,
                    }
                }
                s.threads[t].commit(i);
                if let Some(txn) = s.threads[t].txn.as_mut() {
                    txn.write_locs |= 1 << *loc;
                    txn.writes.push((*loc, *value));
                } else {
                    Self::push_write(&mut s, t, *loc, *value);
                }
            }
            Op::Fence(Fence::Sync, _) => {
                // sync stalls until everything seen is seen everywhere.
                if !Self::fully_propagated(&s, t) {
                    return None;
                }
                s.threads[t].commit(i);
                s.threads[t].snapshot = s.threads[t].view;
            }
            Op::Fence(Fence::Lwsync, _) => {
                s.threads[t].commit(i);
                s.threads[t].snapshot = s.threads[t].view;
            }
            Op::Fence(_, _) => {
                s.threads[t].commit(i);
            }
            Op::TxBegin { txn_id, .. } => {
                // tbegin is a cumulative barrier, like sync; the
                // transactional state change also cancels any exclusive
                // reservation (TxnCancelsRMW).
                if !Self::fully_propagated(&s, t) {
                    return None;
                }
                s.threads[t].monitor = None;
                s.threads[t].commit(i);
                s.threads[t].snapshot = s.threads[t].view;
                s.threads[t].txn = Some(Txn {
                    id: *txn_id,
                    read_set: 0,
                    write_locs: 0,
                    writes: Vec::new(),
                    span: Self::txn_span(instrs, i),
                });
            }
            Op::TxEnd => {
                s.threads[t].monitor = None;
                s.threads[t].commit(i);
                if let Some(txn) = s.threads[t].txn.take() {
                    // The integrated memory barrier: everything the
                    // transaction observed (Group A = its current view)
                    // propagates to every thread first...
                    let group_a = s.threads[t].view;
                    for th in &mut s.threads {
                        for (l, &seen) in group_a.iter().enumerate() {
                            th.view[l] = th.view[l].max(seen);
                        }
                    }
                    s.threads[t].snapshot = group_a;
                    // ...then the transactional stores propagate fully
                    // before the transaction commits (multicopy-atomic).
                    for (loc, val) in txn.writes.clone() {
                        Self::push_write(&mut s, t, loc, val);
                        let len = s.co[loc as usize].len() as u8;
                        for th in &mut s.threads {
                            th.view[loc as usize] = th.view[loc as usize].max(len);
                        }
                    }
                    s.threads[t].snapshot = s.threads[t].view;
                } else if !Self::fully_propagated(&s, t) {
                    // A read-only transaction's tend is still a
                    // cumulative barrier.
                    return None;
                }
            }
            Op::LockCall(_) => {
                s.threads[t].commit(i);
            }
        }
        Some(s)
    }

    /// Propagate one coherence-list entry to one thread, if barrier
    /// snapshots allow.
    fn propagate(state: &State, t: usize, loc: usize) -> Option<State> {
        let view = state.threads[t].view[loc] as usize;
        let rec = state.co[loc].get(view)?;
        // Cumulative barriers: the write's snapshot must already be
        // visible to t.
        for l in 0..MAX_LOCS {
            if state.threads[t].view[l] < rec.preds[l] {
                return None;
            }
        }
        // A propagating write conflicts with transactions on t.
        let mut s = state.clone();
        s.threads[t].view[loc] += 1;
        let bit = 1u8 << loc;
        if let Some(txn) = &s.threads[t].txn {
            if txn.read_set & bit != 0 || txn.write_locs & bit != 0 {
                let txn = s.threads[t].txn.take().expect("checked above");
                s.txn_ok[txn.id] = false;
                for i in txn.span.0..=txn.span.1 {
                    s.threads[t].commit(i);
                }
            }
        }
        Some(s)
    }
}

impl Simulator for PowerSim {
    fn name(&self) -> &'static str {
        "power-prop"
    }

    fn run(&self, test: &LitmusTest) -> OutcomeSet {
        assert!(
            test.locations().iter().all(|&l| (l as usize) < MAX_LOCS),
            "too many locations for the simulator"
        );
        assert!(
            test.threads.iter().all(|t| t.len() <= 32),
            "thread too long"
        );
        let threads: Vec<Thread> = test
            .threads
            .iter()
            .map(|instrs| {
                let nregs = instrs
                    .iter()
                    .filter_map(|i| match i.op {
                        Op::Load { reg, .. } => Some(reg + 1),
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0);
                Thread {
                    committed: 0,
                    regs: vec![0; nregs],
                    view: [0; MAX_LOCS],
                    snapshot: [0; MAX_LOCS],
                    txn: None,
                    monitor: None,
                }
            })
            .collect();
        let init = State {
            co: vec![Vec::new(); MAX_LOCS],
            threads,
            txn_ok: vec![true; test.num_txns()],
        };
        let mut outcomes = OutcomeSet::new();
        let mut seen = HashSet::new();
        let mut stack = vec![init];
        while let Some(state) = stack.pop() {
            if !seen.insert(state.clone()) {
                continue;
            }
            let done = state
                .threads
                .iter()
                .enumerate()
                .all(|(t, th)| (0..test.threads[t].len()).all(|i| th.is_committed(i)));
            if done {
                let memory: Vec<u32> = (0..MAX_LOCS)
                    .map(|l| state.co[l].last().map(|w| w.value).unwrap_or(0))
                    .collect();
                let co_order: Vec<Vec<u32>> = (0..MAX_LOCS)
                    .map(|l| state.co[l].iter().map(|w| w.value).collect())
                    .collect();
                outcomes.insert(Outcome {
                    regs: state.threads.iter().map(|t| t.regs.clone()).collect(),
                    memory,
                    txn_ok: state.txn_ok.clone(),
                    co_order,
                });
                continue;
            }
            for t in 0..state.threads.len() {
                for i in 0..test.threads[t].len() {
                    if self.ready(&test.threads[t], &state.threads[t], i) {
                        if let Some(next) = self.step(test, &state, t, i) {
                            stack.push(next);
                        }
                    }
                }
                for loc in 0..MAX_LOCS {
                    if let Some(next) = Self::propagate(&state, t, loc) {
                        stack.push(next);
                    }
                }
            }
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_core::Fence;
    use txmm_litmus::litmus_from_execution;
    use txmm_models::{catalog, Arch};

    fn make(name: &str, x: &txmm_core::Execution) -> LitmusTest {
        litmus_from_execution(name, x, Arch::Power)
    }

    fn sim() -> PowerSim {
        PowerSim::default()
    }

    #[test]
    fn mp_plain_observable() {
        let t = make("mp", &catalog::mp(None, false, false));
        assert!(sim().observable(&t), "writes may propagate out of order");
    }

    #[test]
    fn mp_sync_addr_not_observable() {
        let t = make("mp+sync+addr", &catalog::mp(Some(Fence::Sync), true, false));
        assert!(!sim().observable(&t));
    }

    #[test]
    fn mp_lwsync_addr_not_observable() {
        let t = make(
            "mp+lwsync+addr",
            &catalog::mp(Some(Fence::Lwsync), true, false),
        );
        assert!(!sim().observable(&t));
    }

    #[test]
    fn mp_half_strength_observable() {
        assert!(sim().observable(&make("mp+dep", &catalog::mp(None, true, false))));
        assert!(sim().observable(&make(
            "mp+sync",
            &catalog::mp(Some(Fence::Sync), false, false)
        )));
    }

    #[test]
    fn sb_observable() {
        let t = make("sb", &catalog::sb(None, false, false));
        assert!(sim().observable(&t));
    }

    #[test]
    fn lb_conservatism() {
        let t = make("lb", &catalog::lb(false));
        assert!(!sim().observable(&t), "POWER8 hardware never exhibits LB");
        assert!(
            PowerSim {
                restrict_load_buffering: false
            }
            .observable(&t),
            "the model itself allows LB"
        );
    }

    #[test]
    fn wrc_txn_not_observable() {
        // §5.2 (1): the transaction's integrated memory barrier forbids
        // the WRC shape.
        let t = make("wrc+txn", &catalog::power_exec1());
        assert!(!sim().observable(&t));
    }

    #[test]
    fn wrc_plain_observable() {
        // Without the transaction, WRC is a legal Power weak behaviour.
        let t = make("wrc", &catalog::power_exec1().erase_txns());
        assert!(sim().observable(&t));
    }

    #[test]
    fn wrc_txn_writer_not_observable() {
        // §5.2 (2): transactional stores are multicopy atomic.
        let t = make("wrc+txnw", &catalog::power_exec2());
        assert!(!sim().observable(&t));
    }

    #[test]
    fn iriw_txns_not_observable() {
        // §5.2 (3): transactions serialise.
        let t = make("iriw+txns", &catalog::power_exec3(true));
        assert!(!sim().observable(&t));
    }

    #[test]
    fn iriw_plain_observable() {
        let t = make("iriw", &catalog::power_exec3(true).erase_txns());
        assert!(
            sim().observable(&t),
            "IRIW is the canonical non-MCA behaviour"
        );
    }

    #[test]
    fn fig3_shapes_not_observable() {
        for which in ['a', 'b', 'c', 'd'] {
            let t = make("fig3", &catalog::fig3(which));
            assert!(
                !sim().observable(&t),
                "fig3({which}) violates strong isolation"
            );
        }
    }

    #[test]
    fn mp_txns_not_observable() {
        let t = make("mp+txns", &catalog::mp(None, false, true));
        assert!(!sim().observable(&t));
    }
}
