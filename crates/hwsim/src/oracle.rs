//! An axiomatic hardware oracle.
//!
//! The paper answers "is this test observable on hardware?" by running
//! millions of iterations on real machines. We do not have the machines,
//! so alongside the operational simulators this module provides a fast
//! oracle: an execution is *observable* when it is consistent under the
//! architecture's model **and** passes the implementation's conservatism
//! rules. The conservatism rules model the empirical gaps the paper
//! reports — most notably that load buffering has never been observed on
//! Power hardware (§5.3), which accounts for most unobserved Allow tests.

use txmm_core::Execution;
use txmm_models::Model;

/// Ways a real implementation is more conservative than its architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conservatism {
    /// The implementation never exhibits load buffering:
    /// `acyclic(po ∪ rf)` (POWER8, §5.3).
    NoLoadBuffering,
}

/// A simulated hardware implementation: a model plus conservatism rules.
pub struct Oracle {
    model: Box<dyn Model>,
    rules: Vec<Conservatism>,
    name: String,
}

impl Oracle {
    /// An implementation that exactly realises its architecture model.
    pub fn exact(model: Box<dyn Model>) -> Oracle {
        let name = format!("{}-hw", model.name());
        Oracle {
            model,
            rules: Vec::new(),
            name,
        }
    }

    /// An implementation with conservatism rules.
    pub fn conservative(model: Box<dyn Model>, rules: Vec<Conservatism>) -> Oracle {
        let name = format!("{}-hw-conservative", model.name());
        Oracle { model, rules, name }
    }

    /// The oracle's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Would this execution be observable on the simulated machine?
    pub fn admits(&self, x: &Execution) -> bool {
        self.admits_analysis(&x.analysis())
    }

    /// [`Oracle::admits`] against a caller-shared analysis.
    pub fn admits_analysis(&self, a: &txmm_core::ExecutionAnalysis<'_>) -> bool {
        if !self.model.consistent_analysis(a) {
            return false;
        }
        self.rules.iter().all(|r| match r {
            Conservatism::NoLoadBuffering => a.po().union(a.rf()).is_acyclic(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_models::{catalog, Armv8, Power, X86};

    #[test]
    fn exact_oracle_mirrors_model() {
        let o = Oracle::exact(Box::new(X86::tm()));
        assert!(o.admits(&catalog::sb(None, false, false)));
        assert!(!o.admits(&catalog::sb(None, true, true)));
        assert_eq!(o.name(), "x86-tm-hw");
    }

    #[test]
    fn power8_oracle_hides_lb() {
        let exact = Oracle::exact(Box::new(Power::tm()));
        let p8 = Oracle::conservative(Box::new(Power::tm()), vec![Conservatism::NoLoadBuffering]);
        let lb = catalog::lb(false);
        assert!(exact.admits(&lb), "the model allows LB");
        assert!(!p8.admits(&lb), "the hardware never shows it");
        // Non-LB behaviours unaffected.
        let sbx = catalog::sb(None, false, false);
        assert_eq!(exact.admits(&sbx), p8.admits(&sbx));
    }

    #[test]
    fn armv8_oracle_admits_elision_witness() {
        let o = Oracle::exact(Box::new(Armv8::tm()));
        assert!(o.admits(&catalog::armv8_elision(false)));
        assert!(!o.admits(&catalog::armv8_elision(true)));
    }
}
