//! # txmm-hwsim
//!
//! Hardware substitutes for the paper's empirical testing (§5.3): the
//! paper ran synthesised litmus tests on four TSX machines and an
//! 80-core POWER8; we run them on exhaustively-explored operational
//! simulators and on an axiomatic oracle.
//!
//! * [`tso::TsoSim`] — x86-TSO with store buffers, forwarding, LOCK'd
//!   RMWs and TSX-style transactions;
//! * [`armsim::ArmSim`] — ARMv8-style out-of-order commit over a single
//!   (multicopy-atomic) memory with the proposed TM extension;
//! * [`powersim::PowerSim`] — Power-style commit + write-propagation
//!   storage subsystem with cumulative barriers and Power TM;
//! * [`oracle::Oracle`] — the architecture model itself plus
//!   *conservatism* rules (e.g. POWER8 never exhibits load buffering).
//!
//! All simulators explore every interleaving/commit order (DFS with
//! state memoisation) and report the set of reachable final states, so
//! `observable` answers are exact rather than statistical.
//!
//! ```
//! use txmm_hwsim::{Simulator, TsoSim};
//! use txmm_litmus::litmus_from_execution;
//! use txmm_models::{catalog, Arch};
//!
//! let t = litmus_from_execution("sb", &catalog::sb(None, false, false), Arch::X86);
//! assert!(TsoSim.observable(&t));
//! ```

pub mod armsim;
pub mod oracle;
pub mod outcome;
pub mod powersim;
pub mod random;
pub mod tso;

pub use armsim::ArmSim;
pub use oracle::{Conservatism, Oracle};
pub use outcome::{Outcome, OutcomeSet, Simulator, MAX_LOCS};
pub use powersim::PowerSim;
pub use random::{Campaign, RandomRunner};
pub use tso::TsoSim;
