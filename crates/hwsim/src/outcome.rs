//! Final states of litmus-test runs, and postcondition evaluation.

use std::collections::BTreeSet;

use txmm_litmus::{Check, LitmusTest};

/// Locations the simulators model: every [`Outcome`] has `memory` and
/// `co_order` of exactly this length, so outcomes from different
/// explorers (and the axiomatic outcome engine padding to the same
/// width) compare structurally.
pub const MAX_LOCS: usize = 8;

/// A final state: registers, memory, and per-transaction commit flags.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Outcome {
    /// `regs[tid][reg]` — register files at exit (unset registers are 0).
    pub regs: Vec<Vec<u32>>,
    /// `memory[loc]` — final value of each location.
    pub memory: Vec<u32>,
    /// `txn_ok[txn_id]` — did the transaction commit?
    pub txn_ok: Vec<bool>,
    /// `co_order[loc]` — the values written to each location, in the
    /// order they hit coherence (the simulated hardware's answer to
    /// footnote 2's "extra constraints").
    pub co_order: Vec<Vec<u32>>,
}

impl Outcome {
    /// Does this outcome satisfy the test's postcondition?
    pub fn passes(&self, test: &LitmusTest) -> bool {
        test.post.iter().all(|c| match c {
            Check::Reg { tid, reg, value } => {
                self.regs
                    .get(*tid)
                    .and_then(|r| r.get(*reg))
                    .copied()
                    .unwrap_or(0)
                    == *value
            }
            Check::Loc { loc, value } => {
                self.memory.get(*loc as usize).copied().unwrap_or(0) == *value
            }
            Check::TxnOk { txn_id } => self.txn_ok.get(*txn_id).copied().unwrap_or(false),
            Check::CoSeq { loc, values } => {
                self.co_order
                    .get(*loc as usize)
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                    == values.as_slice()
            }
        })
    }
}

/// The set of final states a simulator found reachable.
pub type OutcomeSet = BTreeSet<Outcome>;

/// A hardware simulator: exhaustively explores a litmus test.
pub trait Simulator {
    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// All reachable final states.
    fn run(&self, test: &LitmusTest) -> OutcomeSet;

    /// Is the test's postcondition observable (i.e. does some reachable
    /// final state pass it)? This answers the paper's Table 1 question:
    /// "is this test Seen on this implementation?"
    fn observable(&self, test: &LitmusTest) -> bool {
        self.run(test).iter().any(|o| o.passes(test))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_models::Arch;

    #[test]
    fn postcondition_evaluation() {
        let t = LitmusTest {
            name: "t".into(),
            arch: Arch::X86,
            threads: vec![],
            post: vec![
                Check::Reg {
                    tid: 0,
                    reg: 0,
                    value: 2,
                },
                Check::Loc { loc: 0, value: 2 },
                Check::TxnOk { txn_id: 0 },
            ],
        };
        let good = Outcome {
            regs: vec![vec![2]],
            memory: vec![2],
            txn_ok: vec![true],
            co_order: vec![],
        };
        assert!(good.passes(&t));
        let bad_reg = Outcome {
            regs: vec![vec![1]],
            memory: vec![2],
            txn_ok: vec![true],
            co_order: vec![],
        };
        assert!(!bad_reg.passes(&t));
        let bad_txn = Outcome {
            regs: vec![vec![2]],
            memory: vec![2],
            txn_ok: vec![false],
            co_order: vec![],
        };
        assert!(!bad_txn.passes(&t));
        let missing = Outcome::default();
        assert!(!missing.passes(&t));
    }

    #[test]
    fn unset_registers_default_to_zero() {
        let t = LitmusTest {
            name: "t".into(),
            arch: Arch::X86,
            threads: vec![],
            post: vec![Check::Reg {
                tid: 1,
                reg: 3,
                value: 0,
            }],
        };
        assert!(Outcome::default().passes(&t));
    }
}
