//! A statistical runner in the style of the Litmus tool (§5.3): instead
//! of exhaustive exploration, run a test many times under randomised
//! scheduling and count the outcomes observed.
//!
//! The exhaustive simulators answer observability exactly; this runner
//! exists to mirror the paper's methodology (1M runs per x86 test, 10M
//! per Power test) and to exercise big tests where exhaustive
//! exploration would be slow. Random walks only ever *under*-approximate
//! the outcome set, like real hardware runs.

use std::collections::BTreeMap;

use txmm_core::rng::SplitMix64;
use txmm_litmus::LitmusTest;

use crate::outcome::{Outcome, Simulator};

/// Results of a randomised campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Outcome histogram.
    pub histogram: BTreeMap<Outcome, usize>,
    /// Runs performed.
    pub runs: usize,
    /// How many runs passed the postcondition.
    pub hits: usize,
}

impl Campaign {
    /// The observation frequency, Litmus-style.
    pub fn frequency(&self) -> f64 {
        self.hits as f64 / self.runs.max(1) as f64
    }
}

/// Wraps any exhaustive simulator with uniform random *selection* among
/// its reachable outcomes per run, emulating a scheduling-randomised
/// hardware campaign.
///
/// (Running the DFS once and sampling outcomes is equivalent to running
/// a random walk many times, minus the walk's bias; it keeps the runner
/// exact about reachability while exposing a Litmus-shaped interface.)
pub struct RandomRunner<S: Simulator> {
    sim: S,
    rng: SplitMix64,
}

impl<S: Simulator> RandomRunner<S> {
    /// A runner with a fixed seed (campaigns are reproducible).
    pub fn new(sim: S, seed: u64) -> RandomRunner<S> {
        RandomRunner {
            sim,
            rng: SplitMix64::seed_from_u64(seed),
        }
    }

    /// Run the campaign.
    pub fn campaign(&mut self, test: &LitmusTest, runs: usize) -> Campaign {
        let outcomes: Vec<Outcome> = self.sim.run(test).into_iter().collect();
        let mut histogram = BTreeMap::new();
        let mut hits = 0usize;
        for _ in 0..runs {
            let pick = &outcomes[self.rng.below(outcomes.len())];
            if pick.passes(test) {
                hits += 1;
            }
            *histogram.entry(pick.clone()).or_insert(0) += 1;
        }
        Campaign {
            histogram,
            runs,
            hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tso::TsoSim;
    use txmm_litmus::litmus_from_execution;
    use txmm_models::{catalog, Arch};

    #[test]
    fn campaign_finds_sb() {
        let t = litmus_from_execution("sb", &catalog::sb(None, false, false), Arch::X86);
        let mut runner = RandomRunner::new(TsoSim, 42);
        let c = runner.campaign(&t, 2_000);
        assert!(c.hits > 0, "store buffering shows up within 2000 runs");
        assert!(c.frequency() > 0.0 && c.frequency() < 1.0);
        assert_eq!(c.runs, 2_000);
        assert_eq!(c.histogram.values().sum::<usize>(), 2_000);
    }

    #[test]
    fn campaign_never_finds_forbidden() {
        let t = litmus_from_execution("sb+txns", &catalog::sb(None, true, true), Arch::X86);
        let mut runner = RandomRunner::new(TsoSim, 7);
        let c = runner.campaign(&t, 5_000);
        assert_eq!(c.hits, 0, "forbidden outcomes never appear");
    }

    #[test]
    fn campaigns_reproducible() {
        let t = litmus_from_execution("sb", &catalog::sb(None, false, false), Arch::X86);
        let a = RandomRunner::new(TsoSim, 1).campaign(&t, 500);
        let b = RandomRunner::new(TsoSim, 1).campaign(&t, 500);
        assert_eq!(a.hits, b.hits);
        let c = RandomRunner::new(TsoSim, 2).campaign(&t, 500);
        let _ = c; // different seed may differ; only determinism is asserted
    }
}
