//! An operational x86-TSO simulator with TSX-style transactions.
//!
//! The classic x86-TSO machine (Owens et al., TPHOLs 2009): each thread
//! executes in program order through a FIFO store buffer with forwarding;
//! buffers drain non-deterministically; `MFENCE` and `LOCK`'d RMWs drain
//! the buffer. Transactions follow Intel TSX: reads and writes are
//! tracked; a remote access that conflicts with the read/write set aborts
//! the transaction (requester-wins, strong isolation); commits publish
//! the write set atomically; `XBEGIN`/`XEND` have fence semantics.
//!
//! Exploration is an exhaustive DFS over all interleavings and drain
//! points, with state memoisation.

use std::collections::{HashSet, VecDeque};

use txmm_litmus::{LitmusTest, Op};

use crate::outcome::{Outcome, OutcomeSet, Simulator, MAX_LOCS};

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Txn {
    id: usize,
    read_set: u8,
    write_locs: u8,
    writes: Vec<(u8, u32)>,
    end_pc: usize,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Thread {
    pc: usize,
    regs: Vec<u32>,
    sb: VecDeque<(u8, u32)>,
    txn: Option<Txn>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    mem: [u32; MAX_LOCS],
    colog: Vec<Vec<u32>>,
    threads: Vec<Thread>,
    txn_ok: Vec<bool>,
}

/// The x86-TSO + TSX simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct TsoSim;

impl TsoSim {
    fn initial(test: &LitmusTest) -> State {
        let threads = test
            .threads
            .iter()
            .map(|instrs| {
                let nregs = instrs
                    .iter()
                    .filter_map(|i| match i.op {
                        Op::Load { reg, .. } => Some(reg + 1),
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0);
                Thread {
                    pc: 0,
                    regs: vec![0; nregs],
                    sb: VecDeque::new(),
                    txn: None,
                }
            })
            .collect();
        State {
            mem: [0; MAX_LOCS],
            colog: vec![Vec::new(); MAX_LOCS],
            threads,
            txn_ok: vec![true; test.num_txns()],
        }
    }

    /// Write `val` to memory, aborting every *other* thread's transaction
    /// that has `loc` in its read or write set (conflict).
    fn write_mem(state: &mut State, test: &LitmusTest, writer: usize, loc: u8, val: u32) {
        state.mem[loc as usize] = val;
        state.colog[loc as usize].push(val);
        Self::conflict(state, test, writer, loc, true);
    }

    /// Signal an access by `actor` to `loc`; `is_write` selects whether
    /// read sets also conflict.
    fn conflict(state: &mut State, test: &LitmusTest, actor: usize, loc: u8, is_write: bool) {
        let bit = 1u8 << loc;
        for t in 0..state.threads.len() {
            if t == actor {
                continue;
            }
            let hit = match &state.threads[t].txn {
                Some(txn) => (txn.write_locs & bit != 0) || (is_write && txn.read_set & bit != 0),
                None => false,
            };
            if hit {
                let txn = state.threads[t].txn.take().expect("hit implies txn");
                state.txn_ok[txn.id] = false;
                // The transaction vanishes: control resumes after TxEnd.
                state.threads[t].pc = txn.end_pc + 1;
                let _ = test;
            }
        }
    }

    /// Find the matching `TxEnd` for a `TxBegin` at `pc`.
    fn txn_end(instrs: &[txmm_litmus::Instr], pc: usize) -> usize {
        instrs[pc + 1..]
            .iter()
            .position(|i| matches!(i.op, Op::TxEnd))
            .map(|off| pc + 1 + off)
            .expect("TxBegin without TxEnd")
    }

    /// All successor states of `state`.
    fn successors(test: &LitmusTest, state: &State) -> Vec<State> {
        let mut out = Vec::new();
        for t in 0..state.threads.len() {
            // Drain one store-buffer entry.
            if !state.threads[t].sb.is_empty() {
                let mut s = state.clone();
                let (loc, val) = s.threads[t].sb.pop_front().expect("non-empty buffer");
                Self::write_mem(&mut s, test, t, loc, val);
                out.push(s);
            }
            let instrs = &test.threads[t];
            let pc = state.threads[t].pc;
            if pc >= instrs.len() {
                continue;
            }
            match &instrs[pc].op {
                Op::Load { reg, loc, mode } if mode.exclusive => {
                    // A LOCK'd RMW: the paired exclusive store must be
                    // the next instruction; both execute atomically with
                    // fence semantics.
                    if !state.threads[t].sb.is_empty() || state.threads[t].txn.is_some() {
                        // LOCK'd ops inside transactions are executed as
                        // plain txn accesses below; outside, wait for
                        // the buffer to drain (handled by drain step).
                        if state.threads[t].txn.is_none() {
                            continue;
                        }
                    }
                    let store = instrs.get(pc + 1).map(|i| &i.op);
                    let Some(Op::Store {
                        loc: sloc,
                        value,
                        mode: smode,
                    }) = store
                    else {
                        // An rmw pair straddling a transaction boundary
                        // has no single-instruction x86 encoding; the
                        // path is unrealisable.
                        continue;
                    };
                    assert!(smode.exclusive && sloc == loc, "mismatched RMW pair");
                    let mut s = state.clone();
                    if let Some(txn) = s.threads[t].txn.as_mut() {
                        let bit = 1u8 << *loc;
                        txn.read_set |= bit;
                        let v = txn
                            .writes
                            .iter()
                            .rev()
                            .find(|(l, _)| l == loc)
                            .map(|&(_, v)| v)
                            .unwrap_or(s.mem[*loc as usize]);
                        s.threads[t].regs[*reg] = v;
                        let txn = s.threads[t].txn.as_mut().expect("still in txn");
                        txn.write_locs |= bit;
                        txn.writes.push((*loc, *value));
                        s.threads[t].pc = pc + 2;
                        Self::conflict(&mut s, test, t, *loc, false);
                    } else {
                        s.threads[t].regs[*reg] = s.mem[*loc as usize];
                        Self::write_mem(&mut s, test, t, *loc, *value);
                        s.threads[t].pc = pc + 2;
                    }
                    out.push(s);
                }
                Op::Load { reg, loc, .. } => {
                    let mut s = state.clone();
                    let v = if let Some(txn) = s.threads[t].txn.as_mut() {
                        txn.read_set |= 1u8 << *loc;
                        txn.writes
                            .iter()
                            .rev()
                            .find(|(l, _)| l == loc)
                            .map(|&(_, v)| v)
                            .unwrap_or(s.mem[*loc as usize])
                    } else {
                        // Store-buffer forwarding.
                        s.threads[t]
                            .sb
                            .iter()
                            .rev()
                            .find(|(l, _)| l == loc)
                            .map(|&(_, v)| v)
                            .unwrap_or(s.mem[*loc as usize])
                    };
                    s.threads[t].regs[*reg] = v;
                    s.threads[t].pc = pc + 1;
                    if s.threads[t].txn.is_some() {
                        // Strong isolation: a transactional read of a
                        // location in another txn's write set conflicts.
                        Self::conflict(&mut s, test, t, *loc, false);
                    }
                    out.push(s);
                }
                Op::Store { loc, value, .. } => {
                    let mut s = state.clone();
                    if let Some(txn) = s.threads[t].txn.as_mut() {
                        txn.write_locs |= 1u8 << *loc;
                        txn.writes.push((*loc, *value));
                        s.threads[t].pc = pc + 1;
                    } else {
                        s.threads[t].sb.push_back((*loc, *value));
                        s.threads[t].pc = pc + 1;
                    }
                    out.push(s);
                }
                Op::Fence(_, _) => {
                    // MFENCE: only passes once the buffer is empty.
                    if state.threads[t].sb.is_empty() {
                        let mut s = state.clone();
                        s.threads[t].pc = pc + 1;
                        out.push(s);
                    }
                }
                Op::TxBegin { txn_id, .. } => {
                    // Fence semantics: wait for the buffer to drain.
                    if state.threads[t].sb.is_empty() {
                        let mut s = state.clone();
                        s.threads[t].txn = Some(Txn {
                            id: *txn_id,
                            read_set: 0,
                            write_locs: 0,
                            writes: Vec::new(),
                            end_pc: Self::txn_end(instrs, pc),
                        });
                        s.threads[t].pc = pc + 1;
                        out.push(s);
                    }
                }
                Op::TxEnd => {
                    let mut s = state.clone();
                    let txn = s.threads[t].txn.take().expect("TxEnd outside transaction");
                    // Commit: publish the write set atomically.
                    let writes = txn.writes.clone();
                    for (loc, val) in writes {
                        Self::write_mem(&mut s, test, t, loc, val);
                    }
                    s.threads[t].pc = pc + 1;
                    out.push(s);
                }
                Op::LockCall(_) => {
                    // Abstract call events have no machine semantics.
                    let mut s = state.clone();
                    s.threads[t].pc = pc + 1;
                    out.push(s);
                }
            }
        }
        out
    }
}

impl Simulator for TsoSim {
    fn name(&self) -> &'static str {
        "x86-tso+tsx"
    }

    fn run(&self, test: &LitmusTest) -> OutcomeSet {
        assert!(
            test.locations().iter().all(|&l| (l as usize) < MAX_LOCS),
            "too many locations for the simulator"
        );
        let mut outcomes = OutcomeSet::new();
        let mut seen = HashSet::new();
        let mut stack = vec![Self::initial(test)];
        while let Some(state) = stack.pop() {
            if !seen.insert(state.clone()) {
                continue;
            }
            let done = state
                .threads
                .iter()
                .enumerate()
                .all(|(t, th)| th.pc >= test.threads[t].len() && th.sb.is_empty());
            if done {
                outcomes.insert(Outcome {
                    regs: state.threads.iter().map(|t| t.regs.clone()).collect(),
                    memory: state.mem[..MAX_LOCS].to_vec(),
                    txn_ok: state.txn_ok.clone(),
                    co_order: state.colog.clone(),
                });
                continue;
            }
            stack.extend(Self::successors(test, &state));
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_core::Fence;
    use txmm_litmus::litmus_from_execution;
    use txmm_models::{catalog, Arch};

    fn make(name: &str, x: &txmm_core::Execution) -> LitmusTest {
        litmus_from_execution(name, x, Arch::X86)
    }

    #[test]
    fn sb_observable() {
        let t = make("sb", &catalog::sb(None, false, false));
        assert!(
            TsoSim.observable(&t),
            "store buffering is the hallmark TSO relaxation"
        );
    }

    #[test]
    fn sb_mfence_not_observable() {
        let t = make("sb+mfence", &catalog::sb(Some(Fence::MFence), false, false));
        assert!(!TsoSim.observable(&t));
    }

    #[test]
    fn sb_both_txns_not_observable() {
        let t = make("sb+txns", &catalog::sb(None, true, true));
        assert!(
            !TsoSim.observable(&t),
            "transactions forbid SB between them"
        );
    }

    #[test]
    fn sb_one_txn_observable() {
        let t = make("sb+txn0", &catalog::sb(None, true, false));
        assert!(
            TsoSim.observable(&t),
            "a single transactional thread leaves SB visible"
        );
    }

    #[test]
    fn mp_not_observable() {
        let t = make("mp", &catalog::mp(None, false, false));
        assert!(!TsoSim.observable(&t), "TSO preserves W->W and R->R order");
    }

    #[test]
    fn fig1_observable() {
        let t = make("fig1", &catalog::fig1());
        assert!(TsoSim.observable(&t));
    }

    #[test]
    fn fig2_txn_not_observable() {
        // Fig. 2: the transaction's read must not observe an external
        // write that is co-after its own write (containment).
        let t = make("fig2", &catalog::fig2());
        assert!(!TsoSim.observable(&t));
    }

    #[test]
    fn fig3_shapes_not_observable() {
        for which in ['a', 'b', 'c', 'd'] {
            let t = make("fig3", &catalog::fig3(which));
            assert!(
                !TsoSim.observable(&t),
                "fig3({which}) violates strong isolation"
            );
        }
    }

    #[test]
    fn locked_rmw_forbids_sb() {
        let mut b = txmm_core::ExecBuilder::new();
        let t0 = b.new_thread();
        let r0 = b.read(t0, 0);
        let w0 = b.write(t0, 0);
        b.rmw(r0, w0);
        let _ry = b.read(t0, 1);
        let t1 = b.new_thread();
        let r1 = b.read(t1, 1);
        let w1 = b.write(t1, 1);
        b.rmw(r1, w1);
        let _rx = b.read(t1, 0);
        let x = b.build().unwrap();
        let t = make("sb+rmws", &x);
        assert!(!TsoSim.observable(&t));
    }

    #[test]
    fn outcome_count_sanity() {
        // A single thread storing then loading always sees its own store
        // (forwarding): exactly one outcome.
        let mut b = txmm_core::ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read(t0, 0);
        b.rf(w, r);
        let x = b.build().unwrap();
        let t = make("fwd", &x);
        let outs = TsoSim.run(&t);
        assert_eq!(outs.len(), 1);
        assert!(TsoSim.observable(&t));
    }

    #[test]
    fn x86_elision_witness_not_observable() {
        // §8.3: lock elision is sound on x86 — the witness that breaks
        // ARMv8 cannot happen under TSO.
        let t = make("x86-elision", &catalog::x86_elision());
        assert!(!TsoSim.observable(&t));
    }

    #[test]
    fn conflicting_txns_serialise() {
        // Two transactions incrementing the same location: the final
        // value must reflect both (no lost update), because conflicting
        // transactions cannot interleave.
        let mut b = txmm_core::ExecBuilder::new();
        let t0 = b.new_thread();
        let r0 = b.read(t0, 0);
        let w0 = b.write(t0, 0);
        b.txn(&[r0, w0]);
        let t1 = b.new_thread();
        let r1 = b.read(t1, 0);
        let w1 = b.write(t1, 0);
        b.txn(&[r1, w1]);
        // The interleaved execution: both reads see 0, t0's write first.
        b.co(w0, w1);
        let x = b.build().unwrap();
        let t = make("lost-update", &x);
        // Postcondition wants r0 = 0 ∧ r1 = 0 ∧ both committed: lost
        // update, must be unobservable.
        assert!(!TsoSim.observable(&t));
    }
}
