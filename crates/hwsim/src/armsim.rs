//! An operational ARMv8 simulator: per-thread out-of-order commit over a
//! single (multicopy-atomic) memory, with the proposed TM extension.
//!
//! Each thread may commit any not-yet-committed instruction whose
//! *ordering predecessors* have all committed. The commit-order rules
//! mirror the architecture: dependencies (address/data always; control
//! only to stores, or to anything across an `ISB`), barriers (`DMB`,
//! `DMB LD`, `DMB ST`), one-way acquire/release fences, same-location
//! order, exclusives monitors, and full-barrier transaction boundaries.
//!
//! Loads read memory *at commit time* — exactly the speculation window
//! that makes Example 1.1's lock elision unsound: the critical region's
//! load may commit before the earlier store-exclusive.

use std::collections::HashSet;

use txmm_litmus::{DepKind, Instr, LitmusTest, Op};

use crate::outcome::{Outcome, OutcomeSet, Simulator, MAX_LOCS};

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Txn {
    id: usize,
    read_set: u8,
    write_locs: u8,
    writes: Vec<(u8, u32)>,
    span: (usize, usize),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Thread {
    committed: u32,
    regs: Vec<u32>,
    txn: Option<Txn>,
    monitor: Option<(u8, u32)>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    mem: [u32; MAX_LOCS],
    wc: [u32; MAX_LOCS],
    colog: Vec<Vec<u32>>,
    threads: Vec<Thread>,
    txn_ok: Vec<bool>,
}

impl Thread {
    fn is_committed(&self, i: usize) -> bool {
        self.committed & (1 << i) != 0
    }

    fn commit(&mut self, i: usize) {
        self.committed |= 1 << i;
    }
}

/// The ARMv8 simulator; `in_order_stores` restricts stores to commit
/// after all earlier loads (a conservatism knob used to mimic cores that
/// do not exhibit load buffering).
#[derive(Debug, Clone, Copy, Default)]
pub struct ArmSim {
    /// Forbid store-before-earlier-load commits (load buffering).
    pub in_order_stores: bool,
}

fn loc_of(op: &Op) -> Option<u8> {
    match op {
        Op::Load { loc, .. } | Op::Store { loc, .. } => Some(*loc),
        _ => None,
    }
}

fn fence_between(instrs: &[Instr], j: usize, i: usize, f: txmm_core::Fence) -> bool {
    instrs[j + 1..i]
        .iter()
        .any(|x| matches!(x.op, Op::Fence(k, _) if k == f))
}

impl ArmSim {
    /// Must `j` commit before `i` on the same thread?
    fn ordered(&self, instrs: &[Instr], j: usize, i: usize) -> bool {
        use txmm_core::Fence;
        let oj = &instrs[j].op;
        let oi = &instrs[i].op;
        // Transaction boundaries are full barriers.
        if matches!(oj, Op::TxBegin { .. } | Op::TxEnd)
            || matches!(oi, Op::TxBegin { .. } | Op::TxEnd)
        {
            return true;
        }
        // Fence *instructions* themselves commit freely (their ordering
        // power is positional, via fence_between below).
        // DMB variants between the two instructions.
        if fence_between(instrs, j, i, Fence::Dmb) {
            return true;
        }
        if fence_between(instrs, j, i, Fence::DmbLd) && matches!(oj, Op::Load { .. }) {
            return true;
        }
        if fence_between(instrs, j, i, Fence::DmbSt)
            && matches!(oj, Op::Store { .. })
            && matches!(oi, Op::Store { .. })
        {
            return true;
        }
        // Acquire loads order everything after them.
        if let Op::Load { mode, .. } = oj {
            if mode.acquire {
                return true;
            }
        }
        // Release stores are ordered after everything before them.
        if let Op::Store { mode, .. } = oi {
            if mode.release {
                return true;
            }
        }
        // A release store is ordered before a later acquire load
        // (aarch64 bob: [L];po;[A]).
        if let (Op::Store { mode: mj, .. }, Op::Load { mode: mi, .. }) = (oj, oi) {
            if mj.release && mi.acquire {
                return true;
            }
        }
        // Same-location accesses commit in program order (coherence).
        if let (Some(a), Some(b)) = (loc_of(oj), loc_of(oi)) {
            if a == b {
                return true;
            }
        }
        // Conservatism knob: stores never pass earlier loads.
        if self.in_order_stores && matches!(oj, Op::Load { .. }) && matches!(oi, Op::Store { .. }) {
            return true;
        }
        // Dependencies.
        for d in &instrs[i].deps {
            if d.on == j {
                match d.kind {
                    DepKind::Addr | DepKind::Data => return true,
                    DepKind::Ctrl => {
                        // ctrl orders stores; ctrl+ISB orders loads too.
                        // Write-sourced ctrl (from a store-exclusive)
                        // does NOT order on ARMv8 — that is the
                        // Example 1.1 relaxation.
                        let read_sourced = matches!(instrs[j].op, Op::Load { .. });
                        if read_sourced
                            && (matches!(oi, Op::Store { .. })
                                || fence_between(instrs, j, i, Fence::Isb))
                        {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    fn ready(&self, instrs: &[Instr], th: &Thread, i: usize) -> bool {
        if th.is_committed(i) {
            return false;
        }
        (0..i).all(|j| th.is_committed(j) || !self.ordered(instrs, j, i))
    }

    /// Abort every other thread's transaction conflicting on `loc`.
    fn conflict(state: &mut State, test: &LitmusTest, actor: usize, loc: u8, is_write: bool) {
        let bit = 1u8 << loc;
        for t in 0..state.threads.len() {
            if t == actor {
                continue;
            }
            let hit = match &state.threads[t].txn {
                Some(txn) => (txn.write_locs & bit != 0) || (is_write && txn.read_set & bit != 0),
                None => false,
            };
            if hit {
                let txn = state.threads[t].txn.take().expect("hit implies txn");
                state.txn_ok[txn.id] = false;
                // The transaction vanishes: mark its whole span committed.
                for i in txn.span.0..=txn.span.1 {
                    state.threads[t].commit(i);
                }
                let _ = test;
            }
        }
    }

    fn write_mem(state: &mut State, test: &LitmusTest, actor: usize, loc: u8, val: u32) {
        state.mem[loc as usize] = val;
        state.wc[loc as usize] += 1;
        state.colog[loc as usize].push(val);
        Self::conflict(state, test, actor, loc, true);
    }

    fn txn_span(instrs: &[Instr], begin: usize) -> (usize, usize) {
        let end = instrs[begin + 1..]
            .iter()
            .position(|i| matches!(i.op, Op::TxEnd))
            .map(|off| begin + 1 + off)
            .expect("TxBegin without TxEnd");
        (begin, end)
    }

    /// Commit instruction `i` of thread `t`; `None` when the commit is
    /// impossible (failed store-exclusive).
    fn step(&self, test: &LitmusTest, state: &State, t: usize, i: usize) -> Option<State> {
        let instrs = &test.threads[t];
        let mut s = state.clone();
        s.threads[t].commit(i);
        match &instrs[i].op {
            Op::Load { reg, loc, mode } => {
                let v = if let Some(txn) = s.threads[t].txn.as_mut() {
                    txn.read_set |= 1 << *loc;
                    txn.writes
                        .iter()
                        .rev()
                        .find(|(l, _)| l == loc)
                        .map(|&(_, v)| v)
                        .unwrap_or(s.mem[*loc as usize])
                } else {
                    s.mem[*loc as usize]
                };
                s.threads[t].regs[*reg] = v;
                if mode.exclusive {
                    s.threads[t].monitor = Some((*loc, s.wc[*loc as usize]));
                }
                // Strong isolation: reading a location in another txn's
                // write set is a conflict.
                Self::conflict(&mut s, test, t, *loc, false);
            }
            Op::Store { loc, value, mode } => {
                if mode.exclusive {
                    match s.threads[t].monitor.take() {
                        Some((mloc, mwc)) if mloc == *loc && s.wc[*loc as usize] == mwc => {}
                        _ => return None, // store-exclusive failed
                    }
                }
                if let Some(txn) = s.threads[t].txn.as_mut() {
                    txn.write_locs |= 1 << *loc;
                    txn.writes.push((*loc, *value));
                } else {
                    Self::write_mem(&mut s, test, t, *loc, *value);
                }
            }
            Op::Fence(_, _) => {}
            Op::TxBegin { txn_id, .. } => {
                // A transactional/non-transactional state change cancels
                // the exclusive reservation (TxnCancelsRMW).
                s.threads[t].monitor = None;
                s.threads[t].txn = Some(Txn {
                    id: *txn_id,
                    read_set: 0,
                    write_locs: 0,
                    writes: Vec::new(),
                    span: Self::txn_span(instrs, i),
                });
            }
            Op::TxEnd => {
                s.threads[t].monitor = None;
                if let Some(txn) = s.threads[t].txn.take() {
                    for (loc, val) in txn.writes.clone() {
                        Self::write_mem(&mut s, test, t, loc, val);
                    }
                }
            }
            Op::LockCall(_) => {}
        }
        Some(s)
    }
}

impl Simulator for ArmSim {
    fn name(&self) -> &'static str {
        "armv8-ooo"
    }

    fn run(&self, test: &LitmusTest) -> OutcomeSet {
        assert!(
            test.locations().iter().all(|&l| (l as usize) < MAX_LOCS),
            "too many locations for the simulator"
        );
        assert!(
            test.threads.iter().all(|t| t.len() <= 32),
            "thread too long for the commit bitmask"
        );
        let threads = test
            .threads
            .iter()
            .map(|instrs| {
                let nregs = instrs
                    .iter()
                    .filter_map(|i| match i.op {
                        Op::Load { reg, .. } => Some(reg + 1),
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0);
                Thread {
                    committed: 0,
                    regs: vec![0; nregs],
                    txn: None,
                    monitor: None,
                }
            })
            .collect();
        let init = State {
            mem: [0; MAX_LOCS],
            wc: [0; MAX_LOCS],
            colog: vec![Vec::new(); MAX_LOCS],
            threads,
            txn_ok: vec![true; test.num_txns()],
        };
        let mut outcomes = OutcomeSet::new();
        let mut seen = HashSet::new();
        let mut stack = vec![init];
        while let Some(state) = stack.pop() {
            if !seen.insert(state.clone()) {
                continue;
            }
            let done = state
                .threads
                .iter()
                .enumerate()
                .all(|(t, th)| (0..test.threads[t].len()).all(|i| th.is_committed(i)));
            if done {
                outcomes.insert(Outcome {
                    regs: state.threads.iter().map(|t| t.regs.clone()).collect(),
                    memory: state.mem[..MAX_LOCS].to_vec(),
                    txn_ok: state.txn_ok.clone(),
                    co_order: state.colog.clone(),
                });
                continue;
            }
            for t in 0..state.threads.len() {
                for i in 0..test.threads[t].len() {
                    if self.ready(&test.threads[t], &state.threads[t], i) {
                        if let Some(next) = self.step(test, &state, t, i) {
                            stack.push(next);
                        }
                    }
                }
            }
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_core::Fence;
    use txmm_litmus::litmus_from_execution;
    use txmm_models::{catalog, Arch};

    fn make(name: &str, x: &txmm_core::Execution) -> LitmusTest {
        litmus_from_execution(name, x, Arch::Armv8)
    }

    fn sim() -> ArmSim {
        ArmSim::default()
    }

    #[test]
    fn mp_plain_observable() {
        let t = make("mp", &catalog::mp(None, false, false));
        assert!(sim().observable(&t));
    }

    #[test]
    fn mp_dmb_addr_not_observable() {
        let t = make("mp+dmb+addr", &catalog::mp(Some(Fence::Dmb), true, false));
        assert!(!sim().observable(&t));
    }

    #[test]
    fn sb_observable_mp_dep_only_observable() {
        let t = make("sb", &catalog::sb(None, false, false));
        assert!(sim().observable(&t));
        let t2 = make("mp+dep", &catalog::mp(None, true, false));
        assert!(
            sim().observable(&t2),
            "dependency alone does not order the writes"
        );
    }

    #[test]
    fn lb_observable_unless_in_order() {
        let t = make("lb", &catalog::lb(false));
        assert!(sim().observable(&t), "ARM cores exhibit load buffering");
        assert!(!ArmSim {
            in_order_stores: true
        }
        .observable(&t));
    }

    #[test]
    fn lb_deps_never_observable() {
        let t = make("lb+deps", &catalog::lb(true));
        assert!(!sim().observable(&t), "data dependencies forbid thin air");
    }

    #[test]
    fn mp_txns_not_observable() {
        let t = make("mp+txns", &catalog::mp(None, false, true));
        assert!(!sim().observable(&t), "transactions order their contents");
    }

    #[test]
    fn elision_witness_observable() {
        // Example 1.1: the simulator exhibits the unsound lock-elision
        // outcome, agreeing with the axiomatic model.
        let t = make("armv8-elision", &catalog::armv8_elision(false));
        assert!(sim().observable(&t), "the lock-elision bug is executable");
    }

    #[test]
    fn elision_witness_with_dmb_not_observable() {
        let t = make("armv8-elision-dmb", &catalog::armv8_elision(true));
        assert!(!sim().observable(&t), "the DMB repair closes the window");
    }

    #[test]
    fn elision_appendix_b_observable() {
        let t = make("appb", &catalog::armv8_elision_appendix_b(false));
        assert!(sim().observable(&t));
        let t2 = make("appb+dmb", &catalog::armv8_elision_appendix_b(true));
        assert!(!sim().observable(&t2));
    }

    #[test]
    fn fig3_shapes_not_observable() {
        for which in ['a', 'b', 'c', 'd'] {
            let t = make("fig3", &catalog::fig3(which));
            assert!(
                !sim().observable(&t),
                "fig3({which}) violates strong isolation"
            );
        }
    }

    #[test]
    fn release_acquire_mp_not_observable() {
        let mut b = txmm_core::ExecBuilder::new();
        let t0 = b.new_thread();
        let _wx = b.write(t0, 0);
        let wy = b.write_rel(t0, 1);
        let t1 = b.new_thread();
        let ry = b.read_acq(t1, 1);
        let _rx = b.read(t1, 0);
        b.rf(wy, ry);
        let x = b.build().unwrap();
        let t = make("mp+rel+acq", &x);
        assert!(!sim().observable(&t));
    }

    #[test]
    fn exclusive_pair_atomicity() {
        // Two competing RMWs on x: both cannot read 0 and both succeed.
        let mut b = txmm_core::ExecBuilder::new();
        let t0 = b.new_thread();
        let r0 = b.read(t0, 0);
        let w0 = b.write(t0, 0);
        b.rmw(r0, w0);
        let t1 = b.new_thread();
        let r1 = b.read(t1, 0);
        let w1 = b.write(t1, 0);
        b.rmw(r1, w1);
        b.co(w0, w1);
        let x = b.build().unwrap();
        let t = make("2rmw", &x);
        // Postcondition: both read 0 (both RMWs started from init) and
        // both stores succeeded — forbidden by the monitors.
        assert!(!sim().observable(&t));
    }

    #[test]
    fn iriw_not_observable_mca() {
        let mut b = txmm_core::ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.write(t0, 0);
        let t1 = b.new_thread();
        let r1 = b.read_acq(t1, 0);
        let r2 = b.read_acq(t1, 1);
        let t2 = b.new_thread();
        let r3 = b.read_acq(t2, 1);
        let r4 = b.read_acq(t2, 0);
        let t3 = b.new_thread();
        let f = b.write(t3, 1);
        b.rf(a, r1);
        b.rf(f, r3);
        let _ = (r2, r4);
        let x = b.build().unwrap();
        let t = make("iriw", &x);
        assert!(!sim().observable(&t), "single memory = multicopy atomic");
    }
}
