//! A minimal, dependency-free stand-in for the subset of the
//! [criterion](https://docs.rs/criterion) API our benches use.
//!
//! The build environment has no access to a crate registry, so the real
//! criterion cannot be vendored. This shim keeps the bench sources
//! byte-compatible with upstream criterion (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `criterion_group!`,
//! `criterion_main!`) while providing honest wall-clock measurements:
//! each benchmark is warmed up, then timed over enough iterations to
//! fill a sampling window, and the mean and best-sample times are
//! printed in a `cargo bench`-style line.
//!
//! Swapping the path dependency back to registry criterion requires no
//! source changes in the benches.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(150);
const MEASURE: Duration = Duration::from_millis(400);
const SAMPLES: usize = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// A fresh driver.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), &mut f);
        self
    }
}

/// A named benchmark identifier, `function/parameter` style.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter display.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().full);
        run_benchmark(&label, &mut f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().full);
        run_benchmark(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Anything usable as a benchmark id (a string or a [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Convert into the concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            full: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    /// Total time across every timed call in the current sample.
    elapsed: Duration,
    /// Calls requested for the current sample.
    iters: u64,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    // Warm up and estimate the per-call cost.
    let mut iters = 1u64;
    let warm_start = Instant::now();
    let mut per_call = Duration::from_secs(1);
    while warm_start.elapsed() < WARMUP {
        let t = time_once(f, iters);
        per_call = t / (iters as u32).max(1);
        if t < Duration::from_millis(1) {
            iters = iters.saturating_mul(4).max(1);
        }
    }
    // Pick an iteration count so each sample runs ~MEASURE/SAMPLES.
    let target = MEASURE / SAMPLES as u32;
    let sample_iters = if per_call.is_zero() {
        iters.max(1)
    } else {
        ((target.as_nanos() / per_call.as_nanos().max(1)) as u64).clamp(1, 1 << 24)
    };
    let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = time_once(f, sample_iters);
        samples.push(t.as_nanos() as f64 / sample_iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let best = samples[0];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{label:<48} time: [best {} mean {}]  ({} iters/sample)",
        fmt_ns(best),
        fmt_ns(mean),
        sample_iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a named group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Produce `main` for a bench binary (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_formats() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10).measurement_time(Duration::from_millis(1));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.00 ms");
        assert_eq!(BenchmarkId::from_parameter(3).full, "3");
    }
}
