//! Process-wide observability for the txmm pipeline.
//!
//! Three pieces, all std-only and lock-free on the hot path:
//!
//! - [`metrics`]: a central [`Registry`] of counters, gauges and
//!   log-bucketed latency [`Histogram`]s (p50/p95/p99/max), rendered as
//!   Prometheus text exposition or a single JSON line. Handles are
//!   cheap `Arc`-backed cells; the registry holds weak references and
//!   sums every live handle of a `(name, labels)` series at collection
//!   time, so independent components (e.g. one `Session` per daemon
//!   shard) keep private handles that aggregate globally.
//! - [`span`]: RAII timers (`span!("vm.check")`) that record into a
//!   per-span-name histogram and, when the current request carries a
//!   trace ID, append to a bounded per-request [`Trace`] timeline.
//! - [`slow`]: a bounded ring of the slowest requests seen so far.
//! - [`progress`]: live walk telemetry — a shared [`WalkProgress`]
//!   accumulator mirrored into `txmm_walk_*` registry series, a JSONL
//!   heartbeat [`Reporter`], and a read-only [`MetricsSidecar`] TCP
//!   listener for one-shot processes.
//!
//! Handle creation takes the registry mutex — create handles once at
//! construction time (or behind a thread-local cache, as `span!` does),
//! never per request.

pub mod metrics;
pub mod progress;
pub mod slow;
pub mod span;

pub use metrics::{
    bucket_bound, bucket_index, global, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    BUCKETS,
};
pub use progress::{
    publish_process_info, resident_bytes, serve_metrics, LaneSnapshot, MetricsSidecar,
    ProgressSink, ProgressSnapshot, Reporter, WalkProgress, WorkerLane,
};
pub use slow::{SlowEntry, Slowest};
pub use span::{with_trace, SpanGuard, SpanRecord, Trace, TRACE_SPAN_CAP};
