//! The metrics registry: counters, gauges and log-bucketed latency
//! histograms with Prometheus-style exposition.
//!
//! Recording is lock-free (`AtomicU64` relaxed ops on `Arc`-backed
//! cells). The registry itself is a `Mutex<BTreeMap>` touched only when
//! handles are created and when the metrics are collected for
//! rendering, never per recorded sample. Several live handles may share
//! one `(name, labels)` series — collection sums them and prunes
//! handles whose owners have been dropped.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Number of histogram buckets. Bucket `i` covers values up to
/// `2^i` (microseconds, by convention); the last bucket is `+Inf`.
pub const BUCKETS: usize = 40;

/// Bucket index for a recorded value: the smallest `i` with
/// `v <= 2^i`, clamped to the `+Inf` bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Upper bound of bucket `i` (`u64::MAX` stands in for `+Inf`).
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A handle not registered anywhere (useful as a default in tests).
    pub fn detached() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn detached() -> Gauge {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Lock-free log-bucketed histogram core.
pub struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of `v` in one shot — how pre-bucketed
    /// walk-local histograms fold into a registry series without
    /// replaying every observation.
    #[inline]
    fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A latency histogram handle. `record` is lock-free.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    pub fn detached() -> Histogram {
        Histogram(Arc::new(HistogramCore::new()))
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// Record `n` observations of `v` at once (see
    /// [`HistogramCore::record_n`]).
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        self.0.record_n(v, n);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

/// A point-in-time copy of a histogram (possibly merged across several
/// handles of one series).
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Quantile estimate: the upper bound of the bucket holding the
    /// rank-`ceil(q * count)` sample, clamped to the observed maximum.
    /// Always within one log2 bucket of the exact sample quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn prom(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Handles {
    Counter(Vec<Weak<AtomicU64>>),
    Gauge(Vec<Weak<AtomicI64>>),
    Histogram(Vec<Weak<HistogramCore>>),
}

impl Handles {
    /// Drop dead weak references; report whether any handle survives.
    fn prune(&mut self) -> bool {
        match self {
            Handles::Counter(v) => {
                v.retain(|w| w.strong_count() > 0);
                !v.is_empty()
            }
            Handles::Gauge(v) => {
                v.retain(|w| w.strong_count() > 0);
                !v.is_empty()
            }
            Handles::Histogram(v) => {
                v.retain(|w| w.strong_count() > 0);
                !v.is_empty()
            }
        }
    }
}

struct Series {
    labels: Vec<(String, String)>,
    handles: Handles,
}

struct Family {
    kind: Kind,
    help: String,
    series: Vec<Series>,
}

/// The central registry. Use the process-wide [`global`] instance; a
/// private `Registry::new()` is handy in tests.
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Rendered value of one `(name, labels)` series. (The histogram
/// snapshot is boxed: it is ~350 bytes of bucket counts.)
enum SeriesValue {
    Counter(u64),
    Gauge(i64),
    Histogram(Box<HistogramSnapshot>),
}

struct CollectedSeries {
    labels: Vec<(String, String)>,
    value: SeriesValue,
}

struct CollectedFamily {
    name: String,
    kind: Kind,
    help: String,
    series: Vec<CollectedSeries>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    pub const fn new() -> Registry {
        Registry {
            families: Mutex::new(BTreeMap::new()),
        }
    }

    /// Create a new counter handle under `name` with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Create a new counter handle under `(name, labels)`. Every call
    /// returns an independent handle; the series value is the sum of
    /// all live handles. Do not call per request.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let handle = Counter::detached();
        let weak = Arc::downgrade(&handle.0);
        self.register(name, help, labels, Kind::Counter, |handles| match handles {
            Handles::Counter(v) => v.push(weak),
            _ => unreachable!(),
        });
        handle
    }

    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let handle = Gauge::detached();
        let weak = Arc::downgrade(&handle.0);
        self.register(name, help, labels, Kind::Gauge, |handles| match handles {
            Handles::Gauge(v) => v.push(weak),
            _ => unreachable!(),
        });
        handle
    }

    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let handle = Histogram::detached();
        let weak = Arc::downgrade(&handle.0);
        self.register(
            name,
            help,
            labels,
            Kind::Histogram,
            |handles| match handles {
                Handles::Histogram(v) => v.push(weak),
                _ => unreachable!(),
            },
        );
        handle
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        push: impl FnOnce(&mut Handles),
    ) {
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: Vec::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name:?} registered as {:?} and {kind:?}",
            family.kind
        );
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let series = match family.series.iter_mut().find(|s| s.labels == labels) {
            Some(s) => s,
            None => {
                family.series.push(Series {
                    labels,
                    handles: match kind {
                        Kind::Counter => Handles::Counter(Vec::new()),
                        Kind::Gauge => Handles::Gauge(Vec::new()),
                        Kind::Histogram => Handles::Histogram(Vec::new()),
                    },
                });
                family.series.last_mut().unwrap()
            }
        };
        push(&mut series.handles);
    }

    /// Sum every live handle per series, pruning dead ones. Series with
    /// no surviving handle are dropped (their history dies with the
    /// owners — acceptable for a process-lifetime registry).
    fn collect(&self) -> Vec<CollectedFamily> {
        let mut families = self.families.lock().unwrap();
        let mut out = Vec::new();
        for (name, family) in families.iter_mut() {
            family.series.retain_mut(|s| s.handles.prune());
            let mut series = Vec::new();
            for s in &family.series {
                let value = match &s.handles {
                    Handles::Counter(v) => SeriesValue::Counter(
                        v.iter()
                            .filter_map(|w| w.upgrade())
                            .map(|a| a.load(Ordering::Relaxed))
                            .sum(),
                    ),
                    Handles::Gauge(v) => SeriesValue::Gauge(
                        v.iter()
                            .filter_map(|w| w.upgrade())
                            .map(|a| a.load(Ordering::Relaxed))
                            .sum(),
                    ),
                    Handles::Histogram(v) => {
                        let mut snap = HistogramSnapshot::empty();
                        for h in v.iter().filter_map(|w| w.upgrade()) {
                            snap.merge(&h.snapshot());
                        }
                        SeriesValue::Histogram(Box::new(snap))
                    }
                };
                series.push(CollectedSeries {
                    labels: s.labels.clone(),
                    value,
                });
            }
            if !series.is_empty() {
                out.push(CollectedFamily {
                    name: name.clone(),
                    kind: family.kind,
                    help: family.help.clone(),
                    series,
                });
            }
        }
        out
    }

    /// Render the whole registry in Prometheus text exposition format.
    pub fn render_prom(&self) -> String {
        let mut out = String::new();
        for family in self.collect() {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&prom_escape(&family.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.prom());
            out.push('\n');
            for s in &family.series {
                match &s.value {
                    SeriesValue::Counter(v) => {
                        out.push_str(&family.name);
                        out.push_str(&label_block(&s.labels, None));
                        out.push_str(&format!(" {v}\n"));
                    }
                    SeriesValue::Gauge(v) => {
                        out.push_str(&family.name);
                        out.push_str(&label_block(&s.labels, None));
                        out.push_str(&format!(" {v}\n"));
                    }
                    SeriesValue::Histogram(snap) => {
                        // Cumulative buckets up to the last non-empty
                        // finite bucket, then +Inf.
                        let last = snap.buckets[..BUCKETS - 1]
                            .iter()
                            .rposition(|&b| b > 0)
                            .map(|i| i + 1)
                            .unwrap_or(0);
                        let mut cum = 0u64;
                        for i in 0..last {
                            cum += snap.buckets[i];
                            out.push_str(&family.name);
                            out.push_str("_bucket");
                            out.push_str(&label_block(
                                &s.labels,
                                Some(&bucket_bound(i).to_string()),
                            ));
                            out.push_str(&format!(" {cum}\n"));
                        }
                        out.push_str(&family.name);
                        out.push_str("_bucket");
                        out.push_str(&label_block(&s.labels, Some("+Inf")));
                        out.push_str(&format!(" {}\n", snap.count));
                        out.push_str(&family.name);
                        out.push_str("_sum");
                        out.push_str(&label_block(&s.labels, None));
                        out.push_str(&format!(" {}\n", snap.sum));
                        out.push_str(&family.name);
                        out.push_str("_count");
                        out.push_str(&label_block(&s.labels, None));
                        out.push_str(&format!(" {}\n", snap.count));
                    }
                }
            }
        }
        out
    }

    /// Render the registry as one JSON line: a flat object keyed by the
    /// series name (labels included), histograms summarised as
    /// `{count, sum, max, p50, p95, p99}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"metrics\":{");
        let mut first = true;
        for family in self.collect() {
            for s in &family.series {
                if !first {
                    out.push(',');
                }
                first = false;
                let key = format!("{}{}", family.name, label_block(&s.labels, None));
                out.push_str(&format!("\"{}\":", json_escape(&key)));
                match &s.value {
                    SeriesValue::Counter(v) => out.push_str(&v.to_string()),
                    SeriesValue::Gauge(v) => out.push_str(&v.to_string()),
                    SeriesValue::Histogram(snap) => {
                        out.push_str(&format!(
                            "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                            snap.count,
                            snap.sum,
                            snap.max,
                            snap.quantile(0.50),
                            snap.quantile(0.95),
                            snap.quantile(0.99)
                        ));
                    }
                }
            }
        }
        out.push_str("}}");
        out
    }
}

/// `{k="v",...}` (empty string when there are no labels), with an
/// optional trailing `le` label for histogram buckets.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{k}=\"{}\"", prom_escape_label(v)));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
    out
}

fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn prom_escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

static GLOBAL: Registry = Registry::new();

/// The process-wide registry every component records into.
pub fn global() -> &'static Registry {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 (obs depends on nothing, so a local copy).
    struct SplitMix64(u64);
    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn bucket_index_matches_bounds() {
        for i in 0..BUCKETS {
            let bound = bucket_bound(i);
            assert_eq!(bucket_index(bound), i, "bound of bucket {i}");
            if i + 1 < BUCKETS - 1 {
                assert_eq!(bucket_index(bound + 1), i + 1, "just past bucket {i}");
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    /// Quantile estimates land in the same log2 bucket as the exact
    /// sample quantile and never undershoot it.
    #[test]
    fn quantiles_within_one_bucket_of_exact() {
        for seed in [1u64, 7, 42] {
            let mut rng = SplitMix64(seed);
            let h = Histogram::detached();
            let mut samples: Vec<u64> = (0..10_000)
                .map(|_| {
                    // Mix of magnitudes: from sub-microsecond to ~1s.
                    let shift = rng.next() % 30;
                    rng.next() % (1u64 << shift).max(1)
                })
                .collect();
            for &s in &samples {
                h.record(s);
            }
            samples.sort_unstable();
            let snap = h.snapshot();
            for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
                let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
                let exact = samples[rank - 1];
                let est = snap.quantile(q);
                assert!(est >= exact, "q={q}: est {est} < exact {exact}");
                assert_eq!(
                    bucket_index(est),
                    bucket_index(exact),
                    "q={q}: est {est} not in exact sample's bucket ({exact})"
                );
            }
            assert_eq!(snap.quantile(1.0), snap.max);
            assert_eq!(snap.count, samples.len() as u64);
            assert_eq!(snap.sum, samples.iter().sum::<u64>());
        }
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::detached();
        assert_eq!(h.snapshot().quantile(0.5), 0);
        assert_eq!(h.snapshot().count, 0);
    }

    /// Concurrent recording loses nothing: totals are exact, buckets
    /// sum to the count, and mid-flight snapshots are monotone.
    #[test]
    fn concurrent_recording_is_lossless_and_monotone() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 50_000;
        let h = Histogram::detached();
        let watcher = {
            let h = h.clone();
            std::thread::spawn(move || {
                let mut last = 0u64;
                loop {
                    let snap = h.snapshot();
                    assert!(snap.count >= last, "count went backwards");
                    last = snap.count;
                    if last >= THREADS as u64 * PER_THREAD {
                        return;
                    }
                    std::thread::yield_now();
                }
            })
        };
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    let mut rng = SplitMix64(t as u64 + 1);
                    let mut sum = 0u64;
                    for _ in 0..PER_THREAD {
                        let v = rng.next() % 1_000_000;
                        h.record(v);
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let expected_sum: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        watcher.join().unwrap();
        let snap = h.snapshot();
        assert_eq!(snap.count, THREADS as u64 * PER_THREAD);
        assert_eq!(snap.sum, expected_sum);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    /// Independent handles of one series sum at collection; dropped
    /// handles are pruned and their series disappears once empty.
    #[test]
    fn registry_sums_live_handles_and_prunes_dead_ones() {
        let reg = Registry::new();
        let a = reg.counter_with("txmm_test_total", "test counter", &[("shard", "0")]);
        let b = reg.counter_with("txmm_test_total", "test counter", &[("shard", "0")]);
        let c = reg.counter_with("txmm_test_total", "test counter", &[("shard", "1")]);
        a.add(3);
        b.add(4);
        c.add(5);
        let prom = reg.render_prom();
        assert!(prom.contains("# TYPE txmm_test_total counter"), "{prom}");
        assert!(prom.contains("txmm_test_total{shard=\"0\"} 7"), "{prom}");
        assert!(prom.contains("txmm_test_total{shard=\"1\"} 5"), "{prom}");
        drop(c);
        let prom = reg.render_prom();
        assert!(!prom.contains("shard=\"1\""), "{prom}");
        assert!(prom.contains("txmm_test_total{shard=\"0\"} 7"), "{prom}");
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_closed_by_inf() {
        let reg = Registry::new();
        let h = reg.histogram_with("txmm_test_micros", "test latencies", &[("cmd", "check")]);
        for v in [1u64, 1, 3, 100, 5_000] {
            h.record(v);
        }
        let prom = reg.render_prom();
        assert!(prom.contains("# TYPE txmm_test_micros histogram"), "{prom}");
        assert!(
            prom.contains("txmm_test_micros_bucket{cmd=\"check\",le=\"1\"} 2"),
            "{prom}"
        );
        assert!(
            prom.contains("txmm_test_micros_bucket{cmd=\"check\",le=\"+Inf\"} 5"),
            "{prom}"
        );
        assert!(
            prom.contains("txmm_test_micros_sum{cmd=\"check\"} 5105"),
            "{prom}"
        );
        assert!(
            prom.contains("txmm_test_micros_count{cmd=\"check\"} 5"),
            "{prom}"
        );
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in prom.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts decreased: {prom}");
            last = v;
        }
    }

    #[test]
    fn gauge_moves_both_ways_and_renders_json() {
        let reg = Registry::new();
        let g = reg.gauge("txmm_test_active", "active things");
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        let c = reg.counter_with("txmm_test_reqs_total", "requests", &[("cmd", "check")]);
        c.add(9);
        let h = reg.histogram("txmm_test_lat", "latency");
        h.record(7);
        let json = reg.render_json();
        assert!(json.starts_with("{\"metrics\":{"), "{json}");
        assert!(json.contains("\"txmm_test_active\":3"), "{json}");
        assert!(
            json.contains("\"txmm_test_reqs_total{cmd=\\\"check\\\"}\":9"),
            "{json}"
        );
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(!json.contains('\n'), "json must be one line: {json}");
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _c = reg.counter("txmm_test_conflict", "as counter");
        let _g = reg.gauge("txmm_test_conflict", "as gauge");
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        let c = reg.counter_with("txmm_test_esc_total", "escapes", &[("file", "a\"b\\c")]);
        c.inc();
        let prom = reg.render_prom();
        assert!(prom.contains("file=\"a\\\"b\\\\c\""), "{prom}");
    }
}
