//! RAII request spans: named timers that feed per-span histograms and,
//! when the current request carries a trace ID, a bounded per-request
//! timeline.
//!
//! The current [`Trace`] is thread-local; a request that hops threads
//! (daemon handler -> shard worker) re-installs it on each side with
//! [`with_trace`], and the `Arc<Trace>` accumulates spans from both.

use crate::metrics::{global, Histogram};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Maximum spans kept on one trace; later spans only bump `dropped`.
pub const TRACE_SPAN_CAP: usize = 64;

/// One completed span on a trace timeline. Offsets are microseconds
/// since the trace was created.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: &'static str,
    pub start_micros: u64,
    pub micros: u64,
}

/// A per-request span timeline, identified by the caller's trace ID.
pub struct Trace {
    id: String,
    start: Instant,
    cap: usize,
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
}

impl Trace {
    pub fn new(id: &str) -> Arc<Trace> {
        Arc::new(Trace {
            id: id.to_string(),
            start: Instant::now(),
            cap: TRACE_SPAN_CAP,
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        })
    }

    pub fn id(&self) -> &str {
        &self.id
    }

    pub fn start(&self) -> Instant {
        self.start
    }

    pub fn record(&self, span: SpanRecord) {
        let mut spans = self.spans.lock().unwrap();
        if spans.len() < self.cap {
            spans.push(span);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Spans sorted by start offset, plus how many were dropped at the
    /// cap.
    pub fn snapshot(&self) -> (Vec<SpanRecord>, u64) {
        let mut spans = self.spans.lock().unwrap().clone();
        spans.sort_by_key(|s| (s.start_micros, s.micros));
        (spans, self.dropped.load(Ordering::Relaxed))
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Trace>>> = const { RefCell::new(None) };
    // Per-thread cache of span-name histograms so `span!` never takes
    // the registry mutex on the hot path.
    static SPAN_HISTOGRAMS: RefCell<HashMap<&'static str, Histogram>> =
        RefCell::new(HashMap::new());
}

struct Restore(Option<Arc<Trace>>);

impl Drop for Restore {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.0.take());
    }
}

/// Install `trace` (or clear it, for `None`) as the current trace for
/// the duration of `f`. Restores the previous trace even on panic.
pub fn with_trace<T>(trace: Option<&Arc<Trace>>, f: impl FnOnce() -> T) -> T {
    let _restore = Restore(CURRENT.with(|c| c.replace(trace.cloned())));
    f()
}

/// The trace currently installed on this thread, if any.
pub fn current_trace() -> Option<Arc<Trace>> {
    CURRENT.with(|c| c.borrow().clone())
}

fn span_histogram(name: &'static str) -> Histogram {
    SPAN_HISTOGRAMS.with(|m| {
        m.borrow_mut()
            .entry(name)
            .or_insert_with(|| {
                global().histogram_with(
                    "txmm_span_duration_microseconds",
                    "Duration of named pipeline spans.",
                    &[("span", name)],
                )
            })
            .clone()
    })
}

/// An in-flight span. Created by [`SpanGuard::enter`] (or the [`span!`]
/// macro); records on `finish()` or drop.
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    trace: Option<(Arc<Trace>, u64)>,
    done: bool,
}

impl SpanGuard {
    pub fn enter(name: &'static str) -> SpanGuard {
        let trace = current_trace().map(|t| {
            let offset = t.start().elapsed().as_micros() as u64;
            (t, offset)
        });
        SpanGuard {
            name,
            start: Instant::now(),
            trace,
            done: false,
        }
    }

    /// Close the span now and return its duration in microseconds.
    pub fn finish(mut self) -> u64 {
        self.close()
    }

    fn close(&mut self) -> u64 {
        if self.done {
            return 0;
        }
        self.done = true;
        let micros = self.start.elapsed().as_micros() as u64;
        span_histogram(self.name).record(micros);
        if let Some((trace, start_micros)) = &self.trace {
            trace.record(SpanRecord {
                name: self.name,
                start_micros: *start_micros,
                micros,
            });
        }
        micros
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

/// `let _s = span!("vm.check");` — time the enclosing scope into the
/// `txmm_span_duration_microseconds{span="vm.check"}` histogram and the
/// current trace (if one is installed).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_attach_to_the_current_trace_in_start_order() {
        let trace = Trace::new("t-1");
        with_trace(Some(&trace), || {
            let a = SpanGuard::enter("test.a");
            a.finish();
            let b = crate::span!("test.b");
            drop(b);
        });
        // Outside with_trace: records to histograms only.
        let c = SpanGuard::enter("test.c");
        c.finish();
        let (spans, dropped) = trace.snapshot();
        assert_eq!(dropped, 0);
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["test.a", "test.b"]);
        assert!(spans[0].start_micros <= spans[1].start_micros);
    }

    #[test]
    fn traces_cap_their_span_count() {
        let trace = Trace::new("t-cap");
        with_trace(Some(&trace), || {
            for _ in 0..TRACE_SPAN_CAP + 5 {
                SpanGuard::enter("test.capped").finish();
            }
        });
        let (spans, dropped) = trace.snapshot();
        assert_eq!(spans.len(), TRACE_SPAN_CAP);
        assert_eq!(dropped, 5);
    }

    #[test]
    fn with_trace_restores_the_previous_trace() {
        let outer = Trace::new("outer");
        let inner = Trace::new("inner");
        with_trace(Some(&outer), || {
            with_trace(Some(&inner), || {
                assert_eq!(current_trace().unwrap().id(), "inner");
            });
            assert_eq!(current_trace().unwrap().id(), "outer");
            with_trace(None, || assert!(current_trace().is_none()));
            assert_eq!(current_trace().unwrap().id(), "outer");
        });
        assert!(current_trace().is_none());
    }

    #[test]
    fn trace_spans_collect_across_threads() {
        let trace = Trace::new("t-threads");
        with_trace(Some(&trace), || SpanGuard::enter("test.handler").finish());
        let t = {
            let trace = trace.clone();
            std::thread::spawn(move || {
                with_trace(Some(&trace), || SpanGuard::enter("test.worker").finish())
            })
        };
        t.join().unwrap();
        let (spans, _) = trace.snapshot();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"test.handler") && names.contains(&"test.worker"));
    }
}
