//! A bounded ring of the slowest requests seen so far, kept sorted by
//! duration (descending) for cheap `stats` dumps.

use std::sync::Mutex;

/// One slow-request record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowEntry {
    /// What was served, e.g. `"check tests/sb.litmus"`.
    pub what: String,
    pub micros: u64,
    pub trace_id: Option<String>,
}

/// Keeps the `cap` slowest entries recorded so far.
pub struct Slowest {
    cap: usize,
    entries: Mutex<Vec<SlowEntry>>,
}

impl Slowest {
    pub fn new(cap: usize) -> Slowest {
        Slowest {
            cap,
            entries: Mutex::new(Vec::new()),
        }
    }

    pub fn record(&self, what: &str, micros: u64, trace_id: Option<&str>) {
        let mut entries = self.entries.lock().unwrap();
        if entries.len() == self.cap {
            match entries.last() {
                Some(last) if last.micros >= micros => return,
                _ => {
                    entries.pop();
                }
            }
        }
        let entry = SlowEntry {
            what: what.to_string(),
            micros,
            trace_id: trace_id.map(|t| t.to_string()),
        };
        let at = entries.partition_point(|e| e.micros >= micros);
        entries.insert(at, entry);
    }

    /// Slowest-first snapshot.
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        self.entries.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_slowest_cap_entries_sorted() {
        let ring = Slowest::new(3);
        for (what, micros) in [("a", 5), ("b", 50), ("c", 10), ("d", 40), ("e", 1)] {
            ring.record(what, micros, None);
        }
        let snap = ring.snapshot();
        let got: Vec<(&str, u64)> = snap.iter().map(|e| (e.what.as_str(), e.micros)).collect();
        assert_eq!(got, [("b", 50), ("d", 40), ("c", 10)]);
    }

    #[test]
    fn records_trace_ids_and_handles_ties() {
        let ring = Slowest::new(2);
        ring.record("a", 7, Some("t-1"));
        ring.record("b", 7, None);
        ring.record("c", 7, Some("t-3"));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.iter().all(|e| e.micros == 7));
        assert_eq!(snap[0].trace_id.as_deref(), Some("t-1"));
    }

    #[test]
    fn empty_ring_snapshots_empty() {
        assert!(Slowest::new(4).snapshot().is_empty());
    }
}
