//! Live walk telemetry: progress accounting for long enumeration
//! walks, a heartbeat reporter emitting machine-readable JSONL frames,
//! and a read-only metrics sidecar for one-shot processes.
//!
//! A [`WalkProgress`] is the shared accumulator: the walk driver
//! declares total work up front (in subtree *weight units*, a
//! closed-form per-subtree size proxy), workers flush per-subtree
//! deltas — weight done, candidates emitted, classes kept, prune cuts
//! — through lock-free atomics, and every delta is mirrored into the
//! process-wide registry as `txmm_walk_*` series so the exposition
//! (daemon or sidecar) sees the walk mid-flight. Per-worker
//! [`WorkerLane`]s add busy/steal/idle accounting for utilisation.
//!
//! The [`Reporter`] samples a snapshot on an interval and writes one
//! JSON object per line (fraction done, candidates/sec, a smoothed
//! ETA, per-worker utilisation) to stderr or a file — never stdout,
//! which stays byte-identical to an untelemetered run. The
//! [`MetricsSidecar`] is a tiny TCP listener speaking the daemon's
//! `metrics` request frame, so `txmm client ADDR metrics [--prom]`
//! scrapes a long one-shot walk without a daemon in front of it.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::metrics::{global, Counter, Gauge};

/// Lock-free per-worker accounting: jobs run, jobs stolen, and wall
/// time split busy (inside a job) vs idle (waiting for work). One lane
/// per pool worker, registered by the pool itself.
#[derive(Default)]
pub struct WorkerLane {
    pub jobs: AtomicU64,
    pub steals: AtomicU64,
    pub busy_micros: AtomicU64,
    pub idle_micros: AtomicU64,
}

/// A point-in-time copy of one [`WorkerLane`].
#[derive(Debug, Clone, Copy)]
pub struct LaneSnapshot {
    pub jobs: u64,
    pub steals: u64,
    pub busy_micros: u64,
    pub idle_micros: u64,
}

impl LaneSnapshot {
    /// Busy fraction of this lane's observed (busy + idle) time.
    pub fn utilisation(&self) -> f64 {
        let total = self.busy_micros + self.idle_micros;
        if total == 0 {
            0.0
        } else {
            self.busy_micros as f64 / total as f64
        }
    }
}

/// Shared progress accumulator for one logical walk (an enumeration,
/// a synthesis sweep, an outcome table build). Cheap to share across
/// threads (`Arc<WalkProgress>`); every mutation is a relaxed atomic.
///
/// Every counter delta is mirrored into the global registry:
///
/// | series | kind | meaning |
/// |---|---|---|
/// | `txmm_walk_subtrees_total` | counter | frontier subtrees completed |
/// | `txmm_walk_candidates_total` | counter | candidates emitted by the walk |
/// | `txmm_walk_classes_total` | counter | classes kept after the leaf check |
/// | `txmm_walk_cuts_total` | counter | prune cuts taken |
/// | `txmm_walk_skipped_total` | counter | candidates skipped by cuts |
/// | `txmm_walk_work_done` | gauge | weight units completed (this walk) |
/// | `txmm_walk_work_total` | gauge | weight units planned (0 = unknown) |
/// | `txmm_walk_workers` | gauge | pool workers registered |
pub struct WalkProgress {
    started: Instant,
    total: AtomicU64,
    done: AtomicU64,
    subtrees: AtomicU64,
    candidates: AtomicU64,
    classes: AtomicU64,
    cuts: AtomicU64,
    skipped: AtomicU64,
    lanes: Mutex<Vec<Arc<WorkerLane>>>,
    g_subtrees: Counter,
    g_candidates: Counter,
    g_classes: Counter,
    g_cuts: Counter,
    g_skipped: Counter,
    g_done: Gauge,
    g_total: Gauge,
    g_workers: Gauge,
}

impl Default for WalkProgress {
    fn default() -> Self {
        WalkProgress::new()
    }
}

impl WalkProgress {
    /// A fresh accumulator whose registry handles live as long as it
    /// does. Create one per walk (or one per long-lived shard), not
    /// per subtree.
    pub fn new() -> WalkProgress {
        let obs = global();
        WalkProgress {
            started: Instant::now(),
            total: AtomicU64::new(0),
            done: AtomicU64::new(0),
            subtrees: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
            classes: AtomicU64::new(0),
            cuts: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            lanes: Mutex::new(Vec::new()),
            g_subtrees: obs.counter(
                "txmm_walk_subtrees_total",
                "Frontier subtrees completed by enumeration walks.",
            ),
            g_candidates: obs.counter(
                "txmm_walk_candidates_total",
                "Candidates emitted by enumeration walks.",
            ),
            g_classes: obs.counter(
                "txmm_walk_classes_total",
                "Classes kept after the walk's leaf check.",
            ),
            g_cuts: obs.counter(
                "txmm_walk_cuts_total",
                "Prune cuts taken during enumeration walks.",
            ),
            g_skipped: obs.counter(
                "txmm_walk_skipped_total",
                "Candidates skipped by prune cuts during walks.",
            ),
            g_done: obs.gauge(
                "txmm_walk_work_done",
                "Weight units of walk work completed.",
            ),
            g_total: obs.gauge(
                "txmm_walk_work_total",
                "Weight units of walk work planned (0 when unknown).",
            ),
            g_workers: obs.gauge(
                "txmm_walk_workers",
                "Pool workers registered with the walk.",
            ),
        }
    }

    /// Declare `units` more planned work (weight units). Callable
    /// repeatedly — a session accumulating several walks adds each
    /// walk's plan as it starts.
    pub fn add_total(&self, units: u64) {
        self.total.fetch_add(units, Ordering::Relaxed);
        self.g_total.add(units as i64);
    }

    /// Flush one completed subtree: its weight, the candidates it
    /// emitted, and the prune-cut deltas accumulated while walking it.
    pub fn subtree_done(&self, weight: u64, candidates: u64, cuts: u64, skipped: u64) {
        self.done.fetch_add(weight, Ordering::Relaxed);
        self.subtrees.fetch_add(1, Ordering::Relaxed);
        self.candidates.fetch_add(candidates, Ordering::Relaxed);
        self.cuts.fetch_add(cuts, Ordering::Relaxed);
        self.skipped.fetch_add(skipped, Ordering::Relaxed);
        self.g_done.add(weight as i64);
        self.g_subtrees.inc();
        self.g_candidates.add(candidates);
        self.g_cuts.add(cuts);
        self.g_skipped.add(skipped);
    }

    /// Record `n` classes kept by the leaf check.
    pub fn add_classes(&self, n: u64) {
        self.classes.fetch_add(n, Ordering::Relaxed);
        self.g_classes.add(n);
    }

    /// Register `n` pool workers, returning their lanes. Repeated pool
    /// runs within one walk append new lanes (utilisation is per run).
    pub fn register_workers(&self, n: usize) -> Vec<Arc<WorkerLane>> {
        let fresh: Vec<Arc<WorkerLane>> = (0..n).map(|_| Arc::new(WorkerLane::default())).collect();
        let mut lanes = self.lanes.lock().expect("lanes");
        lanes.extend(fresh.iter().cloned());
        self.g_workers.set(lanes.len() as i64);
        fresh
    }

    /// Consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let lanes = self.lanes.lock().expect("lanes");
        ProgressSnapshot {
            elapsed: self.started.elapsed(),
            total: self.total.load(Ordering::Relaxed),
            done: self.done.load(Ordering::Relaxed),
            subtrees: self.subtrees.load(Ordering::Relaxed),
            candidates: self.candidates.load(Ordering::Relaxed),
            classes: self.classes.load(Ordering::Relaxed),
            cuts: self.cuts.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            workers: lanes
                .iter()
                .map(|l| LaneSnapshot {
                    jobs: l.jobs.load(Ordering::Relaxed),
                    steals: l.steals.load(Ordering::Relaxed),
                    busy_micros: l.busy_micros.load(Ordering::Relaxed),
                    idle_micros: l.idle_micros.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`WalkProgress`].
#[derive(Debug, Clone)]
pub struct ProgressSnapshot {
    pub elapsed: Duration,
    pub total: u64,
    pub done: u64,
    pub subtrees: u64,
    pub candidates: u64,
    pub classes: u64,
    pub cuts: u64,
    pub skipped: u64,
    pub workers: Vec<LaneSnapshot>,
}

impl ProgressSnapshot {
    /// Fraction of planned work completed; `None` when no total was
    /// declared. Clamped to 1.0 (weights are a proxy, not a promise).
    pub fn fraction(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some((self.done as f64 / self.total as f64).min(1.0))
        }
    }

    /// One JSONL progress frame. `rate` is the smoothed candidates/sec
    /// estimate, `eta` the smoothed seconds-remaining estimate (both
    /// `None` before the reporter has two samples or without a total).
    pub fn frame(&self, rate: Option<f64>, eta: Option<f64>, last: bool) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"progress\":{{\"elapsed_secs\":{:.3}",
            self.elapsed.as_secs_f64()
        ));
        match self.fraction() {
            Some(f) => out.push_str(&format!(",\"fraction\":{f:.6}")),
            None => out.push_str(",\"fraction\":null"),
        }
        out.push_str(&format!(
            ",\"work_done\":{},\"work_total\":{},\"subtrees\":{},\"candidates\":{},\
             \"classes\":{},\"cuts\":{},\"skipped\":{}",
            self.done,
            self.total,
            self.subtrees,
            self.candidates,
            self.classes,
            self.cuts,
            self.skipped
        ));
        match rate {
            Some(r) => out.push_str(&format!(",\"candidates_per_sec\":{r:.1}")),
            None => out.push_str(",\"candidates_per_sec\":null"),
        }
        match eta {
            Some(e) => out.push_str(&format!(",\"eta_secs\":{e:.1}")),
            None => out.push_str(",\"eta_secs\":null"),
        }
        out.push_str(&format!(",\"resident_bytes\":{}", resident_bytes()));
        out.push_str(",\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"jobs\":{},\"steals\":{},\"utilisation\":{:.3}}}",
                w.jobs,
                w.steals,
                w.utilisation()
            ));
        }
        out.push(']');
        out.push_str(&format!(",\"final\":{last}}}}}"));
        out
    }
}

// ---- Process gauges ------------------------------------------------------

/// `txmm_build_info{version=...} 1` plus the resident-set gauge the
/// reporter samples. Registered once per process, first use wins.
fn process_gauges() -> &'static (Gauge, Gauge) {
    static GAUGES: OnceLock<(Gauge, Gauge)> = OnceLock::new();
    GAUGES.get_or_init(|| {
        let obs = global();
        let build = obs.gauge_with(
            "txmm_build_info",
            "Build information; the value is always 1.",
            &[("version", env!("CARGO_PKG_VERSION"))],
        );
        build.set(1);
        let resident = obs.gauge(
            "txmm_process_resident_bytes",
            "Resident set size of this process (0 where unsupported).",
        );
        resident.set(resident_bytes() as i64);
        (build, resident)
    })
}

/// Publish the `txmm_build_info` / `txmm_process_resident_bytes`
/// gauges (idempotent). Call once from any long-running entry point.
pub fn publish_process_info() {
    process_gauges();
}

/// Resident set size in bytes: `/proc/self/statm` field 2 × the
/// conventional 4 KiB page on Linux, 0 elsewhere.
pub fn resident_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(s) = std::fs::read_to_string("/proc/self/statm") {
            if let Some(pages) = s.split_whitespace().nth(1) {
                if let Ok(p) = pages.parse::<u64>() {
                    return p * 4096;
                }
            }
        }
    }
    0
}

// ---- The heartbeat reporter ---------------------------------------------

/// Where progress frames go. Never stdout: the walk's own output must
/// stay byte-identical with telemetry enabled.
pub enum ProgressSink {
    Stderr,
    File(PathBuf),
}

enum SinkWriter {
    Stderr,
    File(std::fs::File),
}

impl SinkWriter {
    fn write_line(&mut self, line: &str) {
        match self {
            SinkWriter::Stderr => {
                let mut err = std::io::stderr().lock();
                let _ = writeln!(err, "{line}");
                let _ = err.flush();
            }
            SinkWriter::File(f) => {
                let _ = writeln!(f, "{line}");
                let _ = f.flush();
            }
        }
    }
}

/// Background heartbeat: samples a [`WalkProgress`] every `interval`,
/// smooths the candidate rate with an EWMA, refreshes the resident-set
/// gauge, and writes one JSONL frame per sample. [`Reporter::finish`]
/// stops the thread and emits a last frame (`"final":true`) whose
/// totals are read *after* the walk returned, so they equal the walk's
/// returned counts.
pub struct Reporter {
    progress: Arc<WalkProgress>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    sink: Arc<Mutex<SinkWriter>>,
}

impl Reporter {
    /// Start the heartbeat thread. Opening the sink file eagerly
    /// surfaces path errors before the walk starts.
    pub fn start(
        progress: Arc<WalkProgress>,
        interval: Duration,
        sink: ProgressSink,
    ) -> std::io::Result<Reporter> {
        publish_process_info();
        let writer = match sink {
            ProgressSink::Stderr => SinkWriter::Stderr,
            ProgressSink::File(p) => SinkWriter::File(std::fs::File::create(p)?),
        };
        let sink = Arc::new(Mutex::new(writer));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let progress = progress.clone();
            let stop = stop.clone();
            let sink = sink.clone();
            std::thread::Builder::new()
                .name("txmm-progress".into())
                .spawn(move || {
                    let mut rate: Option<f64> = None;
                    let mut unit_rate: Option<f64> = None;
                    let mut prev: Option<(Duration, u64, u64)> = None;
                    // Sample in short slices so finish() returns
                    // promptly even with a long interval.
                    let tick = interval
                        .min(Duration::from_millis(50))
                        .max(Duration::from_millis(1));
                    let mut next_frame = Instant::now() + interval;
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        if Instant::now() < next_frame {
                            std::thread::sleep(tick);
                            continue;
                        }
                        next_frame += interval;
                        let snap = progress.snapshot();
                        process_gauges().1.set(resident_bytes() as i64);
                        if let Some((t0, cand0, done0)) = prev {
                            let dt = (snap.elapsed - t0).as_secs_f64();
                            if dt > 0.0 {
                                let inst = (snap.candidates - cand0) as f64 / dt;
                                rate = Some(match rate {
                                    Some(r) => 0.7 * r + 0.3 * inst,
                                    None => inst,
                                });
                                let inst_u = (snap.done - done0) as f64 / dt;
                                unit_rate = Some(match unit_rate {
                                    Some(r) => 0.7 * r + 0.3 * inst_u,
                                    None => inst_u,
                                });
                            }
                        }
                        prev = Some((snap.elapsed, snap.candidates, snap.done));
                        let eta = match (unit_rate, snap.total) {
                            (Some(r), total) if r > 0.0 && total > snap.done => {
                                Some((total - snap.done) as f64 / r)
                            }
                            _ => None,
                        };
                        let line = snap.frame(rate, eta, false);
                        sink.lock().expect("progress sink").write_line(&line);
                    }
                })
                .expect("spawn progress reporter")
        };
        Ok(Reporter {
            progress,
            stop,
            handle: Some(handle),
            sink,
        })
    }

    /// Stop the heartbeat and emit the final frame. Call after the
    /// walk has returned so the frame's totals match its counts.
    pub fn finish(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        process_gauges().1.set(resident_bytes() as i64);
        let snap = self.progress.snapshot();
        let line = snap.frame(None, Some(0.0), true);
        self.sink.lock().expect("progress sink").write_line(&line);
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

// ---- The metrics sidecar -------------------------------------------------

/// A read-only TCP listener exposing the global registry with the
/// daemon's `metrics` wire frame: one JSON request line in, response
/// lines out, a blank line terminating each response. Anything other
/// than a `metrics` request gets an error frame — the sidecar mutates
/// nothing.
pub struct MetricsSidecar {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsSidecar {
    /// The address actually bound (useful with a `:0` port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsSidecar {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Serve the global registry on `addr` until the returned handle is
/// dropped. Std-only: a non-blocking accept loop on one thread, one
/// short-lived thread per connection.
pub fn serve_metrics(addr: &str) -> std::io::Result<MetricsSidecar> {
    publish_process_info();
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let stop = stop.clone();
        std::thread::Builder::new()
            .name("txmm-metrics".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = std::thread::Builder::new()
                                .name("txmm-metrics-conn".into())
                                .spawn(move || serve_conn(stream));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
            .expect("spawn metrics sidecar")
    };
    Ok(MetricsSidecar {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

fn serve_conn(stream: TcpStream) {
    // A stuck client must not pin the connection thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut out = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let req = line.trim();
        if req.is_empty() {
            continue;
        }
        let response = if req.contains("\"cmd\":\"metrics\"") || req == "metrics" {
            if req.contains("\"format\":\"prom\"") {
                process_gauges().1.set(resident_bytes() as i64);
                global()
                    .render_prom()
                    .lines()
                    .filter(|l| !l.trim().is_empty())
                    .collect::<Vec<_>>()
                    .join("\n")
            } else {
                process_gauges().1.set(resident_bytes() as i64);
                global().render_json()
            }
        } else {
            "{\"error\":\"metrics sidecar: only the metrics command is served\"}".to_string()
        };
        if out.write_all(format!("{response}\n\n").as_bytes()).is_err() {
            return;
        }
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_accumulates_and_snapshots() {
        let p = WalkProgress::new();
        p.add_total(100);
        p.subtree_done(10, 5, 2, 30);
        p.subtree_done(20, 7, 0, 0);
        p.add_classes(4);
        let lanes = p.register_workers(2);
        lanes[0].jobs.fetch_add(3, Ordering::Relaxed);
        lanes[0].busy_micros.fetch_add(900, Ordering::Relaxed);
        lanes[0].idle_micros.fetch_add(100, Ordering::Relaxed);
        let s = p.snapshot();
        assert_eq!(s.total, 100);
        assert_eq!(s.done, 30);
        assert_eq!(s.subtrees, 2);
        assert_eq!(s.candidates, 12);
        assert_eq!(s.classes, 4);
        assert_eq!(s.cuts, 2);
        assert_eq!(s.skipped, 30);
        assert_eq!(s.fraction(), Some(0.3));
        assert_eq!(s.workers.len(), 2);
        assert!((s.workers[0].utilisation() - 0.9).abs() < 1e-9);
        let frame = s.frame(Some(12.5), Some(3.0), false);
        assert!(frame.contains("\"fraction\":0.3"), "{frame}");
        assert!(frame.contains("\"candidates\":12"), "{frame}");
        assert!(frame.contains("\"final\":false"), "{frame}");
        assert!(!frame.contains('\n'), "frame must be one line: {frame}");
    }

    #[test]
    fn fraction_unknown_without_total() {
        let p = WalkProgress::new();
        p.subtree_done(5, 1, 0, 0);
        let s = p.snapshot();
        assert_eq!(s.fraction(), None);
        assert!(s.frame(None, None, true).contains("\"fraction\":null"));
    }

    #[test]
    fn reporter_emits_final_frame_with_walk_totals() {
        let p = Arc::new(WalkProgress::new());
        p.add_total(10);
        let tmp =
            std::env::temp_dir().join(format!("txmm-progress-test-{}.jsonl", std::process::id()));
        let rep = Reporter::start(
            p.clone(),
            Duration::from_millis(5),
            ProgressSink::File(tmp.clone()),
        )
        .expect("reporter");
        for _ in 0..10 {
            p.subtree_done(1, 3, 0, 0);
            std::thread::sleep(Duration::from_millis(3));
        }
        p.add_classes(17);
        rep.finish();
        let text = std::fs::read_to_string(&tmp).expect("progress file");
        let _ = std::fs::remove_file(&tmp);
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty());
        let last = lines.last().unwrap();
        assert!(last.contains("\"final\":true"), "{last}");
        assert!(last.contains("\"candidates\":30"), "{last}");
        assert!(last.contains("\"classes\":17"), "{last}");
        assert!(last.contains("\"fraction\":1.0"), "{last}");
        // Fractions are monotone non-decreasing across frames.
        let mut prev = -1.0f64;
        for l in &lines {
            let f = l
                .split("\"fraction\":")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .and_then(|s| s.parse::<f64>().ok())
                .unwrap_or(prev.max(0.0));
            assert!(f >= prev, "fraction decreased: {text}");
            prev = f;
        }
    }

    #[test]
    fn sidecar_serves_metrics_and_rejects_writes() {
        let sidecar = serve_metrics("127.0.0.1:0").expect("bind");
        let c = global().counter("txmm_test_sidecar_total", "sidecar test counter");
        c.add(3);
        let mut conn = TcpStream::connect(sidecar.addr()).expect("connect");
        conn.write_all(b"{\"cmd\":\"metrics\"}\n").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"metrics\""), "{line}");
        assert!(line.contains("txmm_test_sidecar_total"), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "", "blank terminator expected");
        // Prometheus form on the same connection.
        conn.write_all(b"{\"cmd\":\"metrics\",\"format\":\"prom\"}\n")
            .unwrap();
        let mut saw_counter = false;
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() {
                break;
            }
            if line.starts_with("txmm_test_sidecar_total") {
                saw_counter = true;
            }
        }
        assert!(saw_counter);
        assert!(line.trim().is_empty());
        // Anything else is refused.
        conn.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"error\""), "{line}");
    }

    #[test]
    fn build_info_and_resident_gauges_exposed() {
        publish_process_info();
        let prom = global().render_prom();
        assert!(prom.contains("txmm_build_info{version="), "{prom}");
        assert!(prom.contains("txmm_process_resident_bytes"), "{prom}");
        #[cfg(target_os = "linux")]
        assert!(resident_bytes() > 0);
    }
}
