//! The outcome engine's checking half: per-model **allowed final-state
//! sets** for litmus programs, served from a [`Session`].
//!
//! `txmm_litmus::outcomes` enumerates every candidate execution of a
//! program (all rf assignments, all per-location coherence orders, all
//! transaction commit/abort splits). This module turns that stream into
//! herd-style answers:
//!
//! * candidates are grouped into **canonical classes** through the
//!   Session arena (thread/location-symmetric candidates share one
//!   interned representative), so each model checks one execution per
//!   class instead of one per candidate — the same symmetry machinery
//!   `txmm_core::canon` gives the enumerator, reused as a pruning
//!   stage;
//! * class checking **fans out over the `txmm_synth::steal`
//!   work-stealing pool** when the class count is worth it, and lands
//!   in the Session's verdict cache either way;
//! * the resulting allowed outcome set per `(program, model)` is cached
//!   under the program's canonical key ([`txmm_litmus::program_key`]),
//!   so re-serving a test — or the same program under a different
//!   postcondition — is a lookup;
//! * each model's verdict on the test's postcondition (`Allowed` /
//!   `Forbidden`) is derived from the allowed set, which is the
//!   program-level answer the paper's modified-herd evaluation gives,
//!   rather than the single-execution answer `check` gives.
//!
//! The final states reuse [`txmm_hwsim::Outcome`], so hardware-simulator
//! observations can be cross-checked to be a **subset** of a sound
//! model's allowed set ([`unsound_sim_outcomes`]).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use txmm_core::arena::ExecId;
use txmm_core::{PruneOracle, PruneStats};
use txmm_hwsim::{Outcome, OutcomeSet, Simulator, MAX_LOCS};
use txmm_litmus::{
    enumerate_candidates, enumerate_mask_pruned, mask_candidate_count, program_key, Candidate,
    LitmusTest, Op, ProgramSkeleton,
};
use txmm_models::Arch;

use crate::session::{intern_into, ModelRef, Session};

/// Default cap on a program's candidate executions (the serving layers
/// surface the refusal as a structured error). The cap covers every
/// corpus test by orders of magnitude while bounding a daemon's
/// per-request work; [`Session::set_max_candidates`] (or a request's
/// `max_candidates` field) raises it for deliberately larger tables,
/// which consistency-guided pruning keeps affordable.
pub const MAX_CANDIDATES: u128 = 1 << 16;

/// One program's enumerated candidate table, cached per program key —
/// the unpruned reference path, used for models without a prune oracle
/// (and for every model when [`Session::set_prune`] turns pruning off).
pub(crate) struct OutcomeTable {
    /// Final state + canonical class per candidate.
    pub(crate) candidates: Vec<(Outcome, usize)>,
    /// Interned representative execution per class.
    pub(crate) classes: Vec<ExecId>,
}

/// What one `(program, model)` outcome computation actually walked:
/// the pruned path visits a per-model subset of the candidate space,
/// the table path all of it. Cached alongside the allowed set so
/// repeat requests can report class counts without re-walking.
pub(crate) struct OutcomeVisit {
    /// Distinct canonical classes visited, in first-visit order.
    pub(crate) classes: Vec<ExecId>,
}

/// A model's program-level answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelOutcomes {
    /// The model's registry name.
    pub model: String,
    /// Every final state some consistent candidate produces.
    pub allowed: OutcomeSet,
    /// Does the model allow the test's postcondition — i.e. does some
    /// allowed final state pass it? `None` when the test has no
    /// postcondition.
    pub post_allowed: Option<bool>,
}

/// The outcome engine's answer for one litmus test.
#[derive(Debug, Clone)]
pub struct OutcomeReport {
    /// File name (as given).
    pub file: String,
    /// Test name from the header line.
    pub name: String,
    /// Architecture from the header line.
    pub arch: Arch,
    /// Events in the fully-committed program.
    pub events: usize,
    /// Transactions in the program.
    pub txns: usize,
    /// Candidate executions of the program (closed form — pruned walks
    /// materialise only the subset their oracle cannot refute).
    pub candidates: usize,
    /// Distinct canonical candidate classes visited across the
    /// requested models (what was actually checked).
    pub classes: usize,
    /// Per requested model, in request order.
    pub per_model: Vec<ModelOutcomes>,
    /// Did every requested model's outcome set come from the cache?
    pub cached: bool,
}

/// Pad a location-indexed vector to the simulators' fixed width so
/// axiomatic and operational outcomes compare structurally.
fn pad_locs<T: Clone + Default>(mut v: Vec<T>) -> Vec<T> {
    v.resize(MAX_LOCS, T::default());
    v
}

/// Append-only, lock-free set of root-rejected abort masks, shared by
/// the parallel per-mask walk's workers. A worker that finds a split's
/// root non-viable under an event-monotone oracle publishes the mask;
/// every worker then skips masks the published ones subsume (`mask | d
/// == d`) without projecting the program. The set is capped — once
/// full, further dead masks are simply re-discovered at their own
/// roots, which costs one viability check and no correctness.
struct DeadMasks {
    slots: Vec<AtomicU64>,
    next: AtomicUsize,
}

/// No real mask is all-ones: a program with 64 single-event
/// transactions has no other events, and its split space is refused by
/// the candidate cap long before a walk starts.
const DEAD_EMPTY: u64 = u64::MAX;

impl DeadMasks {
    fn new(cap: usize) -> DeadMasks {
        DeadMasks {
            slots: (0..cap).map(|_| AtomicU64::new(DEAD_EMPTY)).collect(),
            next: AtomicUsize::new(0),
        }
    }

    fn push(&self, mask: u64) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.slots.get(idx) {
            slot.store(mask, Ordering::Release);
        }
    }

    fn subsumes(&self, mask: u64) -> bool {
        let n = self.next.load(Ordering::Relaxed).min(self.slots.len());
        self.slots[..n].iter().any(|s| {
            // A claimed-but-unwritten slot still reads DEAD_EMPTY;
            // treating it as absent is conservative and safe.
            let d = s.load(Ordering::Acquire);
            d != DEAD_EMPTY && mask | d == d
        })
    }
}

/// The parallel analogue of
/// [`txmm_litmus::enumerate_candidates_pruned`]: abort masks fan out in
/// descending order over the work-stealing pool, each walked by
/// [`enumerate_mask_pruned`] with dead-mask subsumption maintained in a
/// shared [`DeadMasks`] set. Workers buffer their candidates per mask;
/// the caller's thread merges the buffers back into descending-mask
/// order, so the candidate stream is byte-identical to the sequential
/// walk's. (Which masks are *root-checked* vs subsumption-skipped can
/// differ from the sequential schedule — both charge the same
/// `subtrees_cut`/`candidates_skipped`, and a root-rejected mask emits
/// no candidates either way, so only the oracle-call counters wobble.)
type MaskBuffers = Vec<(u64, Vec<Candidate>)>;

fn pruned_candidates_par(
    t: &LitmusTest,
    oracle: &dyn PruneOracle,
    workers: usize,
    progress: Option<&txmm_obs::WalkProgress>,
) -> Result<(usize, PruneStats, MaskBuffers), String> {
    let sk = ProgramSkeleton::from_litmus(t).map_err(|e| e.to_string())?;
    let splits: u128 = 1u128 << sk.txns.len();
    if let Some(p) = progress {
        // One abort split = one unit of stealable work; its weight is
        // the closed-form candidate count below it, so "fraction done"
        // tracks candidates, not masks.
        let total = (0..splits)
            .map(|m| mask_candidate_count(&sk, m as u64))
            .fold(0u64, u64::saturating_add);
        p.add_total(total);
    }
    let dead = DeadMasks::new(256);
    let monotone = oracle.event_monotone();
    let masks = (0..splits).rev().map(|m| m as u64);
    let (states, _steal) = txmm_synth::steal::run_with_progress(
        masks,
        workers,
        progress,
        |_| (Vec::new(), PruneStats::default()),
        |mask: u64, (bufs, st): &mut (Vec<(u64, Vec<Candidate>)>, PruneStats)| {
            let work = mask_candidate_count(&sk, mask);
            if dead.subsumes(mask) {
                st.subtrees_cut += 1;
                st.candidates_skipped = st.candidates_skipped.saturating_add(work);
                if let Some(p) = progress {
                    p.subtree_done(work, 0, 1, work);
                }
                return;
            }
            let before = (st.subtrees_cut, st.candidates_skipped);
            let mut buf = Vec::new();
            let (_, root_live) = enumerate_mask_pruned(&sk, mask, oracle, st, &mut |c| buf.push(c));
            if !root_live && monotone {
                dead.push(mask);
            }
            if let Some(p) = progress {
                p.subtree_done(
                    work,
                    buf.len() as u64,
                    st.subtrees_cut - before.0,
                    st.candidates_skipped - before.1,
                );
            }
            if !buf.is_empty() {
                bufs.push((mask, buf));
            }
        },
    );
    let mut stats = PruneStats::default();
    let mut all: Vec<(u64, Vec<Candidate>)> = Vec::new();
    for (bufs, st) in states {
        all.extend(bufs);
        stats.merge(&st);
    }
    all.sort_unstable_by_key(|b| std::cmp::Reverse(b.0));
    let visited = all.iter().map(|(_, b)| b.len()).sum();
    Ok((visited, stats, all))
}

impl Session {
    /// Program-level outcome enumeration: build (or fetch) the
    /// program's candidate table, check every canonical class under the
    /// requested models (all registered models when `models` is
    /// `None`), and return the allowed final-state set plus the
    /// postcondition verdict per model.
    pub fn outcomes(
        &mut self,
        file: &str,
        t: &LitmusTest,
        models: Option<&[ModelRef]>,
    ) -> Result<OutcomeReport, String> {
        self.outcomes_capped(file, t, models, None)
    }

    /// [`Session::outcomes`] with a per-request candidate cap
    /// overriding the session default — how the daemon honours a
    /// request's `max_candidates` field without perturbing the
    /// session-wide setting.
    pub fn outcomes_capped(
        &mut self,
        file: &str,
        t: &LitmusTest,
        models: Option<&[ModelRef]>,
        cap: Option<u128>,
    ) -> Result<OutcomeReport, String> {
        // Outcomes are exchanged with the operational simulators in
        // their fixed-width memory layout; a location past that width
        // would be silently truncated, so refuse it up front (the
        // `check` path has no such limit, which is why this is enforced
        // here and not in the parser).
        if let Some(max_loc) = t.locations().last().copied() {
            if max_loc as usize >= MAX_LOCS {
                return Err(format!(
                    "program uses location {max_loc}; the outcome engine models \
                     locations 0..{MAX_LOCS}"
                ));
            }
        }
        let cap = cap.unwrap_or(self.max_candidates);
        let count = txmm_litmus::candidate_count(t).map_err(|e| e.to_string())?;
        if count > cap {
            return Err(format!(
                "program has {count} candidate executions (limit {cap})"
            ));
        }

        let key = program_key(t);
        let requested: Vec<ModelRef> = match models {
            Some(ms) => ms.to_vec(),
            None => self.models().collect(),
        };
        let mut per_model = Vec::with_capacity(requested.len());
        let mut cached = true;
        let mut class_union: HashSet<ExecId> = HashSet::new();
        for m in requested {
            let slot = m.index();
            let ck = (key.clone(), slot);
            if self.outcome_sets.contains_key(&ck) {
                self.stats.outcome_hits.inc();
            } else {
                self.stats.outcome_misses.inc();
                cached = false;
                // Oracle-backed models walk the candidate space with
                // consistency-guided pruning, one walk per model;
                // oracle-less models share the unpruned table.
                if self.prune && self.models[slot].prune_oracle(true).is_some() {
                    self.pruned_model_outcomes(&key, t, m)?;
                } else {
                    self.table_model_outcomes(&key, t, m)?;
                }
                self.stats
                    .outcome_entries
                    .set(self.outcome_sets.len() as i64);
            }
            let allowed = self.outcome_sets[&ck].clone();
            class_union.extend(self.outcome_visits[&ck].classes.iter().copied());
            let post_allowed = if t.post.is_empty() {
                None
            } else {
                Some(allowed.iter().any(|o| o.passes(t)))
            };
            per_model.push(ModelOutcomes {
                model: self.model(m).name().to_string(),
                allowed,
                post_allowed,
            });
        }
        Ok(OutcomeReport {
            file: file.to_string(),
            name: t.name.clone(),
            arch: t.arch,
            events: t
                .threads
                .iter()
                .flatten()
                .filter(|i| !matches!(i.op, Op::TxBegin { .. } | Op::TxEnd))
                .count(),
            txns: t.num_txns(),
            candidates: count.min(usize::MAX as u128) as usize,
            classes: class_union.len(),
            per_model,
            cached,
        })
    }

    /// One model's allowed set via the pruned candidate walk: the
    /// model's oracle kills doomed subtrees (and whole abort splits)
    /// during construction, surviving candidates are interned and
    /// verdict-checked class by class, and the allowed set plus the
    /// visit record land in the per-`(program, model)` caches.
    fn pruned_model_outcomes(
        &mut self,
        key: &[u8],
        t: &LitmusTest,
        m: ModelRef,
    ) -> Result<(), String> {
        let slot = m.index();
        // The oracle borrows the model registry for the whole walk;
        // split the borrows so candidates can still be interned and
        // verdict-cached.
        let Session {
            models,
            arena,
            canon_ids,
            verdicts,
            stats,
            outcome_workers,
            walk_progress,
            ..
        } = self;
        let workers = *outcome_workers;
        let progress = walk_progress.clone();
        let progress = progress.as_deref();
        let model = models[slot].as_ref();
        let oracle = model
            .prune_oracle(true)
            .expect("caller checked the oracle exists");
        let mut allowed = OutcomeSet::new();
        let mut classes: Vec<ExecId> = Vec::new();
        let mut seen: HashSet<ExecId> = HashSet::new();
        let mut sink = |c: Candidate| {
            let id = intern_into(arena, canon_ids, &c.exec);
            if seen.insert(id) {
                classes.push(id);
                if let Some(p) = progress {
                    p.add_classes(1);
                }
            }
            // The oracle's leaf check is not the full model (compiled
            // `.cat` oracles run only the monotone fragment), so the
            // class still goes through the verdict cache.
            if let std::collections::hash_map::Entry::Vacant(e) = verdicts.entry((id, slot)) {
                stats.verdict_misses.inc();
                e.insert(model.check_analysis(&arena.unpack(id).analysis()));
            } else {
                stats.verdict_hits.inc();
            }
            if verdicts[&(id, slot)].is_consistent() {
                allowed.insert(Outcome {
                    regs: c.regs,
                    memory: pad_locs(c.memory),
                    txn_ok: c.txn_ok,
                    co_order: pad_locs(c.co_order),
                });
            }
        };
        // The walk itself parallelises over abort splits; Session
        // interning is single-threaded, so workers buffer candidates
        // and the merge (descending masks, the sequential order)
        // replays them through the same sink here.
        let (visited, pstats) = if workers > 1 {
            let (visited, pstats, buffers) = pruned_candidates_par(t, oracle, workers, progress)?;
            for (_, buf) in buffers {
                for c in buf {
                    sink(c);
                }
            }
            (visited, pstats)
        } else {
            // The sequential walk has no per-split granularity to
            // report against, so the whole program is one work unit
            // flushed when the walk returns.
            let total = txmm_litmus::candidate_count(t)
                .map(|n| n.min(u64::MAX as u128) as u64)
                .unwrap_or(0);
            if let Some(p) = progress {
                p.add_total(total);
            }
            let (visited, pstats) = txmm_litmus::enumerate_candidates_pruned(t, oracle, &mut sink)
                .map_err(|e| e.to_string())?;
            if let Some(p) = progress {
                p.subtree_done(
                    total,
                    visited as u64,
                    pstats.subtrees_cut,
                    pstats.candidates_skipped,
                );
            }
            (visited, pstats)
        };
        self.stats.interned.set(self.arena.len() as i64);
        self.stats.outcome_candidates.add(visited as u64);
        self.stats.outcome_classes.add(classes.len() as u64);
        self.stats.prune_subtrees_cut.add(pstats.subtrees_cut);
        self.stats
            .prune_candidates_skipped
            .add(pstats.candidates_skipped);
        self.stats.prune_oracle_calls.add(pstats.oracle_calls);
        self.stats.prune_oracle_micros.add(pstats.oracle_micros);
        self.stats.prune_delta_answers.add(pstats.delta_answers);
        self.stats.prune_fallbacks.add(pstats.fallbacks);
        for (bound, n) in txmm_core::incr::BATCH_BOUNDS.iter().zip(&pstats.batch_hist) {
            self.stats.prune_batch_size.record_n(*bound, *n);
        }
        self.outcome_sets.insert((key.to_vec(), slot), allowed);
        self.outcome_visits
            .insert((key.to_vec(), slot), OutcomeVisit { classes });
        Ok(())
    }

    /// One model's allowed set from the shared unpruned table — the
    /// reference path, and the only one for models without an oracle.
    fn table_model_outcomes(
        &mut self,
        key: &[u8],
        t: &LitmusTest,
        m: ModelRef,
    ) -> Result<(), String> {
        if !self.outcome_tables.contains_key(key) {
            let table = self.build_table(t)?;
            self.outcome_tables.insert(key.to_vec(), table);
        }
        let consistent = self.class_consistency(key, m);
        let table = &self.outcome_tables[key];
        let allowed: OutcomeSet = table
            .candidates
            .iter()
            .filter(|(_, class)| consistent[*class])
            .map(|(o, _)| o.clone())
            .collect();
        let visit = OutcomeVisit {
            classes: table.classes.clone(),
        };
        self.outcome_sets.insert((key.to_vec(), m.index()), allowed);
        self.outcome_visits.insert((key.to_vec(), m.index()), visit);
        Ok(())
    }

    /// Enumerate the program's candidates into a table, interning one
    /// representative execution per canonical class. Size refusals
    /// happened in [`Session::outcomes_capped`]; the capacity clamp
    /// only guards allocation under deliberately raised caps.
    fn build_table(&mut self, t: &LitmusTest) -> Result<OutcomeTable, String> {
        let count = txmm_litmus::candidate_count(t).map_err(|e| e.to_string())?;
        let mut candidates = Vec::with_capacity(count.min(1 << 20) as usize);
        let mut classes: Vec<ExecId> = Vec::new();
        let mut class_of: HashMap<ExecId, usize> = HashMap::new();
        enumerate_candidates(t, &mut |c| {
            let id = self.intern(&c.exec);
            let next = classes.len();
            let class = *class_of.entry(id).or_insert_with(|| {
                classes.push(id);
                next
            });
            candidates.push((
                Outcome {
                    regs: c.regs,
                    memory: pad_locs(c.memory),
                    txn_ok: c.txn_ok,
                    co_order: pad_locs(c.co_order),
                },
                class,
            ));
        })
        .map_err(|e| e.to_string())?;
        self.stats.outcome_candidates.add(candidates.len() as u64);
        self.stats.outcome_classes.add(classes.len() as u64);
        if let Some(p) = &self.walk_progress {
            // The unpruned table is built in one gulp; report it as a
            // single completed work unit so watchers still see motion.
            let done = candidates.len() as u64;
            p.add_total(done);
            p.subtree_done(done, done, 0, 0);
            p.add_classes(classes.len() as u64);
        }
        Ok(OutcomeTable {
            candidates,
            classes,
        })
    }

    /// Per-class consistency of one model over a table, landing in (and
    /// served from) the Session verdict cache. Classes missing from the
    /// cache fan out over the work-stealing pool when there are enough
    /// of them to pay for the threads.
    fn class_consistency(&mut self, key: &[u8], m: ModelRef) -> Vec<bool> {
        /// Below this many uncached classes the pool's thread setup
        /// costs more than the checking.
        const PAR_THRESHOLD: usize = 32;
        let slot = m.index();
        let class_ids: Vec<txmm_core::arena::ExecId> = self.outcome_tables[key].classes.clone();
        let missing: Vec<(usize, txmm_core::arena::ExecId)> = class_ids
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, id)| !self.verdicts.contains_key(&(id, slot)))
            .collect();
        self.stats
            .verdict_hits
            .add((class_ids.len() - missing.len()) as u64);
        self.stats.verdict_misses.add(missing.len() as u64);
        if !missing.is_empty() {
            let jobs: Vec<(txmm_core::arena::ExecId, txmm_core::Execution)> = missing
                .iter()
                .map(|&(_, id)| (id, self.arena.unpack(id)))
                .collect();
            let model = self.models[slot].as_ref();
            let workers = if jobs.len() >= PAR_THRESHOLD {
                self.outcome_workers
            } else {
                1
            };
            let (states, _stats) = txmm_synth::steal::run_with(
                jobs.into_iter(),
                workers,
                |_| Vec::new(),
                |(id, x), out: &mut Vec<(txmm_core::arena::ExecId, txmm_models::Verdict)>| {
                    out.push((id, model.check_analysis(&x.analysis())));
                },
            );
            for (id, v) in states.into_iter().flatten() {
                self.verdicts.insert((id, slot), v);
            }
        }
        class_ids
            .iter()
            .map(|id| self.verdicts[&(*id, slot)].is_consistent())
            .collect()
    }
}

/// Normalise an outcome for axiomatic-vs-operational comparison: zero
/// every register that *some* load inside an aborted transaction
/// targets. The axiomatic engine drops aborted events entirely (their
/// loads never happen), while the operational simulators model the
/// hardware reality that pre-abort loads may leave values in registers;
/// quotienting both sides by aborted-load registers makes the subset
/// relation well-defined.
pub fn normalise_outcome(t: &LitmusTest, o: &Outcome) -> Outcome {
    let mut out = o.clone();
    for (tid, instrs) in t.threads.iter().enumerate() {
        let mut open: Option<usize> = None;
        for i in instrs {
            match &i.op {
                Op::TxBegin { txn_id, .. } => open = Some(*txn_id),
                Op::TxEnd => open = None,
                Op::Load { reg, .. } => {
                    if let Some(txn_id) = open {
                        if !o.txn_ok.get(txn_id).copied().unwrap_or(true) {
                            if let Some(r) = out.regs.get_mut(tid).and_then(|r| r.get_mut(*reg)) {
                                *r = 0;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// The operational simulator for an architecture, if one exists.
pub fn simulator_for(arch: Arch) -> Option<Box<dyn Simulator>> {
    match arch {
        Arch::X86 => Some(Box::new(txmm_hwsim::TsoSim)),
        Arch::Power => Some(Box::new(txmm_hwsim::PowerSim::default())),
        Arch::Armv8 => Some(Box::new(txmm_hwsim::ArmSim::default())),
        _ => None,
    }
}

/// Soundness cross-check: run the architecture's operational simulator
/// and return every observed outcome **not** in the model's allowed set
/// (both sides normalised per [`normalise_outcome`]). An empty result
/// means the simulator's observations are a subset of the axiomatic
/// allowed set — the direction soundness requires. `None` when the
/// architecture has no simulator or the program uses abstract lock
/// calls the simulators cannot run.
pub fn unsound_sim_outcomes(t: &LitmusTest, allowed: &OutcomeSet) -> Option<Vec<Outcome>> {
    let uses_calls = t
        .threads
        .iter()
        .flatten()
        .any(|i| matches!(i.op, Op::LockCall(_)));
    if uses_calls {
        return None;
    }
    let sim = simulator_for(t.arch)?;
    let normalised_allowed: OutcomeSet = allowed.iter().map(|o| normalise_outcome(t, o)).collect();
    Some(
        sim.run(t)
            .iter()
            .map(|o| normalise_outcome(t, o))
            .filter(|o| !normalised_allowed.contains(o))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_litmus::litmus_from_execution;
    use txmm_models::catalog;

    fn sb() -> LitmusTest {
        litmus_from_execution("sb", &catalog::sb(None, false, false), Arch::X86)
    }

    #[test]
    fn sb_outcome_matrix() {
        let mut s = Session::new();
        let sc = s.resolve("SC").unwrap();
        let x86 = s.resolve("x86").unwrap();
        let r = s.outcomes("sb.litmus", &sb(), Some(&[sc, x86])).unwrap();
        assert_eq!(r.candidates, 4);
        assert!(r.classes <= r.candidates);
        // SC forbids the both-stale outcome, x86 allows it.
        assert_eq!(r.per_model[0].post_allowed, Some(false));
        assert_eq!(r.per_model[1].post_allowed, Some(true));
        // SC allows exactly 3 final states (the interleavings), x86 4.
        assert_eq!(r.per_model[0].allowed.len(), 3);
        assert_eq!(r.per_model[1].allowed.len(), 4);
    }

    #[test]
    fn outcome_sets_cached_by_program_key() {
        let mut s = Session::new();
        let sc = s.resolve("SC").unwrap();
        let cold = s.outcomes("sb.litmus", &sb(), Some(&[sc])).unwrap();
        assert!(!cold.cached);
        assert_eq!(s.stats().outcome_misses, 1);
        let warm = s.outcomes("sb.litmus", &sb(), Some(&[sc])).unwrap();
        assert!(warm.cached);
        assert_eq!(s.stats().outcome_hits, 1);
        assert_eq!(cold.per_model, warm.per_model);
        // A different postcondition over the same program still hits the
        // program-keyed caches.
        let mut other = sb();
        other.post.clear();
        let r = s.outcomes("sb2.litmus", &other, Some(&[sc])).unwrap();
        assert!(r.cached);
        assert_eq!(r.per_model[0].post_allowed, None);
        assert_eq!(s.stats().outcome_hits, 2);
        assert_eq!(s.stats().outcome_entries, 1);
    }

    #[test]
    fn symmetry_prunes_classes() {
        // SB is symmetric under (t0 ↔ t1, x ↔ y): the two one-stale-read
        // candidates share a canonical class, so 4 candidates check as
        // 3 classes.
        let mut s = Session::new();
        let x86 = s.resolve("x86").unwrap();
        let r = s.outcomes("sb.litmus", &sb(), Some(&[x86])).unwrap();
        assert_eq!(r.candidates, 4);
        assert_eq!(r.classes, 3, "symmetric rf choices share one class");
        assert_eq!(s.stats().outcome_candidates, r.candidates as u64);
        assert_eq!(s.stats().outcome_classes, r.classes as u64);
        // The pruned class still contributes both candidates' outcomes.
        assert_eq!(r.per_model[0].allowed.len(), 4);
    }

    #[test]
    fn program_level_agrees_with_pinned_execution() {
        // The postcondition verdict from exhaustive enumeration must
        // match the single pinned execution's consistency for tests
        // whose postcondition pins one candidate.
        let mut s = Session::new();
        let all: Vec<ModelRef> = s.models().collect();
        for x in [
            catalog::sb(None, false, false),
            catalog::mp(None, false, false),
            catalog::lb(false),
            catalog::fig2(),
        ] {
            let t = litmus_from_execution("t", &x, Arch::X86);
            let pinned = txmm_litmus::execution_from_litmus(&t).unwrap();
            let r = s.outcomes("t.litmus", &t, Some(&all)).unwrap();
            for (m, mo) in all.iter().zip(&r.per_model) {
                let direct = s.verdict(&pinned, *m).is_consistent();
                assert_eq!(
                    mo.post_allowed,
                    Some(direct),
                    "{} on pinned-vs-program",
                    mo.model
                );
            }
        }
    }

    #[test]
    fn parallel_and_sequential_checking_agree() {
        // 5 same-location writes on one thread: 120 coherence classes —
        // enough to engage the work-stealing pool on the parallel
        // session. Answers must be identical either way.
        use txmm_litmus::Instr;
        let t = LitmusTest {
            name: "5w".into(),
            arch: Arch::X86,
            threads: vec![(1..=5u32)
                .map(|v| {
                    Instr::plain(Op::Store {
                        loc: 0,
                        value: v,
                        mode: Default::default(),
                    })
                })
                .collect()],
            post: vec![txmm_litmus::Check::Loc { loc: 0, value: 5 }],
        };
        // Pruning would collapse the program to its one po-consistent
        // coherence order before any class reaches the pool; pin it
        // off so the table path's fan-out is what gets exercised.
        let mut seq = Session::new();
        seq.set_prune(false);
        let mut par = Session::new();
        par.set_prune(false);
        par.set_outcome_workers(4);
        let m_seq = seq.resolve("x86").unwrap();
        let m_par = par.resolve("x86").unwrap();
        let a = seq.outcomes("5w", &t, Some(&[m_seq])).unwrap();
        let b = par.outcomes("5w", &t, Some(&[m_par])).unwrap();
        assert!(
            a.classes >= 32,
            "classes {} must engage the pool",
            a.classes
        );
        assert_eq!(a.per_model, b.per_model);
        // x86 keeps same-thread writes in program order: exactly one
        // coherence order survives, so the postcondition x = 5 is
        // allowed and x = anything else is not.
        assert_eq!(a.per_model[0].post_allowed, Some(true));
        assert_eq!(a.per_model[0].allowed.len(), 1);
        // The pruned walk abandons the other 119 coherence orders
        // during construction and still answers identically.
        let mut pruned = Session::new();
        let m = pruned.resolve("x86").unwrap();
        let c = pruned.outcomes("5w", &t, Some(&[m])).unwrap();
        assert_eq!(a.per_model[0].allowed, c.per_model[0].allowed);
        assert_eq!(
            a.candidates, c.candidates,
            "closed-form count is path-independent"
        );
        assert_eq!(c.classes, 1, "only the surviving order is visited");
        assert!(pruned.stats().prune_subtrees_cut > 0);
        assert_eq!(
            pruned.stats().outcome_candidates + pruned.stats().prune_candidates_skipped,
            a.candidates as u64,
            "visited + skipped covers the whole space"
        );
    }

    #[test]
    fn oversized_programs_refused() {
        // 6 writes to one location: 720 coherence orders per rf split —
        // fine; but 9 writes (362880 co orders) blows the cap.
        use txmm_litmus::{Instr, Op};
        let mut t = LitmusTest {
            name: "big".into(),
            arch: Arch::X86,
            threads: vec![(1..=9u32)
                .map(|v| {
                    Instr::plain(Op::Store {
                        loc: 0,
                        value: v,
                        mode: Default::default(),
                    })
                })
                .collect()],
            post: vec![],
        };
        // One thread: co is pinned by po? No — co choices are still
        // enumerated; the count is 9! = 362880 > 65536.
        let mut s = Session::new();
        let e = s.outcomes("big", &t, None).unwrap_err();
        assert!(e.contains("limit"), "{e}");
        // Within the cap it serves.
        t.threads[0].truncate(6);
        assert!(s.outcomes("small", &t, None).is_ok());
    }

    #[test]
    fn high_locations_refused_not_truncated() {
        // Locations past the simulators' width would be silently
        // dropped by the fixed-width outcome layout; the engine must
        // refuse instead of answering wrongly.
        let src = "hi (x86)\nthread 0:\n  l8 <- 1\nTest: l8 = 1\n";
        let t = txmm_litmus::parse_litmus(src).expect("parses");
        let mut s = Session::new();
        let e = s.outcomes("hi", &t, None).unwrap_err();
        assert!(e.contains("location 8"), "{e}");
        // The widest in-range location still serves.
        let src = "ok (x86)\nthread 0:\n  l7 <- 1\nTest: l7 = 1\n";
        let t = txmm_litmus::parse_litmus(src).expect("parses");
        let r = s.outcomes("ok", &t, None).expect("serves");
        assert_eq!(r.candidates, 1);
    }

    #[test]
    fn pathological_programs_refused_without_panic() {
        use txmm_litmus::{Instr, Op};
        let mode = txmm_litmus::AccessMode::default();
        // Wide: 7 stores + 42 loads of one location (count saturates).
        let stores: Vec<Instr> = (1..=7u32)
            .map(|v| {
                Instr::plain(Op::Store {
                    loc: 0,
                    value: v,
                    mode,
                })
            })
            .collect();
        let loads: Vec<Instr> = (0..42usize)
            .map(|r| {
                Instr::plain(Op::Load {
                    reg: r,
                    loc: 0,
                    mode,
                })
            })
            .collect();
        let wide = LitmusTest {
            name: "wide".into(),
            arch: Arch::X86,
            threads: vec![stores, loads],
            post: vec![],
        };
        // Deep: 33 single-store transactions (mask wider than u32).
        let mut instrs = Vec::new();
        for v in 1..=33u32 {
            instrs.push(Instr::plain(Op::TxBegin {
                txn_id: (v - 1) as usize,
                atomic: false,
            }));
            instrs.push(Instr::plain(Op::Store {
                loc: 0,
                value: v,
                mode,
            }));
            instrs.push(Instr::plain(Op::TxEnd));
        }
        let deep = LitmusTest {
            name: "deep".into(),
            arch: Arch::X86,
            threads: vec![instrs],
            post: vec![],
        };
        let mut s = Session::new();
        for t in [wide, deep] {
            let e = s.outcomes(&t.name.clone(), &t, None).unwrap_err();
            assert!(e.contains("limit"), "{e}");
        }
    }

    #[test]
    fn sim_subset_holds_for_sb_family() {
        let mut s = Session::new();
        let x86tm = s.resolve("x86-tm").unwrap();
        for x in [
            catalog::sb(None, false, false),
            catalog::sb(None, true, false),
            catalog::sb(None, true, true),
        ] {
            let t = litmus_from_execution("sb", &x, Arch::X86);
            let r = s.outcomes("sb", &t, Some(&[x86tm])).unwrap();
            let extra = unsound_sim_outcomes(&t, &r.per_model[0].allowed).unwrap();
            assert!(
                extra.is_empty(),
                "simulator observed outcomes outside x86-tm's allowed set: {extra:?}"
            );
        }
    }

    #[test]
    fn reload_invalidates_outcome_sets() {
        let mut s = Session::new();
        let m = s
            .register_cat_source("probe", "acyclic po | com as Order")
            .unwrap();
        let r = s.outcomes("sb", &sb(), Some(&[m])).unwrap();
        assert_eq!(r.per_model[0].post_allowed, Some(false), "SC forbids SB");
        // Reload the same name with a weaker model: the cached outcome
        // set must not survive.
        let m2 = s
            .reload_cat_source("probe", "acyclic poloc | com as Coherence")
            .unwrap();
        assert_eq!(m, m2, "reload keeps the registry slot");
        let r2 = s.outcomes("sb", &sb(), Some(&[m2])).unwrap();
        assert_eq!(
            r2.per_model[0].post_allowed,
            Some(true),
            "coherence-only model allows SB"
        );
    }
}
