//! The daemon's wire protocol: line-delimited JSON requests over a TCP
//! or Unix stream socket.
//!
//! One request per line; each request is answered with one or more
//! JSONL lines followed by an **empty line** (the frame terminator), so
//! clients can stream responses without knowing their length up front:
//!
//! ```json
//! {"cmd":"check","file":"sb.litmus","src":"sb (x86)\n..."}
//! {"cmd":"batch","dir":"target/litmus-corpus","models":["SC","x86"]}
//! {"cmd":"models"}
//! {"cmd":"stats"}
//! {"cmd":"shutdown"}
//! ```
//!
//! `check` and `batch` payload lines are produced by
//! [`crate::serve::jsonl_line`], so they are byte-identical to the
//! stdout of one-shot `txmm serve` over the same tests. Malformed
//! requests answer a single `{"error":"..."}` line (plus terminator)
//! and leave the connection open.
//!
//! The protocol layer is dependency-free: requests are parsed with the
//! small JSON reader below rather than an external serializer.

use std::fmt;

use crate::serve::json_escape;

/// A parsed JSON value (the subset a request can contain).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A wire-protocol error (malformed JSON or a malformed request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ProtocolError> {
    Err(ProtocolError(msg.into()))
}

struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Reader<'a> {
    fn skip_ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ProtocolError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ProtocolError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            err(format!("bad literal at byte {}", self.i))
        }
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return err("unterminated string");
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return err("unterminated escape");
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| ProtocolError("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| ProtocolError("bad \\u escape".into()))?;
                            self.i += 4;
                            // Surrogate pairs are outside what our own
                            // encoder emits; reject rather than decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| ProtocolError("bad \\u code point".into()))?;
                            out.push(c);
                        }
                        other => return err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.b.len() && self.b[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| ProtocolError("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ProtocolError> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| ProtocolError(format!("bad number at byte {start}")))
    }

    fn value(&mut self) -> Result<Json, ProtocolError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.i += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    fields.push((k, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return err("expected ',' or '}'"),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'0'..=b'9' | b'-') => self.number(),
            _ => err(format!("unexpected input at byte {}", self.i)),
        }
    }
}

/// Parse one JSON value from a string (trailing whitespace allowed).
pub fn parse_json(s: &str) -> Result<Json, ProtocolError> {
    let mut r = Reader {
        b: s.as_bytes(),
        i: 0,
    };
    let v = r.value()?;
    r.skip_ws();
    if r.i != s.len() {
        return err(format!("trailing input at byte {}", r.i));
    }
    Ok(v)
}

/// A request from a client, one per line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Serve one litmus source; answers one `jsonl_line` payload line.
    Check {
        /// File name used in the response line.
        file: String,
        /// Litmus source text.
        src: String,
        /// Restrict verdicts to these model names (all when absent).
        models: Option<Vec<String>>,
        /// Client-chosen trace ID; when present the response line is
        /// annotated with `trace_id` and the per-stage span timeline.
        trace: Option<String>,
    },
    /// Serve every `.litmus` file in a server-side directory; answers
    /// one payload line per file, in sorted file order.
    Batch {
        /// Directory path, resolved on the server.
        dir: String,
        /// Restrict verdicts to these model names (all when absent).
        models: Option<Vec<String>>,
    },
    /// Enumerate a program's candidate executions and answer the
    /// per-model allowed final-state table; one payload line.
    Outcomes {
        /// File name used in the response line.
        file: String,
        /// Litmus source text.
        src: String,
        /// Restrict the table to these model names (all when absent).
        models: Option<Vec<String>>,
        /// Raise (or lower) the candidate-execution cap for this
        /// request; the server default applies when absent. Oversized
        /// programs still answer the same structured refusal.
        max_candidates: Option<u128>,
        /// Client-chosen trace ID; when present the response line is
        /// annotated with `trace_id` and the per-stage span timeline.
        trace: Option<String>,
    },
    /// [`Request::Outcomes`] over every `.litmus` file in a server-side
    /// directory, in sorted file order.
    OutcomesBatch {
        /// Directory path, resolved on the server.
        dir: String,
        /// Restrict the table to these model names (all when absent).
        models: Option<Vec<String>>,
        /// Per-request candidate-execution cap (server default when
        /// absent).
        max_candidates: Option<u128>,
    },
    /// Re-resolve the daemon's `--cat` files into every shard Session
    /// without a restart; answers one `{"ok":"reload",...}` line, or a
    /// structured `{"error":...,"code":"reload"}` frame on failure.
    Reload,
    /// List the registered models.
    Models,
    /// Cache hit-rates, per-shard queue depths and stage timings.
    Stats,
    /// The process-wide metrics registry: one JSON line by default, or
    /// Prometheus text exposition (multi-line) with `"format":"prom"`.
    Metrics {
        /// Answer Prometheus text exposition instead of JSON.
        prom: bool,
    },
    /// Stop accepting connections and exit once in-flight requests
    /// drain.
    Shutdown,
}

fn models_field(v: &Json) -> Result<Option<Vec<String>>, ProtocolError> {
    match v.get("models") {
        None | Some(Json::Null) => Ok(None),
        Some(m) => {
            let arr = m
                .as_arr()
                .ok_or_else(|| ProtocolError("\"models\" must be an array".into()))?;
            arr.iter()
                .map(|x| {
                    x.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| ProtocolError("\"models\" entries must be strings".into()))
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some)
        }
    }
}

fn max_candidates_field(v: &Json) -> Result<Option<u128>, ProtocolError> {
    match v.get("max_candidates") {
        None | Some(Json::Null) => Ok(None),
        // The reader parses numbers as f64; integers stay exact up to
        // 2^53, far beyond any cap a server could serve anyway.
        Some(Json::Num(n)) if *n >= 1.0 && n.fract() == 0.0 && *n <= 9.007199254740992e15 => {
            Ok(Some(*n as u128))
        }
        Some(_) => Err(ProtocolError(
            "\"max_candidates\" must be a positive integer".into(),
        )),
    }
}

fn trace_field(v: &Json) -> Result<Option<String>, ProtocolError> {
    match v.get("trace_id") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(ProtocolError("\"trace_id\" must be a string".into())),
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, ProtocolError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtocolError(format!("missing string field \"{key}\"")))
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let v = parse_json(line)?;
        let cmd = str_field(&v, "cmd")?;
        match cmd.as_str() {
            "check" => Ok(Request::Check {
                file: str_field(&v, "file")?,
                src: str_field(&v, "src")?,
                models: models_field(&v)?,
                trace: trace_field(&v)?,
            }),
            "batch" => Ok(Request::Batch {
                dir: str_field(&v, "dir")?,
                models: models_field(&v)?,
            }),
            // `outcomes` carries either a source (`file` + `src`) or a
            // server-side directory (`dir`).
            "outcomes" => {
                if v.get("dir").is_some() {
                    Ok(Request::OutcomesBatch {
                        dir: str_field(&v, "dir")?,
                        models: models_field(&v)?,
                        max_candidates: max_candidates_field(&v)?,
                    })
                } else {
                    Ok(Request::Outcomes {
                        file: str_field(&v, "file")?,
                        src: str_field(&v, "src")?,
                        models: models_field(&v)?,
                        max_candidates: max_candidates_field(&v)?,
                        trace: trace_field(&v)?,
                    })
                }
            }
            "reload" => Ok(Request::Reload),
            "models" => Ok(Request::Models),
            "stats" => Ok(Request::Stats),
            "metrics" => match v.get("format") {
                None | Some(Json::Null) => Ok(Request::Metrics { prom: false }),
                Some(Json::Str(f)) if f == "prom" => Ok(Request::Metrics { prom: true }),
                Some(Json::Str(f)) => err(format!("unknown metrics format {f:?}")),
                Some(_) => err("\"format\" must be a string"),
            },
            "shutdown" => Ok(Request::Shutdown),
            other => err(format!("unknown command {other:?}")),
        }
    }

    /// Render as a request line (no trailing newline) — the client
    /// half of [`Request::parse`].
    pub fn to_line(&self) -> String {
        fn models_suffix(models: &Option<Vec<String>>) -> String {
            match models {
                None => String::new(),
                Some(ms) => format!(
                    ",\"models\":[{}]",
                    ms.iter()
                        .map(|m| format!("\"{}\"", json_escape(m)))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            }
        }
        fn cap_suffix(cap: &Option<u128>) -> String {
            match cap {
                None => String::new(),
                Some(c) => format!(",\"max_candidates\":{c}"),
            }
        }
        fn trace_suffix(trace: &Option<String>) -> String {
            match trace {
                None => String::new(),
                Some(t) => format!(",\"trace_id\":\"{}\"", json_escape(t)),
            }
        }
        match self {
            Request::Check {
                file,
                src,
                models,
                trace,
            } => format!(
                "{{\"cmd\":\"check\",\"file\":\"{}\",\"src\":\"{}\"{}{}}}",
                json_escape(file),
                json_escape(src),
                models_suffix(models),
                trace_suffix(trace)
            ),
            Request::Batch { dir, models } => format!(
                "{{\"cmd\":\"batch\",\"dir\":\"{}\"{}}}",
                json_escape(dir),
                models_suffix(models)
            ),
            Request::Outcomes {
                file,
                src,
                models,
                max_candidates,
                trace,
            } => format!(
                "{{\"cmd\":\"outcomes\",\"file\":\"{}\",\"src\":\"{}\"{}{}{}}}",
                json_escape(file),
                json_escape(src),
                models_suffix(models),
                cap_suffix(max_candidates),
                trace_suffix(trace)
            ),
            Request::OutcomesBatch {
                dir,
                models,
                max_candidates,
            } => format!(
                "{{\"cmd\":\"outcomes\",\"dir\":\"{}\"{}{}}}",
                json_escape(dir),
                models_suffix(models),
                cap_suffix(max_candidates)
            ),
            Request::Reload => "{\"cmd\":\"reload\"}".into(),
            Request::Models => "{\"cmd\":\"models\"}".into(),
            Request::Stats => "{\"cmd\":\"stats\"}".into(),
            Request::Metrics { prom: false } => "{\"cmd\":\"metrics\"}".into(),
            Request::Metrics { prom: true } => "{\"cmd\":\"metrics\",\"format\":\"prom\"}".into(),
            Request::Shutdown => "{\"cmd\":\"shutdown\"}".into(),
        }
    }
}

/// An `{"error":...}` response line.
pub fn error_line(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", json_escape(msg))
}

/// The structured busy response a connection-limited daemon answers
/// (and immediately closes) an over-limit connection with: machine
/// code, human message, and the limit so clients can size their retry
/// policy.
pub fn busy_line(max_conns: usize) -> String {
    format!(
        "{{\"error\":\"server busy: connection limit {max_conns} reached\",\
         \"code\":\"busy\",\"max_conns\":{max_conns}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_values() {
        let v = parse_json(r#"{"a":[1,2.5,-3],"b":"x\n\"y\"","c":true,"d":null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\n\"y\""));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[2], Json::Num(-3.0));
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse_json("\"caf\u{e9} \\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("café A"));
    }

    #[test]
    fn request_roundtrips_through_its_own_renderer() {
        let reqs = [
            Request::Check {
                file: "a b.litmus".into(),
                src: "sb (x86)\nthread 0:\n  x <- 1\nTest: x = 1\n".into(),
                models: Some(vec!["SC".into(), "x86-tm.cat".into()]),
                trace: None,
            },
            Request::Check {
                file: "plain".into(),
                src: "s".into(),
                models: None,
                trace: Some("req-42 \"quoted\"".into()),
            },
            Request::Batch {
                dir: "target/corpus".into(),
                models: None,
            },
            Request::Outcomes {
                file: "sb.litmus".into(),
                src: "sb (x86)\nthread 0:\n  x <- 1\n".into(),
                models: Some(vec!["SC".into()]),
                max_candidates: None,
                trace: Some("trace-7".into()),
            },
            Request::Outcomes {
                file: "big.litmus".into(),
                src: "big (x86)\nthread 0:\n  x <- 1\n".into(),
                models: None,
                max_candidates: Some(1 << 20),
                trace: None,
            },
            Request::OutcomesBatch {
                dir: "target/corpus".into(),
                models: None,
                max_candidates: Some(131072),
            },
            Request::Reload,
            Request::Models,
            Request::Stats,
            Request::Metrics { prom: false },
            Request::Metrics { prom: true },
            Request::Shutdown,
        ];
        for r in reqs {
            let line = r.to_line();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Request::parse(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_named() {
        assert!(Request::parse("{\"cmd\":\"fly\"}")
            .unwrap_err()
            .to_string()
            .contains("unknown command"));
        assert!(Request::parse("{\"cmd\":\"check\"}")
            .unwrap_err()
            .to_string()
            .contains("missing string field \"file\""));
        assert!(Request::parse("not json").is_err());
        assert!(
            Request::parse("{\"cmd\":\"check\",\"file\":\"f\",\"src\":\"s\",\"models\":3}")
                .is_err()
        );
        assert!(
            Request::parse("{\"cmd\":\"check\",\"file\":\"f\",\"src\":\"s\",\"trace_id\":7}")
                .unwrap_err()
                .to_string()
                .contains("trace_id")
        );
        assert!(Request::parse("{\"cmd\":\"metrics\",\"format\":\"xml\"}")
            .unwrap_err()
            .to_string()
            .contains("unknown metrics format"));
        for bad in ["0", "-4", "1.5", "\"many\"", "1e300"] {
            let line = format!(
                "{{\"cmd\":\"outcomes\",\"file\":\"f\",\"src\":\"s\",\"max_candidates\":{bad}}}"
            );
            assert!(
                Request::parse(&line)
                    .unwrap_err()
                    .to_string()
                    .contains("max_candidates"),
                "{bad}"
            );
        }
    }

    #[test]
    fn error_lines_escape() {
        assert_eq!(
            error_line("bad \"thing\"\n"),
            "{\"error\":\"bad \\\"thing\\\"\\n\"}"
        );
    }
}
