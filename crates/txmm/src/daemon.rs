//! `txmm-serverd`: a concurrent socket daemon over a **sharded
//! [`Session`] pool**.
//!
//! The Session engine is long-lived by design; this module adds the
//! missing transport (ROADMAP: "a daemon/socket mode for `txmm serve`")
//! without a global lock around the engine:
//!
//! * **Sharded pool** ([`SessionPool`]): N worker threads, each owning
//!   one `Session`. Work reaches a shard over its own
//!   `std::sync::mpsc` channel, so concurrent clients batch into
//!   shards without contending on a shared mutex.
//! * **Canonical-key dispatch**: a request's litmus text is parsed and
//!   converted on the *connection handler* thread (the cheap,
//!   embarrassingly-parallel stages), then routed by a hash of the
//!   execution's canonical (symmetry-reduced) key. Repeats of a test —
//!   and all its thread/location-symmetric variants — always land on
//!   the same shard, so the pool's caches collectively behave like one
//!   warm cache even though no state is shared between shards.
//! * **JSONL wire protocol** ([`crate::protocol`]): `check`, `batch`,
//!   `models`, `stats` and graceful `shutdown` requests, each answered
//!   by JSONL lines and a blank-line terminator. Payload lines reuse
//!   [`crate::serve::jsonl_line`], so daemon answers are byte-identical
//!   to one-shot `txmm serve` output over the same tests.
//!
//! ```text
//! clients ──TCP/Unix──► handler threads ──parse/convert──► shard channels
//!                                                             │ │ │
//!                                             Session ◄───────┘ │ │
//!                                             Session ◄─────────┘ │
//!                                             Session ◄───────────┘
//! ```

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use txmm_litmus::LitmusTest;
use txmm_synth::canon_key;

use crate::protocol::{error_line, Request};
use crate::serve::{
    check_parsed, collect_litmus_files, jsonl_line, outcomes_jsonl_line, parse_outcomes_request,
    parse_request, ParsedTest, Served, ServedOutcomes, StageMicros, TestFailure,
};
use crate::session::{ModelRef, Session, SessionStats};

/// How to build the pool's Sessions.
#[derive(Debug, Clone, Default)]
pub struct PoolConfig {
    /// Worker count; 0 means one per available core (capped at 8).
    pub shards: usize,
    /// Also register the shipped `.cat` twins (`<name>.cat`).
    pub with_cat: bool,
    /// User-supplied `.cat` model files, registered on every shard.
    pub cat_files: Vec<PathBuf>,
}

impl PoolConfig {
    fn shard_count(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(2)
    }
}

/// One unit of shard work.
enum Job {
    /// Run the verdict/observe stages and reply with the finished
    /// JSONL payload line for response slot `seq`.
    Check {
        seq: usize,
        parsed: Box<ParsedTest>,
        models: Option<Vec<String>>,
        reply: mpsc::Sender<(usize, String)>,
        queued: Instant,
        trace: Option<Arc<txmm_obs::Trace>>,
    },
    /// Enumerate a program's candidate executions and reply with the
    /// outcome-table payload line for response slot `seq`.
    Outcomes {
        seq: usize,
        file: String,
        test: Box<LitmusTest>,
        models: Option<Vec<String>>,
        max_candidates: Option<u128>,
        reply: mpsc::Sender<(usize, String)>,
        queued: Instant,
        trace: Option<Arc<txmm_obs::Trace>>,
    },
    /// Replace the shard's user `.cat` models in place (hot reload).
    Reload {
        sources: Arc<Vec<(String, String)>>,
        reply: mpsc::Sender<Result<Vec<String>, String>>,
    },
    /// Snapshot this shard's counters.
    Stats { reply: mpsc::Sender<ShardSnapshot> },
}

/// One shard's counters, as reported by the `stats` request.
#[derive(Debug, Clone, Copy)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Check jobs completed by this shard.
    pub served: u64,
    /// Jobs enqueued but not yet completed at snapshot time.
    pub depth: u64,
    /// The shard Session's cache and arena counters.
    pub session: SessionStats,
    /// Accumulated per-stage serving time across this shard's jobs
    /// (parse/convert ticked on handler threads, verdict/observe here).
    pub stages: StageMicros,
    /// The shard Session's walk-progress accumulator (cumulative over
    /// every outcome walk the shard has run; all zero before the
    /// first one).
    pub walk: WalkSnapshot,
}

/// A copyable digest of a shard's [`txmm_obs::WalkProgress`], carried
/// on [`ShardSnapshot`] so `stats` can show in-flight walk progress
/// per shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalkSnapshot {
    /// Weighted work units completed.
    pub work_done: u64,
    /// Weighted work units planned.
    pub work_total: u64,
    /// Enumeration subtrees (abort splits) finished.
    pub subtrees: u64,
    /// Candidate executions emitted.
    pub candidates: u64,
    /// Canonical classes kept.
    pub classes: u64,
}

struct Shard {
    tx: mpsc::Sender<Job>,
    enqueued: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
}

/// How many of the slowest requests the daemon remembers for `stats`.
const SLOWEST_CAP: usize = 8;

/// Request commands the pool pre-registers counters and latency
/// histograms for (handles are created once here, never per request;
/// `error` covers lines that failed to parse as any command).
const REQUEST_CMDS: [&str; 10] = [
    "check",
    "batch",
    "outcomes",
    "outcomes_batch",
    "reload",
    "models",
    "stats",
    "metrics",
    "shutdown",
    "error",
];

/// Pre-registered request-level observability: one counter + latency
/// histogram per command, and the slowest-requests ring.
struct PoolObs {
    cmds: Vec<(&'static str, txmm_obs::Counter, txmm_obs::Histogram)>,
    slowest: txmm_obs::Slowest,
}

impl PoolObs {
    fn new() -> PoolObs {
        let reg = txmm_obs::global();
        PoolObs {
            cmds: REQUEST_CMDS
                .iter()
                .map(|&cmd| {
                    (
                        cmd,
                        reg.counter_with(
                            "txmm_requests_total",
                            "Requests answered by the daemon, by command.",
                            &[("cmd", cmd)],
                        ),
                        reg.histogram_with(
                            "txmm_request_duration_microseconds",
                            "End-to-end request latency as seen by the daemon, by command.",
                            &[("cmd", cmd)],
                        ),
                    )
                })
                .collect(),
            slowest: txmm_obs::Slowest::new(SLOWEST_CAP),
        }
    }

    fn observe(&self, cmd: &str, what: &str, trace_id: Option<&str>, micros: u64) {
        if let Some((_, requests, durations)) = self.cmds.iter().find(|(c, _, _)| *c == cmd) {
            requests.inc();
            durations.record(micros);
        }
        self.slowest.record(what, micros, trace_id);
    }
}

/// The sharded Session pool. See the module docs for the dispatch
/// rules; all methods take `&self` and are safe to call from many
/// handler threads at once.
pub struct SessionPool {
    shards: Vec<Shard>,
    workers: Vec<thread::JoinHandle<()>>,
    /// Requests that failed before reaching a shard (parse/convert
    /// failures, unknown models), mirrored into
    /// `txmm_dispatch_failures_total`.
    failures: txmm_obs::Counter,
    /// `(name, arch, is_tm)` of every registered model, in registry
    /// order (identical on every shard).
    models: Vec<(String, String, bool)>,
    /// User `.cat` files from the pool config, kept for hot reload.
    cat_files: Vec<PathBuf>,
    /// Request-level counters, latency histograms and the slowest ring.
    obs: PoolObs,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn build_session(cfg: &PoolConfig) -> Result<Session, String> {
    let mut s = if cfg.with_cat {
        Session::with_shipped_cat()
    } else {
        Session::new()
    };
    for path in &cfg.cat_files {
        s.register_cat_file(path)?;
    }
    Ok(s)
}

/// Resolve a model-name filter against a shard Session.
fn resolve_filter(
    session: &Session,
    models: &Option<Vec<String>>,
) -> Result<Option<Vec<ModelRef>>, String> {
    match models {
        None => Ok(None),
        Some(names) => names
            .iter()
            .map(|n| {
                session
                    .resolve(n)
                    .ok_or_else(|| format!("unknown model {n} (try `models`)"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
    }
}

fn worker(
    shard: usize,
    mut session: Session,
    rx: mpsc::Receiver<Job>,
    completed: Arc<AtomicU64>,
    queue_wait: txmm_obs::Histogram,
) {
    let mut served = 0u64;
    let mut stages = StageMicros::default();
    for job in rx {
        match job {
            Job::Check {
                seq,
                parsed,
                models,
                reply,
                queued,
                trace,
            } => {
                let wait_micros = queued.elapsed().as_micros() as u64;
                queue_wait.record(wait_micros);
                let line = txmm_obs::with_trace(trace.as_ref(), || {
                    match resolve_filter(&session, &models) {
                        Ok(filter) => {
                            let report = check_parsed(&mut session, &parsed, filter.as_deref());
                            stages.parse += report.stages.parse;
                            stages.convert += report.stages.convert;
                            stages.verdict += report.stages.verdict;
                            stages.observe += report.stages.observe;
                            // Queue wait is part of the request's wall
                            // time but not of any compute stage.
                            stages.other += report.stages.other + wait_micros;
                            served += 1;
                            jsonl_line(&Served::Report(report))
                        }
                        Err(e) => error_line(&e),
                    }
                });
                completed.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send((seq, line));
            }
            Job::Outcomes {
                seq,
                file,
                test,
                models,
                max_candidates,
                reply,
                queued,
                trace,
            } => {
                let wait_micros = queued.elapsed().as_micros() as u64;
                queue_wait.record(wait_micros);
                let line = txmm_obs::with_trace(trace.as_ref(), || {
                    match resolve_filter(&session, &models) {
                        Ok(filter) => {
                            let _span = txmm_obs::span!("serve.outcomes");
                            let s = match session.outcomes_capped(
                                &file,
                                &test,
                                filter.as_deref(),
                                max_candidates,
                            ) {
                                Ok(r) => {
                                    served += 1;
                                    ServedOutcomes::Report(r)
                                }
                                Err(e) => ServedOutcomes::Failure(TestFailure { file, error: e }),
                            };
                            outcomes_jsonl_line(&s)
                        }
                        Err(e) => error_line(&e),
                    }
                });
                stages.other += wait_micros;
                completed.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send((seq, line));
            }
            Job::Reload { sources, reply } => {
                let mut reloaded = Vec::with_capacity(sources.len());
                let mut result = Ok(());
                for (name, src) in sources.iter() {
                    match session.reload_cat_source(name, src) {
                        Ok(_) => reloaded.push(name.clone()),
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                completed.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(result.map(|()| reloaded));
            }
            Job::Stats { reply } => {
                let walk = match session.walk_progress() {
                    Some(p) => {
                        let s = p.snapshot();
                        WalkSnapshot {
                            work_done: s.done,
                            work_total: s.total,
                            subtrees: s.subtrees,
                            candidates: s.candidates,
                            classes: s.classes,
                        }
                    }
                    None => WalkSnapshot::default(),
                };
                let _ = reply.send(ShardSnapshot {
                    shard,
                    served,
                    depth: 0, // filled in by the pool from its counters
                    session: session.stats(),
                    stages,
                    walk,
                });
            }
        }
    }
}

impl SessionPool {
    /// Build the shard Sessions (surfacing `.cat` registration errors
    /// synchronously) and start one worker thread per shard.
    pub fn new(cfg: &PoolConfig) -> Result<SessionPool, String> {
        let n = cfg.shard_count();
        let mut shards = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        let mut models = Vec::new();
        for i in 0..n {
            let mut session = build_session(cfg)?;
            // Each shard accumulates its own walk progress; the global
            // registry sums the per-shard series, so a `metrics` scrape
            // sees pool-wide walk counters while `stats` breaks them
            // out per shard.
            session.set_walk_progress(Some(Arc::new(txmm_obs::WalkProgress::new())));
            if i == 0 {
                models = session
                    .models()
                    .map(|m| {
                        let m = session.model(m);
                        (m.name().to_string(), m.arch().name().to_string(), m.is_tm())
                    })
                    .collect();
            }
            let (tx, rx) = mpsc::channel();
            let enqueued = Arc::new(AtomicU64::new(0));
            let completed = Arc::new(AtomicU64::new(0));
            let done = Arc::clone(&completed);
            let queue_wait = txmm_obs::global().histogram_with(
                "txmm_shard_queue_wait_microseconds",
                "Time a job waited on its shard channel before a worker picked it up.",
                &[("shard", &i.to_string())],
            );
            workers.push(thread::spawn(move || {
                worker(i, session, rx, done, queue_wait)
            }));
            shards.push(Shard {
                tx,
                enqueued,
                completed,
            });
        }
        Ok(SessionPool {
            shards,
            workers,
            failures: txmm_obs::global().counter(
                "txmm_dispatch_failures_total",
                "Requests that failed before or at a shard (parse errors, unknown models).",
            ),
            models,
            cat_files: cfg.cat_files.clone(),
            obs: PoolObs::new(),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// `(name, arch, is_tm)` for every registered model.
    pub fn models(&self) -> &[(String, String, bool)] {
        &self.models
    }

    /// Serve one litmus source; returns the response payload line.
    pub fn check(&self, file: &str, src: &str, models: Option<Vec<String>>) -> String {
        self.check_many(vec![(file.to_string(), src.to_string())], models)
            .pop()
            .expect("one response per request")
    }

    /// [`SessionPool::check`] with a client trace: spans from the
    /// handler-side parse/convert and the shard-side verdict/observe
    /// both land on `trace`.
    pub fn check_traced(
        &self,
        file: &str,
        src: &str,
        models: Option<Vec<String>>,
        trace: &Arc<txmm_obs::Trace>,
    ) -> String {
        self.check_many_traced(
            vec![(file.to_string(), src.to_string())],
            models,
            Some(trace),
        )
        .pop()
        .expect("one response per request")
    }

    /// Serve many litmus sources concurrently across the shards,
    /// returning one payload line per input, in input order.
    pub fn check_many(
        &self,
        items: Vec<(String, String)>,
        models: Option<Vec<String>>,
    ) -> Vec<String> {
        self.check_many_traced(items, models, None)
    }

    fn check_many_traced(
        &self,
        items: Vec<(String, String)>,
        models: Option<Vec<String>>,
        trace: Option<&Arc<txmm_obs::Trace>>,
    ) -> Vec<String> {
        let n = items.len();
        let mut out: Vec<Option<String>> = Vec::new();
        out.resize_with(n, || None);
        let (reply, replies) = mpsc::channel();
        let mut pending = 0usize;
        for (seq, (file, src)) in items.into_iter().enumerate() {
            // Parse/convert on this (handler) thread; only well-formed
            // executions travel to a shard.
            match txmm_obs::with_trace(trace, || parse_request(&file, &src)) {
                Err(f) => {
                    self.failures.inc();
                    out[seq] = Some(jsonl_line(&Served::Failure(f)));
                }
                Ok(parsed) => {
                    let shard = &self.shards
                        [(fnv1a(&canon_key(&parsed.exec)) as usize) % self.shards.len()];
                    let parsed = Box::new(parsed);
                    shard.enqueued.fetch_add(1, Ordering::Relaxed);
                    let job = Job::Check {
                        seq,
                        parsed,
                        models: models.clone(),
                        reply: reply.clone(),
                        queued: Instant::now(),
                        trace: trace.cloned(),
                    };
                    if shard.tx.send(job).is_err() {
                        out[seq] = Some(error_line("shard worker unavailable"));
                    } else {
                        pending += 1;
                    }
                }
            }
        }
        drop(reply);
        for (seq, line) in replies.iter().take(pending) {
            if line.starts_with("{\"error\"") {
                self.failures.inc();
            }
            out[seq] = Some(line);
        }
        out.into_iter()
            .map(|slot| slot.unwrap_or_else(|| error_line("shard worker died")))
            .collect()
    }

    /// Serve one litmus source through the outcome engine; returns the
    /// response payload line.
    pub fn outcomes(
        &self,
        file: &str,
        src: &str,
        models: Option<Vec<String>>,
        max_candidates: Option<u128>,
    ) -> String {
        self.outcomes_many(
            vec![(file.to_string(), src.to_string())],
            models,
            max_candidates,
        )
        .pop()
        .expect("one response per request")
    }

    /// [`SessionPool::outcomes`] with a client trace installed on both
    /// sides of the shard hop.
    pub fn outcomes_traced(
        &self,
        file: &str,
        src: &str,
        models: Option<Vec<String>>,
        max_candidates: Option<u128>,
        trace: &Arc<txmm_obs::Trace>,
    ) -> String {
        self.outcomes_many_traced(
            vec![(file.to_string(), src.to_string())],
            models,
            max_candidates,
            Some(trace),
        )
        .pop()
        .expect("one response per request")
    }

    /// Serve many litmus sources through the outcome engine,
    /// concurrently across the shards, one payload line per input in
    /// input order. Dispatch is keyed by a hash of the *program* key
    /// ([`txmm_litmus::program_key`]) — there is no pinned execution to
    /// key by — so repeats of a program (under any postcondition)
    /// always land on the shard holding its warm outcome table.
    pub fn outcomes_many(
        &self,
        items: Vec<(String, String)>,
        models: Option<Vec<String>>,
        max_candidates: Option<u128>,
    ) -> Vec<String> {
        self.outcomes_many_traced(items, models, max_candidates, None)
    }

    fn outcomes_many_traced(
        &self,
        items: Vec<(String, String)>,
        models: Option<Vec<String>>,
        max_candidates: Option<u128>,
        trace: Option<&Arc<txmm_obs::Trace>>,
    ) -> Vec<String> {
        let n = items.len();
        let mut out: Vec<Option<String>> = Vec::new();
        out.resize_with(n, || None);
        let (reply, replies) = mpsc::channel();
        let mut pending = 0usize;
        for (seq, (file, src)) in items.into_iter().enumerate() {
            match txmm_obs::with_trace(trace, || parse_outcomes_request(&file, &src)) {
                Err(f) => {
                    self.failures.inc();
                    out[seq] = Some(outcomes_jsonl_line(&ServedOutcomes::Failure(f)));
                }
                Ok(test) => {
                    let key = txmm_litmus::program_key(&test);
                    let shard = &self.shards[(fnv1a(&key) as usize) % self.shards.len()];
                    shard.enqueued.fetch_add(1, Ordering::Relaxed);
                    let job = Job::Outcomes {
                        seq,
                        file,
                        test: Box::new(test),
                        models: models.clone(),
                        max_candidates,
                        reply: reply.clone(),
                        queued: Instant::now(),
                        trace: trace.cloned(),
                    };
                    if shard.tx.send(job).is_err() {
                        out[seq] = Some(error_line("shard worker unavailable"));
                    } else {
                        pending += 1;
                    }
                }
            }
        }
        drop(reply);
        for (seq, line) in replies.iter().take(pending) {
            if line.contains("\"error\"") {
                self.failures.inc();
            }
            out[seq] = Some(line);
        }
        out.into_iter()
            .map(|slot| slot.unwrap_or_else(|| error_line("shard worker died")))
            .collect()
    }

    /// Hot-reload the pool's user `.cat` files into every shard: files
    /// are re-read and re-parsed once here (a parse failure aborts the
    /// reload with a structured error and leaves every shard serving
    /// the old models), then each shard replaces its registrations in
    /// place. Returns the reloaded model names.
    pub fn reload(&self) -> Result<Vec<String>, String> {
        let mut sources = Vec::with_capacity(self.cat_files.len());
        for path in &self.cat_files {
            let src =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("user-model")
                .to_string();
            // Validate before touching any shard.
            txmm_cat::parse(&src).map_err(|e| format!("{name}: {e}"))?;
            sources.push((name, src));
        }
        let sources = Arc::new(sources);
        let mut names = Vec::new();
        for shard in &self.shards {
            let (reply, rx) = mpsc::channel();
            shard.enqueued.fetch_add(1, Ordering::Relaxed);
            shard
                .tx
                .send(Job::Reload {
                    sources: Arc::clone(&sources),
                    reply,
                })
                .map_err(|_| "shard worker unavailable".to_string())?;
            names = rx
                .recv()
                .map_err(|_| "shard worker died during reload".to_string())??;
        }
        Ok(names)
    }

    /// Render the `reload` response line.
    pub fn reload_line(&self) -> String {
        match self.reload() {
            Ok(names) => {
                let list = names
                    .iter()
                    .map(|n| format!("\"{}\"", crate::serve::json_escape(n)))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"ok\":\"reload\",\"models\":[{list}],\"shards\":{}}}",
                    self.shards.len()
                )
            }
            Err(e) => format!(
                "{{\"error\":\"{}\",\"code\":\"reload\"}}",
                crate::serve::json_escape(&e)
            ),
        }
    }

    /// Snapshot every shard (in shard order) plus the dispatch-level
    /// failure count.
    pub fn stats(&self) -> (Vec<ShardSnapshot>, u64) {
        let mut out = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (reply, rx) = mpsc::channel();
            if shard.tx.send(Job::Stats { reply }).is_err() {
                continue;
            }
            if let Ok(mut snap) = rx.recv() {
                let enq = shard.enqueued.load(Ordering::Relaxed);
                let done = shard.completed.load(Ordering::Relaxed);
                snap.depth = enq.saturating_sub(done);
                out.push(snap);
            }
        }
        (out, self.failures.get())
    }

    /// Render the `stats` response line.
    pub fn stats_line(&self) -> String {
        let (shards, failures) = self.stats();
        let mut total = SessionStats::default();
        let mut stages = StageMicros::default();
        let mut served = 0u64;
        for s in &shards {
            served += s.served;
            total.interned += s.session.interned;
            total.verdict_hits += s.session.verdict_hits;
            total.verdict_misses += s.session.verdict_misses;
            total.observability_hits += s.session.observability_hits;
            total.observability_misses += s.session.observability_misses;
            total.outcome_hits += s.session.outcome_hits;
            total.outcome_misses += s.session.outcome_misses;
            total.outcome_entries += s.session.outcome_entries;
            total.outcome_candidates += s.session.outcome_candidates;
            total.outcome_classes += s.session.outcome_classes;
            total.compile_hits += s.session.compile_hits;
            total.compile_misses += s.session.compile_misses;
            total.compile_entries += s.session.compile_entries;
            total.compile_micros += s.session.compile_micros;
            total.prune_subtrees_cut += s.session.prune_subtrees_cut;
            total.prune_candidates_skipped += s.session.prune_candidates_skipped;
            total.prune_oracle_calls += s.session.prune_oracle_calls;
            total.prune_oracle_micros += s.session.prune_oracle_micros;
            total.prune_delta_answers += s.session.prune_delta_answers;
            total.prune_fallbacks += s.session.prune_fallbacks;
            total.prune_batches += s.session.prune_batches;
            total.prune_batched_placements += s.session.prune_batched_placements;
            stages.parse += s.stages.parse;
            stages.convert += s.stages.convert;
            stages.verdict += s.stages.verdict;
            stages.observe += s.stages.observe;
            stages.other += s.stages.other;
        }
        let rate = |hits: u64, misses: u64| -> String {
            let total = hits + misses;
            if total == 0 {
                "null".to_string()
            } else {
                format!("{:.4}", hits as f64 / total as f64)
            }
        };
        let per_shard = shards
            .iter()
            .map(|s| {
                format!(
                    "{{\"shard\":{},\"served\":{},\"depth\":{},\"interned\":{},\
                     \"verdict_hits\":{},\"verdict_misses\":{},\"outcome_entries\":{},\
                     \"outcome_hits\":{},\"outcome_misses\":{},\"compile_hits\":{},\
                     \"compile_misses\":{},\"compile_entries\":{},\"compile_micros\":{},\
                     \"prune_subtrees_cut\":{},\"prune_candidates_skipped\":{},\
                     \"prune_oracle_calls\":{},\"prune_oracle_micros\":{},\
                     \"prune_delta_answers\":{},\"prune_fallbacks\":{},\
                     \"prune_batches\":{},\"prune_batched_placements\":{},\
                     \"walk\":{{\"work_done\":{},\"work_total\":{},\"subtrees\":{},\
                     \"candidates\":{},\"classes\":{}}}}}",
                    s.shard,
                    s.served,
                    s.depth,
                    s.session.interned,
                    s.session.verdict_hits,
                    s.session.verdict_misses,
                    s.session.outcome_entries,
                    s.session.outcome_hits,
                    s.session.outcome_misses,
                    s.session.compile_hits,
                    s.session.compile_misses,
                    s.session.compile_entries,
                    s.session.compile_micros,
                    s.session.prune_subtrees_cut,
                    s.session.prune_candidates_skipped,
                    s.session.prune_oracle_calls,
                    s.session.prune_oracle_micros,
                    s.session.prune_delta_answers,
                    s.session.prune_fallbacks,
                    s.session.prune_batches,
                    s.session.prune_batched_placements,
                    s.walk.work_done,
                    s.walk.work_total,
                    s.walk.subtrees,
                    s.walk.candidates,
                    s.walk.classes
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let slowest = self
            .obs
            .slowest
            .snapshot()
            .iter()
            .map(|e| {
                let trace_id = match &e.trace_id {
                    Some(t) => format!("\"{}\"", crate::serve::json_escape(t)),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"what\":\"{}\",\"micros\":{},\"trace_id\":{trace_id}}}",
                    crate::serve::json_escape(&e.what),
                    e.micros
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"shards\":{},\"served\":{served},\"failures\":{failures},\
             \"interned\":{},\"verdict_hits\":{},\"verdict_misses\":{},\
             \"verdict_hit_rate\":{},\"observability_hits\":{},\
             \"observability_misses\":{},\"observability_hit_rate\":{},\
             \"outcome_entries\":{},\"outcome_hits\":{},\"outcome_misses\":{},\
             \"outcome_hit_rate\":{},\"outcome_candidates\":{},\"outcome_classes\":{},\
             \"compile_hits\":{},\"compile_misses\":{},\"compile_hit_rate\":{},\
             \"compile_entries\":{},\"compile_micros\":{},\
             \"prune_subtrees_cut\":{},\"prune_candidates_skipped\":{},\
             \"prune_oracle_calls\":{},\"prune_oracle_micros\":{},\
             \"prune_delta_answers\":{},\"prune_fallbacks\":{},\
             \"prune_batches\":{},\"prune_batched_placements\":{},\
             \"stage_micros\":{{\"parse\":{},\"convert\":{},\"verdict\":{},\
             \"observe\":{},\"other\":{}}},\"slowest\":[{slowest}],\
             \"per_shard\":[{per_shard}]}}",
            self.shards.len(),
            total.interned,
            total.verdict_hits,
            total.verdict_misses,
            rate(total.verdict_hits, total.verdict_misses),
            total.observability_hits,
            total.observability_misses,
            rate(total.observability_hits, total.observability_misses),
            total.outcome_entries,
            total.outcome_hits,
            total.outcome_misses,
            rate(total.outcome_hits, total.outcome_misses),
            total.outcome_candidates,
            total.outcome_classes,
            total.compile_hits,
            total.compile_misses,
            rate(total.compile_hits, total.compile_misses),
            total.compile_entries,
            total.compile_micros,
            total.prune_subtrees_cut,
            total.prune_candidates_skipped,
            total.prune_oracle_calls,
            total.prune_oracle_micros,
            total.prune_delta_answers,
            total.prune_fallbacks,
            total.prune_batches,
            total.prune_batched_placements,
            stages.parse,
            stages.convert,
            stages.verdict,
            stages.observe,
            stages.other,
        )
    }

    /// Render the `models` response lines.
    pub fn model_lines(&self) -> Vec<String> {
        self.models
            .iter()
            .map(|(name, arch, tm)| {
                format!(
                    "{{\"model\":\"{}\",\"arch\":\"{}\",\"tm\":{tm}}}",
                    crate::serve::json_escape(name),
                    crate::serve::json_escape(arch)
                )
            })
            .collect()
    }

    /// Drain the shard channels and join the workers.
    pub fn shutdown(self) {
        drop(self.shards);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

// ---- The socket front-end ---------------------------------------------

/// Where the daemon listens: `host:port` TCP, or `unix:<path>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A TCP socket address (use port 0 for an ephemeral port).
    Tcp(String),
    /// A Unix-domain stream socket path.
    Unix(PathBuf),
}

impl ListenAddr {
    /// Parse a `--listen` argument.
    pub fn parse(s: &str) -> ListenAddr {
        match s.strip_prefix("unix:") {
            Some(path) => ListenAddr::Unix(PathBuf::from(path)),
            None => ListenAddr::Tcp(s.to_string()),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

/// One accepted client connection.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The serving daemon: a listener plus the shard pool.
pub struct Daemon {
    listener: Listener,
    pool: Arc<SessionPool>,
    stop: Arc<AtomicBool>,
    local_addr: String,
    /// Connection limit; `None` means unbounded (the seed behaviour:
    /// every connection gets a handler thread).
    max_conns: Option<usize>,
}

/// Decrements the live-connection gauge when a handler exits, however
/// it exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Daemon {
    /// Bind the listener (leaving the pool ready) without accepting
    /// yet. For `Tcp("127.0.0.1:0")` the ephemeral port is resolved
    /// here and visible through [`Daemon::local_addr`].
    pub fn bind(addr: &ListenAddr, pool: SessionPool) -> io::Result<Daemon> {
        let (listener, local_addr) = match addr {
            ListenAddr::Tcp(a) => {
                let l = TcpListener::bind(a)?;
                let local = l.local_addr()?.to_string();
                (Listener::Tcp(l), local)
            }
            #[cfg(unix)]
            ListenAddr::Unix(path) => {
                // A stale socket file from a dead daemon blocks bind —
                // but only remove it after probing that nothing
                // answers, so binding over a *live* daemon's socket
                // fails instead of silently stealing its address.
                if path.exists() {
                    if std::os::unix::net::UnixStream::connect(path).is_ok() {
                        return Err(io::Error::new(
                            io::ErrorKind::AddrInUse,
                            format!("a daemon is already listening on {}", path.display()),
                        ));
                    }
                    let _ = std::fs::remove_file(path);
                }
                let l = std::os::unix::net::UnixListener::bind(path)?;
                (Listener::Unix(l), format!("unix:{}", path.display()))
            }
            #[cfg(not(unix))]
            ListenAddr::Unix(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ))
            }
        };
        Ok(Daemon {
            listener,
            pool: Arc::new(pool),
            stop: Arc::new(AtomicBool::new(false)),
            local_addr,
            max_conns: None,
        })
    }

    /// Limit concurrent connections: connections past the limit are
    /// answered with one structured [`crate::protocol::busy_line`]
    /// frame and closed instead of getting a handler thread, which
    /// back-pressures clients while in-flight requests keep their
    /// resources. `0` means unbounded.
    pub fn with_max_conns(mut self, max_conns: usize) -> Daemon {
        self.max_conns = (max_conns > 0).then_some(max_conns);
        self
    }

    /// The bound address (`ip:port`, or `unix:<path>`).
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// Accept and serve clients until a `shutdown` request, then drain
    /// in-flight connections and tear the pool down.
    pub fn run(self) -> io::Result<()> {
        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(true)?,
        }
        let handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let live_conns = Arc::new(AtomicUsize::new(0));
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let accepted = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                #[cfg(unix)]
                Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            match accepted {
                Ok(mut conn) => {
                    // Connection limit: refuse past the cap with one
                    // structured busy frame instead of spawning a
                    // handler, so a connection flood cannot exhaust
                    // threads and in-flight clients keep their shards.
                    if let Some(max) = self.max_conns {
                        if live_conns.load(Ordering::SeqCst) >= max {
                            let frame = format!("{}\n\n", crate::protocol::busy_line(max));
                            let _ = conn.write_all(frame.as_bytes());
                            let _ = conn.flush();
                            continue;
                        }
                    }
                    live_conns.fetch_add(1, Ordering::SeqCst);
                    let guard = ConnGuard(Arc::clone(&live_conns));
                    let pool = Arc::clone(&self.pool);
                    let stop = Arc::clone(&self.stop);
                    let mut handlers = handlers.lock().unwrap();
                    // Reap finished handlers as new connections arrive,
                    // so a long-lived daemon doesn't accumulate one
                    // joinable thread per connection ever accepted.
                    let (done, live): (Vec<_>, Vec<_>) = std::mem::take(&mut *handlers)
                        .into_iter()
                        .partition(|h| h.is_finished());
                    *handlers = live;
                    for h in done {
                        let _ = h.join();
                    }
                    handlers.push(thread::spawn(move || {
                        let _guard = guard;
                        handle_client(conn, &pool, &stop)
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: finish every accepted connection, then stop the pool.
        let handlers = std::mem::take(&mut *handlers.lock().unwrap());
        for h in handlers {
            let _ = h.join();
        }
        if let Ok(pool) = Arc::try_unwrap(self.pool) {
            pool.shutdown();
        }
        #[cfg(unix)]
        if let Listener::Unix(_) = &self.listener {
            if let Some(path) = self.local_addr.strip_prefix("unix:") {
                let _ = std::fs::remove_file(path);
            }
        }
        Ok(())
    }
}

/// `(cmd, what, trace_id)` used for request-level observability: the
/// command's metric labels, a human label for the slowest-requests
/// ring, and the client trace ID if one was sent.
fn request_meta(req: &Request) -> (&'static str, String, Option<String>) {
    match req {
        Request::Check { file, trace, .. } => ("check", format!("check {file}"), trace.clone()),
        Request::Batch { dir, .. } => ("batch", format!("batch {dir}"), None),
        Request::Outcomes { file, trace, .. } => {
            ("outcomes", format!("outcomes {file}"), trace.clone())
        }
        Request::OutcomesBatch { dir, .. } => ("outcomes_batch", format!("outcomes {dir}"), None),
        Request::Reload => ("reload", "reload".to_string(), None),
        Request::Models => ("models", "models".to_string(), None),
        Request::Stats => ("stats", "stats".to_string(), None),
        Request::Metrics { .. } => ("metrics", "metrics".to_string(), None),
        Request::Shutdown => ("shutdown", "shutdown".to_string(), None),
    }
}

/// Answer one request with its response lines (without the blank-line
/// terminator); `true` in the second slot means shutdown was requested.
fn answer(pool: &SessionPool, req: Request) -> (Vec<String>, bool) {
    match req {
        Request::Check {
            file,
            src,
            models,
            trace,
        } => {
            let line = match &trace {
                // The trace echo (`trace_id` + span timeline) goes on
                // every traced response, error lines included; untraced
                // responses stay byte-identical to one-shot serving.
                Some(id) => {
                    let tr = txmm_obs::Trace::new(id);
                    let line = pool.check_traced(&file, &src, models, &tr);
                    crate::serve::attach_trace(&line, &tr)
                }
                None => pool.check(&file, &src, models),
            };
            (vec![line], false)
        }
        Request::Batch { dir, models } => {
            let files = match collect_litmus_files(std::path::Path::new(&dir)) {
                Ok(fs) => fs,
                Err(e) => return (vec![error_line(&format!("cannot read {dir}: {e}"))], false),
            };
            if files.is_empty() {
                return (
                    vec![error_line(&format!("no .litmus files in {dir}"))],
                    false,
                );
            }
            let mut items = Vec::with_capacity(files.len());
            let mut out: Vec<Option<String>> = Vec::new();
            out.resize_with(files.len(), || None);
            let mut indices = Vec::new();
            for (i, path) in files.iter().enumerate() {
                let file = path.display().to_string();
                match std::fs::read_to_string(path) {
                    Ok(src) => {
                        indices.push(i);
                        items.push((file, src));
                    }
                    Err(e) => {
                        out[i] = Some(jsonl_line(&Served::Failure(crate::serve::TestFailure {
                            file,
                            error: e.to_string(),
                        })));
                    }
                }
            }
            for (i, line) in indices.into_iter().zip(pool.check_many(items, models)) {
                out[i] = Some(line);
            }
            (
                out.into_iter()
                    .map(|slot| slot.expect("every file answered"))
                    .collect(),
                false,
            )
        }
        Request::Outcomes {
            file,
            src,
            models,
            max_candidates,
            trace,
        } => {
            let line = match &trace {
                Some(id) => {
                    let tr = txmm_obs::Trace::new(id);
                    let line = pool.outcomes_traced(&file, &src, models, max_candidates, &tr);
                    crate::serve::attach_trace(&line, &tr)
                }
                None => pool.outcomes(&file, &src, models, max_candidates),
            };
            (vec![line], false)
        }
        Request::OutcomesBatch {
            dir,
            models,
            max_candidates,
        } => {
            let files = match collect_litmus_files(std::path::Path::new(&dir)) {
                Ok(fs) => fs,
                Err(e) => return (vec![error_line(&format!("cannot read {dir}: {e}"))], false),
            };
            if files.is_empty() {
                return (
                    vec![error_line(&format!("no .litmus files in {dir}"))],
                    false,
                );
            }
            let mut items = Vec::with_capacity(files.len());
            let mut out: Vec<Option<String>> = Vec::new();
            out.resize_with(files.len(), || None);
            let mut indices = Vec::new();
            for (i, path) in files.iter().enumerate() {
                let file = path.display().to_string();
                match std::fs::read_to_string(path) {
                    Ok(src) => {
                        indices.push(i);
                        items.push((file, src));
                    }
                    Err(e) => {
                        out[i] = Some(outcomes_jsonl_line(&ServedOutcomes::Failure(TestFailure {
                            file,
                            error: e.to_string(),
                        })));
                    }
                }
            }
            for (i, line) in
                indices
                    .into_iter()
                    .zip(pool.outcomes_many(items, models, max_candidates))
            {
                out[i] = Some(line);
            }
            (
                out.into_iter()
                    .map(|slot| slot.expect("every file answered"))
                    .collect(),
                false,
            )
        }
        Request::Reload => (vec![pool.reload_line()], false),
        Request::Models => (pool.model_lines(), false),
        Request::Stats => (vec![pool.stats_line()], false),
        Request::Metrics { prom } => {
            let lines = if prom {
                // Prometheus exposition is multi-line; ship each line of
                // the page in the frame (none are blank, so the frame
                // terminator stays unambiguous).
                txmm_obs::global()
                    .render_prom()
                    .lines()
                    .filter(|l| !l.trim().is_empty())
                    .map(str::to_string)
                    .collect()
            } else {
                vec![txmm_obs::global().render_json()]
            };
            (lines, false)
        }
        Request::Shutdown => (vec!["{\"ok\":\"shutdown\"}".to_string()], true),
    }
}

/// Serve one connection: request lines in, framed responses out.
fn handle_client(mut conn: Conn, pool: &SessionPool, stop: &AtomicBool) {
    // A finite read timeout lets an idle connection notice shutdown
    // instead of pinning the drain phase forever.
    let _ = conn.set_read_timeout(Some(Duration::from_millis(250)));
    /// Longest accepted request line; a client streaming more without a
    /// newline is answered with an error and disconnected rather than
    /// growing the buffer without bound.
    const MAX_LINE: usize = 16 << 20;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Process every complete line already buffered. A shutdown
        // requested on another connection cuts this one off between
        // requests, so drain only waits for in-flight work.
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let line: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line[..nl]);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let started = Instant::now();
            let (lines, shutdown) = match Request::parse(line) {
                Ok(req) => {
                    let (cmd, what, trace_id) = request_meta(&req);
                    let result = answer(pool, req);
                    pool.obs.observe(
                        cmd,
                        &what,
                        trace_id.as_deref(),
                        started.elapsed().as_micros() as u64,
                    );
                    result
                }
                Err(e) => {
                    pool.obs.observe(
                        "error",
                        "malformed request",
                        None,
                        started.elapsed().as_micros() as u64,
                    );
                    (vec![error_line(&e.to_string())], false)
                }
            };
            let mut response = String::new();
            for l in &lines {
                response.push_str(l);
                response.push('\n');
            }
            response.push('\n');
            if conn.write_all(response.as_bytes()).is_err() || conn.flush().is_err() {
                return;
            }
            if shutdown {
                stop.store(true, Ordering::SeqCst);
                return;
            }
        }
        if buf.len() > MAX_LINE {
            let msg = format!("{}\n\n", error_line("request line too long"));
            let _ = conn.write_all(msg.as_bytes());
            return;
        }
        match conn.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::serve_source;

    fn small_corpus() -> Vec<(String, String)> {
        crate::corpus::generate(3)
            .into_iter()
            .take(12)
            .map(|(name, src)| (format!("{name}.litmus"), src))
            .collect()
    }

    #[test]
    fn pool_matches_one_shot_serving_bytes() {
        let corpus = small_corpus();
        let pool = SessionPool::new(&PoolConfig {
            shards: 3,
            ..PoolConfig::default()
        })
        .unwrap();
        let pooled = pool.check_many(corpus.clone(), None);
        let mut session = Session::new();
        for ((file, src), line) in corpus.iter().zip(&pooled) {
            let expect = jsonl_line(&serve_source(&mut session, file, src, None));
            assert_eq!(line, &expect, "{file}");
        }
        pool.shutdown();
    }

    #[test]
    fn repeated_checks_hit_the_same_shard_cache() {
        let corpus = small_corpus();
        let pool = SessionPool::new(&PoolConfig {
            shards: 4,
            ..PoolConfig::default()
        })
        .unwrap();
        let cold = pool.check_many(corpus.clone(), None);
        let (snaps, _) = pool.stats();
        let cold_misses: u64 = snaps.iter().map(|s| s.session.verdict_misses).sum();
        let warm = pool.check_many(corpus, None);
        assert_eq!(cold, warm, "warm answers byte-identical");
        let (snaps, failures) = pool.stats();
        let warm_misses: u64 = snaps.iter().map(|s| s.session.verdict_misses).sum();
        assert_eq!(cold_misses, warm_misses, "warm pass computes nothing");
        assert_eq!(failures, 0);
        assert!(snaps.iter().all(|s| s.depth == 0));
        pool.shutdown();
    }

    #[test]
    fn unknown_model_and_bad_source_are_error_lines() {
        let pool = SessionPool::new(&PoolConfig {
            shards: 1,
            ..PoolConfig::default()
        })
        .unwrap();
        let (file, src) = small_corpus().remove(0);
        let line = pool.check(&file, &src, Some(vec!["no-such".into()]));
        assert!(line.contains("\"error\""), "{line}");
        let bad = pool.check("bad.litmus", "t (Marvel)\n", None);
        assert!(
            bad.starts_with("{\"file\":\"bad.litmus\",\"error\""),
            "{bad}"
        );
        let (_, failures) = pool.stats();
        assert_eq!(failures, 2);
        pool.shutdown();
    }

    #[test]
    fn stats_line_shape() {
        let pool = SessionPool::new(&PoolConfig {
            shards: 2,
            ..PoolConfig::default()
        })
        .unwrap();
        let corpus = small_corpus();
        let _ = pool.check_many(corpus.clone(), None);
        let _ = pool.check_many(corpus, None);
        let line = pool.stats_line();
        assert!(line.contains("\"shards\":2"), "{line}");
        // The warm pass at least doubles the hits, so the rate is a
        // real number (not the no-traffic `null`).
        assert!(line.contains("\"verdict_hit_rate\":0."), "{line}");
        assert!(line.contains("\"stage_micros\":{\"parse\":"), "{line}");
        assert!(line.contains("\"per_shard\":[{\"shard\":0,"), "{line}");
        assert!(crate::protocol::parse_json(&line).is_ok(), "{line}");
        pool.shutdown();
    }

    #[test]
    fn model_lines_cover_the_registry() {
        let pool = SessionPool::new(&PoolConfig {
            shards: 1,
            with_cat: true,
            ..PoolConfig::default()
        })
        .unwrap();
        let lines = pool.model_lines();
        assert!(lines.iter().any(|l| l.contains("\"model\":\"x86-tm\"")));
        assert!(lines.iter().any(|l| l.contains("\"model\":\"x86-tm.cat\"")));
        pool.shutdown();
    }
}
