//! The `txmm` command-line front-end: batch litmus serving on top of a
//! long-lived [`Session`], one-shot or as a socket daemon over the
//! sharded Session pool.
//!
//! ```text
//! txmm models                        list every registered model
//! txmm gen <dir> [--events N]        write a litmus corpus (catalog +
//!                                    synthesised Forbid/Allow tests)
//! txmm serve <dir|file...> [opts]    answer verdicts + observability
//!                                    as JSONL, one line per test
//! txmm outcomes <dir|file...> [opts] enumerate every candidate
//!                                    execution per program and answer
//!                                    the per-model allowed final-state
//!                                    table as JSONL
//! txmm serve --listen <addr> [opts]  run the txmm-serverd daemon on a
//!                                    TCP (host:port) or unix:<path>
//!                                    socket; --shards N sets the pool,
//!                                    --max-conns N caps concurrent
//!                                    connections (busy error past it)
//! txmm check <file...> [opts]        alias for serve
//! txmm client <addr> <request>       talk to a running daemon:
//!                                    check <file> | batch <dir> |
//!                                    outcomes <file|dir> | reload |
//!                                    models | stats | metrics |
//!                                    shutdown
//!
//! serve/check options:
//!   --model NAME   restrict verdicts to NAME (repeatable)
//!   --cat FILE     register a user-supplied .cat model (repeatable)
//!   --with-cat     also register the shipped .cat twins (<name>.cat)
//!   --warm         serve the corpus twice and report cold-vs-warm
//!                  timing (the analysis-cache speedup) on stderr
//!   --prom         dump the process metrics registry as Prometheus
//!                  text exposition on stderr after the run
//!
//! outcomes options (also accepted by `client ... outcomes`):
//!   --max-candidates N  raise (or lower) the candidate-count refusal
//!                       threshold from its default of 65536
//!
//! telemetry options (gen and outcomes):
//!   --progress[=SECS]     emit one JSONL progress frame per interval
//!                         (default 1s) on stderr: fraction done,
//!                         candidates/sec, ETA, per-worker utilisation
//!   --progress-file FILE  write the frames to FILE instead of stderr
//!   --metrics-listen ADDR serve the live metrics registry on a TCP
//!                         socket speaking the daemon's metrics frame,
//!                         so `txmm client ADDR metrics` scrapes a
//!                         one-shot run mid-walk
//!
//! client options:
//!   --trace ID     (check/outcomes) ask the daemon to echo ID back
//!                  with a per-stage span timeline on the response
//!   --prom         (metrics) fetch Prometheus text exposition instead
//!                  of the one-line JSON dump
//!   --watch SECS   (metrics) re-poll on an interval, reconnecting each
//!                  round, until the target goes away
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use txmm::daemon::{Daemon, ListenAddr, PoolConfig, SessionPool};
use txmm::protocol::Request;
use txmm::serve::{collect_litmus_files, jsonl_line, serve_file, Served};
use txmm::session::{ModelRef, Session};

fn usage() -> ExitCode {
    eprintln!(
        "usage: txmm <command>\n\
         \n\
         commands:\n\
         \u{20} models                        list registered models\n\
         \u{20} gen <dir> [--events N]        generate a litmus corpus\n\
         \u{20} serve <dir|file...> [opts]    serve verdicts as JSONL\n\
         \u{20} serve --listen <addr> [opts]  run the socket daemon\n\
         \u{20} outcomes <dir|file...> [opts] serve allowed-outcome tables\n\
         \u{20} check <file...> [opts]        alias for serve\n\
         \u{20} client <addr> <request>       query a running daemon\n\
         \n\
         serve options: --model NAME, --cat FILE, --with-cat, --warm, --prom,\n\
         \u{20}               --listen ADDR, --shards N, --max-conns N\n\
         outcomes options: serve options plus --workers N, --max-candidates N\n\
         \u{20} --workers N parallelises the pruned abort-split walk and class\n\
         \u{20} checking over N work-stealing threads (1 = fully sequential)\n\
         telemetry (gen/outcomes): --progress[=SECS] heartbeat JSONL frames on\n\
         \u{20} stderr, --progress-file FILE to redirect them, --metrics-listen\n\
         \u{20} ADDR to scrape live metrics from the one-shot process\n\
         client requests: check <file>, batch <dir>, outcomes <file|dir>,\n\
         \u{20}                reload, models, stats, metrics [--prom], shutdown\n\
         client options: --trace ID (check/outcomes span timeline),\n\
         \u{20}               --watch SECS (re-poll metrics on an interval)"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("models") => cmd_models(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("serve") | Some("check") => cmd_serve(&args[1..]),
        Some("outcomes") => cmd_outcomes(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        _ => usage(),
    }
}

fn cmd_models(args: &[String]) -> ExitCode {
    let mut session = Session::with_shipped_cat();
    for path in flag_values(args, "--cat") {
        if let Err(e) = session.register_cat_file(&PathBuf::from(path)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    for m in session.models().collect::<Vec<_>>() {
        let model = session.model(m);
        println!(
            "{:<14} arch={:<6} tm={}",
            model.name(),
            model.arch().name(),
            model.is_tm()
        );
    }
    ExitCode::SUCCESS
}

/// Positional (non-flag) arguments: skips `--flag value` pairs for the
/// value-taking flags and bare `--flags` entirely.
fn positionals(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--model" | "--cat" | "--events" | "--listen" | "--shards" | "--max-conns"
            | "--workers" | "--max-candidates" | "--trace" | "--progress-file"
            | "--metrics-listen" | "--watch" => i += 2,
            a if a.starts_with("--") => i += 1,
            a => {
                out.push(a);
                i += 1;
            }
        }
    }
    out
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let Some(&dir) = positionals(args).first() else {
        eprintln!(
            "usage: txmm gen <dir> [--events N] [--progress[=SECS]] [--progress-file FILE] \
             [--metrics-listen ADDR]"
        );
        return ExitCode::FAILURE;
    };
    let events: usize = flag_values(args, "--events")
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let dir = PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let telemetry = match parse_telemetry(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut session = Session::new();
    if let Some(t) = &telemetry {
        session.set_walk_progress(Some(t.progress.clone()));
    }
    let corpus = txmm::corpus::generate_on(&session, events);
    if let Some(t) = telemetry {
        t.finish();
    }
    for (i, (name, text)) in corpus.iter().enumerate() {
        let path = dir.join(format!("{i:02}-{name}.litmus"));
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!("wrote {} litmus files to {}", corpus.len(), dir.display());
    ExitCode::SUCCESS
}

/// Walk telemetry requested on the command line: the shared progress
/// accumulator plus the optional heartbeat reporter and metrics
/// sidecar it feeds. `None` when no telemetry flag was given, so the
/// default paths carry zero overhead.
struct Telemetry {
    progress: std::sync::Arc<txmm::obs::WalkProgress>,
    reporter: Option<txmm::obs::Reporter>,
    sidecar: Option<txmm::obs::MetricsSidecar>,
}

impl Telemetry {
    /// Stop the heartbeat (emitting the final frame, totals now equal
    /// the walk's returned counts) and close the sidecar listener.
    fn finish(self) {
        if let Some(r) = self.reporter {
            r.finish();
        }
        drop(self.sidecar);
    }
}

/// Parse `--progress[=SECS]`, `--progress-file FILE` and
/// `--metrics-listen ADDR`. Progress frames and sidecar announcements
/// go to stderr (or the file), never stdout: JSONL output stays
/// byte-identical with telemetry on.
fn parse_telemetry(args: &[String]) -> Result<Option<Telemetry>, String> {
    let mut interval: Option<f64> = None;
    for a in args {
        if a == "--progress" {
            interval = Some(1.0);
        } else if let Some(v) = a.strip_prefix("--progress=") {
            match v.parse::<f64>() {
                Ok(secs) if secs > 0.0 => interval = Some(secs),
                _ => {
                    return Err(format!(
                        "--progress={v}: expected a positive number of seconds"
                    ))
                }
            }
        }
    }
    let file = flag_values(args, "--progress-file")
        .last()
        .map(PathBuf::from);
    let listen = flag_values(args, "--metrics-listen").last().copied();
    if interval.is_none() && file.is_none() && listen.is_none() {
        return Ok(None);
    }
    txmm::obs::publish_process_info();
    let progress = std::sync::Arc::new(txmm::obs::WalkProgress::new());
    let sidecar = match listen {
        Some(addr) => {
            let s = txmm::obs::serve_metrics(addr)
                .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
            eprintln!("metrics sidecar listening on {}", s.addr());
            Some(s)
        }
        None => None,
    };
    // A sidecar alone still wants the walk counters ticking, but only
    // an explicit --progress[-file] starts the heartbeat thread.
    let reporter = if interval.is_some() || file.is_some() {
        let sink = match file {
            Some(p) => txmm::obs::ProgressSink::File(p),
            None => txmm::obs::ProgressSink::Stderr,
        };
        let iv = std::time::Duration::from_secs_f64(interval.unwrap_or(1.0));
        Some(
            txmm::obs::Reporter::start(progress.clone(), iv, sink)
                .map_err(|e| format!("cannot start progress reporter: {e}"))?,
        )
    } else {
        None
    };
    Ok(Some(Telemetry {
        progress,
        reporter,
        sidecar,
    }))
}

fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            if let Some(v) = it.next() {
                out.push(v.as_str());
            }
        }
    }
    out
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parse `--max-candidates N` into an enumeration cap; `None` when the
/// flag is absent (keep the session default of 2^16).
fn parse_max_candidates(args: &[String]) -> Result<Option<u128>, String> {
    match flag_values(args, "--max-candidates").last() {
        None => Ok(None),
        Some(v) => match v.parse::<u128>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!(
                "--max-candidates must be a positive integer, got {v:?}"
            )),
        },
    }
}

/// Daemon mode: `txmm serve --listen <addr>`.
fn cmd_serve_daemon(args: &[String], listen: &str) -> ExitCode {
    let shards: usize = flag_values(args, "--shards")
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let cfg = PoolConfig {
        shards,
        with_cat: has_flag(args, "--with-cat"),
        cat_files: flag_values(args, "--cat")
            .iter()
            .map(PathBuf::from)
            .collect(),
    };
    let pool = match SessionPool::new(&cfg) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let shards = pool.shard_count();
    let max_conns: usize = flag_values(args, "--max-conns")
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let daemon = match Daemon::bind(&ListenAddr::parse(listen), pool) {
        Ok(d) => d.with_max_conns(max_conns),
        Err(e) => {
            eprintln!("error: cannot listen on {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "txmm-serverd listening on {} ({} shards)",
        daemon.local_addr(),
        shards
    );
    match daemon.run() {
        Ok(()) => {
            eprintln!("txmm-serverd: clean shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Connect to a daemon at `addr` (`host:port` or `unix:<path>`).
fn connect(addr: &str) -> std::io::Result<Box<dyn ReadWrite>> {
    #[cfg(unix)]
    if let Some(path) = addr.strip_prefix("unix:") {
        return Ok(Box::new(std::os::unix::net::UnixStream::connect(path)?));
    }
    Ok(Box::new(std::net::TcpStream::connect(addr)?))
}

trait ReadWrite: Read + Write {}
impl<T: Read + Write> ReadWrite for T {}

fn cmd_client(args: &[String]) -> ExitCode {
    let pos = positionals(args);
    let (addr, what, arg) = match pos.as_slice() {
        [addr, what] => (*addr, *what, None),
        [addr, what, arg] => (*addr, *what, Some(*arg)),
        _ => {
            eprintln!(
                "usage: txmm client <addr> check <file> | batch <dir> | models | stats | \
                 metrics [--prom] | shutdown [--model NAME] [--trace ID]"
            );
            return ExitCode::FAILURE;
        }
    };
    let trace = flag_values(args, "--trace").last().map(|s| s.to_string());
    let model_names = flag_values(args, "--model");
    let models = if model_names.is_empty() {
        None
    } else {
        Some(model_names.iter().map(|s| s.to_string()).collect())
    };
    let max_candidates = match parse_max_candidates(args) {
        Ok(cap) => cap,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let request = match (what, arg) {
        ("check", Some(file)) => {
            let src = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            Request::Check {
                file: file.to_string(),
                src,
                models,
                trace,
            }
        }
        ("batch", Some(dir)) => Request::Batch {
            dir: dir.to_string(),
            models,
        },
        // A directory asks the server to batch over it; a file ships
        // its source inline.
        ("outcomes", Some(path)) if std::path::Path::new(path).is_dir() => Request::OutcomesBatch {
            dir: path.to_string(),
            models,
            max_candidates,
        },
        ("outcomes", Some(file)) => {
            let src = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            Request::Outcomes {
                file: file.to_string(),
                src,
                models,
                max_candidates,
                trace,
            }
        }
        ("reload", None) => Request::Reload,
        ("models", None) => Request::Models,
        ("stats", None) => Request::Stats,
        ("metrics", None) => Request::Metrics {
            prom: has_flag(args, "--prom"),
        },
        ("shutdown", None) => Request::Shutdown,
        _ => {
            eprintln!("error: unknown client request {what} {arg:?}");
            return ExitCode::FAILURE;
        }
    };
    // `metrics --watch SECS` polls on an interval, reconnecting each
    // round (one-shot sidecars and daemons alike serve one frame per
    // connection), until the target goes away or the user interrupts.
    let watch = flag_values(args, "--watch")
        .last()
        .map(|s| s.parse::<f64>());
    let watch = match watch {
        None => None,
        Some(Ok(secs)) if secs > 0.0 => Some(secs),
        Some(_) => {
            eprintln!("error: --watch expects a positive number of seconds");
            return ExitCode::FAILURE;
        }
    };
    if let Some(secs) = watch {
        if !matches!(request, Request::Metrics { .. }) {
            eprintln!("error: --watch only applies to the metrics request");
            return ExitCode::FAILURE;
        }
        use std::io::IsTerminal;
        let clear = std::io::stdout().is_terminal();
        loop {
            if clear {
                // Clear between frames, watch(1)-style, when
                // interactive; piped output stays plain JSONL.
                print!("\x1b[2J\x1b[H");
            }
            match client_round_trip(addr, &request) {
                Ok(_) => {}
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            let _ = std::io::Write::flush(&mut std::io::stdout());
            std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        }
    }
    match client_round_trip(addr, &request) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(failures) => {
            eprintln!("{failures} error responses");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One request/response frame against a daemon or metrics sidecar:
/// connect, send, print response lines up to the blank terminator.
/// Returns how many of them were error responses.
fn client_round_trip(addr: &str, request: &Request) -> Result<usize, String> {
    let stream = connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut stream = BufReader::new(stream);
    stream
        .get_mut()
        .write_all(format!("{}\n", request.to_line()).as_bytes())
        .map_err(|_| format!("cannot send request to {addr}"))?;
    let mut failures = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        match stream.read_line(&mut line) {
            Ok(0) => break, // server closed
            Ok(_) => {
                let l = line.trim_end_matches('\n');
                if l.is_empty() {
                    break; // frame terminator
                }
                if l.starts_with("{\"error\"") || l.contains("\"error\":") {
                    failures += 1;
                }
                println!("{l}");
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(failures)
}

/// One-shot outcome serving: `txmm outcomes <dir|file...>` — the
/// program-level twin of `cmd_serve`, enumerating every candidate
/// execution per test and printing the per-model allowed-outcome table,
/// one JSONL line per test (byte-identical to the daemon's `outcomes`
/// answers over the same tests).
fn cmd_outcomes(args: &[String]) -> ExitCode {
    use txmm::serve::{outcomes_jsonl_line, serve_outcomes_file, ServedOutcomes};

    let paths: Vec<PathBuf> = positionals(args).into_iter().map(PathBuf::from).collect();
    if paths.is_empty() {
        eprintln!(
            "usage: txmm outcomes <dir|file...> [--model NAME] [--cat FILE] [--with-cat] \
             [--warm] [--workers N] [--max-candidates N]"
        );
        return ExitCode::FAILURE;
    }

    let mut session = if has_flag(args, "--with-cat") {
        Session::with_shipped_cat()
    } else {
        Session::new()
    };
    let workers: usize = flag_values(args, "--workers")
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1)
        });
    session.set_outcome_workers(workers);
    match parse_max_candidates(args) {
        Ok(Some(cap)) => session.set_max_candidates(cap),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    for path in flag_values(args, "--cat") {
        if let Err(e) = session.register_cat_file(&PathBuf::from(path)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let model_names = flag_values(args, "--model");
    let filter: Option<Vec<ModelRef>> = if model_names.is_empty() {
        None
    } else {
        let mut ms = Vec::new();
        for name in model_names {
            match session.resolve(name) {
                Some(m) => ms.push(m),
                None => {
                    eprintln!("error: unknown model {name} (try `txmm models`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        Some(ms)
    };

    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        if p.is_dir() {
            match collect_litmus_files(&p) {
                Ok(fs) => files.extend(fs),
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", p.display());
                    return ExitCode::FAILURE;
                }
            }
        } else {
            files.push(p);
        }
    }
    if files.is_empty() {
        eprintln!("error: no .litmus files found");
        return ExitCode::FAILURE;
    }

    let telemetry = match parse_telemetry(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(t) = &telemetry {
        session.set_walk_progress(Some(t.progress.clone()));
    }

    let mut failures = 0usize;
    let mut pass = |session: &mut Session, print: bool| -> u128 {
        let mut serving = 0u128;
        for f in &files {
            let start = Instant::now();
            let served = serve_outcomes_file(session, f, filter.as_deref());
            serving += start.elapsed().as_micros();
            if print {
                if matches!(served, ServedOutcomes::Failure(_)) {
                    failures += 1;
                }
                println!("{}", outcomes_jsonl_line(&served));
            }
        }
        serving
    };

    let cold = pass(&mut session, true);
    if let Some(t) = telemetry {
        t.finish();
    }
    let s = session.stats();
    if has_flag(args, "--warm") {
        let warm = pass(&mut session, false);
        let s = session.stats();
        eprintln!(
            "served {} outcome tables: cold {}us, warm {}us ({:.1}x speedup); \
             {} candidates in {} classes, {} outcome entries, \
             {} outcome hits / {} misses",
            files.len(),
            cold,
            warm,
            cold as f64 / warm.max(1) as f64,
            s.outcome_candidates,
            s.outcome_classes,
            s.outcome_entries,
            s.outcome_hits,
            s.outcome_misses,
        );
    } else {
        eprintln!(
            "served {} outcome tables in {}us; {} candidates in {} classes \
             ({} outcome entries)",
            files.len(),
            cold,
            s.outcome_candidates,
            s.outcome_classes,
            s.outcome_entries,
        );
    }
    if has_flag(args, "--prom") {
        eprint!("{}", txmm::obs::global().render_prom());
    }
    if failures > 0 {
        eprintln!("{failures} tests failed to serve");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_serve(args: &[String]) -> ExitCode {
    if let Some(listen) = flag_values(args, "--listen").first() {
        return cmd_serve_daemon(args, listen);
    }
    // Positional arguments are directories or litmus files.
    let paths: Vec<PathBuf> = positionals(args).into_iter().map(PathBuf::from).collect();
    if paths.is_empty() {
        eprintln!(
            "usage: txmm serve <dir|file...> [--model NAME] [--cat FILE] [--with-cat] [--warm]\n\
             \u{20}      txmm serve --listen <addr> [--shards N] [--max-conns N] [--cat FILE] [--with-cat]"
        );
        return ExitCode::FAILURE;
    }

    let mut session = if has_flag(args, "--with-cat") {
        Session::with_shipped_cat()
    } else {
        Session::new()
    };
    for path in flag_values(args, "--cat") {
        if let Err(e) = session.register_cat_file(&PathBuf::from(path)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let model_names = flag_values(args, "--model");
    let filter: Option<Vec<ModelRef>> = if model_names.is_empty() {
        None
    } else {
        let mut ms = Vec::new();
        for name in model_names {
            match session.resolve(name) {
                Some(m) => ms.push(m),
                None => {
                    eprintln!("error: unknown model {name} (try `txmm models`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        Some(ms)
    };

    // Expand directories into their .litmus files.
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        if p.is_dir() {
            match collect_litmus_files(&p) {
                Ok(fs) => files.extend(fs),
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", p.display());
                    return ExitCode::FAILURE;
                }
            }
        } else {
            files.push(p);
        }
    }
    if files.is_empty() {
        eprintln!("error: no .litmus files found");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    // Each pass times ONLY the serving work (parse, convert, check,
    // observe) so the cold/warm comparison measures the caches, not
    // JSONL formatting or stdout throughput; a --warm rerun serves the
    // same files, so failures are counted in the first pass only.
    let mut pass = |session: &mut Session, print: bool| -> u128 {
        let mut serving = 0u128;
        for f in &files {
            let start = Instant::now();
            let served = serve_file(session, f, filter.as_deref());
            serving += start.elapsed().as_micros();
            if print {
                if matches!(served, Served::Failure(_)) {
                    failures += 1;
                }
                println!("{}", jsonl_line(&served));
            }
        }
        serving
    };

    let cold = pass(&mut session, true);
    if has_flag(args, "--warm") {
        let warm = pass(&mut session, false);
        let s = session.stats();
        eprintln!(
            "served {} tests: cold {}us, warm {}us ({:.1}x speedup); \
             {} interned, {} verdict hits / {} misses",
            files.len(),
            cold,
            warm,
            cold as f64 / warm.max(1) as f64,
            s.interned,
            s.verdict_hits,
            s.verdict_misses,
        );
    } else {
        let s = session.stats();
        eprintln!(
            "served {} tests in {}us; {} interned, {} verdict hits / {} misses",
            files.len(),
            cold,
            s.interned,
            s.verdict_hits,
            s.verdict_misses,
        );
    }
    if has_flag(args, "--prom") {
        eprint!("{}", txmm::obs::global().render_prom());
    }
    if failures > 0 {
        eprintln!("{failures} tests failed to serve");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
