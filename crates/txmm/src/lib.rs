//! # txmm — transactions + weak memory in x86, Power, ARMv8 and C++
//!
//! A Rust reproduction of *"The Semantics of Transactions and Weak
//! Memory in x86, Power, ARM, and C++"* (Chong, Sorensen, Wickerson):
//! axiomatic memory models extended with transactions, a
//! Memalloy-style synthesiser for conformance tests, operational
//! hardware simulators standing in for the paper's test machines, and
//! the metatheory toolkit (monotonicity, compilation, lock elision).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `txmm-core` | executions, relations, builder |
//! | [`models`] | `txmm-models` | SC/TSC, x86, Power, ARMv8, C++ (+TM) |
//! | [`cat`] | `txmm-cat` | the `.cat` DSL and shipped model sources |
//! | [`litmus`] | `txmm-litmus` | execution → litmus test, renderers |
//! | [`hwsim`] | `txmm-hwsim` | x86/ARMv8/Power simulators + oracle |
//! | [`synth`] | `txmm-synth` | Forbid/Allow synthesis (Table 1, Fig. 7) |
//! | [`verify`] | `txmm-verify` | metatheory (Table 2) |
//! | [`obs`] | `txmm-obs` | metrics registry, request spans, Prometheus |
//!
//! ## Quick start
//!
//! ```
//! use txmm::prelude::*;
//!
//! // Example 1.1: the ARMv8 lock-elision bug. The concrete execution
//! // is consistent under the transactional ARMv8 model...
//! let buggy = txmm::models::catalog::armv8_elision(false);
//! assert!(Armv8::tm().consistent(&buggy));
//!
//! // ...and the DMB repair forbids it.
//! let fixed = txmm::models::catalog::armv8_elision(true);
//! assert!(!Armv8::tm().consistent(&fixed));
//! ```

pub use txmm_cat as cat;
pub use txmm_core as core;
pub use txmm_hwsim as hwsim;
pub use txmm_litmus as litmus;
pub use txmm_models as models;
pub use txmm_obs as obs;
pub use txmm_synth as synth;
pub use txmm_verify as verify;

pub mod corpus;
pub mod daemon;
pub mod outcomes;
pub mod protocol;
pub mod serve;
pub mod session;

pub use daemon::{Daemon, ListenAddr, PoolConfig, SessionPool, ShardSnapshot, WalkSnapshot};
pub use outcomes::{
    normalise_outcome, simulator_for, unsound_sim_outcomes, ModelOutcomes, OutcomeReport,
};
pub use protocol::Request;
pub use serve::{
    check_parsed, collect_litmus_files, jsonl_line, parse_request, serve_file, serve_source,
    ParsedTest, Served, StageMicros, TestFailure, TestReport,
};
pub use session::{ModelRef, Session, SessionStats};

/// Everything most programs need.
pub mod prelude {
    pub use crate::serve::{serve_file, serve_source, Served};
    pub use crate::session::{ModelRef, Session, SessionStats};
    pub use txmm_core::prelude::*;
    pub use txmm_hwsim::{ArmSim, Oracle, PowerSim, Simulator, TsoSim};
    pub use txmm_litmus::{execution_from_litmus, litmus_from_execution, LitmusTest};
    pub use txmm_models::prelude::*;
    pub use txmm_synth::{synthesise, EnumConfig};
    pub use txmm_verify::{
        check_compilation, check_lock_elision, check_monotonicity, ElisionTarget,
    };
}
