//! Batch litmus serving: answer model verdicts and hardware-oracle
//! observability for whole directories of litmus files from one
//! long-lived [`Session`], streaming results as JSONL.
//!
//! One line per test:
//!
//! ```json
//! {"file":"01-sb.litmus","name":"sb","arch":"x86","events":4,
//!  "verdicts":{"SC":{"consistent":false,"violations":["Order"]},
//!              "x86":{"consistent":true,"violations":[]}},
//!  "observable":true,"cached":false,"micros":123}
//! ```
//!
//! Failures (unreadable file, parse error, test not identifying a
//! well-formed execution) keep the stream going:
//!
//! ```json
//! {"file":"broken.litmus","error":"litmus parse error on line 3: ..."}
//! ```

use std::path::{Path, PathBuf};
use std::time::Instant;

use txmm_litmus::{execution_from_litmus, parse_litmus};
use txmm_models::{Arch, Verdict};

use crate::session::{ModelRef, Session};

/// The served result for one litmus file.
pub struct TestReport {
    /// File name (as given).
    pub file: String,
    /// Test name from the header line.
    pub name: String,
    /// Architecture from the header line.
    pub arch: Arch,
    /// Event count of the reconstructed execution.
    pub events: usize,
    /// Per-model verdicts, in registry order.
    pub verdicts: Vec<(String, Verdict)>,
    /// Hardware-simulator observability (`None` when no simulator
    /// exists for the architecture).
    pub observable: Option<bool>,
    /// Was the execution already interned when this test arrived?
    pub cached: bool,
    /// Wall-clock serving time for this test, in microseconds.
    pub micros: u128,
}

/// A test that could not be served, with the failing stage's message.
pub struct TestFailure {
    /// File name (as given).
    pub file: String,
    /// What went wrong.
    pub error: String,
}

/// One line of the JSONL stream.
pub enum Served {
    /// The test was answered.
    Report(TestReport),
    /// The test could not be served.
    Failure(TestFailure),
}

/// Serve one litmus source text.
pub fn serve_source(
    session: &mut Session,
    file: &str,
    src: &str,
    models: Option<&[ModelRef]>,
) -> Served {
    let start = Instant::now();
    let t = match parse_litmus(src) {
        Ok(t) => t,
        Err(e) => {
            return Served::Failure(TestFailure {
                file: file.to_string(),
                error: e.to_string(),
            })
        }
    };
    let x = match execution_from_litmus(&t) {
        Ok(x) => x,
        Err(e) => {
            return Served::Failure(TestFailure {
                file: file.to_string(),
                error: e.to_string(),
            })
        }
    };
    let interned_before = session.stats().interned;
    // Selected (or all) models share one analysis for their cache
    // misses inside verdicts_for.
    let verdicts: Vec<(String, Verdict)> = match models {
        Some(ms) => session.verdicts_for(&x, ms),
        None => session.verdicts(&x),
    }
    .into_iter()
    .map(|(m, v)| (session.model(m).name().to_string(), v))
    .collect();
    let cached = session.stats().interned == interned_before;
    let observable = session.observable(&x, t.arch);
    Served::Report(TestReport {
        file: file.to_string(),
        name: t.name.clone(),
        arch: t.arch,
        events: x.len(),
        verdicts,
        observable,
        cached,
        micros: start.elapsed().as_micros(),
    })
}

/// Serve one litmus file from disk.
pub fn serve_file(session: &mut Session, path: &Path, models: Option<&[ModelRef]>) -> Served {
    let file = path.display().to_string();
    match std::fs::read_to_string(path) {
        Ok(src) => serve_source(session, &file, &src, models),
        Err(e) => Served::Failure(TestFailure {
            file,
            error: e.to_string(),
        }),
    }
}

/// The `.litmus` files directly inside a directory, sorted by name.
pub fn collect_litmus_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "litmus"))
        .collect();
    files.sort();
    Ok(files)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render one served result as a JSONL line (no trailing newline).
pub fn jsonl_line(served: &Served) -> String {
    match served {
        Served::Failure(f) => format!(
            "{{\"file\":\"{}\",\"error\":\"{}\"}}",
            json_escape(&f.file),
            json_escape(&f.error)
        ),
        Served::Report(r) => {
            let verdicts = r
                .verdicts
                .iter()
                .map(|(name, v)| {
                    let violations = v
                        .violations()
                        .iter()
                        .map(|a| format!("\"{}\"", json_escape(a)))
                        .collect::<Vec<_>>()
                        .join(",");
                    format!(
                        "\"{}\":{{\"consistent\":{},\"violations\":[{}]}}",
                        json_escape(name),
                        v.is_consistent(),
                        violations
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            let observable = match r.observable {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"file\":\"{}\",\"name\":\"{}\",\"arch\":\"{}\",\"events\":{},\
                 \"verdicts\":{{{}}},\"observable\":{},\"cached\":{},\"micros\":{}}}",
                json_escape(&r.file),
                json_escape(&r.name),
                json_escape(r.arch.name()),
                r.events,
                verdicts,
                observable,
                r.cached,
                r.micros
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_litmus::litmus_from_execution;
    use txmm_litmus::render::pseudocode;
    use txmm_models::catalog;

    fn sb_source() -> String {
        let t = litmus_from_execution("sb", &catalog::sb(None, false, false), Arch::X86);
        pseudocode(&t)
    }

    #[test]
    fn serves_generated_source() {
        let mut s = Session::new();
        let served = serve_source(&mut s, "sb.litmus", &sb_source(), None);
        let Served::Report(r) = served else {
            panic!("sb must serve");
        };
        assert_eq!(r.name, "sb");
        assert_eq!(r.arch, Arch::X86);
        assert_eq!(r.events, 4);
        assert!(!r.cached);
        assert_eq!(r.observable, Some(true));
        let sc = r.verdicts.iter().find(|(n, _)| n == "SC").unwrap();
        assert!(!sc.1.is_consistent());
        let x86 = r.verdicts.iter().find(|(n, _)| n == "x86").unwrap();
        assert!(x86.1.is_consistent());
        // Second serving of the same test hits the cache.
        let Served::Report(r2) = serve_source(&mut s, "sb.litmus", &sb_source(), None) else {
            panic!("sb must serve twice");
        };
        assert!(r2.cached);
        assert_eq!(r.verdicts.len(), r2.verdicts.len());
    }

    #[test]
    fn failure_lines_keep_streaming() {
        let mut s = Session::new();
        let served = serve_source(&mut s, "bad.litmus", "t (Marvel)\n", None);
        let Served::Failure(f) = served else {
            panic!("must fail");
        };
        assert!(f.error.contains("unknown architecture"));
        let line = jsonl_line(&Served::Failure(f));
        assert!(line.starts_with("{\"file\":\"bad.litmus\",\"error\":"));
    }

    #[test]
    fn jsonl_shape() {
        let mut s = Session::new();
        let served = serve_source(&mut s, "sb.litmus", &sb_source(), None);
        let line = jsonl_line(&served);
        assert!(line.contains("\"name\":\"sb\""));
        assert!(line.contains("\"arch\":\"x86\""));
        assert!(line.contains("\"observable\":true"));
        assert!(line.contains("\"verdicts\":{"));
        assert!(line.contains("\"SC\":{\"consistent\":false"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn model_filter_restricts_verdicts() {
        let mut s = Session::new();
        let filter = [s.resolve("SC").unwrap(), s.resolve("TSC").unwrap()];
        let served = serve_source(&mut s, "sb.litmus", &sb_source(), Some(&filter));
        let Served::Report(r) = served else {
            panic!("serves")
        };
        assert_eq!(r.verdicts.len(), 2);
        assert_eq!(r.verdicts[0].0, "SC");
    }
}
