//! Batch litmus serving: answer model verdicts and hardware-oracle
//! observability for whole directories of litmus files from one
//! long-lived [`Session`], streaming results as JSONL.
//!
//! One line per test (deterministic — timing and cache metadata live in
//! [`TestReport`] and the daemon's `stats` answer, not on the data
//! line, so repeated and concurrently-served runs are byte-identical):
//!
//! ```json
//! {"file":"01-sb.litmus","name":"sb","arch":"x86","events":4,
//!  "verdicts":{"SC":{"consistent":false,"violations":["Order"]},
//!              "x86":{"consistent":true,"violations":[]}},
//!  "observable":true}
//! ```
//!
//! Failures (unreadable file, parse error, test not identifying a
//! well-formed execution) keep the stream going:
//!
//! ```json
//! {"file":"broken.litmus","error":"litmus parse error on line 3: ..."}
//! ```
//!
//! Serving one test is a four-stage pipeline — *parse* (litmus text →
//! AST), *convert* (AST → pinned candidate execution), *verdict*
//! (cached model checking) and *observe* (cached hardware simulation) —
//! and the stages are exposed separately ([`parse_request`] /
//! [`check_parsed`]) so the socket daemon can run parse/convert on
//! connection-handler threads and dispatch the execution to a Session
//! shard. Each stage is timed on its own; under the sharded pool the
//! parse/convert clock and the verdict/observe clock tick on different
//! threads, and a whole-call wall clock would double-count queueing.

use std::path::{Path, PathBuf};
use std::time::Instant;

use txmm_core::Execution;
use txmm_hwsim::Outcome;
use txmm_litmus::{execution_from_litmus, parse_litmus, LitmusTest};
use txmm_models::{Arch, Verdict};

use crate::outcomes::OutcomeReport;
use crate::session::{ModelRef, Session};

/// Per-stage serving times for one test, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageMicros {
    /// Litmus text → AST.
    pub parse: u64,
    /// AST → pinned candidate execution.
    pub convert: u64,
    /// Model checking (including verdict-cache lookups).
    pub verdict: u64,
    /// Hardware-simulator observability (including its cache lookups).
    pub observe: u64,
    /// Everything between the named stages: report assembly, stats
    /// snapshots, and (under the daemon) shard queue wait. Kept
    /// explicit so the stages always sum to the recorded end-to-end
    /// time instead of silently under-reporting.
    pub other: u64,
}

impl StageMicros {
    /// Total serving time across every stage, `other` included.
    pub fn total(&self) -> u64 {
        self.parse + self.convert + self.verdict + self.observe + self.other
    }

    /// Attribute the gap between an end-to-end measurement and the
    /// already-recorded stages to `other`, restoring the invariant
    /// `total() == end_to_end` (saturating: a shorter measurement —
    /// clock skew across threads — adds nothing).
    pub fn absorb_gap(&mut self, end_to_end: u64) {
        self.other += end_to_end.saturating_sub(self.total());
    }
}

/// A litmus test parsed and converted, ready for the checking stages.
/// This is the value the daemon ships from connection handlers to
/// Session shards.
pub struct ParsedTest {
    /// File name (as given).
    pub file: String,
    /// Test name from the header line.
    pub name: String,
    /// Architecture from the header line.
    pub arch: Arch,
    /// The candidate execution the test pins down.
    pub exec: Execution,
    /// Parse-stage time, in microseconds.
    pub parse_micros: u64,
    /// Convert-stage time, in microseconds.
    pub convert_micros: u64,
    /// Unattributed time inside the parse/convert call (error
    /// handling, struct assembly) — flows into [`StageMicros::other`].
    pub other_micros: u64,
}

/// The served result for one litmus file.
pub struct TestReport {
    /// File name (as given).
    pub file: String,
    /// Test name from the header line.
    pub name: String,
    /// Architecture from the header line.
    pub arch: Arch,
    /// Event count of the reconstructed execution.
    pub events: usize,
    /// Per-model verdicts, in registry order.
    pub verdicts: Vec<(String, Verdict)>,
    /// Hardware-simulator observability (`None` when no simulator
    /// exists for the architecture).
    pub observable: Option<bool>,
    /// Did every requested verdict come from the verdict cache? (The
    /// stage-accurate meaning of "warm": no model was re-checked,
    /// regardless of which shard or pass interned the execution.)
    pub cached: bool,
    /// Per-stage serving times.
    pub stages: StageMicros,
}

impl TestReport {
    /// Total serving time across all stages, in microseconds.
    pub fn micros(&self) -> u64 {
        self.stages.total()
    }
}

/// A test that could not be served, with the failing stage's message.
#[derive(Debug, Clone)]
pub struct TestFailure {
    /// File name (as given).
    pub file: String,
    /// What went wrong.
    pub error: String,
}

/// One line of the JSONL stream.
pub enum Served {
    /// The test was answered.
    Report(TestReport),
    /// The test could not be served.
    Failure(TestFailure),
}

/// The parse and convert stages: litmus text → pinned candidate
/// execution, each stage timed separately.
pub fn parse_request(file: &str, src: &str) -> Result<ParsedTest, TestFailure> {
    let whole = Instant::now();
    let span = txmm_obs::span!("serve.parse");
    let t = match parse_litmus(src) {
        Ok(t) => t,
        Err(e) => {
            return Err(TestFailure {
                file: file.to_string(),
                error: e.to_string(),
            })
        }
    };
    let parse_micros = span.finish();
    let span = txmm_obs::span!("serve.convert");
    let x = match execution_from_litmus(&t) {
        Ok(x) => x,
        Err(e) => {
            return Err(TestFailure {
                file: file.to_string(),
                error: e.to_string(),
            })
        }
    };
    let convert_micros = span.finish();
    Ok(ParsedTest {
        file: file.to_string(),
        name: t.name,
        arch: t.arch,
        exec: x,
        parse_micros,
        convert_micros,
        other_micros: (whole.elapsed().as_micros() as u64)
            .saturating_sub(parse_micros + convert_micros),
    })
}

/// The verdict and observe stages against one [`Session`] (or Session
/// shard). `cached` is derived from the verdict-miss delta of exactly
/// this call, so it stays accurate when many tests interleave on a
/// shared pool.
pub fn check_parsed(
    session: &mut Session,
    t: &ParsedTest,
    models: Option<&[ModelRef]>,
) -> TestReport {
    let whole = Instant::now();
    let misses_before = session.stats().verdict_misses;
    let span = txmm_obs::span!("serve.verdict");
    // Selected (or all) models share one analysis for their cache
    // misses inside verdicts_for.
    let verdicts: Vec<(String, Verdict)> = match models {
        Some(ms) => session.verdicts_for(&t.exec, ms),
        None => session.verdicts(&t.exec),
    }
    .into_iter()
    .map(|(m, v)| (session.model(m).name().to_string(), v))
    .collect();
    let cached = session.stats().verdict_misses == misses_before;
    let verdict_micros = span.finish();
    let span = txmm_obs::span!("serve.observe");
    let observable = session.observable(&t.exec, t.arch);
    let observe_micros = span.finish();
    let mut stages = StageMicros {
        parse: t.parse_micros,
        convert: t.convert_micros,
        verdict: verdict_micros,
        observe: observe_micros,
        other: t.other_micros,
    };
    stages.other +=
        (whole.elapsed().as_micros() as u64).saturating_sub(verdict_micros + observe_micros);
    TestReport {
        file: t.file.clone(),
        name: t.name.clone(),
        arch: t.arch,
        events: t.exec.len(),
        verdicts,
        observable,
        cached,
        stages,
    }
}

/// Serve one litmus source text: all four stages on the caller's
/// thread.
pub fn serve_source(
    session: &mut Session,
    file: &str,
    src: &str,
    models: Option<&[ModelRef]>,
) -> Served {
    let whole = Instant::now();
    match parse_request(file, src) {
        Ok(t) => {
            let mut r = check_parsed(session, &t, models);
            // The stages each self-account their own wall time; the
            // residual glue between the two calls lands in `other`, so
            // r.micros() equals this function's end-to-end time.
            r.stages.absorb_gap(whole.elapsed().as_micros() as u64);
            Served::Report(r)
        }
        Err(f) => Served::Failure(f),
    }
}

/// Serve one litmus file from disk.
pub fn serve_file(session: &mut Session, path: &Path, models: Option<&[ModelRef]>) -> Served {
    let file = path.display().to_string();
    match std::fs::read_to_string(path) {
        Ok(src) => serve_source(session, &file, &src, models),
        Err(e) => Served::Failure(TestFailure {
            file,
            error: e.to_string(),
        }),
    }
}

/// The `.litmus` files directly inside a directory, sorted by name.
pub fn collect_litmus_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "litmus"))
        .collect();
    files.sort();
    Ok(files)
}

/// Escape a string for embedding in a JSON literal (shared with the
/// daemon's wire protocol).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render one served result as a JSONL line (no trailing newline).
pub fn jsonl_line(served: &Served) -> String {
    match served {
        Served::Failure(f) => format!(
            "{{\"file\":\"{}\",\"error\":\"{}\"}}",
            json_escape(&f.file),
            json_escape(&f.error)
        ),
        Served::Report(r) => {
            let verdicts = r
                .verdicts
                .iter()
                .map(|(name, v)| {
                    let violations = v
                        .violations()
                        .iter()
                        .map(|a| format!("\"{}\"", json_escape(a)))
                        .collect::<Vec<_>>()
                        .join(",");
                    format!(
                        "\"{}\":{{\"consistent\":{},\"violations\":[{}]}}",
                        json_escape(name),
                        v.is_consistent(),
                        violations
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            let observable = match r.observable {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"file\":\"{}\",\"name\":\"{}\",\"arch\":\"{}\",\"events\":{},\
                 \"verdicts\":{{{}}},\"observable\":{}}}",
                json_escape(&r.file),
                json_escape(&r.name),
                json_escape(r.arch.name()),
                r.events,
                verdicts,
                observable
            )
        }
    }
}

/// Splice a trace echo — `trace_id`, the recorded span timeline, and a
/// drop counter when the timeline overflowed — into an already-rendered
/// JSONL object line, just before its closing brace. Data lines stay
/// byte-identical unless the client explicitly sent a `trace_id`, so
/// the daemon's determinism guarantees are untouched for everyone else.
pub fn attach_trace(line: &str, trace: &txmm_obs::Trace) -> String {
    let Some(head) = line.strip_suffix('}') else {
        return line.to_string();
    };
    let (spans, dropped) = trace.snapshot();
    let spans = spans
        .iter()
        .map(|s| {
            format!(
                "{{\"span\":\"{}\",\"start_micros\":{},\"micros\":{}}}",
                json_escape(s.name),
                s.start_micros,
                s.micros
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let mut out = format!(
        "{head},\"trace_id\":\"{}\",\"spans\":[{spans}]",
        json_escape(trace.id())
    );
    if dropped > 0 {
        out.push_str(&format!(",\"spans_dropped\":{dropped}"));
    }
    out.push('}');
    out
}

// ---- Outcome serving ---------------------------------------------------

/// One line of the outcome JSONL stream (the `outcomes` twin of
/// [`Served`]).
pub enum ServedOutcomes {
    /// The program was enumerated and checked.
    Report(OutcomeReport),
    /// The test could not be served (parse error, oversized candidate
    /// space, unknown model).
    Failure(TestFailure),
}

/// Parse a litmus source for the outcome engine. Unlike
/// [`parse_request`] this does **not** reconstruct a pinned execution —
/// the outcome engine answers programs whose postcondition pins
/// nothing (or is absent entirely).
pub fn parse_outcomes_request(file: &str, src: &str) -> Result<LitmusTest, TestFailure> {
    parse_litmus(src).map_err(|e| TestFailure {
        file: file.to_string(),
        error: e.to_string(),
    })
}

/// Serve one litmus source through the outcome engine.
pub fn serve_outcomes_source(
    session: &mut Session,
    file: &str,
    src: &str,
    models: Option<&[ModelRef]>,
) -> ServedOutcomes {
    let t = match parse_outcomes_request(file, src) {
        Ok(t) => t,
        Err(f) => return ServedOutcomes::Failure(f),
    };
    match session.outcomes(file, &t, models) {
        Ok(r) => ServedOutcomes::Report(r),
        Err(e) => ServedOutcomes::Failure(TestFailure {
            file: file.to_string(),
            error: e,
        }),
    }
}

/// Serve one litmus file from disk through the outcome engine.
pub fn serve_outcomes_file(
    session: &mut Session,
    path: &Path,
    models: Option<&[ModelRef]>,
) -> ServedOutcomes {
    let file = path.display().to_string();
    match std::fs::read_to_string(path) {
        Ok(src) => serve_outcomes_source(session, &file, &src, models),
        Err(e) => ServedOutcomes::Failure(TestFailure {
            file,
            error: e.to_string(),
        }),
    }
}

/// Render one final state as a compact JSON object: register files,
/// memory (trailing zeros trimmed), and — only when present —
/// transaction commit flags and multi-write coherence orders.
fn outcome_json(o: &Outcome) -> String {
    let regs = o
        .regs
        .iter()
        .map(|r| {
            format!(
                "[{}]",
                r.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let mem_len = o
        .memory
        .iter()
        .rposition(|&v| v != 0)
        .map(|i| i + 1)
        .unwrap_or(0);
    let mem = o.memory[..mem_len]
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut out = format!("{{\"regs\":[{regs}],\"mem\":[{mem}]");
    if !o.txn_ok.is_empty() {
        let ok = o
            .txn_ok
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(",\"ok\":[{ok}]"));
    }
    let co: Vec<String> = o
        .co_order
        .iter()
        .enumerate()
        .filter(|(_, vs)| vs.len() >= 2)
        .map(|(l, vs)| {
            format!(
                "\"{l}\":[{}]",
                vs.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
            )
        })
        .collect();
    if !co.is_empty() {
        out.push_str(&format!(",\"co\":{{{}}}", co.join(",")));
    }
    out.push('}');
    out
}

/// Render one outcome-engine result as a JSONL line (no trailing
/// newline) — deterministic, so daemon `outcomes` answers are
/// byte-identical to one-shot `txmm outcomes` over the same tests.
pub fn outcomes_jsonl_line(served: &ServedOutcomes) -> String {
    match served {
        ServedOutcomes::Failure(f) => format!(
            "{{\"file\":\"{}\",\"error\":\"{}\"}}",
            json_escape(&f.file),
            json_escape(&f.error)
        ),
        ServedOutcomes::Report(r) => {
            let models = r
                .per_model
                .iter()
                .map(|m| {
                    let post = match m.post_allowed {
                        Some(true) => "\"allowed\"",
                        Some(false) => "\"forbidden\"",
                        None => "null",
                    };
                    let outcomes = m
                        .allowed
                        .iter()
                        .map(outcome_json)
                        .collect::<Vec<_>>()
                        .join(",");
                    format!(
                        "\"{}\":{{\"post\":{post},\"outcomes\":[{outcomes}]}}",
                        json_escape(&m.model)
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"file\":\"{}\",\"name\":\"{}\",\"arch\":\"{}\",\"events\":{},\
                 \"txns\":{},\"candidates\":{},\"classes\":{},\"models\":{{{models}}}}}",
                json_escape(&r.file),
                json_escape(&r.name),
                json_escape(r.arch.name()),
                r.events,
                r.txns,
                r.candidates,
                r.classes,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_litmus::litmus_from_execution;
    use txmm_litmus::render::pseudocode;
    use txmm_models::catalog;

    fn sb_source() -> String {
        let t = litmus_from_execution("sb", &catalog::sb(None, false, false), Arch::X86);
        pseudocode(&t)
    }

    #[test]
    fn serves_generated_source() {
        let mut s = Session::new();
        let served = serve_source(&mut s, "sb.litmus", &sb_source(), None);
        let Served::Report(r) = served else {
            panic!("sb must serve");
        };
        assert_eq!(r.name, "sb");
        assert_eq!(r.arch, Arch::X86);
        assert_eq!(r.events, 4);
        assert!(!r.cached);
        assert_eq!(r.observable, Some(true));
        let sc = r.verdicts.iter().find(|(n, _)| n == "SC").unwrap();
        assert!(!sc.1.is_consistent());
        let x86 = r.verdicts.iter().find(|(n, _)| n == "x86").unwrap();
        assert!(x86.1.is_consistent());
        // Second serving of the same test hits the cache.
        let Served::Report(r2) = serve_source(&mut s, "sb.litmus", &sb_source(), None) else {
            panic!("sb must serve twice");
        };
        assert!(r2.cached);
        assert_eq!(r.verdicts.len(), r2.verdicts.len());
    }

    #[test]
    fn stage_timings_cover_the_whole_serve() {
        let mut s = Session::new();
        let t = parse_request("sb.litmus", &sb_source()).expect("parses");
        let r = check_parsed(&mut s, &t, None);
        assert_eq!(r.stages.parse, t.parse_micros);
        assert_eq!(r.stages.convert, t.convert_micros);
        assert_eq!(
            r.micros(),
            r.stages.parse
                + r.stages.convert
                + r.stages.verdict
                + r.stages.observe
                + r.stages.other
        );
        // `cached` is per-call: checking the same parsed test again on
        // the same session is a pure cache hit.
        let r2 = check_parsed(&mut s, &t, None);
        assert!(!r.cached);
        assert!(r2.cached);
    }

    #[test]
    fn absorb_gap_makes_stages_sum_to_end_to_end() {
        let mut st = StageMicros {
            parse: 10,
            convert: 5,
            verdict: 20,
            observe: 5,
            other: 2,
        };
        st.absorb_gap(50);
        assert_eq!(st.other, 10);
        assert_eq!(st.total(), 50);
        // A shorter (cross-thread-skewed) measurement adds nothing.
        st.absorb_gap(40);
        assert_eq!(st.total(), 50);
    }

    #[test]
    fn attach_trace_splices_the_span_timeline() {
        let mut s = Session::new();
        let trace = txmm_obs::Trace::new("abc-123");
        let served = txmm_obs::with_trace(Some(&trace), || {
            serve_source(&mut s, "sb.litmus", &sb_source(), None)
        });
        let plain = jsonl_line(&served);
        let traced = attach_trace(&plain, &trace);
        assert!(
            traced.starts_with(plain.strip_suffix('}').unwrap()),
            "{traced}"
        );
        assert!(traced.contains("\"trace_id\":\"abc-123\""), "{traced}");
        assert!(traced.contains("\"span\":\"serve.parse\""), "{traced}");
        assert!(traced.contains("\"span\":\"serve.verdict\""), "{traced}");
        assert!(traced.contains("\"span\":\"serve.observe\""), "{traced}");
        assert!(traced.ends_with('}') && !traced.contains('\n'), "{traced}");
        assert!(crate::protocol::parse_json(&traced).is_ok(), "{traced}");
    }

    #[test]
    fn cached_tracks_the_model_filter_not_the_arena() {
        // A test whose execution is already interned but whose
        // requested model has not been checked yet must NOT count as
        // cached — the old interned-delta definition got this wrong.
        let mut s = Session::new();
        let sc = [s.resolve("SC").unwrap()];
        let tsc = [s.resolve("TSC").unwrap()];
        let t = parse_request("sb.litmus", &sb_source()).expect("parses");
        let first = check_parsed(&mut s, &t, Some(&sc));
        assert!(!first.cached);
        let other_model = check_parsed(&mut s, &t, Some(&tsc));
        assert!(!other_model.cached, "TSC verdict was computed fresh");
        let warm = check_parsed(&mut s, &t, Some(&tsc));
        assert!(warm.cached);
    }

    #[test]
    fn failure_lines_keep_streaming() {
        let mut s = Session::new();
        let served = serve_source(&mut s, "bad.litmus", "t (Marvel)\n", None);
        let Served::Failure(f) = served else {
            panic!("must fail");
        };
        assert!(f.error.contains("unknown architecture"));
        let line = jsonl_line(&Served::Failure(f));
        assert!(line.starts_with("{\"file\":\"bad.litmus\",\"error\":"));
    }

    #[test]
    fn jsonl_shape() {
        let mut s = Session::new();
        let served = serve_source(&mut s, "sb.litmus", &sb_source(), None);
        let line = jsonl_line(&served);
        assert!(line.contains("\"name\":\"sb\""));
        assert!(line.contains("\"arch\":\"x86\""));
        assert!(line.contains("\"observable\":true"));
        assert!(line.contains("\"verdicts\":{"));
        assert!(line.contains("\"SC\":{\"consistent\":false"));
        assert!(!line.contains('\n'));
        // Timing/cache metadata stays off the data line so output is
        // deterministic (the daemon relies on byte-identity).
        assert!(!line.contains("micros"));
        assert!(!line.contains("cached"));
    }

    #[test]
    fn outcomes_jsonl_shape() {
        let mut s = Session::new();
        let filter = [s.resolve("SC").unwrap(), s.resolve("x86").unwrap()];
        let served = serve_outcomes_source(&mut s, "sb.litmus", &sb_source(), Some(&filter));
        let line = outcomes_jsonl_line(&served);
        assert!(line.contains("\"name\":\"sb\""), "{line}");
        assert!(line.contains("\"candidates\":4"), "{line}");
        assert!(line.contains("\"classes\":3"), "{line}");
        assert!(line.contains("\"SC\":{\"post\":\"forbidden\""), "{line}");
        assert!(line.contains("\"x86\":{\"post\":\"allowed\""), "{line}");
        assert!(line.contains("\"regs\":[[0],[0]],\"mem\":[1,1]"), "{line}");
        assert!(!line.contains('\n'));
        assert!(crate::protocol::parse_json(&line).is_ok(), "{line}");
        // Deterministic: serving again renders the same bytes.
        let again = serve_outcomes_source(&mut s, "sb.litmus", &sb_source(), Some(&filter));
        assert_eq!(line, outcomes_jsonl_line(&again));
    }

    #[test]
    fn outcomes_serves_postcondition_free_sources() {
        // A program with no Test: line cannot be pinned (`check` path)
        // but the outcome engine still answers.
        let src = "free (x86)\nthread 0:\n  x <- 1\nthread 1:\n  r0 <- x\n";
        let mut s = Session::new();
        let sc = [s.resolve("SC").unwrap()];
        let served = serve_outcomes_source(&mut s, "free.litmus", src, Some(&sc));
        let ServedOutcomes::Report(r) = served else {
            panic!("must serve");
        };
        assert_eq!(r.per_model[0].post_allowed, None);
        assert_eq!(r.per_model[0].allowed.len(), 2, "r0 ∈ {{0, 1}}");
        let line = outcomes_jsonl_line(&ServedOutcomes::Report(r));
        assert!(line.contains("\"post\":null"), "{line}");
    }

    #[test]
    fn model_filter_restricts_verdicts() {
        let mut s = Session::new();
        let filter = [s.resolve("SC").unwrap(), s.resolve("TSC").unwrap()];
        let served = serve_source(&mut s, "sb.litmus", &sb_source(), Some(&filter));
        let Served::Report(r) = served else {
            panic!("serves")
        };
        assert_eq!(r.verdicts.len(), 2);
        assert_eq!(r.verdicts[0].0, "SC");
    }
}
