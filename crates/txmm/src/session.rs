//! The long-lived checking engine: one pipeline, many drivers.
//!
//! Chong–Sorensen–Wickerson's methodology is a single pipeline —
//! enumerate or parse executions, derive their relations, check them
//! against models and the hardware oracle — that the paper runs in many
//! configurations. [`Session`] is that pipeline as a value:
//!
//! * a **unified model registry**: the native Rust models, the shipped
//!   `.cat` sources, and user-supplied `.cat` files all resolve to
//!   `dyn Model`s and are checked identically;
//! * an **arena of executions** ([`txmm_core::arena`]): every execution
//!   the session sees is interned as a flat `Copy` value, keyed by its
//!   *canonical* (symmetry-reduced) form, so structurally different but
//!   symmetric tests share one entry;
//! * **per-execution caches**: model verdicts and hardware-simulator
//!   observability are computed once per (interned execution, model /
//!   architecture) pair and served from the cache afterwards — the warm
//!   path of batch litmus serving never rebuilds an analysis;
//! * the **sweep drivers**: synthesis, model-difference search,
//!   monotonicity / compilation / lock-elision / theorem checking are
//!   exposed as methods, so binaries configure one `Session` instead of
//!   hand-wiring enumerate-and-check loops.
//!
//! ```
//! use txmm::session::Session;
//! use txmm::models::catalog;
//!
//! let mut s = Session::new();
//! let tsc = s.resolve("TSC").unwrap();
//! let v = s.verdict(&catalog::fig2(), tsc);
//! assert!(!v.is_consistent());
//! // Same execution again: served from the verdict cache.
//! let v2 = s.verdict(&catalog::fig2(), tsc);
//! assert_eq!(v, v2);
//! assert_eq!(s.stats().verdict_hits, 1);
//! ```

use std::collections::HashMap;
use std::time::Duration;

use txmm_cat::{parse as parse_cat, CatModel};
use txmm_core::arena::{ExecArena, ExecId};
use txmm_core::{Execution, ExecutionAnalysis};
use txmm_hwsim::{ArmSim, PowerSim, Simulator, TsoSim};
use txmm_litmus::litmus_from_execution;
use txmm_models::{registry, Arch, Checker, Derived, Model, Verdict};
use txmm_synth::{canon_key, EnumConfig, SuiteResult};
use txmm_verify::{CompileResult, ElisionResult, ElisionTarget, MonotonicityResult, TheoremResult};

/// Handle of a registered model within one [`Session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelRef(usize);

impl ModelRef {
    /// The registry slot behind the handle (cache keys use this).
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// A `.cat` model adapted to the [`Model`] trait, which is what lets
/// the registry treat native and `.cat`-defined models uniformly. The
/// whole `.cat` evaluation runs in [`Model::axioms`]; evaluation errors
/// surface as a `cat-eval-error: ...` violation rather than a panic, so
/// a broken user model cannot take the serving process down.
struct CatBackend {
    name: &'static str,
    /// Shared with [`Session::cat_models`], so stats snapshots read the
    /// same compile-cache counters the serving path bumps.
    model: std::sync::Arc<CatModel>,
    arch: Arch,
    tm: bool,
    /// First evaluation error, leaked once: a broken model fails the
    /// same way on every execution, and a long-lived serving process
    /// must not leak per-verdict.
    eval_error: std::sync::OnceLock<&'static str>,
    /// Lazily derived monotone-core prune oracles, indexed by the
    /// transactions-known phase. `None` caches "no check survives";
    /// hot-reload replaces the whole backend, so stale oracles cannot
    /// outlive the program they were extracted from.
    oracles: [std::sync::OnceLock<Option<txmm_cat::CatPruneOracle>>; 2],
}

/// Guess the architecture and transactionality of a `.cat` model from
/// its name (used for user-supplied files; the vocabulary only matters
/// for sweeps, never for plain verdict serving).
fn classify_cat_name(name: &str) -> (Arch, bool) {
    let lower = name.to_ascii_lowercase();
    let arch = if lower.starts_with("x86") {
        Arch::X86
    } else if lower.starts_with("power") {
        Arch::Power
    } else if lower.starts_with("armv8") || lower.starts_with("arm") {
        Arch::Armv8
    } else if lower.starts_with("cpp") || lower.starts_with("c++") {
        Arch::Cpp
    } else {
        Arch::Sc
    };
    let tm = lower.contains("-tm") || lower.contains("tsc");
    (arch, tm)
}

impl Model for CatBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn arch(&self) -> Arch {
        self.arch
    }

    fn is_tm(&self) -> bool {
        self.tm
    }

    fn derived(&self, _a: &ExecutionAnalysis<'_>) -> Derived {
        Derived::new()
    }

    fn axioms(&self, a: &ExecutionAnalysis<'_>, _d: &Derived, c: &mut Checker) {
        match self.model.check_analysis(a) {
            Ok(v) => {
                for axiom in v.violations() {
                    c.fail(axiom);
                }
            }
            Err(e) => {
                let msg = self
                    .eval_error
                    .get_or_init(|| Box::leak(format!("cat-eval-error: {e}").into_boxed_str()));
                c.fail(msg);
            }
        }
    }

    fn prune_oracle(&self, txns_known: bool) -> Option<&dyn txmm_core::incr::PruneOracle> {
        self.oracles[txns_known as usize]
            .get_or_init(|| {
                let _s = txmm_obs::span!("cat.prune_derive");
                txmm_cat::CatPruneOracle::derive(self.name, &self.model, txns_known)
            })
            .as_ref()
            .map(|o| o as &dyn txmm_core::incr::PruneOracle)
    }
}

/// Cache and arena counters of one [`Session`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Distinct executions interned (after canonical aliasing).
    pub interned: usize,
    /// Verdicts served from the cache.
    pub verdict_hits: u64,
    /// Verdicts computed fresh.
    pub verdict_misses: u64,
    /// Observability answers served from the cache.
    pub observability_hits: u64,
    /// Observability answers computed fresh.
    pub observability_misses: u64,
    /// Per-(program, model) outcome sets served from the cache.
    pub outcome_hits: u64,
    /// Per-(program, model) outcome sets computed fresh.
    pub outcome_misses: u64,
    /// Entries in the outcome-set cache.
    pub outcome_entries: usize,
    /// Candidate executions enumerated by the outcome engine (before
    /// canonical pruning), cumulative.
    pub outcome_candidates: u64,
    /// Canonical candidate classes actually checked, cumulative — the
    /// gap to `outcome_candidates` is the work symmetry pruning saved.
    pub outcome_classes: u64,
    /// Construction subtrees the consistency oracles cut, cumulative.
    pub prune_subtrees_cut: u64,
    /// Complete candidates those cuts skipped before they were built,
    /// cumulative.
    pub prune_candidates_skipped: u64,
    /// Prune-oracle invocations (coherence-gate fast rejects not
    /// included), cumulative.
    pub prune_oracle_calls: u64,
    /// Wall-clock microseconds spent inside prune-oracle calls,
    /// cumulative.
    pub prune_oracle_micros: u64,
    /// Viability probes answered from incremental delta state alone
    /// (no analysis rebuilt), cumulative.
    pub prune_delta_answers: u64,
    /// Viability probes the delta state could not decide, falling back
    /// to a full analysis re-check, cumulative.
    pub prune_fallbacks: u64,
    /// Batched sibling-placement oracle calls, cumulative.
    pub prune_batches: u64,
    /// Placements judged across all batches (mean batch size is
    /// `prune_batched_placements / prune_batches`), cumulative.
    pub prune_batched_placements: u64,
    /// `.cat` checks served by an already-specialised program tier.
    pub compile_hits: u64,
    /// `.cat` checks that specialised their program tier first.
    pub compile_misses: u64,
    /// Specialised program tiers resident across all `.cat` models.
    pub compile_entries: u64,
    /// Cumulative `.cat` compile + specialise time, microseconds.
    pub compile_micros: u64,
}

/// The session's cache counters as registry handles. Every `Session`
/// creates its own handles (the registry sums live handles of a series
/// for global exposition, so N shard sessions aggregate there) while
/// [`Session::stats`] reads this session's own handles back out —
/// which is what keeps the per-shard `stats` JSON exact.
pub(crate) struct SessionTelemetry {
    pub(crate) interned: txmm_obs::Gauge,
    pub(crate) verdict_hits: txmm_obs::Counter,
    pub(crate) verdict_misses: txmm_obs::Counter,
    pub(crate) observability_hits: txmm_obs::Counter,
    pub(crate) observability_misses: txmm_obs::Counter,
    pub(crate) outcome_hits: txmm_obs::Counter,
    pub(crate) outcome_misses: txmm_obs::Counter,
    pub(crate) outcome_entries: txmm_obs::Gauge,
    pub(crate) outcome_candidates: txmm_obs::Counter,
    pub(crate) outcome_classes: txmm_obs::Counter,
    pub(crate) prune_subtrees_cut: txmm_obs::Counter,
    pub(crate) prune_candidates_skipped: txmm_obs::Counter,
    pub(crate) prune_oracle_calls: txmm_obs::Counter,
    pub(crate) prune_oracle_micros: txmm_obs::Counter,
    pub(crate) prune_delta_answers: txmm_obs::Counter,
    pub(crate) prune_fallbacks: txmm_obs::Counter,
    /// Batch sizes per batched oracle call; `count` is the batch count
    /// and `sum` the placements judged, which is how
    /// [`Session::stats`] reads the pair back out.
    pub(crate) prune_batch_size: txmm_obs::Histogram,
}

impl SessionTelemetry {
    fn new() -> SessionTelemetry {
        let obs = txmm_obs::global();
        SessionTelemetry {
            interned: obs.gauge(
                "txmm_session_interned_executions",
                "Distinct executions interned (after canonical aliasing).",
            ),
            verdict_hits: obs.counter(
                "txmm_verdict_cache_hits_total",
                "Verdicts served from the cache.",
            ),
            verdict_misses: obs.counter(
                "txmm_verdict_cache_misses_total",
                "Verdicts computed fresh.",
            ),
            observability_hits: obs.counter(
                "txmm_observability_cache_hits_total",
                "Observability answers served from the cache.",
            ),
            observability_misses: obs.counter(
                "txmm_observability_cache_misses_total",
                "Observability answers computed fresh.",
            ),
            outcome_hits: obs.counter(
                "txmm_outcome_cache_hits_total",
                "Per-(program, model) outcome sets served from the cache.",
            ),
            outcome_misses: obs.counter(
                "txmm_outcome_cache_misses_total",
                "Per-(program, model) outcome sets computed fresh.",
            ),
            outcome_entries: obs.gauge(
                "txmm_outcome_cache_entries",
                "Entries in the outcome-set cache.",
            ),
            outcome_candidates: obs.counter(
                "txmm_outcome_candidates_total",
                "Candidate executions enumerated by the outcome engine.",
            ),
            outcome_classes: obs.counter(
                "txmm_outcome_classes_total",
                "Canonical candidate classes actually checked.",
            ),
            // Same family names the sweep walks in txmm-synth publish
            // into: the exposition totals prune work process-wide.
            prune_subtrees_cut: obs.counter(
                "txmm_prune_subtrees_cut_total",
                "Construction subtrees abandoned on a non-viable partial.",
            ),
            prune_candidates_skipped: obs.counter(
                "txmm_prune_candidates_skipped_total",
                "Complete candidates pruned subtrees would have materialised.",
            ),
            prune_oracle_calls: obs
                .counter("txmm_prune_oracle_calls_total", "Prune-oracle invocations."),
            prune_oracle_micros: obs.counter(
                "txmm_prune_oracle_microseconds_total",
                "Wall-clock time spent inside prune-oracle calls.",
            ),
            prune_delta_answers: obs.counter(
                "txmm_prune_delta_answers_total",
                "Viability probes answered from incremental delta state alone.",
            ),
            prune_fallbacks: obs.counter(
                "txmm_prune_fallback_total",
                "Viability probes the delta state could not decide, falling \
                 back to a full analysis re-check.",
            ),
            prune_batch_size: obs.histogram(
                "txmm_prune_batch_size",
                "Sibling placements judged per batched prune-oracle call.",
            ),
        }
    }
}

/// The long-lived engine described in the module docs. Fields are
/// crate-visible so the outcome engine (`crate::outcomes`) can split
/// borrows across the registry, arena and caches.
pub struct Session {
    pub(crate) models: Vec<Box<dyn Model>>,
    pub(crate) arena: ExecArena,
    /// Canonical (symmetry-reduced) key → interned representative.
    pub(crate) canon_ids: HashMap<Vec<u8>, ExecId>,
    pub(crate) verdicts: HashMap<(ExecId, usize), Verdict>,
    pub(crate) observability: HashMap<(ExecId, Arch), bool>,
    /// Program key → enumerated candidate table (see `crate::outcomes`).
    pub(crate) outcome_tables: HashMap<Vec<u8>, crate::outcomes::OutcomeTable>,
    /// (program key, model slot) → allowed final states.
    pub(crate) outcome_sets: HashMap<(Vec<u8>, usize), txmm_hwsim::OutcomeSet>,
    /// (program key, model slot) → what that model's outcome walk
    /// actually visited (see `crate::outcomes`).
    pub(crate) outcome_visits: HashMap<(Vec<u8>, usize), crate::outcomes::OutcomeVisit>,
    /// Consistency-guided pruning in the outcome engine (default on;
    /// models without an oracle always take the unpruned table path).
    pub(crate) prune: bool,
    /// Refuse programs with more candidate executions than this.
    pub(crate) max_candidates: u128,
    /// Worker threads for fanning candidate checking out over the
    /// work-stealing pool (1 = sequential).
    pub(crate) outcome_workers: usize,
    /// Registry slot → compiled `.cat` model, for aggregating
    /// compile-cache stats; reload replaces the slot's entry.
    pub(crate) cat_models: Vec<(usize, std::sync::Arc<CatModel>)>,
    pub(crate) stats: SessionTelemetry,
    /// Live walk telemetry: when set, the synthesis sweeps and the
    /// outcome engine's pruned walks flush progress (work fractions,
    /// candidates, classes, prune cuts) into it as they run.
    pub(crate) walk_progress: Option<std::sync::Arc<txmm_obs::WalkProgress>>,
}

/// A `Session` moves whole into a shard worker thread of the serving
/// pool; this fails to compile if any registry or cache member stops
/// being `Send`.
const _: fn() = || {
    fn requires_send<T: Send>() {}
    requires_send::<Session>();
};

/// [`Session::intern`] with the arena and canonical-key map borrowed
/// apart, so the outcome engine can intern candidates while a model
/// borrowed from the registry (its prune oracle) is live.
pub(crate) fn intern_into(
    arena: &mut ExecArena,
    canon_ids: &mut HashMap<Vec<u8>, ExecId>,
    x: &Execution,
) -> ExecId {
    let key = canon_key(x);
    if let Some(&id) = canon_ids.get(&key) {
        return id;
    }
    let (id, _fresh) = arena.intern(x);
    canon_ids.insert(key, id);
    id
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// A session with every native model registered.
    pub fn new() -> Session {
        let mut s = Session {
            models: Vec::new(),
            arena: ExecArena::new(),
            canon_ids: HashMap::new(),
            verdicts: HashMap::new(),
            observability: HashMap::new(),
            outcome_tables: HashMap::new(),
            outcome_sets: HashMap::new(),
            outcome_visits: HashMap::new(),
            prune: true,
            max_candidates: crate::outcomes::MAX_CANDIDATES,
            outcome_workers: 1,
            cat_models: Vec::new(),
            stats: SessionTelemetry::new(),
            walk_progress: None,
        };
        for m in registry::all_models() {
            s.register_model(m);
        }
        s
    }

    /// A session with the native models plus every shipped `.cat` model
    /// registered under `<name>.cat` (the differential twin set).
    pub fn with_shipped_cat() -> Session {
        let mut s = Session::new();
        for (name, src) in txmm_cat::SOURCES {
            s.register_cat_source(&format!("{name}.cat"), src)
                .expect("shipped model compiles");
        }
        s
    }

    // ---- Registry --------------------------------------------------------

    /// Register any [`Model`]; returns its handle. Later registrations
    /// shadow earlier ones in [`Session::resolve`] lookups.
    pub fn register_model(&mut self, m: Box<dyn Model>) -> ModelRef {
        self.models.push(m);
        ModelRef(self.models.len() - 1)
    }

    /// Compile and register a `.cat` model from source text.
    pub fn register_cat_source(&mut self, name: &str, src: &str) -> Result<ModelRef, String> {
        let file = parse_cat(src).map_err(|e| format!("{name}: {e}"))?;
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        let (arch, tm) = classify_cat_name(name);
        let model = std::sync::Arc::new(CatModel::new(leaked, file));
        let m = self.register_model(Box::new(CatBackend {
            name: leaked,
            model: model.clone(),
            arch,
            tm,
            eval_error: std::sync::OnceLock::new(),
            oracles: Default::default(),
        }));
        self.cat_models.push((m.index(), model));
        Ok(m)
    }

    /// Load, compile and register a user-supplied `.cat` file; the model
    /// is named after the file stem.
    pub fn register_cat_file(&mut self, path: &std::path::Path) -> Result<ModelRef, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("user-model")
            .to_string();
        self.register_cat_source(&name, &src)
    }

    /// Hot-reload a `.cat` model: if `name` is already registered, the
    /// model is **replaced in its existing slot** (so `ModelRef`s stay
    /// valid) and every cached verdict and outcome set for that slot is
    /// invalidated; otherwise this is a plain registration. Parse
    /// errors leave the old model serving.
    pub fn reload_cat_source(&mut self, name: &str, src: &str) -> Result<ModelRef, String> {
        let file = parse_cat(src).map_err(|e| format!("{name}: {e}"))?;
        let Some(slot) = self.models.iter().rposition(|m| m.name() == name) else {
            return self.register_cat_source(name, src);
        };
        // Reuse the slot's already-leaked name: a daemon reloads
        // arbitrarily often, and leaking a fresh copy per reload would
        // grow without bound.
        let leaked: &'static str = self.models[slot].name();
        let (arch, tm) = classify_cat_name(name);
        // The swap is of the *compiled program*, not the AST: the new
        // `CatModel` arrives fully lowered and optimised, and replacing
        // the boxed backend is one pointer store. In-flight requests on
        // other shards keep their own `Arc` until they finish.
        let model = std::sync::Arc::new(CatModel::new(leaked, file));
        self.models[slot] = Box::new(CatBackend {
            name: leaked,
            model: model.clone(),
            arch,
            tm,
            eval_error: std::sync::OnceLock::new(),
            oracles: Default::default(),
        });
        match self.cat_models.iter_mut().find(|(s, _)| *s == slot) {
            Some(entry) => entry.1 = model,
            None => self.cat_models.push((slot, model)),
        }
        // The replaced model may answer differently: drop its caches.
        self.verdicts.retain(|&(_, m), _| m != slot);
        self.outcome_sets.retain(|(_, m), _| *m != slot);
        self.outcome_visits.retain(|(_, m), _| *m != slot);
        self.stats
            .outcome_entries
            .set(self.outcome_sets.len() as i64);
        Ok(ModelRef(slot))
    }

    /// Hot-reload a `.cat` model from a file (see
    /// [`Session::reload_cat_source`]).
    pub fn reload_cat_file(&mut self, path: &std::path::Path) -> Result<ModelRef, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("user-model")
            .to_string();
        self.reload_cat_source(&name, &src)
    }

    /// Set the worker-thread count the outcome engine fans out over
    /// (via the `txmm-synth` work-stealing pool): the pruned walk's
    /// per-abort-split enumeration and the unpruned table's class
    /// checking both use it; 1 keeps everything on the calling thread.
    pub fn set_outcome_workers(&mut self, workers: usize) {
        self.outcome_workers = workers.max(1);
    }

    /// Enable or disable consistency-guided pruning in the outcome
    /// engine. Off, every model is answered from the shared unpruned
    /// candidate table — the differential reference the pruned path is
    /// tested against.
    pub fn set_prune(&mut self, prune: bool) {
        self.prune = prune;
    }

    /// Replace the candidate-execution cap the outcome engine refuses
    /// programs above (default [`crate::outcomes::MAX_CANDIDATES`]).
    pub fn set_max_candidates(&mut self, cap: u128) {
        self.max_candidates = cap;
    }

    /// The current candidate-execution cap.
    pub fn max_candidates(&self) -> u128 {
        self.max_candidates
    }

    /// Attach (or detach) a live walk-progress accumulator. While set,
    /// the synthesis sweeps and the outcome engine's pruned walks
    /// declare their plans and flush per-subtree deltas into it, so a
    /// heartbeat reporter or the daemon's `stats` can watch them
    /// mid-run.
    pub fn set_walk_progress(&mut self, p: Option<std::sync::Arc<txmm_obs::WalkProgress>>) {
        self.walk_progress = p;
    }

    /// The attached walk-progress accumulator, if any.
    pub fn walk_progress(&self) -> Option<&std::sync::Arc<txmm_obs::WalkProgress>> {
        self.walk_progress.as_ref()
    }

    /// Every registered model handle, in registration order.
    pub fn models(&self) -> impl Iterator<Item = ModelRef> {
        (0..self.models.len()).map(ModelRef)
    }

    /// The model behind a handle.
    pub fn model(&self, m: ModelRef) -> &dyn Model {
        self.models[m.0].as_ref()
    }

    /// Resolve a model by name (native and `.cat` models uniformly;
    /// the most recent registration wins).
    pub fn resolve(&self, name: &str) -> Option<ModelRef> {
        self.models
            .iter()
            .rposition(|m| m.name() == name)
            .map(ModelRef)
    }

    // ---- Arena -----------------------------------------------------------

    /// Intern an execution, aliasing it to the representative of its
    /// canonical (thread/location symmetry-reduced) class. Verdicts and
    /// observability are symmetric under those permutations, so
    /// symmetric variants share every cache entry.
    pub fn intern(&mut self, x: &Execution) -> ExecId {
        let id = intern_into(&mut self.arena, &mut self.canon_ids, x);
        self.stats.interned.set(self.arena.len() as i64);
        id
    }

    /// The interned execution behind an id.
    pub fn execution(&self, id: ExecId) -> Execution {
        self.arena.unpack(id)
    }

    /// Intern an entire bounded enumeration into the arena by consuming
    /// the streaming work-stealing enumerator: candidates are produced
    /// on a background pool and flow through a bounded channel, so the
    /// space is never materialised as a `Vec<Execution>` — memory stays
    /// at the channel capacity plus the arena itself. Returns the ids
    /// of the interned executions (one per canonical class, since the
    /// streaming enumerator already emits exactly one representative
    /// each).
    pub fn intern_enumeration(&mut self, cfg: &EnumConfig) -> Vec<ExecId> {
        /// In-flight candidates between the enumeration pool and the
        /// interning loop; small, so a slow intern path back-pressures
        /// the producers instead of buffering the space.
        const STREAM_CAPACITY: usize = 256;
        txmm_synth::stream_par(cfg.clone(), STREAM_CAPACITY)
            .map(|x| self.intern(&x))
            .collect()
    }

    // ---- Cached checking -------------------------------------------------

    /// The verdict of one model on one execution, cached by interned id.
    pub fn verdict(&mut self, x: &Execution, m: ModelRef) -> Verdict {
        let id = self.intern(x);
        self.verdict_interned(id, m)
    }

    /// [`Session::verdict`] for an already-interned execution.
    pub fn verdict_interned(&mut self, id: ExecId, m: ModelRef) -> Verdict {
        if let Some(v) = self.verdicts.get(&(id, m.0)) {
            self.stats.verdict_hits.inc();
            return v.clone();
        }
        self.stats.verdict_misses.inc();
        let x = self.arena.unpack(id);
        let v = self.models[m.0].check_analysis(&x.analysis());
        self.verdicts.insert((id, m.0), v.clone());
        v
    }

    /// Convenience: is the execution consistent under the model?
    pub fn consistent(&mut self, x: &Execution, m: ModelRef) -> bool {
        self.verdict(x, m).is_consistent()
    }

    /// Verdicts of every registered model on one execution; see
    /// [`Session::verdicts_for`].
    pub fn verdicts(&mut self, x: &Execution) -> Vec<(ModelRef, Verdict)> {
        let all: Vec<ModelRef> = self.models().collect();
        self.verdicts_for(x, &all)
    }

    /// Verdicts of the given models on one execution. Uncached models
    /// share a single analysis built here — the only place the serving
    /// path constructs one — so derived relations are computed once per
    /// execution regardless of how many models look at it.
    pub fn verdicts_for(&mut self, x: &Execution, models: &[ModelRef]) -> Vec<(ModelRef, Verdict)> {
        let id = self.intern(x);
        let missing: Vec<usize> = models
            .iter()
            .map(|m| m.0)
            .filter(|&i| !self.verdicts.contains_key(&(id, i)))
            .collect();
        self.stats
            .verdict_hits
            .add((models.len() - missing.len()) as u64);
        self.stats.verdict_misses.add(missing.len() as u64);
        if !missing.is_empty() {
            let y = self.arena.unpack(id);
            let a = y.analysis();
            for i in missing {
                let v = self.models[i].check_analysis(&a);
                self.verdicts.insert((id, i), v);
            }
        }
        models
            .iter()
            .map(|&m| (m, self.verdicts[&(id, m.0)].clone()))
            .collect()
    }

    /// Would the execution be observable on the simulated hardware of
    /// `arch`? Answers come from the exhaustive operational simulators
    /// and are cached per (execution, architecture). `None` for
    /// architectures without a simulator (SC, C++) and for executions
    /// using lock/unlock call events (abstract, not runnable).
    pub fn observable(&mut self, x: &Execution, arch: Arch) -> Option<bool> {
        if !matches!(arch, Arch::X86 | Arch::Power | Arch::Armv8) || !x.calls().is_empty() {
            return None;
        }
        let id = self.intern(x);
        if let Some(&seen) = self.observability.get(&(id, arch)) {
            self.stats.observability_hits.inc();
            return Some(seen);
        }
        self.stats.observability_misses.inc();
        let y = self.arena.unpack(id);
        let t = litmus_from_execution("session", &y, arch);
        let seen = match arch {
            Arch::X86 => TsoSim.observable(&t),
            Arch::Power => PowerSim::default().observable(&t),
            Arch::Armv8 => ArmSim::default().observable(&t),
            _ => unreachable!("guarded above"),
        };
        self.observability.insert((id, arch), seen);
        Some(seen)
    }

    /// Current cache and arena counters, read back through this
    /// session's registry handles. Compile-cache numbers are aggregated
    /// from the registered `.cat` models at snapshot time.
    pub fn stats(&self) -> SessionStats {
        let t = &self.stats;
        let mut s = SessionStats {
            interned: t.interned.get() as usize,
            verdict_hits: t.verdict_hits.get(),
            verdict_misses: t.verdict_misses.get(),
            observability_hits: t.observability_hits.get(),
            observability_misses: t.observability_misses.get(),
            outcome_hits: t.outcome_hits.get(),
            outcome_misses: t.outcome_misses.get(),
            outcome_entries: t.outcome_entries.get() as usize,
            outcome_candidates: t.outcome_candidates.get(),
            outcome_classes: t.outcome_classes.get(),
            prune_subtrees_cut: t.prune_subtrees_cut.get(),
            prune_candidates_skipped: t.prune_candidates_skipped.get(),
            prune_oracle_calls: t.prune_oracle_calls.get(),
            prune_oracle_micros: t.prune_oracle_micros.get(),
            prune_delta_answers: t.prune_delta_answers.get(),
            prune_fallbacks: t.prune_fallbacks.get(),
            prune_batches: t.prune_batch_size.snapshot().count,
            prune_batched_placements: t.prune_batch_size.snapshot().sum,
            ..SessionStats::default()
        };
        for (_, model) in &self.cat_models {
            let c = model.compile_stats();
            s.compile_hits += c.hits;
            s.compile_misses += c.misses;
            s.compile_entries += c.entries;
            s.compile_micros += c.micros;
        }
        s
    }

    // ---- Sweep drivers ---------------------------------------------------
    //
    // The bounded enumerate-and-check pipelines, exposed here so driver
    // binaries configure one Session rather than wiring synth/verify by
    // hand. Sweeps stream fresh candidates (every execution distinct),
    // so they bypass the verdict cache by design and parallelise over
    // thread-shape shards internally.

    /// Forbid/Allow conformance-suite synthesis (Table 1, Fig. 7).
    pub fn synthesise(
        &self,
        cfg: &EnumConfig,
        tm: ModelRef,
        base: ModelRef,
        budget: Option<Duration>,
    ) -> SuiteResult {
        txmm_synth::synthesise_streamed_progress(
            cfg,
            self.model(tm),
            self.model(base),
            budget,
            txmm_synth::par::worker_count(),
            self.walk_progress.as_deref(),
        )
    }

    /// Model-difference search (§4.1).
    pub fn distinguish(
        &self,
        cfg: &EnumConfig,
        m: ModelRef,
        n: ModelRef,
        limit: Option<usize>,
    ) -> Vec<Execution> {
        txmm_synth::distinguish(cfg, self.model(m), self.model(n), limit)
    }

    /// Bounded monotonicity check (§8.1).
    pub fn check_monotonicity(
        &self,
        cfg: &EnumConfig,
        m: ModelRef,
        budget: Option<Duration>,
    ) -> MonotonicityResult {
        txmm_verify::check_monotonicity(cfg, self.model(m), budget)
    }

    /// Bounded C++-to-hardware compilation soundness (§8.2).
    pub fn check_compilation(
        &self,
        events: usize,
        target: Arch,
        budget: Option<Duration>,
    ) -> CompileResult {
        txmm_verify::check_compilation(events, target, budget)
    }

    /// Bounded lock-elision soundness (§8.3).
    pub fn check_lock_elision(
        &self,
        target: ElisionTarget,
        budget: Option<Duration>,
    ) -> ElisionResult {
        txmm_verify::check_lock_elision(target, budget)
    }

    /// Bounded validation of Theorem 7.2.
    pub fn check_theorem_7_2(&self, events: usize, budget: Option<Duration>) -> TheoremResult {
        txmm_verify::check_theorem_7_2(events, budget)
    }

    /// Bounded validation of Theorem 7.3.
    pub fn check_theorem_7_3(&self, events: usize, budget: Option<Duration>) -> TheoremResult {
        txmm_verify::check_theorem_7_3(events, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_models::catalog;

    #[test]
    fn registry_resolves_native_and_cat_uniformly() {
        let mut s = Session::with_shipped_cat();
        let native = s.resolve("x86-tm").expect("native model");
        let cat = s.resolve("x86-tm.cat").expect("cat twin");
        assert_ne!(native, cat);
        let x = catalog::fig2();
        assert_eq!(
            s.verdict(&x, native).is_consistent(),
            s.verdict(&x, cat).is_consistent()
        );
        assert!(s.resolve("no-such-model").is_none());
    }

    #[test]
    fn user_cat_source_registers_and_checks() {
        let mut s = Session::new();
        let m = s
            .register_cat_source("my-sc", "acyclic po | com as Order")
            .expect("compiles");
        assert_eq!(s.model(m).name(), "my-sc");
        assert!(s.consistent(&catalog::fig1(), m));
        assert!(!s.consistent(&catalog::sb(None, false, false), m));
        assert!(s.register_cat_source("broken", "acyclic ((").is_err());
    }

    #[test]
    fn broken_cat_builtin_reports_eval_error_not_panic() {
        let mut s = Session::new();
        let m = s
            .register_cat_source("bad-ref", "acyclic nosuchrel as Oops")
            .expect("parses");
        let v = s.verdict(&catalog::fig1(), m);
        assert!(!v.is_consistent());
        assert!(v.violations()[0].starts_with("cat-eval-error"));
    }

    #[test]
    fn cat_diagnostics_name_construct_and_line() {
        // End to end: an unsupported construct in a user-supplied model
        // surfaces with its name and source line, not a generic error.
        let mut s = Session::new();
        let src = "let hb = po | com\nacyclic hb as Order\nlet f = fold(MFENCE)\nempty f as F";
        let m = s.register_cat_source("diag", src).expect("parses");
        let v = s.verdict(&catalog::fig1(), m);
        assert_eq!(
            v.violations(),
            ["cat-eval-error: unsupported operator 'fold' at line 3"]
        );
        // Unsupported declarations are caught at registration instead.
        let e = s
            .register_cat_source("inc", "include \"x86fences.cat\"")
            .unwrap_err();
        assert_eq!(e, "inc: unsupported declaration 'include' at line 1");
    }

    #[test]
    fn compile_cache_stats_aggregate_over_cat_models() {
        let mut s = Session::new();
        assert_eq!(s.stats().compile_entries, 0, "no cat models yet");
        let m = s
            .register_cat_source("my-sc", "acyclic po | com as Order")
            .expect("compiles");
        // Two different executions with the same event count: the first
        // check specialises the tier, the second reuses it.
        assert!(!s.consistent(&catalog::sb(None, false, false), m));
        assert!(!s.consistent(&catalog::sb(None, true, true), m));
        let st = s.stats();
        assert_eq!(st.compile_misses, 1, "one tier specialised");
        assert_eq!(st.compile_hits, 1, "second check reused it");
        assert_eq!(st.compile_entries, 1);
        assert!(st.compile_micros > 0, "compilation took measurable time");
        // Reload swaps the compiled program: the fresh model starts
        // with an empty tier cache but keeps serving.
        s.reload_cat_source("my-sc", "acyclic poloc | com as Coherence")
            .expect("reloads");
        let st = s.stats();
        assert_eq!(st.compile_entries, 0, "tiers recompile after reload");
        assert!(s.consistent(&catalog::sb(None, false, false), m));
        let st = s.stats();
        assert_eq!(st.compile_entries, 1);
        assert_eq!(st.compile_misses, 1, "reload resets the slot's counters");
    }

    #[test]
    fn fencerel_models_serve_through_the_registry() {
        // fencerel-based herd models no longer degrade to eval errors:
        // an x86-style model phrased through fencerel(MFENCE) agrees
        // with the native x86 model on the fenced/unfenced SB pair.
        let mut s = Session::new();
        let m = s
            .register_cat_source(
                "x86-fencerel",
                "let ppo = po \\ (W * R)\nlet ord = ppo | fencerel(MFENCE) | rfe | co | fr\n\
                 acyclic ord as Tso",
            )
            .expect("compiles");
        let native = s.resolve("x86").expect("native model");
        let fenced = catalog::sb(Some(txmm_core::Fence::MFence), false, false);
        let unfenced = catalog::sb(None, false, false);
        assert!(!s.consistent(&fenced, m));
        assert_eq!(
            s.verdict(&fenced, m).is_consistent(),
            s.verdict(&fenced, native).is_consistent()
        );
        assert_eq!(
            s.verdict(&unfenced, m).is_consistent(),
            s.verdict(&unfenced, native).is_consistent()
        );
    }

    #[test]
    fn verdicts_cached_per_interned_execution() {
        let mut s = Session::new();
        let x = catalog::sb(None, false, false);
        let cold: Vec<_> = s.verdicts(&x);
        let misses = s.stats().verdict_misses;
        assert_eq!(misses, cold.len() as u64);
        let warm: Vec<_> = s.verdicts(&x);
        assert_eq!(s.stats().verdict_misses, misses, "no recomputation");
        assert_eq!(s.stats().verdict_hits, cold.len() as u64);
        assert_eq!(cold, warm);
        assert_eq!(s.stats().interned, 1);
    }

    #[test]
    fn symmetric_executions_share_cache_entries() {
        use txmm_core::ExecBuilder;
        // Message passing with the two locations swapped: canonically
        // identical, so the second intern aliases the first.
        let build = |first: u8, second: u8| {
            let mut b = ExecBuilder::new();
            let t0 = b.new_thread();
            b.write(t0, first);
            b.write(t0, second);
            let t1 = b.new_thread();
            b.read(t1, second);
            b.read(t1, first);
            b.build().unwrap()
        };
        let mut s = Session::new();
        let a = s.intern(&build(0, 1));
        let b = s.intern(&build(1, 0));
        assert_eq!(a, b, "location-symmetric variants intern to one id");
        assert_eq!(s.stats().interned, 1);
    }

    #[test]
    fn observability_cached_and_arch_guarded() {
        let mut s = Session::new();
        let sb = catalog::sb(None, false, false);
        assert_eq!(s.observable(&sb, Arch::X86), Some(true));
        assert_eq!(s.observable(&sb, Arch::X86), Some(true));
        assert_eq!(s.stats().observability_hits, 1);
        assert_eq!(s.stats().observability_misses, 1);
        assert_eq!(s.observable(&sb, Arch::Sc), None);
        let sb_fenced = catalog::sb(Some(txmm_core::Fence::MFence), false, false);
        assert_eq!(s.observable(&sb_fenced, Arch::X86), Some(false));
    }

    #[test]
    fn enumeration_streams_into_the_arena() {
        let mut s = Session::new();
        let cfg = EnumConfig {
            arch: Arch::X86,
            events: 2,
            max_threads: 2,
            max_locs: 2,
            fences: true,
            deps: false,
            rmws: true,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        let ids = s.intern_enumeration(&cfg);
        // One id per streamed candidate, all distinct: the streaming
        // enumerator emits one representative per canonical class and
        // the arena keys by that class.
        assert_eq!(ids.len(), txmm_synth::count(&cfg));
        let mut uniq = ids.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), ids.len(), "no canonical aliasing collisions");
        assert_eq!(s.stats().interned, ids.len());
        // Re-running the stream interns nothing new.
        let again = s.intern_enumeration(&cfg);
        assert_eq!(s.stats().interned, ids.len());
        assert_eq!(again.len(), ids.len());
    }

    #[test]
    fn sweeps_route_through_session() {
        let s = Session::new();
        let tsc = s.resolve("TSC").unwrap();
        let sc = s.resolve("SC").unwrap();
        let cfg = EnumConfig {
            arch: Arch::Sc,
            events: 3,
            max_threads: 2,
            max_locs: 2,
            fences: false,
            deps: false,
            rmws: false,
            txns: true,
            attrs: false,
            atomic_txns: false,
        };
        let r = s.synthesise(&cfg, tsc, sc, None);
        assert!(r.forbid.len() >= 4);
        assert!(!s.distinguish(&cfg, tsc, sc, Some(1)).is_empty());
    }
}
