//! Litmus-corpus generation: the shared builder behind `txmm gen`, the
//! CI smoke corpus, and the serving integration tests (one definition,
//! so they cannot silently diverge).

use txmm_litmus::{litmus_from_execution, render};
use txmm_models::{catalog, Arch};
use txmm_synth::EnumConfig;

use crate::session::Session;

/// The serving architecture of a catalog entry: the first hardware
/// model it states expectations for, C++ if only C++ models do, SC
/// otherwise.
pub fn entry_arch(expect: &[(&str, catalog::Expect)]) -> Arch {
    for (m, _) in expect {
        match *m {
            "x86" | "x86-tm" => return Arch::X86,
            "power" | "power-tm" => return Arch::Power,
            "armv8" | "armv8-tm" => return Arch::Armv8,
            _ => {}
        }
    }
    if expect.iter().any(|(m, _)| m.starts_with("cpp")) {
        Arch::Cpp
    } else {
        Arch::Sc
    }
}

/// File-system-safe test name.
pub fn sanitise(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// The standard generated corpus as `(file-stem, litmus source)` pairs:
/// every named execution of the paper plus the synthesised x86
/// Forbid/Allow suites at `events` events. At the default `events = 3`
/// this is 50 tests.
pub fn generate(events: usize) -> Vec<(String, String)> {
    generate_on(&Session::new(), events)
}

/// [`generate`] against a caller-supplied session, so drivers that
/// attach walk-progress telemetry (`txmm gen --progress`) observe the
/// synthesis walk they asked for.
pub fn generate_on(session: &Session, events: usize) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for entry in catalog::all() {
        let arch = entry_arch(&entry.expect);
        let t = litmus_from_execution(entry.name, &entry.exec, arch);
        out.push((sanitise(entry.name), render::pseudocode(&t)));
    }
    // Synthesised conformance tests, via the same Session pipeline the
    // server uses.
    let tm = session.resolve("x86-tm").expect("registered");
    let base = session.resolve("x86").expect("registered");
    let cfg = EnumConfig {
        arch: Arch::X86,
        events,
        max_threads: 3,
        max_locs: 2,
        fences: true,
        deps: false,
        rmws: true,
        txns: true,
        attrs: false,
        atomic_txns: false,
    };
    let suite = session.synthesise(&cfg, tm, base, None);
    for (i, f) in suite.forbid.iter().enumerate() {
        let name = format!("x86-forbid-{i}");
        let t = litmus_from_execution(&name, &f.exec, Arch::X86);
        out.push((name, render::pseudocode(&t)));
    }
    for (i, a) in suite.allow.iter().enumerate() {
        let name = format!("x86-allow-{i}");
        let t = litmus_from_execution(&name, a, Arch::X86);
        out.push((name, render::pseudocode(&t)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_corpus_meets_the_serving_floor() {
        let corpus = generate(3);
        assert!(corpus.len() >= 20, "got {}", corpus.len());
        // Names are filesystem-safe and unique.
        let mut names: Vec<&String> = corpus.iter().map(|(n, _)| n).collect();
        assert!(names
            .iter()
            .all(|n| n.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
    }

    #[test]
    fn entry_arch_prefers_hardware_models() {
        use txmm_models::catalog::Expect;
        assert_eq!(
            entry_arch(&[("SC", Expect::Consistent), ("power", Expect::Forbidden)]),
            Arch::Power
        );
        assert_eq!(entry_arch(&[("cpp-tm", Expect::Consistent)]), Arch::Cpp);
        assert_eq!(entry_arch(&[("TSC", Expect::Consistent)]), Arch::Sc);
    }
}
