//! # txmm-models
//!
//! Axiomatic weak-memory models with transactional extensions, following
//! *"The Semantics of Transactions and Weak Memory in x86, Power, ARM,
//! and C++"*:
//!
//! * [`sc`] — SC and transactional SC (Fig. 4), weak/strong isolation (§3.3);
//! * [`x86`] — TSO with TSX-style transactions (Fig. 5);
//! * [`power`] — the Herding-cats Power model with Power TM (Fig. 6);
//! * [`armv8`] — the official ARMv8 model with the proposed TM extension
//!   (Fig. 8);
//! * [`cpp`] — RC11 with the C++ TM technical specification, in the
//!   paper's simplified formulation (Fig. 9, §7.2);
//! * [`catalog`] — every named execution from the paper with its expected
//!   verdicts;
//! * [`registry`] — model lookup for tools.
//!
//! ## Example
//!
//! ```
//! use txmm_models::prelude::*;
//!
//! // Store buffering with both sides transactional is forbidden under
//! // the transactional x86 model but allowed by the baseline.
//! let x = txmm_models::catalog::sb(None, true, true);
//! assert!(X86::base().consistent(&x));
//! assert!(!X86::tm().consistent(&x));
//! ```

pub mod ablation;
pub mod arch;
pub mod armv8;
pub mod catalog;
pub mod cpp;
pub(crate) mod delta;
pub mod model;
pub mod power;
pub mod registry;
pub mod sc;
pub mod shapes;
pub mod x86;

pub use ablation::{PowerAblated, PowerAblation};
pub use arch::{Arch, VocabError};
pub use armv8::Armv8;
pub use cpp::Cpp;
pub use model::{check_models, consistent_pair, Checker, Derived, Model, Verdict};
pub use power::Power;
pub use sc::{strong_isolation, strong_isolation_atomic, weak_isolation, Sc, Tsc};
pub use x86::X86;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::arch::Arch;
    pub use crate::armv8::Armv8;
    pub use crate::cpp::Cpp;
    pub use crate::model::{Model, Verdict};
    pub use crate::power::Power;
    pub use crate::sc::{Sc, Tsc};
    pub use crate::x86::X86;
}
