//! The ARMv8 memory model with the proposed TM extension (Fig. 8).
//!
//! The baseline is the official multicopy-atomic axiomatic model
//! (Deacon's `aarch64.cat`, Pulte et al. POPL 2018): ordered-before
//! `ob = come ∪ dob ∪ aob ∪ bob`, required acyclic. The paper's TM
//! extension (unofficial, based on a proposal considered within ARM
//! Research) adds `tfence` to `ob`, plus `StrongIsol`, `TxnOrder` and
//! `TxnCancelsRMW`.

use txmm_core::incr::{ComposeRule, DeltaPlan, EdgeKind, EdgeSel, Lift, Obligation, PruneOracle};
use txmm_core::{stronglift, union_all, Execution, ExecutionAnalysis, Fence, Rel};

use crate::arch::Arch;
use crate::delta::{com_feeds, come_feeds};
use crate::model::{Checker, Derived, Model};

/// The ARMv8 model; `tm` selects the transactional extension.
#[derive(Debug, Clone, Copy)]
pub struct Armv8 {
    /// Interpret transactions?
    pub tm: bool,
}

impl Armv8 {
    /// The transactional model.
    pub fn tm() -> Armv8 {
        Armv8 { tm: true }
    }

    /// The non-transactional baseline.
    pub fn base() -> Armv8 {
        Armv8 { tm: false }
    }

    /// Dependency-ordered-before (elided in Fig. 8; from `aarch64.cat`).
    pub fn dob(a: &ExecutionAnalysis<'_>) -> Rel {
        let n = a.len();
        let po = a.po();
        let idw = Rel::id_on(n, a.writes());
        let idr = Rel::id_on(n, a.reads());
        let idisb = Rel::id_on(n, a.exec().fence_events(Fence::Isb));
        let addr = a.addr();
        let data = a.data();
        // ARMv8 dependencies order only when sourced at a read: a ctrl
        // from a store-exclusive's result does NOT order later accesses
        // (that is exactly the Example 1.1 / Appendix B relaxation).
        let ctrl = &Rel::id_on(n, a.reads()).seq(a.ctrl());
        let addr_po = addr.seq(po);
        union_all(
            n,
            [
                addr,
                data,
                &ctrl.seq(&idw),
                &ctrl.union(&addr_po).seq(&idisb).seq(po).seq(&idr),
                &addr.seq(po).seq(&idw),
                &ctrl.union(data).seq(a.coi()),
                &addr.union(data).seq(a.rfi()),
            ],
        )
    }

    /// Atomic-ordered-before: `aob = rmw ∪ [range(rmw)] ; rfi ; [A]`.
    pub fn aob(a: &ExecutionAnalysis<'_>) -> Rel {
        let n = a.len();
        let idwx = Rel::id_on(n, a.rmw().range());
        let ida = Rel::id_on(n, a.acq());
        a.rmw().union(&idwx.seq(a.rfi()).seq(&ida))
    }

    /// Barrier-ordered-before (from `aarch64.cat`).
    pub fn bob(a: &ExecutionAnalysis<'_>) -> Rel {
        let n = a.len();
        let po = a.po();
        let iddmb = Rel::id_on(n, a.exec().fence_events(Fence::Dmb));
        let iddmbld = Rel::id_on(n, a.exec().fence_events(Fence::DmbLd));
        let iddmbst = Rel::id_on(n, a.exec().fence_events(Fence::DmbSt));
        let ida = Rel::id_on(n, a.acq().inter(a.reads()));
        let idl = Rel::id_on(n, a.rel_events().inter(a.writes()));
        let idr = Rel::id_on(n, a.reads());
        let idw = Rel::id_on(n, a.writes());
        union_all(
            n,
            [
                &po.seq(&iddmb).seq(po),
                &idl.seq(po).seq(&ida),
                &idr.seq(po).seq(&iddmbld).seq(po),
                &ida.seq(po),
                &idw.seq(po).seq(&iddmbst).seq(po).seq(&idw),
                &po.seq(&idl),
                &po.seq(&idl).seq(a.coi()),
            ],
        )
    }

    /// Ordered-before: `ob = come ∪ dob ∪ aob ∪ bob (∪ tfence)`.
    ///
    /// The `come ∪ dob ∪ aob ∪ bob` part is txn-independent, so it is
    /// memoised under `"armv8.ob"` and shared across the transaction
    /// layouts of one rf/co structure; only the `tfence` union varies.
    pub fn ob(&self, a: &ExecutionAnalysis<'_>) -> Rel {
        let fixed = a.memo("armv8.ob", || {
            union_all(
                a.len(),
                [a.come(), &Armv8::dob(a), &Armv8::aob(a), &Armv8::bob(a)],
            )
        });
        if self.tm {
            fixed.union(a.tfence())
        } else {
            fixed
        }
    }
}

impl Model for Armv8 {
    fn name(&self) -> &'static str {
        if self.tm {
            "armv8-tm"
        } else {
            "armv8"
        }
    }

    fn arch(&self) -> Arch {
        Arch::Armv8
    }

    fn is_tm(&self) -> bool {
        self.tm
    }

    fn derived(&self, a: &ExecutionAnalysis<'_>) -> Derived {
        let ob = self.ob(a);
        let mut d = Derived::new();
        if self.tm {
            d.insert("txnorder", stronglift(&ob, a.stxn()));
        }
        d.insert("ob", ob);
        d
    }

    fn axioms(&self, a: &ExecutionAnalysis<'_>, d: &Derived, c: &mut Checker) {
        c.acyclic("Coherence", a.coherence());
        c.acyclic("Order", d.expect("ob"));
        c.empty("RMWIsol", a.rmw_isol());
        if self.tm {
            c.acyclic("StrongIsol", a.strong_isol());
            c.acyclic("TxnOrder", d.expect("txnorder"));
            c.empty("TxnCancelsRMW", a.txn_cancels_rmw());
        }
    }

    fn prune_oracle(&self, _txns_known: bool) -> Option<&dyn PruneOracle> {
        Some(self)
    }
}

// `ob` and the TM additions are monotone in (rf, co, fr); as for
// Power, the lifts cannot fire spuriously while txns are unassigned.
impl PruneOracle for Armv8 {
    fn viable(&self, a: &ExecutionAnalysis<'_>) -> bool {
        self.check_analysis(a).is_consistent()
    }

    fn coherence_gate(&self) -> bool {
        true
    }
    fn event_monotone(&self) -> bool {
        true // pairwise builtins and monotone compositions only
    }

    fn txn_aware_exact(&self) -> bool {
        true // viable == the full check; `ob` decomposes exactly and
             // TxnCancelsRMW is pre-decided into `plan.dead`
    }

    // Exact decomposition of `ob`: the fixed part is `ob` on the base
    // analysis (communication empty), and the communication-dependent
    // terms are `come` (direct external feeds) plus four per-edge
    // compose rules with fixed left context:
    //
    //   dob:  ([R];ctrl ∪ data) ; coi      — Co internal, ctx-composed
    //   dob:  (addr ∪ data) ; rfi          — Rf internal, ctx-composed
    //   aob:  [range(rmw)] ; rfi ; [A]     — Rf internal, endpoint-set
    //   bob:  po ; [rel ∩ W] ; coi         — Co internal, ctx-composed
    //
    // TxnCancelsRMW is structure-fixed and pre-decided into
    // `plan.dead`; the TM lifts distribute over the union as for x86.
    fn delta_plan(&self, x: &Execution) -> Option<DeltaPlan> {
        let n = x.len();
        let base = ExecutionAnalysis::with_fr(x, Rel::empty(n));
        let rctrl = Rel::id_on(n, base.reads()).seq(base.ctrl());
        let ob_feeds = || -> Vec<ComposeRule> {
            let everything = txmm_core::EventSet::from_bits(u64::MAX);
            let mut feed = come_feeds();
            feed.push(ComposeRule {
                kind: EdgeKind::Co,
                sel: EdgeSel::Internal,
                a_in: everything,
                b_in: everything,
                ctx: Some(rctrl.union(base.data()).inverse()),
                rctx: None,
            });
            feed.push(ComposeRule {
                kind: EdgeKind::Rf,
                sel: EdgeSel::Internal,
                a_in: everything,
                b_in: everything,
                ctx: Some(base.addr().union(base.data()).inverse()),
                rctx: None,
            });
            feed.push(ComposeRule {
                kind: EdgeKind::Rf,
                sel: EdgeSel::Internal,
                a_in: base.rmw().range(),
                b_in: base.acq(),
                ctx: None,
                rctx: None,
            });
            feed.push(ComposeRule {
                kind: EdgeKind::Co,
                sel: EdgeSel::Internal,
                a_in: base.rel_events().inter(base.writes()),
                b_in: everything,
                ctx: Some(base.po().inverse()),
                rctx: None,
            });
            feed
        };
        let ob_fixed = self.ob(&base);
        let mut plan = DeltaPlan::fallback(x, true);
        plan.exact = true;
        if self.tm {
            plan.dead = !base.txn_cancels_rmw().is_empty();
        }
        plan.obls.push(Obligation {
            seed: ob_fixed,
            feed: ob_feeds(),
            lift: Lift::No,
        });
        let stxn = x.stxn();
        if self.tm && !stxn.is_empty() {
            plan.obls.push(Obligation {
                seed: Rel::empty(n),
                feed: com_feeds(),
                lift: Lift::Strong,
            });
            plan.obls.push(Obligation {
                seed: stronglift(&ob_fixed, &stxn),
                feed: ob_feeds(),
                lift: Lift::Strong,
            });
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_core::{ExecBuilder, Execution};

    fn mp(strength: &str) -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let _wx = b.write(t0, 0);
        if strength == "dmb" || strength == "full" {
            b.fence(t0, Fence::Dmb);
        }
        let wy = if strength == "rel" || strength == "rel-acq" {
            b.write_rel(t0, 1)
        } else {
            b.write(t0, 1)
        };
        let t1 = b.new_thread();
        let ry = if strength == "rel-acq" || strength == "acq" {
            b.read_acq(t1, 1)
        } else {
            b.read(t1, 1)
        };
        let rx = b.read(t1, 0);
        if strength == "full" || strength == "dep" || strength == "rel" {
            b.addr(ry, rx);
        }
        b.rf(wy, ry);
        b.build().unwrap()
    }

    #[test]
    fn mp_plain_allowed() {
        assert!(Armv8::base().consistent(&mp("plain")));
    }

    #[test]
    fn mp_dmb_addr_forbidden() {
        // DMB on the writer + address dependency on the reader: come ∪
        // bob ∪ dob cycle.
        assert!(!Armv8::base().consistent(&mp("full")));
    }

    #[test]
    fn mp_release_acquire_forbidden() {
        // STLR/LDAR pairing restores order (bob: po;[L] and [A];po).
        assert!(!Armv8::base().consistent(&mp("rel-acq")));
    }

    #[test]
    fn mp_release_dep_forbidden() {
        // STLR + address dependency: po;[L] orders the writes; dob
        // orders the reads.
        assert!(!Armv8::base().consistent(&mp("rel")));
    }

    #[test]
    fn mp_half_strength_allowed() {
        assert!(Armv8::base().consistent(&mp("dep")));
        assert!(Armv8::base().consistent(&mp("dmb")));
        assert!(Armv8::base().consistent(&mp("acq")));
    }

    #[test]
    fn sb_with_dmb_forbidden() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let _w0 = b.write(t0, 0);
        b.fence(t0, Fence::Dmb);
        let _r0 = b.read(t0, 1);
        let t1 = b.new_thread();
        let _w1 = b.write(t1, 1);
        b.fence(t1, Fence::Dmb);
        let _r1 = b.read(t1, 0);
        let x = b.build().unwrap();
        assert!(!Armv8::base().consistent(&x));
        // dmb.st is the wrong barrier for W->R: still allowed.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write(t0, 0);
        b.fence(t0, Fence::DmbSt);
        b.read(t0, 1);
        let t1 = b.new_thread();
        b.write(t1, 1);
        b.fence(t1, Fence::DmbSt);
        b.read(t1, 0);
        let y = b.build().unwrap();
        assert!(Armv8::base().consistent(&y));
    }

    #[test]
    fn iriw_forbidden_multicopy_atomic() {
        // ARMv8 is multicopy-atomic: IRIW with acquire loads is
        // forbidden even without transactions.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.write(t0, 0);
        let t1 = b.new_thread();
        let r1 = b.read_acq(t1, 0);
        let r2 = b.read_acq(t1, 1);
        let t2 = b.new_thread();
        let r3 = b.read_acq(t2, 1);
        let r4 = b.read_acq(t2, 0);
        let t3 = b.new_thread();
        let f = b.write(t3, 1);
        b.rf(a, r1);
        b.rf(f, r3);
        let _ = (r2, r4); // both read initial values
        let x = b.build().unwrap();
        assert!(!Armv8::base().consistent(&x));
    }

    #[test]
    fn ldar_orders_later_accesses() {
        // [A];po ∈ bob: an acquire load orders everything after it.
        let x = mp("acq");
        let ob = Armv8::base().ob(&x.analysis());
        assert!(ob.contains(2, 3));
    }

    #[test]
    fn stlr_one_way_fence() {
        // po;[L] ∈ bob: a release store is ordered after everything
        // before it, but later accesses may float up past it.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r = b.read(t0, 0);
        let w = b.write_rel(t0, 1);
        let r2 = b.read(t0, 2);
        let x = b.build().unwrap();
        let ob = Armv8::base().ob(&x.analysis());
        assert!(ob.contains(r, w));
        assert!(!ob.contains(w, r2));
    }

    #[test]
    fn txn_cancels_rmw_inherited() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r = b.read(t0, 0);
        let w = b.write(t0, 0);
        b.rmw(r, w);
        b.txn(&[r]);
        b.txn(&[w]);
        let x = b.build().unwrap();
        let v = Armv8::tm().check(&x);
        assert!(v.violations().contains(&"TxnCancelsRMW"));
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r = b.read(t0, 0);
        let w = b.write(t0, 0);
        b.rmw(r, w);
        b.txn(&[r, w]);
        assert!(Armv8::tm().consistent(&b.build().unwrap()));
    }

    #[test]
    fn transactional_sb_forbidden() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w0 = b.write(t0, 0);
        let r0 = b.read(t0, 1);
        let t1 = b.new_thread();
        let w1 = b.write(t1, 1);
        let r1 = b.read(t1, 0);
        b.txn(&[w0, r0]);
        b.txn(&[w1, r1]);
        let x = b.build().unwrap();
        assert!(Armv8::base().consistent(&x));
        let v = Armv8::tm().check(&x);
        assert!(v.violations().contains(&"TxnOrder"));
    }

    #[test]
    fn tfence_orders_around_txn() {
        // A write before a transaction is ordered before events inside
        // it, making MP forbidden when the flag update is transactional.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let _wx = b.write(t0, 0);
        let wy = b.write(t0, 1);
        b.txn(&[wy]);
        let t1 = b.new_thread();
        let ry = b.read(t1, 1);
        let rx = b.read(t1, 0);
        b.txn(&[ry, rx]);
        b.rf(wy, ry);
        let x = b.build().unwrap();
        // ob: wx -tfence-> wy -rfe-> ry/rx txn; fr(rx, wx) closes a
        // TxnOrder cycle.
        let v = Armv8::tm().check(&x);
        assert!(!v.is_consistent());
        assert!(Armv8::base().consistent(&x.erase_txns()));
    }

    #[test]
    fn tm_equals_base_without_txns() {
        for s in ["plain", "full", "rel-acq", "dep"] {
            let x = mp(s);
            assert_eq!(Armv8::base().consistent(&x), Armv8::tm().consistent(&x));
        }
    }
}
