//! A registry of every model, for lookup by name in tools and tests.

use crate::armv8::Armv8;
use crate::cpp::Cpp;
use crate::model::Model;
use crate::power::Power;
use crate::sc::{Sc, Tsc};
use crate::x86::X86;

/// Every model in the paper: baselines and transactional extensions.
pub fn all_models() -> Vec<Box<dyn Model>> {
    vec![
        Box::new(Sc),
        Box::new(Tsc),
        Box::new(X86::base()),
        Box::new(X86::tm()),
        Box::new(Power::base()),
        Box::new(Power::tm()),
        Box::new(Armv8::base()),
        Box::new(Armv8::tm()),
        Box::new(Cpp::base()),
        Box::new(Cpp::tm()),
    ]
}

/// Look a model up by its [`Model::name`].
pub fn by_name(name: &str) -> Option<Box<dyn Model>> {
    all_models().into_iter().find(|m| m.name() == name)
}

/// The `(tm, baseline)` pairs used by the synthesiser.
pub fn tm_pairs() -> Vec<(Box<dyn Model>, Box<dyn Model>)> {
    vec![
        (
            Box::new(X86::tm()) as Box<dyn Model>,
            Box::new(X86::base()) as Box<dyn Model>,
        ),
        (Box::new(Power::tm()), Box::new(Power::base())),
        (Box::new(Armv8::tm()), Box::new(Armv8::base())),
        (Box::new(Tsc), Box::new(Sc)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_unique() {
        let models = all_models();
        let mut names: Vec<_> = models.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), models.len());
    }

    #[test]
    fn lookup() {
        assert!(by_name("x86-tm").is_some());
        assert!(by_name("power").is_some());
        assert!(by_name("nope").is_none());
        assert_eq!(by_name("armv8-tm").unwrap().name(), "armv8-tm");
    }

    #[test]
    fn tm_flags() {
        for m in all_models() {
            assert_eq!(m.name().ends_with("-tm") || m.name() == "TSC", m.is_tm());
        }
    }
}
