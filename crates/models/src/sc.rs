//! Sequential consistency and transactional SC (§3.4, Fig. 4), plus the
//! weak/strong isolation predicates of §3.3.

use txmm_core::incr::{DeltaPlan, Lift, Obligation, PruneOracle};
use txmm_core::{stronglift, Execution, ExecutionAnalysis, Rel};

use crate::arch::Arch;
use crate::delta::com_feeds;
use crate::model::{Checker, Derived, Model};

/// The SC memory model: `acyclic(po ∪ com)` (Shasha & Snir).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sc;

impl Model for Sc {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn arch(&self) -> Arch {
        Arch::Sc
    }

    fn is_tm(&self) -> bool {
        false
    }

    fn derived(&self, a: &ExecutionAnalysis<'_>) -> Derived {
        let mut d = Derived::new();
        d.insert("hb", sc_hb(a));
        d
    }

    fn axioms(&self, _a: &ExecutionAnalysis<'_>, d: &Derived, c: &mut Checker) {
        c.acyclic("Order", d.expect("hb"));
    }

    fn prune_oracle(&self, _txns_known: bool) -> Option<&dyn PruneOracle> {
        Some(self)
    }
}

// `po ∪ com` only grows with (rf, co, fr), so the full check prunes
// partial executions soundly.
impl PruneOracle for Sc {
    fn viable(&self, a: &ExecutionAnalysis<'_>) -> bool {
        self.check_analysis(a).is_consistent()
    }

    fn coherence_gate(&self) -> bool {
        true // acyclic(po ∪ com) subsumes acyclic(po_loc ∪ com)
    }

    fn event_monotone(&self) -> bool {
        true // po and com are preserved pointwise under event growth
    }

    fn txn_aware_exact(&self) -> bool {
        true // viable == the full check; the plan answers every probe
    }

    // The single axiom decomposes exactly: seed po, feed com edge by
    // edge. Exact — a clean detector IS the axiom.
    fn delta_plan(&self, x: &Execution) -> Option<DeltaPlan> {
        let mut plan = DeltaPlan::fallback(x, false);
        plan.exact = true;
        plan.obls.push(Obligation {
            seed: *x.po(),
            feed: com_feeds(),
            lift: Lift::No,
        });
        Some(plan)
    }
}

/// Transactional SC: SC plus `acyclic(stronglift(hb, stxn))` (Fig. 4).
///
/// TSC is the upper bound on the guarantees a reasonable TM
/// implementation provides; every architecture model of the paper lies
/// between [`weak_isolation`] and TSC.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tsc;

impl Model for Tsc {
    fn name(&self) -> &'static str {
        "TSC"
    }

    fn arch(&self) -> Arch {
        Arch::Sc
    }

    fn is_tm(&self) -> bool {
        true
    }

    fn derived(&self, a: &ExecutionAnalysis<'_>) -> Derived {
        let hb = sc_hb(a);
        let txnorder = stronglift(&hb, a.stxn());
        let mut d = Derived::new();
        d.insert("hb", hb);
        d.insert("txnorder", txnorder);
        d
    }

    fn axioms(&self, _a: &ExecutionAnalysis<'_>, d: &Derived, c: &mut Checker) {
        c.acyclic("Order", d.expect("hb"));
        c.acyclic("TxnOrder", d.expect("txnorder"));
    }

    fn prune_oracle(&self, _txns_known: bool) -> Option<&dyn PruneOracle> {
        Some(self)
    }
}

// As for [`Sc`]; the TxnOrder lift is monotone in `hb` with `stxn`
// fixed, and empty while transactions are still unassigned.
impl PruneOracle for Tsc {
    fn viable(&self, a: &ExecutionAnalysis<'_>) -> bool {
        self.check_analysis(a).is_consistent()
    }

    fn coherence_gate(&self) -> bool {
        true
    }

    fn event_monotone(&self) -> bool {
        true // as Sc; the lift only grows with hb and the txn classes
    }

    fn txn_aware_exact(&self) -> bool {
        true // both obligations decompose exactly with stxn fixed
    }

    // Order as for Sc; TxnOrder = stronglift(po ∪ com, stxn)
    // distributes over the union, so its obligation seeds the lifted
    // `po` and strong-lifts each com edge on arrival. With no
    // transactions TxnOrder degenerates to Order and is omitted.
    fn delta_plan(&self, x: &Execution) -> Option<DeltaPlan> {
        let mut plan = DeltaPlan::fallback(x, false);
        plan.exact = true;
        plan.obls.push(Obligation {
            seed: *x.po(),
            feed: com_feeds(),
            lift: Lift::No,
        });
        let stxn = x.stxn();
        if !stxn.is_empty() {
            plan.obls.push(Obligation {
                seed: stronglift(x.po(), &stxn),
                feed: com_feeds(),
                lift: Lift::Strong,
            });
        }
        Some(plan)
    }
}

/// Weak isolation (§3.3): transactions are isolated from other
/// *transactions* — `acyclic(weaklift(com, stxn))`.
pub fn weak_isolation(x: &Execution) -> bool {
    x.analysis().weak_isol().is_acyclic()
}

/// Strong isolation (§3.3): transactions are also isolated from
/// non-transactional code — `acyclic(stronglift(com, stxn))`.
pub fn strong_isolation(x: &Execution) -> bool {
    x.analysis().strong_isol().is_acyclic()
}

/// Strong isolation restricted to *atomic* transactions, the property of
/// Theorem 7.2: `acyclic(stronglift(com, stxnat))`.
pub fn strong_isolation_atomic(x: &Execution) -> bool {
    x.analysis().strong_isol_atomic().is_acyclic()
}

/// The `hb` relation used by SC/TSC (exported for the metatheory code).
pub fn sc_hb(a: &ExecutionAnalysis<'_>) -> Rel {
    a.po().union(a.com())
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_core::ExecBuilder;

    /// Fig. 3 shapes: 3-event executions distinguishing weak from strong
    /// isolation. The two same-thread events form a transaction; the
    /// interfering event is non-transactional.
    mod fig3 {
        use super::*;

        /// (a) non-interference: R x; R x in a txn, external W x between
        /// the two reads (first read sees the initial value, second sees
        /// the interfering write).
        pub fn a() -> Execution {
            let mut b = ExecBuilder::new();
            let t0 = b.new_thread();
            let r1 = b.read(t0, 0);
            let r2 = b.read(t0, 0);
            let t1 = b.new_thread();
            let w = b.write(t1, 0);
            // r1 reads the initial value, so fr(r1, w); r2 observes w.
            b.rf(w, r2);
            b.txn(&[r1, r2]);
            b.build().unwrap()
        }

        /// (b) RMW-style: R x; W x in a txn, external W x in between.
        pub fn b() -> Execution {
            let mut bd = ExecBuilder::new();
            let t0 = bd.new_thread();
            let r = bd.read(t0, 0);
            let w1 = bd.write(t0, 0);
            let t1 = bd.new_thread();
            let w2 = bd.write(t1, 0);
            // r reads init, so fr(r, w2); w2 co-before w1.
            bd.co(w2, w1);
            bd.txn(&[r, w1]);
            bd.build().unwrap()
        }

        /// (c) intermediate-value leak: W x; W x in a txn, external R x
        /// observing the first write.
        pub fn c() -> Execution {
            let mut b = ExecBuilder::new();
            let t0 = b.new_thread();
            let w1 = b.write(t0, 0);
            let w2 = b.write(t0, 0);
            let t1 = b.new_thread();
            let r = b.read(t1, 0);
            b.rf(w1, r);
            b.co(w1, w2);
            b.txn(&[w1, w2]);
            b.build().unwrap()
        }

        /// (d) containment: W x; R x in a txn, the read observing an
        /// external write that is co-*after* the transaction's own write.
        pub fn d() -> Execution {
            let mut b = ExecBuilder::new();
            let t0 = b.new_thread();
            let w1 = b.write(t0, 0);
            let r = b.read(t0, 0);
            let t1 = b.new_thread();
            let w2 = b.write(t1, 0);
            b.rf(w2, r);
            b.co(w1, w2);
            b.txn(&[w1, r]);
            b.build().unwrap()
        }
    }

    #[test]
    fn fig3_weak_allows_strong_forbids() {
        for (name, x) in [
            ("a", fig3::a()),
            ("b", fig3::b()),
            ("c", fig3::c()),
            ("d", fig3::d()),
        ] {
            assert!(
                weak_isolation(&x),
                "fig3({name}) should satisfy weak isolation"
            );
            assert!(
                !strong_isolation(&x),
                "fig3({name}) should violate strong isolation"
            );
        }
    }

    #[test]
    fn fig3_sc_allows_tsc_forbids() {
        // All four are SC executions (Fig. 3's caption) but TSC forbids
        // them since TxnOrder subsumes StrongIsol.
        for x in [fig3::a(), fig3::b(), fig3::c(), fig3::d()] {
            assert!(Sc.consistent(&x));
            assert!(!Tsc.consistent(&x));
        }
    }

    #[test]
    fn fig3_interferer_in_txn_violates_weak() {
        // Wrapping the interfering event in its own transaction turns
        // each violation into a weak-isolation violation too.
        let x = fig3::c();
        let interferer = 2; // the external read
        let mut y = x.clone();
        y.txns_mut().push(txmm_core::TxnClass {
            events: vec![interferer],
            atomic: false,
        });
        assert!(!weak_isolation(&y));
    }

    #[test]
    fn sc_forbids_po_com_cycle() {
        // Message passing with stale data read: forbidden under SC.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let wx = b.write(t0, 0);
        let wy = b.write(t0, 1);
        let t1 = b.new_thread();
        let ry = b.read(t1, 1);
        let rx = b.read(t1, 0);
        b.rf(wy, ry); // sees the flag...
        let _ = (wx, rx); // ...but rx reads the initial x: fr(rx, wx).
        let x = b.build().unwrap();
        assert!(!Sc.consistent(&x));
        let v = Sc.check(&x);
        assert_eq!(v.violations(), ["Order"]);
    }

    #[test]
    fn sc_allows_sequential() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read(t0, 0);
        b.rf(w, r);
        let x = b.build().unwrap();
        assert!(Sc.consistent(&x));
        assert!(Tsc.consistent(&x));
    }

    #[test]
    fn tsc_no_txn_equals_sc() {
        // On transaction-free executions TSC coincides with SC.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write(t0, 0);
        b.read(t0, 1);
        let t1 = b.new_thread();
        b.write(t1, 1);
        b.read(t1, 0);
        let x = b.build().unwrap(); // store-buffering, both reads read init
        assert_eq!(Sc.consistent(&x), Tsc.consistent(&x));
        assert!(!Tsc.consistent(&x));
    }

    #[test]
    fn strong_isolation_atomic_only_counts_stxnat() {
        // A strong-isolation violation through a *relaxed* transaction is
        // invisible to the atomic-only predicate.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w1 = b.write(t0, 0);
        let w2 = b.write(t0, 0);
        let t1 = b.new_thread();
        let r = b.read(t1, 0);
        b.rf(w1, r);
        b.co(w1, w2);
        b.txn(&[w1, w2]); // relaxed
        let x = b.build().unwrap();
        assert!(!strong_isolation(&x));
        assert!(strong_isolation_atomic(&x));
    }
}
