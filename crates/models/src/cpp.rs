//! The C++ memory model with the TM technical specification (Fig. 9).
//!
//! The baseline is RC11 (Lahav et al., PLDI 2017) — chosen by the paper
//! because its fixes make compilation to Power sound, which §8.2 checks.
//! The TM extension is the paper's *simplified* formulation (§7.2): a
//! `tsw` relation (`weaklift(ecom, stxn)`) joins happens-before, avoiding
//! the specification's quantification over total transaction orders.
//!
//! C++ defines two predicates: *consistency* and *race-freedom*. A racy
//! program is undefined; [`Cpp::racy`] reports races separately from the
//! consistency verdict.

use txmm_core::incr::{ComposeRule, DeltaPlan, EdgeKind, EdgeSel, Lift, Obligation, PruneOracle};
#[cfg(test)]
use txmm_core::Attrs;
use txmm_core::{union_all, weaklift, Execution, ExecutionAnalysis, Rel};

use crate::arch::Arch;
use crate::model::{Checker, Derived, Model};

/// The C++ model; `tm` enables the transactional synchronisation rule.
#[derive(Debug, Clone, Copy)]
pub struct Cpp {
    /// Interpret transactions?
    pub tm: bool,
}

impl Cpp {
    /// The transactional model.
    pub fn tm() -> Cpp {
        Cpp { tm: true }
    }

    /// The non-transactional baseline (plain RC11).
    pub fn base() -> Cpp {
        Cpp { tm: false }
    }

    /// The synchronises-with relation (RC11):
    /// `sw = [Rel] ; ([F] ; po)? ; rs ; rf ; [R ∩ Ato] ; (po ; [F])? ; [Acq]`
    /// with the release sequence `rs = [W] ; poloc? ; [W ∩ Ato] ; (rf ; rmw)*`.
    pub fn sw(a: &ExecutionAnalysis<'_>) -> Rel {
        let n = a.len();
        let po = a.po();
        let idw = Rel::id_on(n, a.writes());
        let idwa = Rel::id_on(n, a.writes().inter(a.ato()));
        let idra = Rel::id_on(n, a.reads().inter(a.ato()));
        let idf = Rel::id_on(n, a.fences());
        let idrel = Rel::id_on(n, a.rel_events());
        let idacq = Rel::id_on(n, a.acq());

        let rs = idw
            .seq(&a.po_loc().opt())
            .seq(&idwa)
            .seq(&a.rf().seq(a.rmw()).star());

        idrel
            .seq(&idf.seq(po).opt())
            .seq(&rs)
            .seq(a.rf())
            .seq(&idra)
            .seq(&po.seq(&idf).opt())
            .seq(&idacq)
    }

    /// Extended communication: `ecom = com ∪ (co ; rf)` (§7.2). Whenever
    /// two events conflict, they are related by `ecom` one way or the
    /// other.
    pub fn ecom(a: &ExecutionAnalysis<'_>) -> Rel {
        a.com().union(&a.co().seq(a.rf()))
    }

    /// Transactional synchronises-with: `tsw = weaklift(ecom, stxn)`.
    pub fn tsw(a: &ExecutionAnalysis<'_>) -> Rel {
        weaklift(&Cpp::ecom(a), a.stxn())
    }

    /// Happens-before: `hb = (sw ∪ tsw ∪ po)⁺`.
    pub fn hb(&self, a: &ExecutionAnalysis<'_>) -> Rel {
        let mut base = Cpp::sw(a).union(a.po());
        if self.tm {
            base = base.union(&Cpp::tsw(a));
        }
        base.plus()
    }

    /// The RC11 `psc` relation (elided in Fig. 9), over a precomputed
    /// happens-before.
    pub fn psc_from_hb(&self, a: &ExecutionAnalysis<'_>, hb: &Rel) -> Rel {
        let n = a.len();
        let hbopt = hb.opt();
        let sc = a.sc_events();
        let scf = sc.inter(a.fences());
        let idsc = Rel::id_on(n, sc);
        let idscf = Rel::id_on(n, scf);
        let eco = a.com().plus();
        let sloc = a.sloc();
        let po_neq_loc = a.po().minus(sloc);

        // scb = po ∪ (po≠loc ; hb ; po≠loc) ∪ (hb ∩ sloc) ∪ co ∪ fr
        let scb = union_all(
            n,
            [
                a.po(),
                &po_neq_loc.seq(hb).seq(&po_neq_loc),
                &hb.inter(sloc),
                a.co(),
                a.fr(),
            ],
        );

        let head = idsc.union(&idscf.seq(&hbopt));
        let tail = idsc.union(&hbopt.seq(&idscf));
        let psc_base = head.seq(&scb).seq(&tail);
        let psc_f = idscf.seq(&hb.union(&hb.seq(&eco).seq(hb))).seq(&idscf);
        psc_base.union(&psc_f)
    }

    /// The RC11 `psc` relation.
    pub fn psc(&self, a: &ExecutionAnalysis<'_>) -> Rel {
        self.psc_from_hb(a, &self.hb(a))
    }

    /// Conflicting event pairs:
    /// `cnf = ((W×W) ∪ (R×W) ∪ (W×R)) ∩ sloc \ id`.
    pub fn cnf(a: &ExecutionAnalysis<'_>) -> Rel {
        let n = a.len();
        let w = a.writes();
        let r = a.reads();
        union_all(
            n,
            [
                &Rel::cross(n, w, w),
                &Rel::cross(n, r, w),
                &Rel::cross(n, w, r),
            ],
        )
        .inter(a.sloc())
        .minus(&Rel::id(n))
    }

    /// Race detection against a shared analysis.
    pub fn racy_analysis(&self, a: &ExecutionAnalysis<'_>) -> bool {
        let n = a.len();
        let hb = self.hb(a);
        let ato2 = Rel::cross(n, a.ato(), a.ato());
        let races = Cpp::cnf(a).minus(&ato2).minus(&hb.union(&hb.inverse()));
        !races.is_empty()
    }

    /// Race detection: `NoRace` fails when two conflicting events, not
    /// both atomic, are unordered by happens-before.
    pub fn racy(&self, x: &Execution) -> bool {
        self.racy_analysis(&x.analysis())
    }

    /// Does the execution satisfy the TM specification's *vocabulary*
    /// side-condition: atomic transactions contain no atomic operations
    /// (§7, Theorem 7.2's hypothesis)?
    pub fn atomic_txns_wellformed(x: &Execution) -> bool {
        !x.stxnat().domain().intersects(x.ato())
    }
}

impl Model for Cpp {
    fn name(&self) -> &'static str {
        if self.tm {
            "cpp-tm"
        } else {
            "cpp"
        }
    }

    fn arch(&self) -> Arch {
        Arch::Cpp
    }

    fn is_tm(&self) -> bool {
        self.tm
    }

    fn derived(&self, a: &ExecutionAnalysis<'_>) -> Derived {
        let hb = self.hb(a);
        let mut d = Derived::new();
        d.insert("hbcom", hb.seq(&a.com().star()));
        d.insert("nothinair", a.po().union(a.rf()));
        d.insert("psc", self.psc_from_hb(a, &hb));
        d.insert("hb", hb);
        d
    }

    fn axioms(&self, a: &ExecutionAnalysis<'_>, d: &Derived, c: &mut Checker) {
        c.irreflexive("HbCom", d.expect("hbcom"));
        c.empty("RMWIsol", a.rmw_isol());
        c.acyclic("NoThinAir", d.expect("nothinair"));
        c.acyclic("SeqCst", d.expect("psc"));
    }

    fn prune_oracle(&self, _txns_known: bool) -> Option<&dyn PruneOracle> {
        Some(self)
    }
}

// hb, psc and the axiom bodies are monotone in (rf, co, fr): every
// `minus` in their definitions has a fixed (label-derived) right-hand
// side, and `tsw` is empty while txns are unassigned. No coherence
// gate — RC11 does not entail `acyclic(po_loc ∪ com)` (races aside,
// only `hb ∩ sloc` of it enters an axiom).
impl PruneOracle for Cpp {
    fn viable(&self, a: &ExecutionAnalysis<'_>) -> bool {
        self.check_analysis(a).is_consistent()
    }

    // Inexact pre-filter: NoThinAir = acyclic(po ∪ rf) decomposes
    // per-edge, and RMWIsol maps onto the incremental flag. HbCom and
    // SeqCst stay with the full check, so clean probes fall back.
    fn delta_plan(&self, x: &Execution) -> Option<DeltaPlan> {
        let mut plan = DeltaPlan::fallback(x, true);
        plan.obls.push(Obligation {
            seed: *x.po(),
            feed: vec![ComposeRule::direct(EdgeKind::Rf, EdgeSel::All)],
            lift: Lift::No,
        });
        Some(plan)
    }
}

/// Theorem 7.2 (strong isolation for atomic transactions): in a
/// consistent, race-free execution whose atomic transactions contain no
/// atomic operations, `stronglift(com, stxnat)` is acyclic.
///
/// Checked exhaustively (up to a bound) by `txmm-verify`; exposed here so
/// property tests can exercise it on arbitrary executions.
pub fn theorem_7_2_holds(x: &Execution) -> bool {
    let a = x.analysis();
    let m = Cpp::tm();
    if !m.consistent_analysis(&a) || m.racy_analysis(&a) || !Cpp::atomic_txns_wellformed(x) {
        return true; // hypotheses not met: vacuously true
    }
    a.strong_isol_atomic().is_acyclic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_core::ExecBuilder;

    /// Message passing with release/acquire atomics on the flag.
    fn mp_rel_acq() -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let _wx = b.write(t0, 0);
        let wy = b.write_ato(t0, 1, Attrs::REL);
        let t1 = b.new_thread();
        let ry = b.read_ato(t1, 1, Attrs::ACQ);
        let _rx = b.read(t1, 0);
        b.rf(wy, ry);
        b.build().unwrap()
    }

    #[test]
    fn mp_release_acquire_forbidden() {
        // rx reads the initial x while hb orders wx before rx: the fr
        // edge contradicts hb (HbCom).
        let x = mp_rel_acq();
        let v = Cpp::base().check(&x);
        assert!(v.violations().contains(&"HbCom"));
        assert!(!Cpp::base().racy(&x), "sw covers the data accesses");
    }

    #[test]
    fn mp_relaxed_is_racy() {
        // With a relaxed flag there is no sw edge: the data accesses race.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let _wx = b.write(t0, 0);
        let wy = b.write_ato(t0, 1, Attrs::NONE);
        let t1 = b.new_thread();
        let ry = b.read_ato(t1, 1, Attrs::NONE);
        let _rx = b.read(t1, 0);
        b.rf(wy, ry);
        let x = b.build().unwrap();
        assert!(Cpp::base().consistent(&x));
        assert!(Cpp::base().racy(&x));
    }

    #[test]
    fn sw_through_fences() {
        // Release fence + relaxed store / relaxed load + acquire fence.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let _wx = b.write(t0, 0);
        let f0 = b.fence(t0, txmm_core::Fence::CppFence);
        b.attr(f0, Attrs::REL);
        let wy = b.write_ato(t0, 1, Attrs::NONE);
        let t1 = b.new_thread();
        let ry = b.read_ato(t1, 1, Attrs::NONE);
        let f1 = b.fence(t1, txmm_core::Fence::CppFence);
        b.attr(f1, Attrs::ACQ);
        let _rx = b.read(t1, 0);
        b.rf(wy, ry);
        let x = b.build().unwrap();
        let a = x.analysis();
        let sw = Cpp::sw(&a);
        assert!(sw.contains(f0, f1), "fence-to-fence synchronisation");
        assert!(!Cpp::base().racy(&x));
        assert!(!Cpp::base().consistent(&x), "stale read now forbidden");
    }

    #[test]
    fn release_sequence_rmw_chain() {
        // A release store followed by another thread's relaxed RMW still
        // synchronises with an acquire load of the RMW's value.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write_ato(t0, 0, Attrs::REL);
        let t1 = b.new_thread();
        let r1 = b.read_ato(t1, 0, Attrs::NONE);
        let w1 = b.write_ato(t1, 0, Attrs::NONE);
        b.rmw(r1, w1);
        let t2 = b.new_thread();
        let r2 = b.read_ato(t2, 0, Attrs::ACQ);
        b.rf(w, r1);
        b.rf(w1, r2);
        b.co(w, w1);
        let x = b.build().unwrap();
        let a = x.analysis();
        let sw = Cpp::sw(&a);
        assert!(sw.contains(w, r2), "rs climbs the rf;rmw chain");
    }

    #[test]
    fn sb_sc_atomics_forbidden() {
        // Store buffering with SC atomics everywhere: psc cycle.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let _w0 = b.write_ato(t0, 0, Attrs::SC);
        let _r0 = b.read_ato(t0, 1, Attrs::SC);
        let t1 = b.new_thread();
        let _w1 = b.write_ato(t1, 1, Attrs::SC);
        let _r1 = b.read_ato(t1, 0, Attrs::SC);
        let x = b.build().unwrap();
        let v = Cpp::base().check(&x);
        assert!(v.violations().contains(&"SeqCst"));
        // Downgrading one access to acquire/release re-allows it.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.write_ato(t0, 0, Attrs::REL);
        b.read_ato(t0, 1, Attrs::SC);
        let t1 = b.new_thread();
        b.write_ato(t1, 1, Attrs::SC);
        b.read_ato(t1, 0, Attrs::SC);
        let y = b.build().unwrap();
        assert!(Cpp::base().consistent(&y));
    }

    #[test]
    fn lb_relaxed_allowed_deps_forbidden() {
        // RC11 allows relaxed load buffering without dependencies (it
        // only forbids po ∪ rf cycles).
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r0 = b.read_ato(t0, 0, Attrs::NONE);
        let w0 = b.write_ato(t0, 1, Attrs::NONE);
        let t1 = b.new_thread();
        let r1 = b.read_ato(t1, 1, Attrs::NONE);
        let w1 = b.write_ato(t1, 0, Attrs::NONE);
        b.rf(w0, r1);
        b.rf(w1, r0);
        let x = b.build().unwrap();
        let v = Cpp::base().check(&x);
        assert!(
            v.violations().contains(&"NoThinAir"),
            "RC11 forbids po∪rf cycles outright"
        );
    }

    #[test]
    fn transactional_synchronisation() {
        // §7.2: two conflicting transactions synchronise in ecom order;
        // the lifted tsw edge makes the stale read inconsistent.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let wx = b.write(t0, 0);
        let wy = b.write(t0, 1);
        let t1 = b.new_thread();
        let ry = b.read(t1, 1);
        let rx = b.read(t1, 0);
        b.rf(wy, ry);
        b.txn_atomic(&[wx, wy]);
        b.txn_atomic(&[ry, rx]);
        let x = b.build().unwrap();
        // rx reads initial x: fr(rx, wx) gives ecom from txn2 to txn1,
        // while rf(wy, ry) gives ecom from txn1 to txn2: hb cycle.
        let v = Cpp::tm().check(&x);
        assert!(v.violations().contains(&"HbCom"));
        // The baseline C++ model (transactions erased) calls it racy
        // instead.
        assert!(Cpp::base().racy(&x.erase_txns()));
    }

    #[test]
    fn dongol_comparison_execution() {
        // §9: forbidden by C++ TM (hb cycle) though weaker TM models
        // allow it.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let wx = b.write(t0, 0);
        let wy = b.write(t0, 1);
        let t1 = b.new_thread();
        let ry = b.read(t1, 1);
        let rx = b.read(t1, 0);
        b.rf(wy, ry);
        b.txn_atomic(&[wx, wy]);
        b.txn_atomic(&[ry, rx]);
        let x = b.build().unwrap();
        assert!(!Cpp::tm().consistent(&x));
    }

    #[test]
    fn weak_isolation_follows_from_consistency() {
        // §7.2: the WeakIsol axiom follows from the other C++ axioms —
        // sample a few transactional executions and check the
        // implication.
        use crate::sc::weak_isolation;
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w1 = b.write(t0, 0);
        let w2 = b.write(t0, 0);
        let t1 = b.new_thread();
        let r = b.read(t1, 0);
        b.rf(w1, r);
        b.co(w1, w2);
        b.txn(&[w1, w2]);
        b.txn(&[r]);
        let x = b.build().unwrap();
        if Cpp::tm().consistent(&x) {
            assert!(weak_isolation(&x));
        } else {
            // Forbidden: the intermediate-value read violates tsw order.
            assert!(!Cpp::tm().consistent(&x));
        }
    }

    #[test]
    fn racy_transactional_program() {
        // §7.2's example: atomic{ x=1 } ∥ atomic_store(&x, 2) is racy.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w1 = b.write(t0, 0);
        b.txn_atomic(&[w1]);
        let t1 = b.new_thread();
        let w2 = b.write_ato(t1, 0, Attrs::SC);
        b.co(w1, w2);
        let x = b.build().unwrap();
        assert!(
            Cpp::tm().racy(&x),
            "non-atomic store in txn races with atomic store"
        );
    }

    #[test]
    fn theorem_7_2_on_samples() {
        // Strong isolation via race-freedom: a race-free consistent
        // execution with atomic transactions keeps them isolated.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w1 = b.write(t0, 0);
        let w2 = b.write(t0, 1);
        let t1 = b.new_thread();
        let r = b.read(t1, 1);
        b.rf(w2, r);
        b.txn_atomic(&[w1, w2]);
        b.txn_atomic(&[r]);
        let x = b.build().unwrap();
        assert!(theorem_7_2_holds(&x));
    }

    #[test]
    fn atomic_txn_vocab() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write_ato(t0, 0, Attrs::NONE);
        b.txn_atomic(&[w]);
        let x = b.build().unwrap();
        assert!(!Cpp::atomic_txns_wellformed(&x));
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        b.txn_atomic(&[w]);
        let y = b.build().unwrap();
        assert!(Cpp::atomic_txns_wellformed(&y));
    }
}
