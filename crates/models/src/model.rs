//! The [`Model`] trait, consistency [`Verdict`]s, and the axiom checker.

use txmm_core::Execution;
use txmm_core::Rel;

use crate::arch::Arch;

/// The outcome of checking one execution against one model.
///
/// A verdict lists the *names* of every violated axiom, so tools can
/// explain why an execution is forbidden (`table1`/`catalog` bins print
/// these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    model: &'static str,
    violations: Vec<&'static str>,
}

impl Verdict {
    /// Did the execution satisfy every axiom?
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// The names of the violated axioms (empty when consistent).
    pub fn violations(&self) -> &[&'static str] {
        &self.violations
    }

    /// The model that produced this verdict.
    pub fn model(&self) -> &'static str {
        self.model
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_consistent() {
            write!(f, "{}: consistent", self.model)
        } else {
            write!(f, "{}: forbidden by {}", self.model, self.violations.join(", "))
        }
    }
}

/// Accumulates axiom results while a model checks an execution.
#[derive(Debug)]
pub struct Checker {
    verdict: Verdict,
}

impl Checker {
    /// Start checking for the named model.
    pub fn new(model: &'static str) -> Checker {
        Checker { verdict: Verdict { model, violations: Vec::new() } }
    }

    /// Assert `acyclic(r)` under the given axiom name.
    pub fn acyclic(&mut self, axiom: &'static str, r: &Rel) -> &mut Self {
        if !r.is_acyclic() {
            self.verdict.violations.push(axiom);
        }
        self
    }

    /// Assert `irreflexive(r)`.
    pub fn irreflexive(&mut self, axiom: &'static str, r: &Rel) -> &mut Self {
        if !r.is_irreflexive() {
            self.verdict.violations.push(axiom);
        }
        self
    }

    /// Assert `empty(r)`.
    pub fn empty(&mut self, axiom: &'static str, r: &Rel) -> &mut Self {
        if !r.is_empty() {
            self.verdict.violations.push(axiom);
        }
        self
    }

    /// The final verdict.
    pub fn finish(self) -> Verdict {
        self.verdict
    }
}

/// An axiomatic memory model: a consistency predicate over executions.
pub trait Model: Sync {
    /// A short, unique name (e.g. `"x86-tm"`).
    fn name(&self) -> &'static str;

    /// The architecture or language this model describes.
    fn arch(&self) -> Arch;

    /// Does this model interpret transactions? Baseline (non-TM) models
    /// ignore `stxn` entirely.
    fn is_tm(&self) -> bool;

    /// Check every axiom and report which failed.
    fn check(&self, x: &Execution) -> Verdict;

    /// Convenience: is the execution consistent?
    fn consistent(&self, x: &Execution) -> bool {
        self.check(x).is_consistent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accumulates() {
        let mut c = Checker::new("demo");
        let cyc = Rel::from_pairs(2, [(0, 1), (1, 0)]);
        let ok = Rel::from_pairs(2, [(0, 1)]);
        c.acyclic("A1", &cyc);
        c.acyclic("A2", &ok);
        c.empty("A3", &ok);
        c.irreflexive("A4", &Rel::from_pairs(2, [(1, 1)]));
        let v = c.finish();
        assert!(!v.is_consistent());
        assert_eq!(v.violations(), ["A1", "A3", "A4"]);
        assert_eq!(v.model(), "demo");
    }

    #[test]
    fn verdict_display() {
        let c = Checker::new("demo");
        let v = c.finish();
        assert_eq!(v.to_string(), "demo: consistent");
        let mut c = Checker::new("demo");
        c.empty("Ax", &Rel::from_pairs(1, [(0, 0)]));
        assert_eq!(c.finish().to_string(), "demo: forbidden by Ax");
    }
}
