//! The [`Model`] trait, consistency [`Verdict`]s, and the axiom checker.
//!
//! Checking is split into two stages so shared structure is computed
//! once per execution rather than once per model:
//!
//! 1. [`Model::derived`] turns the shared [`ExecutionAnalysis`] (cached
//!    `fr`, `com`, lifts, fence relations, ...) into the model-specific
//!    [`Derived`] relations (`hb`, `ob`, `prop`, `psc`, ...);
//! 2. [`Model::axioms`] asserts the consistency axioms over the shared
//!    and derived relations via a [`Checker`].
//!
//! Callers that check several models against one execution build a
//! single analysis and use [`Model::check_analysis`]; the convenience
//! [`Model::check`] builds a private analysis for one-off checks.

use txmm_core::incr::PruneOracle;
use txmm_core::{Execution, ExecutionAnalysis, Rel};

use crate::arch::Arch;

/// The outcome of checking one execution against one model.
///
/// A verdict lists the *names* of every violated axiom, so tools can
/// explain why an execution is forbidden (`table1`/`catalog` bins print
/// these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    model: &'static str,
    violations: Vec<&'static str>,
}

impl Verdict {
    /// Did the execution satisfy every axiom?
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// The names of the violated axioms (empty when consistent).
    pub fn violations(&self) -> &[&'static str] {
        &self.violations
    }

    /// The model that produced this verdict.
    pub fn model(&self) -> &'static str {
        self.model
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_consistent() {
            write!(f, "{}: consistent", self.model)
        } else {
            write!(
                f,
                "{}: forbidden by {}",
                self.model,
                self.violations.join(", ")
            )
        }
    }
}

/// Accumulates axiom results while a model checks an execution.
#[derive(Debug)]
pub struct Checker {
    verdict: Verdict,
}

impl Checker {
    /// Start checking for the named model.
    pub fn new(model: &'static str) -> Checker {
        Checker {
            verdict: Verdict {
                model,
                violations: Vec::new(),
            },
        }
    }

    /// Assert `acyclic(r)` under the given axiom name.
    pub fn acyclic(&mut self, axiom: &'static str, r: &Rel) -> &mut Self {
        if !r.is_acyclic() {
            self.verdict.violations.push(axiom);
        }
        self
    }

    /// Assert `irreflexive(r)`.
    pub fn irreflexive(&mut self, axiom: &'static str, r: &Rel) -> &mut Self {
        if !r.is_irreflexive() {
            self.verdict.violations.push(axiom);
        }
        self
    }

    /// Assert `empty(r)`.
    pub fn empty(&mut self, axiom: &'static str, r: &Rel) -> &mut Self {
        if !r.is_empty() {
            self.verdict.violations.push(axiom);
        }
        self
    }

    /// Record a violation directly. Adapters wrapping externally
    /// evaluated models (the `.cat` backend of the unified registry)
    /// translate their own failed checks through this.
    pub fn fail(&mut self, axiom: &'static str) -> &mut Self {
        self.verdict.violations.push(axiom);
        self
    }

    /// The final verdict.
    pub fn finish(self) -> Verdict {
        self.verdict
    }
}

/// The model-specific relations computed by [`Model::derived`]: a small
/// ordered name→relation table (`hb`, `prop`, `ob`, ...), kept concrete
/// so the trait stays object-safe and tools can inspect intermediate
/// relations by name.
#[derive(Debug, Clone, Default)]
pub struct Derived {
    rels: Vec<(&'static str, Rel)>,
}

impl Derived {
    /// An empty table.
    pub fn new() -> Derived {
        Derived::default()
    }

    /// Add a named relation (last insert wins on lookup collisions).
    pub fn insert(&mut self, name: &'static str, rel: Rel) -> &mut Self {
        self.rels.push((name, rel));
        self
    }

    /// Look a relation up by name.
    pub fn get(&self, name: &str) -> Option<&Rel> {
        self.rels
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, r)| r)
    }

    /// Look a relation up, panicking with the missing name.
    pub fn expect(&self, name: &str) -> &Rel {
        self.get(name)
            .unwrap_or_else(|| panic!("derived relation {name} not computed"))
    }

    /// The names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.rels.iter().map(|(n, _)| *n)
    }
}

/// An axiomatic memory model: a consistency predicate over executions.
///
/// `Send + Sync` so registries of `Box<dyn Model>` (and the `Session`s
/// owning them) can move into worker threads of a sharded serving pool.
pub trait Model: Send + Sync {
    /// A short, unique name (e.g. `"x86-tm"`).
    fn name(&self) -> &'static str;

    /// The architecture or language this model describes.
    fn arch(&self) -> Arch;

    /// Does this model interpret transactions? Baseline (non-TM) models
    /// ignore `stxn` entirely.
    fn is_tm(&self) -> bool;

    /// Stage 1: compute the model-specific relations from the shared
    /// analysis. Models must take `fr`/`com`/lift/fence structure from
    /// the analysis rather than re-deriving it.
    fn derived(&self, a: &ExecutionAnalysis<'_>) -> Derived;

    /// Stage 2: assert every axiom over the shared and derived
    /// relations.
    fn axioms(&self, a: &ExecutionAnalysis<'_>, d: &Derived, c: &mut Checker);

    /// Check against a shared analysis (the fast path when several
    /// models look at one execution).
    fn check_analysis(&self, a: &ExecutionAnalysis<'_>) -> Verdict {
        let d = self.derived(a);
        let mut c = Checker::new(self.name());
        self.axioms(a, &d, &mut c);
        c.finish()
    }

    /// Check every axiom and report which failed.
    fn check(&self, x: &Execution) -> Verdict {
        self.check_analysis(&x.analysis())
    }

    /// Convenience: is the execution consistent?
    fn consistent(&self, x: &Execution) -> bool {
        self.check(x).is_consistent()
    }

    /// Convenience: consistency against a shared analysis.
    fn consistent_analysis(&self, a: &ExecutionAnalysis<'_>) -> bool {
        self.check_analysis(a).is_consistent()
    }

    /// A conservative viability oracle over *partial* executions, or
    /// `None` when the model cannot vouch for one (pruning then
    /// degrades to plain enumeration — always sound).
    ///
    /// `txns_known` says whether the candidate's transaction classes
    /// are already fixed. When they are still to be chosen
    /// (`txns_known == false`, the enumerator's rf/co stage), an
    /// oracle must ignore — or be insensitive to — every
    /// transaction-derived relation, since `stxn` can only grow.
    ///
    /// The native models are monotone in `(rf, co, fr)` with the
    /// structure fixed, so their full axiom check *is* a valid oracle
    /// in both modes; `.cat` backends derive a filtered program (see
    /// `txmm-cat`'s prune module). Default: no oracle.
    fn prune_oracle(&self, txns_known: bool) -> Option<&dyn PruneOracle> {
        let _ = txns_known;
        None
    }
}

/// Check several models against one execution, sharing a single
/// [`ExecutionAnalysis`] across all of them.
///
/// This is the one sanctioned way for drivers to check more than one
/// model per execution: derived structure (`fr`, `com`, lifts, fence
/// relations) is computed once here instead of once per model.
pub fn check_models(models: &[&dyn Model], x: &Execution) -> Vec<Verdict> {
    let a = x.analysis();
    models.iter().map(|m| m.check_analysis(&a)).collect()
}

/// Consistency of a `(m, n)` model pair on one execution over one
/// shared analysis (the model-difference search's inner loop).
pub fn consistent_pair(m: &dyn Model, n: &dyn Model, x: &Execution) -> (bool, bool) {
    let a = x.analysis();
    (m.consistent_analysis(&a), n.consistent_analysis(&a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accumulates() {
        let mut c = Checker::new("demo");
        let cyc = Rel::from_pairs(2, [(0, 1), (1, 0)]);
        let ok = Rel::from_pairs(2, [(0, 1)]);
        c.acyclic("A1", &cyc);
        c.acyclic("A2", &ok);
        c.empty("A3", &ok);
        c.irreflexive("A4", &Rel::from_pairs(2, [(1, 1)]));
        let v = c.finish();
        assert!(!v.is_consistent());
        assert_eq!(v.violations(), ["A1", "A3", "A4"]);
        assert_eq!(v.model(), "demo");
    }

    #[test]
    fn verdict_display() {
        let c = Checker::new("demo");
        let v = c.finish();
        assert_eq!(v.to_string(), "demo: consistent");
        let mut c = Checker::new("demo");
        c.empty("Ax", &Rel::from_pairs(1, [(0, 0)]));
        assert_eq!(c.finish().to_string(), "demo: forbidden by Ax");
    }

    #[test]
    fn derived_table_lookup() {
        let mut d = Derived::new();
        d.insert("hb", Rel::empty(2));
        d.insert("hb", Rel::from_pairs(2, [(0, 1)]));
        assert!(d.expect("hb").contains(0, 1), "last insert wins");
        assert!(d.get("nope").is_none());
        assert_eq!(d.names().collect::<Vec<_>>(), ["hb", "hb"]);
    }
}
