//! The Power memory model with transactions (Fig. 6).
//!
//! The baseline is the "Herding cats" Power model of Alglave et al.
//! (TOPLAS 2014): `ppo` is the least fixpoint of the ii/ic/ci/cc
//! equations, and the model has Coherence, Order (no-thin-air),
//! Propagation and Observation axioms. Fig. 6 of the paper adds
//! (highlighted):
//!
//! * `tfence` joins the fence relation (implicit barriers at transaction
//!   boundaries);
//! * `thb`, lifted over transactions via `weaklift`, joins `hb`
//!   (transaction serialisation, §5.2 "Transaction Ordering");
//! * `tprop1 = rfe ; stxn ; [W]` (the transaction's integrated memory
//!   barrier) and `tprop2 = stxn ; rfe` (multicopy-atomic transactional
//!   writes) join `prop`;
//! * `StrongIsol`, `TxnOrder`, and `TxnCancelsRMW`.

use txmm_core::incr::{ComposeRule, DeltaPlan, EdgeKind, EdgeSel, Lift, Obligation, PruneOracle};
use txmm_core::Fence;
use txmm_core::{stronglift, union_all, weaklift, EventSet, Execution, ExecutionAnalysis, Rel};

use crate::arch::Arch;
use crate::model::{Checker, Derived, Model};

/// The Power model; `tm` selects the transactional extension.
#[derive(Debug, Clone, Copy)]
pub struct Power {
    /// Interpret transactions?
    pub tm: bool,
}

/// The intermediate relations of the Power model, exposed so tests and
/// the `catalog` bin can explain verdicts edge by edge.
#[derive(Debug, Clone)]
pub struct PowerRelations {
    /// Preserved program order (herding-cats fixpoint).
    pub ppo: Rel,
    /// `fence = sync ∪ tfence ∪ (lwsync \ (W × R))`.
    pub fence: Rel,
    /// Intra-thread happens-before `ihb = ppo ∪ fence`.
    pub ihb: Rel,
    /// The transaction-ordering relation `thb` (§5.2).
    pub thb: Rel,
    /// Happens-before `hb = (rfe? ; ihb ; rfe?) ∪ weaklift(thb, stxn)`.
    pub hb: Rel,
    /// The propagation relation.
    pub prop: Rel,
}

impl Power {
    /// The transactional model.
    pub fn tm() -> Power {
        Power { tm: true }
    }

    /// The non-transactional baseline.
    pub fn base() -> Power {
        Power { tm: false }
    }

    /// Preserved program order: the ii/ic/ci/cc least fixpoint of
    /// "Herding cats" §6 (elided in Fig. 6 as it is unchanged by TM).
    ///
    /// Entirely txn-independent, and by far the most expensive Power
    /// derivation (an iterated fixpoint of seqs and unions), so it is
    /// memoised under `"power.ppo"` and shared across the transaction
    /// layouts of one rf/co structure.
    pub fn ppo(a: &ExecutionAnalysis<'_>) -> Rel {
        a.memo("power.ppo", || Power::ppo_uncached(a))
    }

    fn ppo_uncached(a: &ExecutionAnalysis<'_>) -> Rel {
        let n = a.len();
        let po = a.po();
        let poloc = a.po_loc();
        let dp = a.dp();

        // rdw: two po-loc reads separated by an external write the second
        // read observes; detour: a po-loc write pair with the second...
        // (herding cats: rdw = poloc ∩ (fre ; rfe), detour = poloc ∩
        // (coe ; rfe)).
        let rdw = poloc.inter(&a.fre().seq(a.rfe()));
        let detour = poloc.inter(&a.coe().seq(a.rfe()));

        // Herding-cats dependencies are read-sourced; write-sourced ctrl
        // (store-exclusives, footnote 3) is handled separately in ihb.
        let rctrl = Rel::id_on(n, a.reads()).seq(a.ctrl());

        // ctrl+isync: control dependencies with an isync before the target.
        let ctrl_isync = rctrl.inter(a.fence_rel(Fence::Isync));

        let ii0 = union_all(n, [dp, &rdw, a.rfi()]);
        let ic0 = Rel::empty(n);
        let ci0 = ctrl_isync.union(&detour);
        let cc0 = union_all(n, [dp, poloc, &rctrl, &a.addr().seq(&po.opt())]);

        let (mut ii, mut ic, mut ci, mut cc) = (ii0, ic0, ci0, cc0);
        loop {
            let ii2 = union_all(n, [&ii0, &ci, &ic.seq(&ci), &ii.seq(&ii)]);
            let ic2 = union_all(n, [&ii, &cc, &ic.seq(&cc), &ii.seq(&ic), &ic]);
            let ci2 = union_all(n, [&ci0, &ci.seq(&ii), &cc.seq(&ci), &ci]);
            let cc2 = union_all(n, [&cc0, &ci, &ci.seq(&ic), &cc.seq(&cc)]);
            if ii2 == ii && ic2 == ic && ci2 == ci && cc2 == cc {
                break;
            }
            ii = ii2;
            ic = ic2;
            ci = ci2;
            cc = cc2;
        }
        let idr = Rel::id_on(n, a.reads());
        let idw = Rel::id_on(n, a.writes());
        idr.seq(&ii).seq(&idr).union(&idr.seq(&ic).seq(&idw))
    }

    /// Compute every intermediate relation of Fig. 6.
    pub fn relations(&self, a: &ExecutionAnalysis<'_>) -> PowerRelations {
        let n = a.len();
        let w = a.writes();
        let r = a.reads();
        let stxn = a.stxn();

        let ppo = Power::ppo(a);

        let sync = a.fence_rel(Fence::Sync);
        let lwsync = a.fence_rel(Fence::Lwsync).minus(&Rel::cross(n, w, r));
        let mut fence = sync.union(&lwsync);
        let tfence = a.tfence();
        if self.tm {
            fence = fence.union(tfence);
        }

        // Footnote 3: a ctrl+isync sequence may begin at a
        // store-exclusive; this orders the successful lock write before
        // the critical region (the spinlock idiom of [29, §B.2.1.1]).
        let sx = a.writes().inter(a.rmw().range());
        let sx_ctrl_isync = Rel::id_on(n, sx)
            .seq(a.ctrl())
            .inter(a.fence_rel(Fence::Isync));

        let ihb = ppo.union(&fence).union(&sx_ctrl_isync);

        let rfe = a.rfe();
        let frecoe = a.fre().union(a.coe());

        // thb = (rfe ∪ ((fre ∪ coe)* ; ihb))* ; (fre ∪ coe)* ; rfe?
        let thb = rfe
            .union(&frecoe.star().seq(&ihb))
            .star()
            .seq(&frecoe.star())
            .seq(&rfe.opt());

        // hb = (rfe? ; ihb ; rfe?) ∪ weaklift(thb, stxn)
        let mut hb = rfe.opt().seq(&ihb).seq(&rfe.opt());
        if self.tm {
            hb = hb.union(&weaklift(&thb, stxn));
        }

        // prop
        let efence = rfe.opt().seq(&fence).seq(&rfe.opt());
        let hbstar = hb.star();
        let idw = Rel::id_on(n, w);
        let prop1 = idw.seq(&efence).seq(&hbstar).seq(&idw);
        let sync_t = if self.tm { sync.union(tfence) } else { *sync };
        let prop2 = a
            .come()
            .star()
            .seq(&efence.star())
            .seq(&hbstar)
            .seq(&sync_t)
            .seq(&hbstar);
        let mut prop = prop1.union(&prop2);
        if self.tm {
            let tprop1 = rfe.seq(stxn).seq(&idw);
            let tprop2 = stxn.seq(rfe);
            prop = union_all(n, [&prop, &tprop1, &tprop2]);
        }

        PowerRelations {
            ppo,
            fence,
            ihb,
            thb,
            hb,
            prop,
        }
    }
}

impl Model for Power {
    fn name(&self) -> &'static str {
        if self.tm {
            "power-tm"
        } else {
            "power"
        }
    }

    fn arch(&self) -> Arch {
        Arch::Power
    }

    fn is_tm(&self) -> bool {
        self.tm
    }

    fn derived(&self, a: &ExecutionAnalysis<'_>) -> Derived {
        let rels = self.relations(a);
        let hbstar = rels.hb.star();
        let mut d = Derived::new();
        d.insert("ppo", rels.ppo);
        d.insert("fence", rels.fence);
        d.insert("ihb", rels.ihb);
        d.insert("thb", rels.thb);
        d.insert("propagation", a.co().union(&rels.prop));
        d.insert("observation", a.fre().seq(&rels.prop).seq(&hbstar));
        d.insert("prop", rels.prop);
        if self.tm {
            d.insert("txnorder", stronglift(&rels.hb, a.stxn()));
        }
        d.insert("hb", rels.hb);
        d.insert("hbstar", hbstar);
        d
    }

    fn axioms(&self, a: &ExecutionAnalysis<'_>, d: &Derived, c: &mut Checker) {
        c.acyclic("Coherence", a.coherence());
        c.empty("RMWIsol", a.rmw_isol());
        c.acyclic("Order", d.expect("hb"));
        c.acyclic("Propagation", d.expect("propagation"));
        c.irreflexive("Observation", d.expect("observation"));
        if self.tm {
            c.acyclic("StrongIsol", a.strong_isol());
            c.acyclic("TxnOrder", d.expect("txnorder"));
            c.empty("TxnCancelsRMW", a.txn_cancels_rmw());
        }
    }

    fn prune_oracle(&self, _txns_known: bool) -> Option<&dyn PruneOracle> {
        Some(self)
    }
}

// The ppo fixpoint, hb, prop and the observation body are all monotone
// in (rf, co, fr); the transaction lifts are empty (weaklift) or
// subsumed by Order (stronglift of hb) while txns are unassigned.
impl PruneOracle for Power {
    fn viable(&self, a: &ExecutionAnalysis<'_>) -> bool {
        self.check_analysis(a).is_consistent()
    }

    fn coherence_gate(&self) -> bool {
        true
    }
    fn event_monotone(&self) -> bool {
        true // pairwise builtins and monotone compositions only
    }

    // Power's `ppo` fixpoint (rdw/detour/rfi feed it) and the prop /
    // observation bodies are not per-edge decomposable, so the plan is
    // an inexact pre-filter on the Order axiom: every relation of the
    // base analysis under-approximates its full-execution counterpart
    // (all are monotone in rf/co/fr), so `hb` on the base seeds the
    // detector and each external reads-from edge contributes the
    // `ihb ; rfe` and `rfe ; ihb` slices of `hb = rfe? ; ihb ; rfe?`.
    // A detector cycle is a definite Order violation; clean probes
    // fall back to the full check.
    fn delta_plan(&self, x: &Execution) -> Option<DeltaPlan> {
        let n = x.len();
        let base = ExecutionAnalysis::with_fr(x, Rel::empty(n));
        let rels = self.relations(&base);
        let everything = EventSet::from_bits(u64::MAX);
        let mut plan = DeltaPlan::fallback(x, true);
        plan.obls.push(Obligation {
            seed: rels.hb,
            feed: vec![
                ComposeRule {
                    kind: EdgeKind::Rf,
                    sel: EdgeSel::External,
                    a_in: everything,
                    b_in: everything,
                    ctx: Some(rels.ihb.inverse()),
                    rctx: None,
                },
                ComposeRule {
                    kind: EdgeKind::Rf,
                    sel: EdgeSel::External,
                    a_in: everything,
                    b_in: everything,
                    ctx: None,
                    rctx: Some(rels.ihb),
                },
            ],
            lift: Lift::No,
        });
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_core::{ExecBuilder, Execution};

    /// Message passing with configurable strength on each side.
    fn mp(sync0: Option<Fence>, dep1: bool) -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let _wx = b.write(t0, 0);
        if let Some(f) = sync0 {
            b.fence(t0, f);
        }
        let wy = b.write(t0, 1);
        let t1 = b.new_thread();
        let ry = b.read(t1, 1);
        let rx = b.read(t1, 0);
        if dep1 {
            b.addr(ry, rx);
        }
        b.rf(wy, ry);
        b.build().unwrap()
    }

    #[test]
    fn mp_plain_allowed() {
        // Power reorders both the writes and the reads: plain MP is
        // observable.
        assert!(Power::base().consistent(&mp(None, false)));
    }

    #[test]
    fn mp_sync_dep_forbidden() {
        // sync on the writer plus an address dependency on the reader
        // restores order (the classic MP+sync+addr test).
        let x = mp(Some(Fence::Sync), true);
        let v = Power::base().check(&x);
        assert!(!v.is_consistent());
    }

    #[test]
    fn mp_lwsync_dep_forbidden() {
        let x = mp(Some(Fence::Lwsync), true);
        assert!(!Power::base().consistent(&x));
    }

    #[test]
    fn mp_half_strength_allowed() {
        // Fence without dependency, or dependency without fence: still
        // observable.
        assert!(Power::base().consistent(&mp(Some(Fence::Sync), false)));
        assert!(Power::base().consistent(&mp(None, true)));
    }

    #[test]
    fn mp_txn_both_forbidden_under_tm() {
        // Wrapping both sides in transactions orders everything: the
        // implicit boundary fences are not even needed — thb lifts the
        // communication into an hb cycle.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let wx = b.write(t0, 0);
        let wy = b.write(t0, 1);
        let t1 = b.new_thread();
        let ry = b.read(t1, 1);
        let rx = b.read(t1, 0);
        b.rf(wy, ry);
        b.txn(&[wx, wy]);
        b.txn(&[ry, rx]);
        let x = b.build().unwrap();
        assert!(Power::base().consistent(&x), "baseline ignores txns");
        let v = Power::tm().check(&x);
        assert!(!v.is_consistent());
    }

    #[test]
    fn lb_allowed() {
        // Load buffering: allowed by the Power model (though never
        // observed on hardware, §5.3).
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r0 = b.read(t0, 0);
        let w0 = b.write(t0, 1);
        let t1 = b.new_thread();
        let r1 = b.read(t1, 1);
        let w1 = b.write(t1, 0);
        b.rf(w0, r1);
        b.rf(w1, r0);
        let x = b.build().unwrap();
        assert!(Power::base().consistent(&x));
    }

    #[test]
    fn lb_deps_forbidden() {
        // LB with data dependencies on both sides: a thin-air cycle,
        // forbidden by Order (hb = ppo ∪ rfe chains).
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r0 = b.read(t0, 0);
        let w0 = b.write(t0, 1);
        b.data(r0, w0);
        let t1 = b.new_thread();
        let r1 = b.read(t1, 1);
        let w1 = b.write(t1, 0);
        b.data(r1, w1);
        b.rf(w0, r1);
        b.rf(w1, r0);
        let x = b.build().unwrap();
        assert!(!Power::base().consistent(&x));
    }

    /// §5.2 execution (1): WRC with the middle thread transactional.
    /// Forbidden via tprop1 (the integrated memory barrier).
    fn wrc_txn() -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.write(t0, 0);
        let t1 = b.new_thread();
        let bb = b.read(t1, 0);
        let c = b.write(t1, 1);
        let t2 = b.new_thread();
        let d = b.read(t2, 1);
        let e = b.read(t2, 0);
        b.addr(d, e); // the figure's ppo edge
        b.rf(a, bb);
        b.rf(c, d);
        // e reads the initial x: fr(e, a).
        b.txn(&[bb, c]);
        b.build().unwrap()
    }

    #[test]
    fn exec1_wrc_txn_forbidden() {
        let x = wrc_txn();
        let v = Power::tm().check(&x);
        assert!(!v.is_consistent(), "§5.2 (1) must be forbidden");
        assert!(v.violations().contains(&"Observation"));
        // Without the transaction the shape is plain WRC without the
        // writer's barrier: allowed.
        assert!(Power::base().consistent(&x.erase_txns()));
        assert!(Power::tm().consistent(&x.erase_txns()));
    }

    /// §5.2 execution (2): WRC with only the *first* writer
    /// transactional. Forbidden via tprop2 (multicopy-atomic
    /// transactional writes).
    fn wrc_txn_writer() -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.write(t0, 0);
        let t1 = b.new_thread();
        let bb = b.read(t1, 0);
        let c = b.write(t1, 1);
        b.addr(bb, c); // middle thread's ppo edge (b -> c)
        let t2 = b.new_thread();
        let d = b.read(t2, 1);
        let e = b.read(t2, 0);
        b.addr(d, e);
        b.rf(a, bb);
        b.rf(c, d);
        b.txn(&[a]);
        b.build().unwrap()
    }

    #[test]
    fn exec2_wrc_txn_writer_forbidden() {
        let x = wrc_txn_writer();
        let v = Power::tm().check(&x);
        assert!(!v.is_consistent(), "§5.2 (2) must be forbidden");
        assert!(v.violations().contains(&"Observation"));
        // Without the transaction: plain WRC with dependencies — on
        // non-multicopy-atomic Power this is allowed only when... it is
        // in fact forbidden only with a sync; with deps alone the A-
        // cumulativity is missing, so the baseline allows it.
        assert!(Power::base().consistent(&x.erase_txns()));
    }

    /// §5.2 execution (3): IRIW with the two writers transactional.
    fn iriw_txn(both: bool) -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.write(t0, 0);
        let t1 = b.new_thread();
        let bb = b.read(t1, 0);
        let c = b.read(t1, 1);
        b.addr(bb, c);
        let t2 = b.new_thread();
        let d = b.read(t2, 1);
        let e = b.read(t2, 0);
        b.addr(d, e);
        let t3 = b.new_thread();
        let f = b.write(t3, 1);
        b.rf(a, bb);
        b.rf(f, d);
        // c reads initial y: fr(c, f); e reads initial x: fr(e, a).
        b.txn(&[a]);
        if both {
            b.txn(&[f]);
        }
        b.build().unwrap()
    }

    #[test]
    fn exec3_iriw_both_txn_forbidden() {
        let x = iriw_txn(true);
        let v = Power::tm().check(&x);
        assert!(!v.is_consistent(), "§5.2 (3) must be forbidden");
        assert!(
            v.violations().contains(&"Order"),
            "thb cycle shows up in Order"
        );
    }

    #[test]
    fn exec3_iriw_one_txn_allowed() {
        // §5.2: "a behaviour similar to (3) but with only one write
        // transactional was observed during our empirical testing, and
        // is duly allowed by our model."
        let x = iriw_txn(false);
        assert!(Power::tm().consistent(&x));
    }

    #[test]
    fn iriw_base_allowed() {
        let x = iriw_txn(true).erase_txns();
        assert!(Power::base().consistent(&x));
    }

    /// Remark 5.1: read-only transaction variants that the model
    /// deliberately permits (the Power manual is ambiguous).
    fn remark51_first() -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.write(t0, 0);
        let t1 = b.new_thread();
        let bb = b.read(t1, 0);
        let c = b.read(t1, 1);
        let t2 = b.new_thread();
        let _d = b.write(t2, 1);
        b.fence(t2, Fence::Sync);
        let e = b.read(t2, 0);
        b.rf(a, bb);
        // c reads initial y: fr(c, d); e reads initial x: fr(e, a).
        let _ = e;
        b.txn(&[bb, c]);
        b.build().unwrap()
    }

    fn remark51_second() -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.write(t0, 0);
        let t1 = b.new_thread();
        let bb = b.read(t1, 0);
        let c = b.read(t1, 1);
        let t2 = b.new_thread();
        let _d = b.write(t2, 1);
        b.fence(t2, Fence::Sync);
        let e = b.write(t2, 0);
        b.rf(a, bb);
        // c reads initial y: fr(c, d); co: e before a.
        b.co(e, a);
        b.txn(&[bb, c]);
        b.build().unwrap()
    }

    #[test]
    fn remark51_read_only_txns_allowed() {
        assert!(Power::tm().consistent(&remark51_first()));
        assert!(Power::tm().consistent(&remark51_second()));
    }

    #[test]
    fn txn_cancels_rmw() {
        // §8.1's counterexample, left side: an rmw whose read and write
        // sit in two different transactions is forbidden...
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r = b.read(t0, 0);
        let w = b.write(t0, 0);
        b.rmw(r, w);
        b.txn(&[r]);
        b.txn(&[w]);
        let x = b.build().unwrap();
        let v = Power::tm().check(&x);
        assert!(v.violations().contains(&"TxnCancelsRMW"));
        // ...while the coalesced version (both in one transaction) is
        // consistent.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r = b.read(t0, 0);
        let w = b.write(t0, 0);
        b.rmw(r, w);
        b.txn(&[r, w]);
        let y = b.build().unwrap();
        assert!(Power::tm().consistent(&y));
    }

    #[test]
    fn rmw_straddling_one_boundary_forbidden() {
        // Read outside, write inside a transaction.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r = b.read(t0, 0);
        let w = b.write(t0, 0);
        b.rmw(r, w);
        b.txn(&[w]);
        let x = b.build().unwrap();
        assert!(!Power::tm().consistent(&x));
        assert!(Power::base().consistent(&x.erase_txns()));
    }

    #[test]
    fn ppo_includes_deps_not_plain_pairs() {
        let x = mp(None, true);
        let a = x.analysis();
        let ppo = Power::ppo(&a);
        // addr dependency ry -> rx preserved; plain write pair not.
        assert!(ppo.contains(2, 3));
        assert!(!ppo.contains(0, 1));
    }

    #[test]
    fn tm_equals_base_without_txns() {
        for x in [
            mp(None, false),
            mp(Some(Fence::Sync), true),
            iriw_txn(true).erase_txns(),
        ] {
            assert_eq!(Power::base().consistent(&x), Power::tm().consistent(&x));
        }
    }
}
