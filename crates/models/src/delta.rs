//! Shared feed-rule constructors for the models' [`DeltaPlan`]s.
//!
//! Each native model declares its incremental viability plan by
//! decomposing every acyclicity axiom into a structure-fixed *seed*
//! (evaluated once on the base analysis, whose communication relations
//! are empty) plus [`ComposeRule`]s describing how `rf`/`co`/`fr`
//! edges — and their fixed-context compositions — feed the obligation.
//! The rule sets below are the communication parts shared across
//! models; the model files add their architecture-specific compose
//! rules (e.g. ARMv8's `(ctrl ∪ data) ; coi`).
//!
//! [`DeltaPlan`]: txmm_core::incr::DeltaPlan

use txmm_core::incr::{ComposeRule, EdgeKind, EdgeSel};

/// `com = rf ∪ co ∪ fr`, delivered edge by edge.
pub(crate) fn com_feeds() -> Vec<ComposeRule> {
    vec![
        ComposeRule::direct(EdgeKind::Rf, EdgeSel::All),
        ComposeRule::direct(EdgeKind::Co, EdgeSel::All),
        ComposeRule::direct(EdgeKind::Fr, EdgeSel::All),
    ]
}

/// `rfe ∪ co ∪ fr` — the communication part of the x86 `hb`.
pub(crate) fn rfe_co_fr_feeds() -> Vec<ComposeRule> {
    vec![
        ComposeRule::direct(EdgeKind::Rf, EdgeSel::External),
        ComposeRule::direct(EdgeKind::Co, EdgeSel::All),
        ComposeRule::direct(EdgeKind::Fr, EdgeSel::All),
    ]
}

/// `come = rfe ∪ coe ∪ fre` — the ARMv8 external communication.
pub(crate) fn come_feeds() -> Vec<ComposeRule> {
    vec![
        ComposeRule::direct(EdgeKind::Rf, EdgeSel::External),
        ComposeRule::direct(EdgeKind::Co, EdgeSel::External),
        ComposeRule::direct(EdgeKind::Fr, EdgeSel::External),
    ]
}
