//! Ablation variants of the transactional Power model (Fig. 6): each
//! variant drops one of the paper's TM additions, and a test shows
//! exactly which paper execution that addition is responsible for
//! forbidding. This is the per-axiom justification of §5.2 in
//! executable form.

use txmm_core::{stronglift, union_all, weaklift, ExecutionAnalysis, Rel};

use crate::arch::Arch;
use crate::model::{Checker, Derived, Model};
use crate::power::Power;

/// Which Fig. 6 highlight to drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerAblation {
    /// Drop `tprop1 = rfe ; stxn ; [W]` (the integrated memory barrier).
    NoTprop1,
    /// Drop `tprop2 = stxn ; rfe` (multicopy-atomic transactional
    /// stores).
    NoTprop2,
    /// Drop `weaklift(thb, stxn)` from happens-before (transaction
    /// serialisation).
    NoThb,
    /// Drop `TxnCancelsRMW`.
    NoTxnCancelsRmw,
    /// Drop the implicit boundary fences (`tfence` stays out of `fence`
    /// and `prop2`).
    NoTfence,
}

/// The transactional Power model with one highlight removed.
#[derive(Debug, Clone, Copy)]
pub struct PowerAblated {
    /// The dropped axiom/relation.
    pub drop: PowerAblation,
}

impl Model for PowerAblated {
    fn name(&self) -> &'static str {
        match self.drop {
            PowerAblation::NoTprop1 => "power-tm-no-tprop1",
            PowerAblation::NoTprop2 => "power-tm-no-tprop2",
            PowerAblation::NoThb => "power-tm-no-thb",
            PowerAblation::NoTxnCancelsRmw => "power-tm-no-txncancelsrmw",
            PowerAblation::NoTfence => "power-tm-no-tfence",
        }
    }

    fn arch(&self) -> Arch {
        Arch::Power
    }

    fn is_tm(&self) -> bool {
        true
    }

    fn derived(&self, a: &ExecutionAnalysis<'_>) -> Derived {
        // Reconstruct Fig. 6 with the chosen piece removed. We reuse the
        // baseline machinery for ppo and rebuild the highlighted parts.
        use txmm_core::Fence;
        let n = a.len();
        let w = a.writes();
        let r = a.reads();
        let stxn = a.stxn();
        let ppo = Power::ppo(a);
        let sync = a.fence_rel(Fence::Sync);
        let lwsync = a.fence_rel(Fence::Lwsync).minus(&Rel::cross(n, w, r));
        let tfence = a.tfence();
        let mut fence = sync.union(&lwsync);
        if self.drop != PowerAblation::NoTfence {
            fence = fence.union(tfence);
        }
        let sx = a.writes().inter(a.rmw().range());
        let sx_ctrl_isync = Rel::id_on(n, sx)
            .seq(a.ctrl())
            .inter(a.fence_rel(Fence::Isync));
        let ihb = ppo.union(&fence).union(&sx_ctrl_isync);
        let rfe = a.rfe();
        let frecoe = a.fre().union(a.coe());
        let thb = rfe
            .union(&frecoe.star().seq(&ihb))
            .star()
            .seq(&frecoe.star())
            .seq(&rfe.opt());
        let mut hb = rfe.opt().seq(&ihb).seq(&rfe.opt());
        if self.drop != PowerAblation::NoThb {
            hb = hb.union(&weaklift(&thb, stxn));
        }
        let efence = rfe.opt().seq(&fence).seq(&rfe.opt());
        let hbstar = hb.star();
        let idw = Rel::id_on(n, w);
        let prop1 = idw.seq(&efence).seq(&hbstar).seq(&idw);
        let sync_t = if self.drop == PowerAblation::NoTfence {
            *sync
        } else {
            sync.union(tfence)
        };
        let prop2 = a
            .come()
            .star()
            .seq(&efence.star())
            .seq(&hbstar)
            .seq(&sync_t)
            .seq(&hbstar);
        let mut prop = prop1.union(&prop2);
        if self.drop != PowerAblation::NoTprop1 {
            prop = prop.union(&rfe.seq(stxn).seq(&idw));
        }
        if self.drop != PowerAblation::NoTprop2 {
            prop = union_all(n, [&prop, &stxn.seq(rfe)]);
        }

        let mut d = Derived::new();
        d.insert("propagation", a.co().union(&prop));
        d.insert("observation", a.fre().seq(&prop).seq(&hbstar));
        d.insert("txnorder", stronglift(&hb, stxn));
        d.insert("prop", prop);
        d.insert("hb", hb);
        d
    }

    fn axioms(&self, a: &ExecutionAnalysis<'_>, d: &Derived, c: &mut Checker) {
        c.acyclic("Coherence", a.coherence());
        c.empty("RMWIsol", a.rmw_isol());
        c.acyclic("Order", d.expect("hb"));
        c.acyclic("Propagation", d.expect("propagation"));
        c.irreflexive("Observation", d.expect("observation"));
        c.acyclic("StrongIsol", a.strong_isol());
        c.acyclic("TxnOrder", d.expect("txnorder"));
        if self.drop != PowerAblation::NoTxnCancelsRmw {
            c.empty("TxnCancelsRMW", a.txn_cancels_rmw());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn full_model_agrees_with_no_op_reconstruction() {
        // Sanity: the ablation scaffold with nothing dropped... we don't
        // have a "drop nothing" variant, so check each variant still
        // forbids the executions its axiom is NOT responsible for.
        let x = catalog::power_exec3(true); // forbidden via thb
        assert!(!PowerAblated {
            drop: PowerAblation::NoTprop1
        }
        .consistent(&x));
        assert!(!PowerAblated {
            drop: PowerAblation::NoTprop2
        }
        .consistent(&x));
    }

    #[test]
    fn tprop1_is_what_forbids_exec1() {
        // §5.2 (1): the integrated memory barrier. Dropping tprop1
        // admits the WRC execution; every other ablation keeps it
        // forbidden.
        let x = catalog::power_exec1();
        assert!(!Power::tm().consistent(&x));
        assert!(PowerAblated {
            drop: PowerAblation::NoTprop1
        }
        .consistent(&x));
        for drop in [
            PowerAblation::NoTprop2,
            PowerAblation::NoThb,
            PowerAblation::NoTxnCancelsRmw,
        ] {
            assert!(
                !PowerAblated { drop }.consistent(&x),
                "{drop:?} should not affect exec (1)"
            );
        }
    }

    #[test]
    fn tprop2_is_what_forbids_exec2() {
        // §5.2 (2): multicopy-atomic transactional stores.
        let x = catalog::power_exec2();
        assert!(!Power::tm().consistent(&x));
        assert!(PowerAblated {
            drop: PowerAblation::NoTprop2
        }
        .consistent(&x));
        for drop in [PowerAblation::NoTprop1, PowerAblation::NoThb] {
            assert!(
                !PowerAblated { drop }.consistent(&x),
                "{drop:?} should not affect exec (2)"
            );
        }
    }

    #[test]
    fn thb_is_what_forbids_exec3() {
        // §5.2 (3): transaction serialisation (IRIW between txns).
        let x = catalog::power_exec3(true);
        assert!(!Power::tm().consistent(&x));
        assert!(PowerAblated {
            drop: PowerAblation::NoThb
        }
        .consistent(&x));
        for drop in [PowerAblation::NoTprop1, PowerAblation::NoTprop2] {
            assert!(
                !PowerAblated { drop }.consistent(&x),
                "{drop:?} should not affect exec (3)"
            );
        }
    }

    #[test]
    fn txncancelsrmw_is_what_forbids_split_rmw() {
        let x = catalog::rmw_txn(true);
        assert!(!Power::tm().consistent(&x));
        assert!(PowerAblated {
            drop: PowerAblation::NoTxnCancelsRmw
        }
        .consistent(&x));
        assert!(!PowerAblated {
            drop: PowerAblation::NoTprop1
        }
        .consistent(&x));
    }

    #[test]
    fn tfence_is_what_orders_boundaries() {
        // MP with a transactional flag write and a dependent reader: the
        // boundary fence is what orders the data write before the
        // transaction.
        use txmm_core::ExecBuilder;
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let _wx = b.write(t0, 0);
        let wy = b.write(t0, 1);
        b.txn(&[wy]);
        let t1 = b.new_thread();
        let ry = b.read(t1, 1);
        let rx = b.read(t1, 0);
        b.addr(ry, rx);
        b.rf(wy, ry);
        let x = b.build().unwrap();
        assert!(
            !Power::tm().consistent(&x),
            "full model forbids (boundary fence)"
        );
        assert!(
            PowerAblated {
                drop: PowerAblation::NoTfence
            }
            .consistent(&x),
            "without tfence the writes propagate independently"
        );
    }
}
