//! Target architectures/languages and their event vocabularies.
//!
//! Each model only gives meaning to a subset of event forms (x86 has no
//! acquire loads; Power has no `DMB`). Enumerators and compilers use
//! [`Arch::validate`] to stay inside the right vocabulary, and
//! [`Arch::downgrades`] to implement clause (iii) of the paper's ⊏
//! weakening order ("downgrading an event, e.g. reducing an acquire-read
//! to a plain read in ARMv8", §4.2).

use txmm_core::{Attrs, Event, EventKind, Execution, Fence};

/// The four targets of the paper, plus the SC/TSC reference models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Sequential consistency (and its transactional strengthening TSC).
    Sc,
    /// Intel x86 with TSX-style transactions.
    X86,
    /// IBM Power with its hardware TM.
    Power,
    /// ARMv8 with the (unofficial) TM extension studied by the paper.
    Armv8,
    /// C++ (RC11 base model) with the TM technical specification.
    Cpp,
}

/// A vocabulary violation: the event does not exist on this target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VocabError {
    /// The offending event index.
    pub event: usize,
    /// Human-readable explanation.
    pub why: String,
}

impl std::fmt::Display for VocabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event {}: {}", self.event, self.why)
    }
}

impl std::error::Error for VocabError {}

impl Arch {
    /// Every architecture, in a stable order.
    pub const ALL: [Arch; 5] = [Arch::Sc, Arch::X86, Arch::Power, Arch::Armv8, Arch::Cpp];

    /// A short name.
    pub fn name(self) -> &'static str {
        match self {
            Arch::Sc => "SC",
            Arch::X86 => "x86",
            Arch::Power => "Power",
            Arch::Armv8 => "ARMv8",
            Arch::Cpp => "C++",
        }
    }

    /// The fences this target provides.
    pub fn fences(self) -> &'static [Fence] {
        match self {
            Arch::Sc => &[],
            Arch::X86 => &[Fence::MFence],
            Arch::Power => &[Fence::Sync, Fence::Lwsync, Fence::Isync],
            Arch::Armv8 => &[Fence::Dmb, Fence::DmbLd, Fence::DmbSt, Fence::Isb],
            Arch::Cpp => &[Fence::CppFence],
        }
    }

    /// Is this event expressible on the target?
    fn event_ok(self, ev: &Event) -> Result<(), String> {
        match ev.kind {
            EventKind::Fence(f) => {
                if !self.fences().contains(&f) {
                    return Err(format!("fence {:?} not available on {}", f, self.name()));
                }
                match self {
                    Arch::Cpp => {
                        // C++ fences carry a mode; plain fences are no-ops
                        // and excluded from candidate executions.
                        if ev.attrs.is_empty() {
                            return Err("C++ fence needs a consistency mode".into());
                        }
                    }
                    _ => {
                        if !ev.attrs.is_empty() {
                            return Err("hardware fences carry no attributes".into());
                        }
                    }
                }
            }
            EventKind::Call(_) => {
                // Call events are placeholders for the lock-elision study
                // and are valid on every target.
                if !ev.attrs.is_empty() {
                    return Err("call events carry no attributes".into());
                }
            }
            EventKind::Read | EventKind::Write => {
                let a = ev.attrs;
                match self {
                    Arch::Sc | Arch::X86 | Arch::Power => {
                        if !a.is_empty() {
                            return Err(format!("{} accesses carry no attributes", self.name()));
                        }
                    }
                    Arch::Armv8 => {
                        // LDAR on reads, STLR on writes; no SC/Ato flags.
                        if a.contains(Attrs::SC) || a.contains(Attrs::ATO) {
                            return Err("ARMv8 has no SC/Ato access flags".into());
                        }
                    }
                    Arch::Cpp => {
                        // Acq/Rel/SC require atomicity.
                        if (a.contains(Attrs::ACQ)
                            || a.contains(Attrs::REL)
                            || a.contains(Attrs::SC))
                            && !a.contains(Attrs::ATO)
                        {
                            return Err("C++ ordered accesses must be atomic".into());
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Check that every event of `x` exists on this target.
    pub fn validate(self, x: &Execution) -> Result<(), VocabError> {
        for (i, ev) in x.events().iter().enumerate() {
            if let Err(why) = self.event_ok(ev) {
                return Err(VocabError { event: i, why });
            }
        }
        // C++ additionally requires rmw pairs to be atomic accesses.
        if self == Arch::Cpp {
            for (r, w) in x.rmw().pairs() {
                for e in [r, w] {
                    if !x.event(e).attrs.contains(Attrs::ATO) {
                        return Err(VocabError {
                            event: e,
                            why: "C++ rmw events must be atomic".into(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Clause (iii) of ⊏: the ways `ev` can be *downgraded* one step.
    ///
    /// Returns strictly weaker variants of the event (never the event
    /// itself, never a stronger one).
    pub fn downgrades(self, ev: &Event) -> Vec<Event> {
        let mut out = Vec::new();
        let mut weaken_attr = |flag: Attrs| {
            if ev.attrs.contains(flag) {
                let mut e2 = *ev;
                e2.attrs = e2.attrs.minus(flag);
                out.push(e2);
            }
        };
        match self {
            Arch::Sc | Arch::X86 | Arch::Power => {
                // Accesses have no attribute ladder; fences weaken by
                // kind on Power (sync → lwsync → isync is *not* a chain
                // in strength for all directions, so we only allow
                // sync → lwsync, the uncontroversial step).
                if self == Arch::Power && ev.kind == EventKind::Fence(Fence::Sync) {
                    let mut e2 = *ev;
                    e2.kind = EventKind::Fence(Fence::Lwsync);
                    out.push(e2);
                }
            }
            Arch::Armv8 => {
                weaken_attr(Attrs::ACQ);
                weaken_attr(Attrs::REL);
                if ev.kind == EventKind::Fence(Fence::Dmb) {
                    for weaker in [Fence::DmbLd, Fence::DmbSt] {
                        let mut e2 = *ev;
                        e2.kind = EventKind::Fence(weaker);
                        out.push(e2);
                    }
                }
            }
            Arch::Cpp => {
                // SC → (acq|rel); acq/rel → relaxed; relaxed atomics do
                // not downgrade to non-atomic (that changes the program's
                // race status, not just its strength).
                if ev.attrs.contains(Attrs::SC) {
                    let mut e2 = *ev;
                    e2.attrs = e2.attrs.minus(Attrs::SC);
                    out.push(e2);
                } else {
                    weaken_attr(Attrs::ACQ);
                    weaken_attr(Attrs::REL);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_core::ExecBuilder;

    #[test]
    fn x86_rejects_acquire() {
        let mut b = ExecBuilder::new();
        let t = b.new_thread();
        b.read_acq(t, 0);
        let x = b.build().unwrap();
        assert!(Arch::X86.validate(&x).is_err());
        assert!(Arch::Armv8.validate(&x).is_ok());
    }

    #[test]
    fn fence_vocabularies() {
        let mut b = ExecBuilder::new();
        let t = b.new_thread();
        b.fence(t, Fence::Sync);
        let x = b.build().unwrap();
        assert!(Arch::Power.validate(&x).is_ok());
        assert!(Arch::X86.validate(&x).is_err());
        assert!(Arch::Armv8.validate(&x).is_err());
    }

    #[test]
    fn cpp_fence_needs_mode() {
        let mut b = ExecBuilder::new();
        let t = b.new_thread();
        b.fence(t, Fence::CppFence);
        let x = b.build().unwrap();
        assert!(Arch::Cpp.validate(&x).is_err());
        let mut b = ExecBuilder::new();
        let t = b.new_thread();
        let f = b.fence(t, Fence::CppFence);
        b.attr(f, Attrs::ACQ);
        let x = b.build().unwrap();
        assert!(Arch::Cpp.validate(&x).is_ok());
    }

    #[test]
    fn cpp_ordered_access_must_be_atomic() {
        let mut b = ExecBuilder::new();
        let t = b.new_thread();
        b.read_acq(t, 0); // acquire but not atomic
        let x = b.build().unwrap();
        assert!(Arch::Cpp.validate(&x).is_err());
    }

    #[test]
    fn cpp_rmw_must_be_atomic() {
        let mut b = ExecBuilder::new();
        let t = b.new_thread();
        let r = b.read(t, 0);
        let w = b.write(t, 0);
        b.rmw(r, w);
        let x = b.build().unwrap();
        assert!(Arch::Cpp.validate(&x).is_err());
        assert!(Arch::Power.validate(&x).is_ok());
    }

    #[test]
    fn armv8_downgrades() {
        let ev = Event::read(0, 0).with_attrs(Attrs::ACQ);
        let d = Arch::Armv8.downgrades(&ev);
        assert_eq!(d.len(), 1);
        assert!(d[0].attrs.is_empty());
        let plain = Event::read(0, 0);
        assert!(Arch::Armv8.downgrades(&plain).is_empty());
        let dmb = Event::fence(0, Fence::Dmb);
        assert_eq!(Arch::Armv8.downgrades(&dmb).len(), 2);
    }

    #[test]
    fn cpp_downgrade_ladder() {
        let sc = Event::read(0, 0).with_attrs(Attrs::ATO.union(Attrs::SC).union(Attrs::ACQ));
        let d = Arch::Cpp.downgrades(&sc);
        // SC strips first (leaving the acquire), never jumping two rungs.
        assert_eq!(d.len(), 1);
        assert!(d[0].attrs.contains(Attrs::ACQ));
        assert!(!d[0].attrs.contains(Attrs::SC));
        let acq = d[0];
        let d2 = Arch::Cpp.downgrades(&acq);
        assert_eq!(d2.len(), 1);
        assert!(d2[0].attrs.contains(Attrs::ATO));
        assert!(!d2[0].attrs.contains(Attrs::ACQ));
        // Relaxed atomic: bottom of the ladder.
        assert!(Arch::Cpp.downgrades(&d2[0]).is_empty());
    }

    #[test]
    fn power_sync_downgrades_to_lwsync() {
        let sync = Event::fence(0, Fence::Sync);
        let d = Arch::Power.downgrades(&sync);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, EventKind::Fence(Fence::Lwsync));
    }
}
