//! The x86 memory model with Intel TSX-style transactions (Fig. 5).
//!
//! The baseline is the TSO-style axiomatisation of Alglave et al.
//! ("Herding cats"); the paper adds (highlighted in Fig. 5):
//!
//! * implicit fences at transaction boundaries (`tfence` joins `implied`),
//! * strong isolation (`StrongIsol`), and
//! * transaction atomicity (`TxnOrder`).

use txmm_core::incr::{DeltaPlan, Lift, Obligation, PruneOracle};
use txmm_core::{stronglift, union_all, Execution, ExecutionAnalysis, Fence, Rel};

use crate::arch::Arch;
use crate::delta::{com_feeds, rfe_co_fr_feeds};
use crate::model::{Checker, Derived, Model};

/// The x86 model. `tm: false` gives the non-transactional baseline used
/// as the synthesis reference; `tm: true` adds the highlighted axioms.
#[derive(Debug, Clone, Copy)]
pub struct X86 {
    /// Interpret transactions?
    pub tm: bool,
}

impl X86 {
    /// The transactional model.
    pub fn tm() -> X86 {
        X86 { tm: true }
    }

    /// The non-transactional baseline.
    pub fn base() -> X86 {
        X86 { tm: false }
    }

    /// The happens-before relation of Fig. 5:
    /// `hb = mfence ∪ ppo ∪ implied ∪ rfe ∪ fr ∪ co`.
    ///
    /// Everything but the `tfence` term is txn-independent, so the
    /// fixed union is memoised under `"x86.hb"` and shared across the
    /// transaction layouts of one rf/co structure.
    pub fn hb(&self, a: &ExecutionAnalysis<'_>) -> Rel {
        let fixed = a.memo("x86.hb", || {
            let n = a.len();
            let po = a.po();
            let w = a.writes();
            let r = a.reads();

            // ppo = ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po — everything but W→R.
            let ppo = union_all(
                n,
                [
                    &Rel::cross(n, w, w),
                    &Rel::cross(n, r, w),
                    &Rel::cross(n, r, r),
                ],
            )
            .inter(po);

            // implied = [L] ; po ∪ po ; [L]: LOCK'd RMWs fence.
            let l = a.rmw().domain().union(a.rmw().range());
            let idl = Rel::id_on(n, l);
            let implied = idl.seq(po).union(&po.seq(&idl));

            let mfence = a.fence_rel(Fence::MFence);
            union_all(n, [mfence, &ppo, &implied, a.rfe(), a.fr(), a.co()])
        });
        if self.tm {
            // tfence joins implied (Fig. 5, highlighted).
            fixed.union(a.tfence())
        } else {
            fixed
        }
    }
}

impl Model for X86 {
    fn name(&self) -> &'static str {
        if self.tm {
            "x86-tm"
        } else {
            "x86"
        }
    }

    fn arch(&self) -> Arch {
        Arch::X86
    }

    fn is_tm(&self) -> bool {
        self.tm
    }

    fn derived(&self, a: &ExecutionAnalysis<'_>) -> Derived {
        let hb = self.hb(a);
        let mut d = Derived::new();
        if self.tm {
            d.insert("txnorder", stronglift(&hb, a.stxn()));
        }
        d.insert("hb", hb);
        d
    }

    fn axioms(&self, a: &ExecutionAnalysis<'_>, d: &Derived, c: &mut Checker) {
        c.acyclic("Coherence", a.coherence());
        c.empty("RMWIsol", a.rmw_isol());
        c.acyclic("Order", d.expect("hb"));
        if self.tm {
            c.acyclic("StrongIsol", a.strong_isol());
            c.acyclic("TxnOrder", d.expect("txnorder"));
        }
    }

    fn prune_oracle(&self, _txns_known: bool) -> Option<&dyn PruneOracle> {
        Some(self)
    }
}

// Every axiom relation (hb, its stronglift, coherence, rmw ∩ fre;coe)
// is monotone in (rf, co, fr) with the structure fixed, and — with
// txns still empty — under adding transaction classes too, so the full
// check doubles as a partial-execution oracle in both modes.
impl PruneOracle for X86 {
    fn viable(&self, a: &ExecutionAnalysis<'_>) -> bool {
        self.check_analysis(a).is_consistent()
    }

    fn coherence_gate(&self) -> bool {
        true // the Coherence axiom is exactly the gate relation
    }
    fn event_monotone(&self) -> bool {
        true // pairwise builtins and monotone compositions only
    }

    fn txn_aware_exact(&self) -> bool {
        true // viable == the full check; the plan (incl. TM lifts) is exact
    }

    // Exact decomposition: hb = (fixed mfence ∪ ppo ∪ implied) ∪
    // rfe ∪ fr ∪ co, so the Order obligation seeds the fixed part
    // (hb on the base analysis, whose communication is empty) and
    // feeds each communication edge directly. Coherence is the gate,
    // RMWIsol the incremental flag, and the TM lifts distribute over
    // the union. With no transaction classes StrongIsol is subsumed
    // by the gate and TxnOrder by Order, so both are omitted.
    fn delta_plan(&self, x: &Execution) -> Option<DeltaPlan> {
        let n = x.len();
        let base = ExecutionAnalysis::with_fr(x, Rel::empty(n));
        let hb_fixed = self.hb(&base);
        let mut plan = DeltaPlan::fallback(x, true);
        plan.exact = true;
        plan.obls.push(Obligation {
            seed: hb_fixed,
            feed: rfe_co_fr_feeds(),
            lift: Lift::No,
        });
        let stxn = x.stxn();
        if self.tm && !stxn.is_empty() {
            plan.obls.push(Obligation {
                seed: Rel::empty(n),
                feed: com_feeds(),
                lift: Lift::Strong,
            });
            plan.obls.push(Obligation {
                seed: stronglift(&hb_fixed, &stxn),
                feed: rfe_co_fr_feeds(),
                lift: Lift::Strong,
            });
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmm_core::{ExecBuilder, Execution};

    /// Store buffering: Wx; Ry ∥ Wy; Rx, both reads observing the initial
    /// values. The hallmark TSO relaxation.
    fn sb(fenced: bool, txn0: bool, txn1: bool) -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w0 = b.write(t0, 0);
        if fenced {
            b.fence(t0, Fence::MFence);
        }
        let r0 = b.read(t0, 1);
        let t1 = b.new_thread();
        let w1 = b.write(t1, 1);
        if fenced {
            b.fence(t1, Fence::MFence);
        }
        let r1 = b.read(t1, 0);
        if txn0 {
            b.txn(&[w0, r0]);
        }
        if txn1 {
            b.txn(&[w1, r1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn sb_allowed_on_base_x86() {
        assert!(X86::base().consistent(&sb(false, false, false)));
        assert!(X86::tm().consistent(&sb(false, false, false)));
    }

    #[test]
    fn sb_with_mfence_forbidden() {
        let v = X86::base().check(&sb(true, false, false));
        assert_eq!(v.violations(), ["Order"]);
    }

    #[test]
    fn sb_both_txns_forbidden_under_tm() {
        // Two transactions may not exhibit store buffering: their fr
        // edges lift to a TxnOrder (and StrongIsol) cycle.
        let x = sb(false, true, true);
        assert!(X86::base().consistent(&x), "baseline ignores stxn");
        let v = X86::tm().check(&x);
        assert!(!v.is_consistent());
        assert!(v.violations().contains(&"TxnOrder"));
    }

    #[test]
    fn sb_single_txn_still_allowed() {
        // One transactional thread does not forbid store buffering: the
        // non-transactional thread may still defer its store past its
        // load, and the lifted fr edges do not close a cycle (the missing
        // link is exactly the plain thread's W->R pair).
        let x = sb(false, true, false);
        assert!(X86::tm().consistent(&x));
    }

    #[test]
    fn locked_rmw_both_sides_forbids_sb() {
        // Replacing both stores with LOCK'd RMWs restores SC:
        // implied = [L];po orders each RMW before its thread's read.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r0 = b.read(t0, 0);
        let w0 = b.write(t0, 0);
        b.rmw(r0, w0);
        let _ry = b.read(t0, 1);
        let t1 = b.new_thread();
        let r1 = b.read(t1, 1);
        let w1 = b.write(t1, 1);
        b.rmw(r1, w1);
        let _rx = b.read(t1, 0);
        // _ry reads initial y: fr(_ry, w1); _rx reads initial x: fr(_rx, w0).
        let x = b.build().unwrap();
        assert!(!X86::base().consistent(&x));
        // A single LOCK'd side leaves the shape observable.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r0 = b.read(t0, 0);
        let w0 = b.write(t0, 0);
        b.rmw(r0, w0);
        let _ry = b.read(t0, 1);
        let t1 = b.new_thread();
        let _w1 = b.write(t1, 1);
        let _rx = b.read(t1, 0);
        let y = b.build().unwrap();
        assert!(X86::base().consistent(&y));
    }

    #[test]
    fn mp_forbidden_on_x86() {
        // Message passing is already forbidden on TSO (no W->W or R->R
        // reordering).
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let _wx = b.write(t0, 0);
        let wy = b.write(t0, 1);
        let t1 = b.new_thread();
        let ry = b.read(t1, 1);
        let _rx = b.read(t1, 0);
        b.rf(wy, ry);
        let x = b.build().unwrap();
        assert!(!X86::base().consistent(&x));
    }

    #[test]
    fn rmw_isolation() {
        // An external write between the read and write of an RMW:
        // empty(rmw ∩ (fre ; coe)) fires.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r = b.read(t0, 0);
        let w = b.write(t0, 0);
        b.rmw(r, w);
        let t1 = b.new_thread();
        let wx = b.write(t1, 0);
        b.co(wx, w); // interferer hits memory between r and w
        let x = b.build().unwrap();
        let v = X86::base().check(&x);
        assert!(v.violations().contains(&"RMWIsol"));
    }

    #[test]
    fn coherence_axiom() {
        // po-loc against co: write then read of the same location must
        // not observe a co-earlier value... simplest: r reads init after
        // own write.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read(t0, 0);
        let _ = (w, r); // r reads initial value: fr(r, w) vs po(w, r)
        let x = b.build().unwrap();
        let v = X86::base().check(&x);
        assert!(v.violations().contains(&"Coherence"));
    }

    #[test]
    fn fig2_transactional_wr_forbidden() {
        // Fig. 2: a transaction writes x then reads x, but observes an
        // external write that is co-after its own: StrongIsol violation
        // (containment).
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.write(t0, 0);
        let r = b.read(t0, 0);
        let t1 = b.new_thread();
        let c = b.write(t1, 0);
        b.rf(c, r);
        b.co(a, c);
        b.txn(&[a, r]);
        let x = b.build().unwrap();
        assert!(
            X86::base().consistent(&x),
            "plain TSO allows it (read from other thread)"
        );
        let v = X86::tm().check(&x);
        assert!(v.violations().contains(&"StrongIsol"));
    }

    #[test]
    fn tm_model_matches_base_without_txns() {
        let x = sb(false, false, false);
        assert_eq!(X86::base().consistent(&x), X86::tm().consistent(&x));
        let y = sb(true, false, false);
        assert_eq!(X86::base().consistent(&y), X86::tm().consistent(&y));
    }
}
