//! Every named execution from the paper, with the verdicts the paper
//! assigns. Used by integration tests, the `catalog` bin, and examples.

use txmm_core::{Attrs, Call, ExecBuilder, Execution, Fence};

/// What the paper says about one execution under one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// The model must allow the execution.
    Consistent,
    /// The model must forbid it.
    Forbidden,
}

/// A named execution from the paper plus its expected verdicts.
pub struct CatalogEntry {
    /// Short identifier (used by the `catalog` bin).
    pub name: &'static str,
    /// Where in the paper it appears.
    pub paper_ref: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The execution itself.
    pub exec: Execution,
    /// `(model name, expected verdict)` pairs.
    pub expect: Vec<(&'static str, Expect)>,
}

/// Fig. 1: a plain 3-event execution (two writes to x, one read).
pub fn fig1() -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let a = b.write(t0, 0);
    let r = b.read(t0, 0);
    let t1 = b.new_thread();
    let c = b.write(t1, 0);
    b.rf(c, r);
    b.co(a, c);
    b.build().unwrap()
}

/// Fig. 2: Fig. 1 with the first thread's events in a transaction.
pub fn fig2() -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let a = b.write(t0, 0);
    let r = b.read(t0, 0);
    let t1 = b.new_thread();
    let c = b.write(t1, 0);
    b.rf(c, r);
    b.co(a, c);
    b.txn(&[a, r]);
    b.build().unwrap()
}

/// Fig. 3 (a)–(d): the four SC executions distinguishing weak from
/// strong isolation.
pub fn fig3(which: char) -> Execution {
    let mut b = ExecBuilder::new();
    match which {
        'a' => {
            let t0 = b.new_thread();
            let r1 = b.read(t0, 0);
            let r2 = b.read(t0, 0);
            let t1 = b.new_thread();
            let w = b.write(t1, 0);
            b.rf(w, r2); // r1 reads the initial value
            b.txn(&[r1, r2]);
        }
        'b' => {
            let t0 = b.new_thread();
            let r = b.read(t0, 0);
            let w1 = b.write(t0, 0);
            let t1 = b.new_thread();
            let w2 = b.write(t1, 0);
            b.co(w2, w1); // r reads init: fr(r, w2)
            b.txn(&[r, w1]);
        }
        'c' => {
            let t0 = b.new_thread();
            let w1 = b.write(t0, 0);
            let w2 = b.write(t0, 0);
            let t1 = b.new_thread();
            let r = b.read(t1, 0);
            b.rf(w1, r);
            b.co(w1, w2);
            b.txn(&[w1, w2]);
        }
        'd' => {
            let t0 = b.new_thread();
            let w1 = b.write(t0, 0);
            let r = b.read(t0, 0);
            let t1 = b.new_thread();
            let w2 = b.write(t1, 0);
            b.rf(w2, r);
            b.co(w1, w2);
            b.txn(&[w1, r]);
        }
        _ => panic!("fig3 variant must be a..d"),
    }
    b.build().unwrap()
}

/// Store buffering, optionally fenced / transactional per thread.
pub fn sb(fence: Option<Fence>, txn0: bool, txn1: bool) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let w0 = b.write(t0, 0);
    if let Some(f) = fence {
        b.fence(t0, f);
    }
    let r0 = b.read(t0, 1);
    let t1 = b.new_thread();
    let w1 = b.write(t1, 1);
    if let Some(f) = fence {
        b.fence(t1, f);
    }
    let r1 = b.read(t1, 0);
    if txn0 {
        b.txn(&[w0, r0]);
    }
    if txn1 {
        b.txn(&[w1, r1]);
    }
    b.build().unwrap()
}

/// Message passing; `dep` adds an address dependency between the reads,
/// `fence` separates the writes, `txns` wraps each thread's pair.
pub fn mp(fence: Option<Fence>, dep: bool, txns: bool) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let wx = b.write(t0, 0);
    let _ = wx;
    if let Some(f) = fence {
        b.fence(t0, f);
    }
    let wy = b.write(t0, 1);
    let t1 = b.new_thread();
    let ry = b.read(t1, 1);
    let rx = b.read(t1, 0);
    if dep {
        b.addr(ry, rx);
    }
    b.rf(wy, ry);
    if txns {
        b.txn(&[wx, wy]);
        b.txn(&[ry, rx]);
    }
    b.build().unwrap()
}

/// Load buffering with optional data dependencies.
pub fn lb(deps: bool) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let r0 = b.read(t0, 0);
    let w0 = b.write(t0, 1);
    let t1 = b.new_thread();
    let r1 = b.read(t1, 1);
    let w1 = b.write(t1, 0);
    if deps {
        b.data(r0, w0);
        b.data(r1, w1);
    }
    b.rf(w0, r1);
    b.rf(w1, r0);
    b.build().unwrap()
}

/// §5.2 execution (1): WRC with a transactional middle thread
/// (integrated memory barrier, tprop1).
pub fn power_exec1() -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let a = b.write(t0, 0);
    let t1 = b.new_thread();
    let r = b.read(t1, 0);
    let c = b.write(t1, 1);
    let t2 = b.new_thread();
    let d = b.read(t2, 1);
    let e = b.read(t2, 0);
    b.addr(d, e);
    b.rf(a, r);
    b.rf(c, d);
    b.txn(&[r, c]);
    b.build().unwrap()
}

/// §5.2 execution (2): WRC with a transactional first writer
/// (multicopy-atomic transactional stores, tprop2).
pub fn power_exec2() -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let a = b.write(t0, 0);
    let t1 = b.new_thread();
    let r = b.read(t1, 0);
    let c = b.write(t1, 1);
    b.addr(r, c);
    let t2 = b.new_thread();
    let d = b.read(t2, 1);
    let e = b.read(t2, 0);
    b.addr(d, e);
    b.rf(a, r);
    b.rf(c, d);
    b.txn(&[a]);
    b.build().unwrap()
}

/// §5.2 execution (3): IRIW with one or both writers transactional.
pub fn power_exec3(both_txn: bool) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let a = b.write(t0, 0);
    let t1 = b.new_thread();
    let r1 = b.read(t1, 0);
    let r2 = b.read(t1, 1);
    b.addr(r1, r2);
    let t2 = b.new_thread();
    let r3 = b.read(t2, 1);
    let r4 = b.read(t2, 0);
    b.addr(r3, r4);
    let t3 = b.new_thread();
    let f = b.write(t3, 1);
    b.rf(a, r1);
    b.rf(f, r3);
    b.txn(&[a]);
    if both_txn {
        b.txn(&[f]);
    }
    b.build().unwrap()
}

/// Remark 5.1: read-only-transaction variants the model errs towards
/// permitting. `second` selects the co-variant.
pub fn remark51(second: bool) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let a = b.write(t0, 0);
    let t1 = b.new_thread();
    let r1 = b.read(t1, 0);
    let r2 = b.read(t1, 1);
    let t2 = b.new_thread();
    let _d = b.write(t2, 1);
    b.fence(t2, Fence::Sync);
    if second {
        let e = b.write(t2, 0);
        b.co(e, a);
    } else {
        let _e = b.read(t2, 0); // reads initial x: fr to a
    }
    b.rf(a, r1);
    b.txn(&[r1, r2]);
    b.build().unwrap()
}

/// §8.1: the monotonicity counterexample — an rmw pair split across two
/// transactions (`split = true`) vs coalesced into one (`split = false`).
pub fn rmw_txn(split: bool) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let r = b.read(t0, 0);
    let w = b.write(t0, 0);
    b.rmw(r, w);
    if split {
        b.txn(&[r]);
        b.txn(&[w]);
    } else {
        b.txn(&[r, w]);
    }
    b.build().unwrap()
}

/// §9: the execution distinguishing this paper's models from Dongol et
/// al.'s (forbidden by C++, so compilation demands hardware forbid it).
pub fn dongol() -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let wx = b.write(t0, 0);
    let wy = b.write(t0, 1);
    let t1 = b.new_thread();
    let ry = b.read(t1, 1);
    let rx = b.read(t1, 0);
    b.rf(wy, ry);
    let _ = (wx, rx);
    b.txn(&[wx, wy]);
    b.txn(&[ry, rx]);
    b.build().unwrap()
}

/// Example 1.1 / Fig. 10 (right): the concrete ARMv8 execution showing
/// lock elision unsound. `dmb_fix` appends the DMB of §1.1's proposed
/// repair to the lock implementation.
///
/// Thread 0 runs the recommended spinlock around `x += 2`; thread 1
/// elides its lock and runs `x = 1` in a transaction that read the lock
/// as free. The postcondition `x = 2` (mutual-exclusion violation)
/// corresponds to exactly this execution.
pub fn armv8_elision(dmb_fix: bool) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    // lock(): LDAXR m; STXR m (successful RMW), ctrl from the
    // acquire-load.
    let a = b.read_acq(t0, 1);
    let bw = b.write(t0, 1);
    b.rmw(a, bw);
    b.ctrl(a, bw);
    if dmb_fix {
        b.fence(t0, Fence::Dmb);
    }
    // critical region: x += 2 (load feeds store).
    let c = b.read(t0, 0);
    let d = b.write(t0, 0);
    b.data(c, d);
    // unlock(): STLR m.
    let e = b.write_rel(t0, 1);
    let t1 = b.new_thread();
    // elided CR: txn { read m (sees it free), x = 1 }.
    let f = b.read(t1, 1);
    let g = b.write(t1, 0);
    b.ctrl(f, g);
    b.txn(&[f, g]);
    // m: lock write then unlock write; x: txn's write then x+=2's write.
    b.co(bw, e);
    b.co(g, d);
    // All reads observe initial values (a and f see the lock free; c
    // misses the transaction's write).
    b.build().unwrap()
}

/// Appendix B: the second ARMv8 elision witness — an external load
/// observes a critical region's intermediate write.
pub fn armv8_elision_appendix_b(dmb_fix: bool) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let a = b.read_acq(t0, 1);
    let bw = b.write(t0, 1);
    b.rmw(a, bw);
    b.ctrl(a, bw);
    if dmb_fix {
        b.fence(t0, Fence::Dmb);
    }
    // critical region: x = 1; x = 2.
    let c = b.write(t0, 0);
    let d = b.write(t0, 0);
    let e = b.write_rel(t0, 1);
    let t1 = b.new_thread();
    // elided CR: txn { read m, read x } — reads the intermediate x = 1.
    let f = b.read(t1, 1);
    let g = b.read(t1, 0);
    b.ctrl(f, g);
    b.txn(&[f, g]);
    b.co(bw, e);
    b.co(c, d);
    b.rf(c, g);
    b.build().unwrap()
}

/// The x86 analogue of the elision witness: forbidden, because the
/// LOCK'd RMW acquiring the lock is ordered before the critical region
/// (`implied = [L];po`).
pub fn x86_elision() -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    // lock(): test (read m) then test-and-set (RMW on m).
    let t = b.read(t0, 1);
    let a = b.read(t0, 1);
    let bw = b.write(t0, 1);
    b.rmw(a, bw);
    b.ctrl(a, bw);
    let _ = t;
    // critical region: x += 2.
    let c = b.read(t0, 0);
    let d = b.write(t0, 0);
    b.data(c, d);
    // unlock(): plain store.
    let e = b.write(t0, 1);
    let t1 = b.new_thread();
    let f = b.read(t1, 1);
    let g = b.write(t1, 0);
    b.ctrl(f, g);
    b.txn(&[f, g]);
    b.co(bw, e);
    b.co(g, d);
    b.build().unwrap()
}

/// The Power analogue of the elision witness, with the spinlock of
/// [29, §B.2.1.1]: larx/stcx + ctrl(+isync) from the store-exclusive
/// (footnote 3), and a sync-fenced unlock.
///
/// Under Fig. 6 *as printed* this execution is consistent (see
/// EXPERIMENTS.md: the paper's own check timed out as Unknown).
pub fn power_elision() -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let a = b.read(t0, 1);
    let bw = b.write(t0, 1);
    b.rmw(a, bw);
    b.ctrl(a, bw);
    b.fence(t0, Fence::Isync);
    let c = b.read(t0, 0);
    let d = b.write(t0, 0);
    b.data(c, d);
    // ctrl from the store-exclusive to the CR (footnote 3).
    b.ctrl(bw, c);
    b.ctrl(bw, d);
    b.fence(t0, Fence::Sync);
    let e = b.write(t0, 1);
    let t1 = b.new_thread();
    let f = b.read(t1, 1);
    let g = b.write(t1, 0);
    b.ctrl(f, g);
    b.txn(&[f, g]);
    b.co(bw, e);
    b.co(g, d);
    b.build().unwrap()
}

/// The complete catalog with expected verdicts.
pub fn all() -> Vec<CatalogEntry> {
    use Expect::{Consistent, Forbidden};
    vec![
        CatalogEntry {
            name: "fig1",
            paper_ref: "Fig. 1",
            description: "plain execution: Wx; Rx ∥ Wx, read observes the external write",
            exec: fig1(),
            expect: vec![
                ("SC", Consistent),
                ("x86", Consistent),
                ("x86-tm", Consistent),
            ],
        },
        CatalogEntry {
            name: "fig2",
            paper_ref: "Fig. 2",
            description: "Fig. 1 with the W;R pair transactional: containment violation",
            exec: fig2(),
            expect: vec![
                ("x86", Consistent),
                ("x86-tm", Forbidden),
                ("power-tm", Forbidden),
                ("armv8-tm", Forbidden),
                ("TSC", Forbidden),
            ],
        },
        CatalogEntry {
            name: "fig3a",
            paper_ref: "Fig. 3(a)",
            description: "non-interference: external write splits a transaction's two reads",
            exec: fig3('a'),
            expect: vec![
                ("SC", Consistent),
                ("TSC", Forbidden),
                ("x86-tm", Forbidden),
            ],
        },
        CatalogEntry {
            name: "fig3b",
            paper_ref: "Fig. 3(b)",
            description: "RMW-style isolation: external write between a txn's read and write",
            exec: fig3('b'),
            expect: vec![
                ("SC", Consistent),
                ("TSC", Forbidden),
                ("x86-tm", Forbidden),
            ],
        },
        CatalogEntry {
            name: "fig3c",
            paper_ref: "Fig. 3(c)",
            description: "intermediate-value leak: external read sees a txn's first write",
            exec: fig3('c'),
            expect: vec![
                ("SC", Consistent),
                ("TSC", Forbidden),
                ("x86-tm", Forbidden),
            ],
        },
        CatalogEntry {
            name: "fig3d",
            paper_ref: "Fig. 3(d)",
            description: "containment: txn's read observes an external write co-after its own",
            exec: fig3('d'),
            expect: vec![
                ("SC", Consistent),
                ("TSC", Forbidden),
                ("x86-tm", Forbidden),
            ],
        },
        CatalogEntry {
            name: "sb",
            paper_ref: "§5.1",
            description: "store buffering: the hallmark x86 relaxation",
            exec: sb(None, false, false),
            expect: vec![
                ("SC", Forbidden),
                ("x86", Consistent),
                ("power", Consistent),
                ("armv8", Consistent),
            ],
        },
        CatalogEntry {
            name: "sb+mfence",
            paper_ref: "§5.1",
            description: "store buffering fenced with MFENCE",
            exec: sb(Some(Fence::MFence), false, false),
            expect: vec![("x86", Forbidden), ("x86-tm", Forbidden)],
        },
        CatalogEntry {
            name: "sb+txns",
            paper_ref: "§3.4",
            description: "store buffering with both sides transactional",
            exec: sb(None, true, true),
            expect: vec![
                ("x86", Consistent),
                ("x86-tm", Forbidden),
                ("power-tm", Forbidden),
                ("armv8-tm", Forbidden),
                ("TSC", Forbidden),
            ],
        },
        CatalogEntry {
            name: "mp",
            paper_ref: "§5.1",
            description: "message passing, plain",
            exec: mp(None, false, false),
            expect: vec![
                ("SC", Forbidden),
                ("x86", Forbidden),
                ("power", Consistent),
                ("armv8", Consistent),
            ],
        },
        CatalogEntry {
            name: "mp+sync+addr",
            paper_ref: "§5.1",
            description: "message passing with sync and an address dependency",
            exec: mp(Some(Fence::Sync), true, false),
            expect: vec![("power", Forbidden), ("power-tm", Forbidden)],
        },
        CatalogEntry {
            name: "mp+txns",
            paper_ref: "§5.2",
            description: "message passing with both sides transactional",
            exec: mp(None, false, true),
            expect: vec![
                ("power", Consistent),
                ("power-tm", Forbidden),
                ("armv8-tm", Forbidden),
                ("x86-tm", Forbidden),
            ],
        },
        CatalogEntry {
            name: "lb",
            paper_ref: "§5.3",
            description: "load buffering (allowed by Power, never observed on hardware)",
            exec: lb(false),
            expect: vec![
                ("power", Consistent),
                ("armv8", Consistent),
                ("x86", Forbidden),
            ],
        },
        CatalogEntry {
            name: "lb+deps",
            paper_ref: "§5.3",
            description: "load buffering with data dependencies (thin air)",
            exec: lb(true),
            expect: vec![("power", Forbidden), ("armv8", Forbidden)],
        },
        CatalogEntry {
            name: "power-exec1",
            paper_ref: "§5.2 (1)",
            description: "WRC with transactional middle thread: integrated memory barrier",
            exec: power_exec1(),
            expect: vec![("power-tm", Forbidden)],
        },
        CatalogEntry {
            name: "power-exec2",
            paper_ref: "§5.2 (2)",
            description: "WRC with transactional writer: transactional stores are MCA",
            exec: power_exec2(),
            expect: vec![("power-tm", Forbidden)],
        },
        CatalogEntry {
            name: "power-exec3",
            paper_ref: "§5.2 (3)",
            description: "IRIW with both writers transactional: serialisation order",
            exec: power_exec3(true),
            expect: vec![("power-tm", Forbidden)],
        },
        CatalogEntry {
            name: "power-exec3-one-txn",
            paper_ref: "§5.2",
            description: "IRIW with a single transactional writer: observed on hardware",
            exec: power_exec3(false),
            expect: vec![("power-tm", Consistent)],
        },
        CatalogEntry {
            name: "remark51-1",
            paper_ref: "Remark 5.1",
            description: "read-only transaction, fr variant: deliberately permitted",
            exec: remark51(false),
            expect: vec![("power-tm", Consistent)],
        },
        CatalogEntry {
            name: "remark51-2",
            paper_ref: "Remark 5.1",
            description: "read-only transaction, co variant: deliberately permitted",
            exec: remark51(true),
            expect: vec![("power-tm", Consistent)],
        },
        CatalogEntry {
            name: "rmw-split",
            paper_ref: "§8.1",
            description: "rmw straddling two transactions: TxnCancelsRMW",
            exec: rmw_txn(true),
            expect: vec![
                ("power-tm", Forbidden),
                ("armv8-tm", Forbidden),
                ("x86-tm", Consistent),
            ],
        },
        CatalogEntry {
            name: "rmw-coalesced",
            paper_ref: "§8.1",
            description: "the same rmw inside one transaction: consistent (monotonicity c'ex)",
            exec: rmw_txn(false),
            expect: vec![("power-tm", Consistent), ("armv8-tm", Consistent)],
        },
        CatalogEntry {
            name: "dongol",
            paper_ref: "§9",
            description: "MP with transactional pairs: forbidden here, allowed by Dongol et al.",
            exec: dongol(),
            expect: vec![
                ("power-tm", Forbidden),
                ("armv8-tm", Forbidden),
                ("x86-tm", Forbidden),
            ],
        },
        CatalogEntry {
            name: "armv8-elision",
            paper_ref: "Ex. 1.1 / Fig. 10",
            description: "ARMv8 lock-elision witness: CONSISTENT = the bug",
            exec: armv8_elision(false),
            expect: vec![("armv8-tm", Consistent)],
        },
        CatalogEntry {
            name: "armv8-elision-dmb",
            paper_ref: "§1.1",
            description: "the same execution with the DMB repair: forbidden",
            exec: armv8_elision(true),
            expect: vec![("armv8-tm", Forbidden)],
        },
        CatalogEntry {
            name: "armv8-elision-appb",
            paper_ref: "App. B",
            description: "second witness: external load sees an intermediate CR write",
            exec: armv8_elision_appendix_b(false),
            expect: vec![("armv8-tm", Consistent)],
        },
        CatalogEntry {
            name: "armv8-elision-appb-dmb",
            paper_ref: "App. B",
            description: "Appendix B witness with the DMB repair: forbidden",
            exec: armv8_elision_appendix_b(true),
            expect: vec![("armv8-tm", Forbidden)],
        },
        CatalogEntry {
            name: "x86-elision",
            paper_ref: "§8.3",
            description: "x86 elision analogue: forbidden (LOCK'd RMW orders the CR)",
            exec: x86_elision(),
            expect: vec![("x86-tm", Forbidden)],
        },
        CatalogEntry {
            name: "power-elision",
            paper_ref: "§8.3 / Table 2",
            description:
                "Power elision analogue (paper: Unknown after timeout; see EXPERIMENTS.md)",
            exec: power_elision(),
            expect: vec![("power-tm", Consistent)],
        },
    ]
}

/// C++ executions live in their own list because their expectations also
/// cover race-freedom.
pub fn cpp_mp(rel_acq: bool, txns: bool) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let wx = b.write(t0, 0);
    let wy = if rel_acq {
        b.write_ato(t0, 1, Attrs::REL)
    } else {
        b.write_ato(t0, 1, Attrs::NONE)
    };
    let t1 = b.new_thread();
    let ry = if rel_acq {
        b.read_ato(t1, 1, Attrs::ACQ)
    } else {
        b.read_ato(t1, 1, Attrs::NONE)
    };
    let rx = b.read(t1, 0);
    b.rf(wy, ry);
    if txns {
        b.txn_atomic(&[wx]);
        b.txn_atomic(&[rx]);
    }
    b.build().unwrap()
}

/// An abstract lock-elision execution (Fig. 10 left): two critical
/// regions over `x`, the second elided, violating mutual exclusion.
pub fn elision_abstract() -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    b.call(t0, Call::Lock);
    let c = b.read(t0, 0);
    let d = b.write(t0, 0);
    b.data(c, d);
    b.call(t0, Call::Unlock);
    let t1 = b.new_thread();
    b.call(t1, Call::TLock);
    let g = b.write(t1, 0);
    b.call(t1, Call::TUnlock);
    b.co(g, d);
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::registry::by_name;

    #[test]
    fn catalog_matches_paper_verdicts() {
        for entry in all() {
            for (model_name, expect) in &entry.expect {
                let model =
                    by_name(model_name).unwrap_or_else(|| panic!("unknown model {model_name}"));
                let verdict = model.check(&entry.exec);
                let want = matches!(expect, Expect::Consistent);
                assert_eq!(
                    verdict.is_consistent(),
                    want,
                    "{} under {}: expected {:?}, got {}",
                    entry.name,
                    model_name,
                    expect,
                    verdict,
                );
            }
        }
    }

    #[test]
    fn catalog_executions_wellformed() {
        for entry in all() {
            assert!(entry.exec.check_wf().is_ok(), "{} ill-formed", entry.name);
        }
    }

    #[test]
    fn elision_abstract_violates_cr_order() {
        use txmm_core::weaklift;
        let x = elision_abstract();
        let lift = weaklift(&x.po().union(&x.com()), &x.scr());
        assert!(
            !lift.is_acyclic(),
            "CROrder must reject the abstract execution"
        );
    }

    #[test]
    fn cpp_mp_variants() {
        use crate::cpp::Cpp;
        let racy = cpp_mp(false, false);
        assert!(Cpp::tm().racy(&racy));
        let sound = cpp_mp(true, false);
        assert!(!Cpp::tm().racy(&sound));
        assert!(!Cpp::tm().consistent(&sound), "stale read forbidden");
    }
}
