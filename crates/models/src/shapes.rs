//! The classic litmus-test families (the `diy` seven and friends),
//! parameterised by fences, dependencies and transactions.
//!
//! These complement [`crate::catalog`]: where the catalog holds the
//! paper's named executions, this module generates whole families used
//! by the conformance and cross-validation suites.

use txmm_core::{ExecBuilder, Execution, Fence};

/// How to strengthen one side of a shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Strength {
    /// Insert this fence between the thread's two accesses.
    pub fence: Option<Fence>,
    /// Add an address dependency (only meaningful after a read).
    pub dep: bool,
    /// Wrap the thread's accesses in a transaction.
    pub txn: bool,
}

impl Strength {
    /// No strengthening.
    pub const PLAIN: Strength = Strength {
        fence: None,
        dep: false,
        txn: false,
    };

    /// Just a transaction.
    pub const TXN: Strength = Strength {
        fence: None,
        dep: false,
        txn: true,
    };
}

fn finish2(b: &mut ExecBuilder, t: u8, first: usize, second: usize, s: Strength) {
    if s.dep {
        b.addr(first, second);
    }
    if s.txn {
        b.txn(&[first, second]);
    }
    let _ = t;
}

/// Message passing: `Wx; Wy ∥ Ry; Rx` with `rf` on y and `Rx` stale.
pub fn mp(s0: Strength, s1: Strength) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let wx = b.write(t0, 0);
    if let Some(f) = s0.fence {
        b.fence(t0, f);
    }
    let wy = b.write(t0, 1);
    if s0.txn {
        b.txn(&[wx, wy]);
    }
    let t1 = b.new_thread();
    let ry = b.read(t1, 1);
    if let Some(f) = s1.fence {
        b.fence(t1, f);
    }
    let rx = b.read(t1, 0);
    b.rf(wy, ry);
    finish2(&mut b, t1, ry, rx, Strength { fence: None, ..s1 });
    b.build().expect("mp well-formed")
}

/// Store buffering: `Wx; Ry ∥ Wy; Rx`, both reads stale.
pub fn sb(s0: Strength, s1: Strength) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let wx = b.write(t0, 0);
    if let Some(f) = s0.fence {
        b.fence(t0, f);
    }
    let ry = b.read(t0, 1);
    if s0.txn {
        b.txn(&[wx, ry]);
    }
    let t1 = b.new_thread();
    let wy = b.write(t1, 1);
    if let Some(f) = s1.fence {
        b.fence(t1, f);
    }
    let rx = b.read(t1, 0);
    if s1.txn {
        b.txn(&[wy, rx]);
    }
    b.build().expect("sb well-formed")
}

/// Load buffering: `Rx; Wy ∥ Ry; Wx` with both reads satisfied by the
/// other thread's write.
pub fn lb(s0: Strength, s1: Strength) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let rx = b.read(t0, 0);
    if let Some(f) = s0.fence {
        b.fence(t0, f);
    }
    let wy = b.write(t0, 1);
    if s0.dep {
        b.data(rx, wy);
    }
    if s0.txn {
        b.txn(&[rx, wy]);
    }
    let t1 = b.new_thread();
    let ry = b.read(t1, 1);
    if let Some(f) = s1.fence {
        b.fence(t1, f);
    }
    let wx = b.write(t1, 0);
    if s1.dep {
        b.data(ry, wx);
    }
    if s1.txn {
        b.txn(&[ry, wx]);
    }
    b.rf(wy, ry);
    b.rf(wx, rx);
    b.build().expect("lb well-formed")
}

/// 2+2W: `Wx=2; Wy=1 ∥ Wy=2; Wx=1` with each location's *first* writer
/// coherence-last.
pub fn w2plus2(s0: Strength, s1: Strength) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let wx2 = b.write(t0, 0);
    if let Some(f) = s0.fence {
        b.fence(t0, f);
    }
    let wy1 = b.write(t0, 1);
    if s0.txn {
        b.txn(&[wx2, wy1]);
    }
    let t1 = b.new_thread();
    let wy2 = b.write(t1, 1);
    if let Some(f) = s1.fence {
        b.fence(t1, f);
    }
    let wx1 = b.write(t1, 0);
    if s1.txn {
        b.txn(&[wy2, wx1]);
    }
    b.co(wx1, wx2);
    b.co(wy1, wy2);
    b.build().expect("2+2w well-formed")
}

/// S: `Wx=2; Wy ∥ Ry; Wx=1` with `rf` on y and `Wx=1` coherence-before
/// `Wx=2`.
pub fn s_shape(s0: Strength, s1: Strength) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let wx2 = b.write(t0, 0);
    if let Some(f) = s0.fence {
        b.fence(t0, f);
    }
    let wy = b.write(t0, 1);
    if s0.txn {
        b.txn(&[wx2, wy]);
    }
    let t1 = b.new_thread();
    let ry = b.read(t1, 1);
    if let Some(f) = s1.fence {
        b.fence(t1, f);
    }
    let wx1 = b.write(t1, 0);
    if s1.dep {
        b.data(ry, wx1);
    }
    if s1.txn {
        b.txn(&[ry, wx1]);
    }
    b.rf(wy, ry);
    b.co(wx1, wx2);
    b.build().expect("s well-formed")
}

/// R: `Wx=1; Wy=1 ∥ Wy=2; Rx` with `Rx` stale and `Wy=1` co-before `Wy=2`.
pub fn r_shape(s0: Strength, s1: Strength) -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let wx = b.write(t0, 0);
    if let Some(f) = s0.fence {
        b.fence(t0, f);
    }
    let wy1 = b.write(t0, 1);
    if s0.txn {
        b.txn(&[wx, wy1]);
    }
    let t1 = b.new_thread();
    let wy2 = b.write(t1, 1);
    if let Some(f) = s1.fence {
        b.fence(t1, f);
    }
    let rx = b.read(t1, 0);
    if s1.txn {
        b.txn(&[wy2, rx]);
    }
    b.co(wy1, wy2);
    b.build().expect("r well-formed")
}

/// Coherence sanity shapes: CoRR (two reads of one location must not see
/// writes in anti-coherence order) and CoWW (a thread's own writes are
/// coherence-ordered).
pub fn corr_violation() -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let w1 = b.write(t0, 0);
    let t1 = b.new_thread();
    let w2 = b.write(t1, 0);
    let t2 = b.new_thread();
    let r1 = b.read(t2, 0);
    let r2 = b.read(t2, 0);
    b.rf(w2, r1);
    b.rf(w1, r2);
    b.co(w1, w2);
    b.build().expect("corr well-formed")
}

/// CoWW violation: a thread's second write coherence-before its first.
pub fn coww_violation() -> Execution {
    let mut b = ExecBuilder::new();
    let t0 = b.new_thread();
    let w1 = b.write(t0, 0);
    let w2 = b.write(t0, 0);
    b.co(w2, w1);
    b.build().expect("coww well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::{Armv8, Power, Sc, Tsc, X86};

    #[test]
    fn coherence_shapes_forbidden_everywhere() {
        for x in [corr_violation(), coww_violation()] {
            for m in crate::registry::all_models() {
                if m.arch() == crate::Arch::Cpp {
                    continue;
                }
                assert!(
                    !m.consistent(&x),
                    "{} must forbid coherence violations",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn verdict_matrix_plain_shapes() {
        // The canonical allowed/forbidden matrix for the plain shapes.
        let p = Strength::PLAIN;
        // (execution, sc, x86, power, armv8)
        let rows: Vec<(&str, Execution, bool, bool, bool, bool)> = vec![
            ("mp", mp(p, p), false, false, true, true),
            ("sb", sb(p, p), false, true, true, true),
            ("lb", lb(p, p), false, false, true, true),
            ("2+2w", w2plus2(p, p), false, false, true, true),
            ("s", s_shape(p, p), false, false, true, true),
            ("r", r_shape(p, p), false, true, true, true),
        ];
        for (name, x, e_sc, e_x86, e_pow, e_arm) in rows {
            assert_eq!(Sc.consistent(&x), e_sc, "{name} under SC");
            assert_eq!(X86::base().consistent(&x), e_x86, "{name} under x86");
            assert_eq!(Power::base().consistent(&x), e_pow, "{name} under Power");
            assert_eq!(Armv8::base().consistent(&x), e_arm, "{name} under ARMv8");
        }
    }

    #[test]
    fn transactions_restore_sc_for_all_shapes() {
        // Wrapping both sides of any shape in transactions forbids it
        // under every transactional model — transactional SC (§3.4).
        let t = Strength::TXN;
        let shapes = [
            mp(t, t),
            sb(t, t),
            lb(t, t),
            w2plus2(t, t),
            s_shape(t, t),
            r_shape(t, t),
        ];
        for (i, x) in shapes.iter().enumerate() {
            assert!(!Tsc.consistent(x), "shape {i} under TSC");
            assert!(!X86::tm().consistent(x), "shape {i} under x86-tm");
            assert!(!Power::tm().consistent(x), "shape {i} under power-tm");
            assert!(!Armv8::tm().consistent(x), "shape {i} under armv8-tm");
        }
    }

    #[test]
    fn one_sided_transactions_differ_by_shape() {
        let t = Strength::TXN;
        let p = Strength::PLAIN;
        let dep = Strength {
            dep: true,
            ..Strength::PLAIN
        };
        // SB with one transactional side stays visible everywhere (the
        // W->R relaxation lives on the plain side).
        assert!(X86::tm().consistent(&sb(t, p)));
        // MP with only a transactional reader is still observable on
        // Power: the txn takes an atomic snapshot, but the *writer's*
        // unfenced stores propagate independently, so {y=1, x=0} is a
        // coherent snapshot.
        assert!(Power::tm().consistent(&mp(p, t)));
        // A transactional writer alone does not help either (the plain
        // reader reorders its loads)...
        assert!(Power::tm().consistent(&mp(t, p)));
        // ...but writer-txn + reader-dependency is forbidden: tprop2
        // makes the transactional stores multicopy-atomic and the
        // dependency pins the reads (the exec (2) mechanism).
        assert!(!Power::tm().consistent(&mp(t, dep)));
        assert!(
            Power::base().consistent(&mp(t, dep).erase_txns()),
            "without the transaction the same shape is allowed"
        );
    }

    #[test]
    fn fence_strengths_match_architectures() {
        let dep = Strength {
            dep: true,
            ..Strength::PLAIN
        };
        let sync = Strength {
            fence: Some(Fence::Sync),
            ..Strength::PLAIN
        };
        let lw = Strength {
            fence: Some(Fence::Lwsync),
            ..Strength::PLAIN
        };
        let dmb = Strength {
            fence: Some(Fence::Dmb),
            ..Strength::PLAIN
        };
        let mf = Strength {
            fence: Some(Fence::MFence),
            ..Strength::PLAIN
        };
        // Power: MP needs sync/lwsync + dep.
        assert!(!Power::base().consistent(&mp(sync, dep)));
        assert!(!Power::base().consistent(&mp(lw, dep)));
        assert!(Power::base().consistent(&mp(lw, Strength::PLAIN)));
        // SB: lwsync is too weak (W->R), sync works.
        assert!(Power::base().consistent(&sb(lw, lw)));
        assert!(!Power::base().consistent(&sb(sync, sync)));
        // x86: MFENCE kills SB.
        assert!(!X86::base().consistent(&sb(mf, mf)));
        // ARMv8: DMB + dep kills MP; R needs a DMB on both sides.
        assert!(!Armv8::base().consistent(&mp(dmb, dep)));
        assert!(!Armv8::base().consistent(&r_shape(dmb, dmb)));
    }

    #[test]
    fn lb_with_deps_forbidden_everywhere_weak() {
        let dep = Strength {
            dep: true,
            ..Strength::PLAIN
        };
        assert!(!Power::base().consistent(&lb(dep, dep)));
        assert!(!Armv8::base().consistent(&lb(dep, dep)));
        // One dependency is not enough.
        assert!(Power::base().consistent(&lb(dep, Strength::PLAIN)));
    }

    #[test]
    fn s_and_r_with_transactions() {
        let t = Strength::TXN;
        let p = Strength::PLAIN;
        // S with both sides transactional: forbidden on Power via the
        // lifted serialisation.
        assert!(!Power::tm().consistent(&s_shape(t, t)));
        // R with a transactional right-hand side is forbidden on x86:
        // co and fr are part of the x86 happens-before, so the lift
        // closes the cycle through the plain thread's ordered writes.
        assert!(!X86::tm().consistent(&r_shape(p, t)));
        // The plain R shape stays observable on x86 (W->R reordering).
        assert!(X86::tm().consistent(&r_shape(p, p)));
    }
}
