//! Property-style tests pinning down the relational-algebra laws the
//! `[u64; MAX_EVENTS]` inline representation must satisfy. Relations
//! are sampled with a deterministic xorshift generator, so any failure
//! reproduces from its printed seed.

use txmm_core::rng::SplitMix64;
use txmm_core::{stronglift, union_all, weaklift, EventSet, Rel, MAX_EVENTS};

const CASES: u64 = 256;

/// A random relation over `n` events with roughly `density`/8 of pairs.
fn arb_rel(rng: &mut SplitMix64, n: usize, density: usize) -> Rel {
    let mut r = Rel::empty(n);
    for a in 0..n {
        for b in 0..n {
            if rng.below(8) < density {
                r.add(a, b);
            }
        }
    }
    r
}

fn arb_set(rng: &mut SplitMix64, n: usize) -> EventSet {
    EventSet::from_iter((0..n).filter(|_| rng.below(2) == 0))
}

fn sizes(seed: u64) -> usize {
    // Cover every execution size the paper uses (≤ 9) plus the
    // bit-matrix edge cases around the u64 row boundary.
    const NS: [usize; 8] = [1, 2, 3, 5, 7, 9, 63, MAX_EVENTS];
    NS[(seed % NS.len() as u64) as usize]
}

#[test]
fn composition_is_associative() {
    for seed in 0..CASES {
        let n = sizes(seed);
        let mut rng = SplitMix64::seed_from_u64(seed);
        let a = arb_rel(&mut rng, n, 2);
        let b = arb_rel(&mut rng, n, 2);
        let c = arb_rel(&mut rng, n, 2);
        assert_eq!(a.seq(&b).seq(&c), a.seq(&b.seq(&c)), "seed {seed} n {n}");
        // Identity is neutral for composition.
        let id = Rel::id(n);
        assert_eq!(a.seq(&id), a, "seed {seed}");
        assert_eq!(id.seq(&a), a, "seed {seed}");
    }
}

#[test]
fn closures_are_idempotent_fixpoints() {
    for seed in 0..CASES {
        let n = sizes(seed);
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x1111);
        let a = arb_rel(&mut rng, n, 2);
        let p = a.plus();
        // Idempotence.
        assert_eq!(p.plus(), p, "seed {seed}");
        assert_eq!(a.star().star(), a.star(), "seed {seed}");
        assert_eq!(a.opt().opt(), a.opt(), "seed {seed}");
        // plus is the least fixpoint of X = a ∪ (a ; X).
        assert_eq!(p, a.union(&a.seq(&p)), "seed {seed}");
        // star = plus? and contains the identity.
        assert_eq!(a.star(), p.opt(), "seed {seed}");
        assert!(Rel::id(n).is_subset(&a.star()), "seed {seed}");
        // Closures only grow and stay transitive.
        assert!(a.is_subset(&p), "seed {seed}");
        assert!(p.is_transitive(), "seed {seed}");
        // acyclic(a) ⟺ irreflexive(a⁺).
        assert_eq!(a.is_acyclic(), p.is_irreflexive(), "seed {seed}");
    }
}

#[test]
fn id_on_and_cross_interactions() {
    for seed in 0..CASES {
        let n = sizes(seed);
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x2222);
        let a = arb_rel(&mut rng, n, 3);
        let s = arb_set(&mut rng, n);
        let t = arb_set(&mut rng, n);
        // [s] ; a ; [t] is exactly domain/range restriction.
        assert_eq!(
            Rel::id_on(n, s).seq(&a).seq(&Rel::id_on(n, t)),
            a.restrict_domain(s).restrict_range(t),
            "seed {seed}"
        );
        // [s] ; [t] = [s ∩ t].
        assert_eq!(
            Rel::id_on(n, s).seq(&Rel::id_on(n, t)),
            Rel::id_on(n, s.inter(t)),
            "seed {seed}"
        );
        // (s × t)⁻¹ = t × s.
        assert_eq!(
            Rel::cross(n, s, t).inverse(),
            Rel::cross(n, t, s),
            "seed {seed}"
        );
        // (s × t) ; (t' × u) = s × u whenever t ∩ t' ≠ ∅.
        let u = arb_set(&mut rng, n);
        let lhs = Rel::cross(n, s, t).seq(&Rel::cross(n, t, u));
        if t.is_empty() || t.inter(EventSet::universe(n)).is_empty() {
            assert!(lhs.is_empty(), "seed {seed}");
        } else {
            assert_eq!(lhs, Rel::cross(n, s, u), "seed {seed}");
        }
        // domain/range duality through inverse.
        assert_eq!(a.inverse().domain(), a.range(), "seed {seed}");
        assert_eq!(a.inverse().range(), a.domain(), "seed {seed}");
    }
}

#[test]
fn inverse_is_an_involution() {
    for seed in 0..CASES {
        let n = sizes(seed);
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x3333);
        let a = arb_rel(&mut rng, n, 3);
        let b = arb_rel(&mut rng, n, 3);
        assert_eq!(a.inverse().inverse(), a, "seed {seed}");
        // Contravariance over composition, covariance over union.
        assert_eq!(
            a.seq(&b).inverse(),
            b.inverse().seq(&a.inverse()),
            "seed {seed}"
        );
        assert_eq!(
            a.union(&b).inverse(),
            a.inverse().union(&b.inverse()),
            "seed {seed}"
        );
        assert_eq!(a.len(), a.inverse().len(), "seed {seed}");
    }
}

#[test]
fn boolean_algebra_laws() {
    for seed in 0..CASES {
        let n = sizes(seed);
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x4444);
        let a = arb_rel(&mut rng, n, 3);
        let b = arb_rel(&mut rng, n, 3);
        // Complement involution and De Morgan.
        assert_eq!(a.complement().complement(), a, "seed {seed}");
        assert_eq!(
            a.union(&b).complement(),
            a.complement().inter(&b.complement()),
            "seed {seed}"
        );
        // Difference via complement.
        assert_eq!(a.minus(&b), a.inter(&b.complement()), "seed {seed}");
        // Union/intersection idempotence and absorption.
        assert_eq!(a.union(&a), a, "seed {seed}");
        assert_eq!(a.inter(&a), a, "seed {seed}");
        assert_eq!(a.union(&a.inter(&b)), a, "seed {seed}");
        // Composition distributes over union.
        assert_eq!(
            a.seq(&b.union(&a)),
            a.seq(&b).union(&a.seq(&a)),
            "seed {seed}"
        );
        // union_all agrees with folded union.
        assert_eq!(union_all(n, [&a, &b]), a.union(&b), "seed {seed}");
    }
}

#[test]
fn lift_laws() {
    for seed in 0..CASES {
        let n = sizes(seed).min(9); // lifts only ever see paper-sized universes
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5555);
        let r = arb_rel(&mut rng, n, 3);
        // A transaction-shaped equivalence: cross of a random class.
        let class = arb_set(&mut rng, n);
        let t = Rel::cross(n, class, class);
        let weak = weaklift(&r, &t);
        let strong = stronglift(&r, &t);
        assert!(
            weak.is_subset(&strong),
            "seed {seed}: weaklift ⊆ stronglift"
        );
        // Lifting the empty relation is empty.
        assert!(weaklift(&Rel::empty(n), &t).is_empty(), "seed {seed}");
        assert!(stronglift(&Rel::empty(n), &t).is_empty(), "seed {seed}");
        // With no transactions, weaklift is empty and stronglift is r.
        let none = Rel::empty(n);
        assert!(weaklift(&r, &none).is_empty(), "seed {seed}");
        assert_eq!(stronglift(&r, &none), r.minus(&none), "seed {seed}");
    }
}

#[test]
fn max_universe_boundary() {
    // The inline-array representation must behave at n = MAX_EVENTS.
    let full = Rel::full(MAX_EVENTS);
    assert_eq!(full.len(), MAX_EVENTS * MAX_EVENTS);
    assert!(full.complement().is_empty());
    assert_eq!(full.complement().complement(), full);
    let id = Rel::id(MAX_EVENTS);
    assert!(id.is_subset(&full));
    assert_eq!(full.seq(&full), full);
    assert!(!full.is_acyclic());
    assert_eq!(id.inverse(), id);
}
