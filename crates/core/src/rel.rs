//! Binary relations over a small event universe, as dense bit-matrices.
//!
//! This module implements the relational algebra that axiomatic memory
//! models are written in (§2.1 of the paper and the `.cat` language):
//! union, intersection, difference, complement, inverse, composition
//! (`;`), reflexive (`?`), transitive (`+`) and reflexive-transitive
//! (`*`) closure, set-lifting `[s]`, and the `acyclic` / `irreflexive` /
//! `empty` consistency predicates.
//!
//! Executions are tiny (the paper's bounds stop at nine events), so a row
//! of a relation is a single `u64` and every operation is a handful of
//! word operations. Rows live in a fixed inline array rather than a
//! heap `Vec`: relation algebra is completely allocation-free, which
//! matters because enumeration and model checking construct millions of
//! intermediate relations.

use crate::event::EventId;
use crate::set::{EventSet, MAX_EVENTS};
use std::fmt;

/// A binary relation over events `0..n`.
///
/// Invariant: `rows[n..]` is always all-zero, so equality and hashing
/// over the first `n` rows agree with the semantic relation.
#[derive(Clone, Copy, Eq)]
pub struct Rel {
    n: usize,
    rows: [u64; MAX_EVENTS],
}

// Manual impls so comparison and hashing touch only the `n` live rows
// (the zero-tail invariant makes them equivalent to whole-array
// versions): fixpoint convergence tests and verdict-cache lookups run
// these on every check, and `n` is typically 4–6 of the 64 rows.
impl PartialEq for Rel {
    fn eq(&self, other: &Rel) -> bool {
        self.n == other.n && self.rows[..self.n] == other.rows[..other.n]
    }
}

impl std::hash::Hash for Rel {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.n.hash(state);
        self.rows[..self.n].hash(state);
    }
}

impl Rel {
    /// The empty relation over `n` events.
    pub fn empty(n: usize) -> Rel {
        assert!(n <= MAX_EVENTS, "relation universe too large: {n}");
        Rel {
            n,
            rows: [0; MAX_EVENTS],
        }
    }

    /// The full relation `n × n`.
    pub fn full(n: usize) -> Rel {
        let mask = EventSet::universe(n).bits();
        let mut r = Rel::empty(n);
        r.rows[..n].fill(mask);
        r
    }

    /// The identity relation over `n` events.
    pub fn id(n: usize) -> Rel {
        let mut r = Rel::empty(n);
        for e in 0..n {
            r.add(e, e);
        }
        r
    }

    /// The identity restricted to a set: the `.cat` construct `[s]`.
    pub fn id_on(n: usize, s: EventSet) -> Rel {
        let mut r = Rel::empty(n);
        for e in s.iter() {
            if e < n {
                r.add(e, e);
            }
        }
        r
    }

    /// The Cartesian product `a × b`.
    pub fn cross(n: usize, a: EventSet, b: EventSet) -> Rel {
        let mut r = Rel::empty(n);
        let bb = b.inter(EventSet::universe(n)).bits();
        for e in a.iter() {
            if e < n {
                r.rows[e] = bb;
            }
        }
        r
    }

    /// Build from explicit pairs.
    pub fn from_pairs<I: IntoIterator<Item = (EventId, EventId)>>(n: usize, pairs: I) -> Rel {
        let mut r = Rel::empty(n);
        for (a, b) in pairs {
            r.add(a, b);
        }
        r
    }

    /// The universe size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Add the pair `(a, b)`.
    pub fn add(&mut self, a: EventId, b: EventId) {
        assert!(
            a < self.n && b < self.n,
            "pair ({a},{b}) out of range {}",
            self.n
        );
        self.rows[a] |= 1u64 << b;
    }

    /// Remove the pair `(a, b)`.
    pub fn remove(&mut self, a: EventId, b: EventId) {
        assert!(a < self.n && b < self.n);
        self.rows[a] &= !(1u64 << b);
    }

    /// Membership test.
    pub fn contains(&self, a: EventId, b: EventId) -> bool {
        a < self.n && b < self.n && self.rows[a] & (1u64 << b) != 0
    }

    /// The successors of `a` as a set.
    pub fn row(&self, a: EventId) -> EventSet {
        EventSet::from_bits(self.rows[a])
    }

    /// The raw bit-row `i` (`i < n`). With [`Rel::set_word`], lets hot
    /// interpreters (the `.cat` VM) compute row-wise into an existing
    /// relation instead of materialising 520-byte temporaries.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        debug_assert!(i < self.n);
        self.rows[i]
    }

    /// Overwrite bit-row `i`. Restricted to `i < n` so the zero-tail
    /// invariant is preserved.
    #[inline]
    pub fn set_word(&mut self, i: usize, w: u64) {
        debug_assert!(i < self.n);
        self.rows[i] = w;
    }

    /// Copy another relation's live rows into this one (same universe).
    #[inline]
    pub fn copy_from(&mut self, src: &Rel) {
        debug_assert_eq!(self.n, src.n);
        self.rows[..self.n].copy_from_slice(&src.rows[..self.n]);
    }

    fn zip(&self, other: &Rel, f: impl Fn(u64, u64) -> u64) -> Rel {
        assert_eq!(self.n, other.n, "relation universe mismatch");
        let mut r = Rel::empty(self.n);
        for i in 0..self.n {
            r.rows[i] = f(self.rows[i], other.rows[i]);
        }
        r
    }

    /// Union.
    pub fn union(&self, other: &Rel) -> Rel {
        self.zip(other, |a, b| a | b)
    }

    /// Intersection.
    pub fn inter(&self, other: &Rel) -> Rel {
        self.zip(other, |a, b| a & b)
    }

    /// Difference (`\`).
    pub fn minus(&self, other: &Rel) -> Rel {
        self.zip(other, |a, b| a & !b)
    }

    /// Complement with respect to the full `n × n` relation (`¬`).
    pub fn complement(&self) -> Rel {
        let mask = EventSet::universe(self.n).bits();
        let mut r = Rel::empty(self.n);
        for i in 0..self.n {
            r.rows[i] = !self.rows[i] & mask;
        }
        r
    }

    /// Inverse (`r⁻¹`).
    pub fn inverse(&self) -> Rel {
        let mut r = Rel::empty(self.n);
        for a in 0..self.n {
            let mut bits = self.rows[a];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                r.rows[b] |= 1u64 << a;
            }
        }
        r
    }

    /// Relational composition (`r1 ; r2`).
    pub fn seq(&self, other: &Rel) -> Rel {
        assert_eq!(self.n, other.n, "relation universe mismatch");
        let mut r = Rel::empty(self.n);
        for a in 0..self.n {
            let mut mids = self.rows[a];
            let mut out = 0u64;
            while mids != 0 {
                let m = mids.trailing_zeros() as usize;
                mids &= mids - 1;
                out |= other.rows[m];
            }
            r.rows[a] = out;
        }
        r
    }

    /// Reflexive closure (`r?`).
    pub fn opt(&self) -> Rel {
        self.union(&Rel::id(self.n))
    }

    /// Reflexive closure, in place.
    pub fn reflexive_close(&mut self) {
        for e in 0..self.n {
            self.rows[e] |= 1u64 << e;
        }
    }

    /// Transitive closure (`r⁺`), via bit-parallel Warshall: `n²` word
    /// operations, no intermediate relations.
    pub fn plus(&self) -> Rel {
        let mut r = *self;
        r.transitive_close();
        r
    }

    /// Transitive closure, in place.
    pub fn transitive_close(&mut self) {
        for k in 0..self.n {
            let through_k = self.rows[k];
            let bit = 1u64 << k;
            for i in 0..self.n {
                if self.rows[i] & bit != 0 {
                    self.rows[i] |= through_k;
                }
            }
        }
    }

    /// Reflexive-transitive closure (`r*`).
    pub fn star(&self) -> Rel {
        let mut r = *self;
        r.transitive_close();
        r.reflexive_close();
        r
    }

    /// Keep only pairs whose source is in `s`.
    pub fn restrict_domain(&self, s: EventSet) -> Rel {
        let mut r = Rel::empty(self.n);
        for a in s.iter() {
            if a < self.n {
                r.rows[a] = self.rows[a];
            }
        }
        r
    }

    /// Keep only pairs whose target is in `s`.
    pub fn restrict_range(&self, s: EventSet) -> Rel {
        let mask = s.inter(EventSet::universe(self.n)).bits();
        let mut r = Rel::empty(self.n);
        for i in 0..self.n {
            r.rows[i] = self.rows[i] & mask;
        }
        r
    }

    /// The set of sources.
    pub fn domain(&self) -> EventSet {
        let mut s = EventSet::EMPTY;
        for a in 0..self.n {
            if self.rows[a] != 0 {
                s.insert(a);
            }
        }
        s
    }

    /// The set of targets.
    pub fn range(&self) -> EventSet {
        let mut bits = 0u64;
        for &row in &self.rows[..self.n] {
            bits |= row;
        }
        EventSet::from_bits(bits)
    }

    /// Is the relation empty? (`empty(r)` in `.cat`.)
    pub fn is_empty(&self) -> bool {
        self.rows[..self.n].iter().all(|&r| r == 0)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.rows[..self.n]
            .iter()
            .map(|r| r.count_ones() as usize)
            .sum()
    }

    /// Does the relation contain a pair `(e, e)`?
    pub fn is_irreflexive(&self) -> bool {
        (0..self.n).all(|e| self.rows[e] & (1u64 << e) == 0)
    }

    /// Is the relation free of cycles? (`acyclic(r)` ⟺ `irreflexive(r⁺)`.)
    ///
    /// Warshall over a scratch copy of the live rows, bailing out the
    /// moment any diagonal bit appears.
    pub fn is_acyclic(&self) -> bool {
        // Cheap pre-check: a reflexive pair is already a cycle.
        if !self.is_irreflexive() {
            return false;
        }
        let mut rows = self.rows;
        for k in 0..self.n {
            let through_k = rows[k];
            let bit = 1u64 << k;
            for (i, row) in rows.iter_mut().enumerate().take(self.n) {
                if *row & bit != 0 {
                    *row |= through_k;
                    if *row & (1u64 << i) != 0 {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &Rel) -> bool {
        assert_eq!(self.n, other.n);
        self.rows[..self.n]
            .iter()
            .zip(&other.rows[..self.n])
            .all(|(&a, &b)| a & !b == 0)
    }

    /// Is the relation symmetric?
    pub fn is_symmetric(&self) -> bool {
        *self == self.inverse()
    }

    /// Is the relation transitive?
    pub fn is_transitive(&self) -> bool {
        self.seq(self).is_subset(self)
    }

    /// Iterate over all pairs, in row-major order.
    pub fn pairs(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        (0..self.n).flat_map(move |a| self.row(a).iter().map(move |b| (a, b)))
    }

    /// Is `r` a strict total order when restricted to `s`?
    ///
    /// Used by well-formedness: `po` per thread, `co` per location.
    pub fn is_strict_total_order_on(&self, s: EventSet) -> bool {
        // Irreflexive on s.
        for e in s.iter() {
            if self.contains(e, e) {
                return false;
            }
        }
        // Transitive within s.
        let on_s = self.restrict_domain(s).restrict_range(s);
        if !on_s.is_transitive() {
            return false;
        }
        // Total: any two distinct elements related one way or the other.
        let members: Vec<_> = s.iter().collect();
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                if !self.contains(a, b) && !self.contains(b, a) {
                    return false;
                }
                if self.contains(a, b) && self.contains(b, a) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (a, b) in self.pairs() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "({a},{b})")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rel(n={}, {self})", self.n)
    }
}

/// Union of an iterator of relations (convenience for model definitions).
pub fn union_all<'a, I: IntoIterator<Item = &'a Rel>>(n: usize, rels: I) -> Rel {
    let mut acc = Rel::empty(n);
    for r in rels {
        acc = acc.union(r);
    }
    acc
}

/// The paper's `weaklift(r, t) = t ; (r \ t) ; t` (§3.3).
///
/// If `r` relates events in two different transactions, the lift relates
/// *every* event of the first transaction to *every* event of the second.
pub fn weaklift(r: &Rel, t: &Rel) -> Rel {
    t.seq(&r.minus(t)).seq(t)
}

/// The paper's `stronglift(r, t) = t? ; (r \ t) ; t?` (§3.3).
///
/// Like [`weaklift`], but the source and/or target may also be
/// non-transactional events.
pub fn stronglift(r: &Rel, t: &Rel) -> Rel {
    let topt = t.opt();
    topt.seq(&r.minus(t)).seq(&topt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: usize, pairs: &[(usize, usize)]) -> Rel {
        Rel::from_pairs(n, pairs.iter().copied())
    }

    #[test]
    fn basic_membership() {
        let mut rel = Rel::empty(4);
        rel.add(0, 1);
        rel.add(2, 3);
        assert!(rel.contains(0, 1));
        assert!(!rel.contains(1, 0));
        rel.remove(0, 1);
        assert!(!rel.contains(0, 1));
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn composition() {
        let a = r(4, &[(0, 1), (1, 2)]);
        let b = r(4, &[(1, 3), (2, 0)]);
        let c = a.seq(&b);
        assert!(c.contains(0, 3));
        assert!(c.contains(1, 0));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn closures() {
        let a = r(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = a.plus();
        assert!(p.contains(0, 3));
        assert!(!p.contains(3, 0));
        assert!(p.is_irreflexive());
        let s = a.star();
        assert!(s.contains(2, 2));
        let o = a.opt();
        assert!(o.contains(0, 0) && o.contains(0, 1) && !o.contains(0, 2));
    }

    #[test]
    fn acyclicity() {
        assert!(r(3, &[(0, 1), (1, 2)]).is_acyclic());
        assert!(!r(3, &[(0, 1), (1, 2), (2, 0)]).is_acyclic());
        assert!(!r(3, &[(1, 1)]).is_acyclic());
        assert!(Rel::empty(3).is_acyclic());
    }

    #[test]
    fn inverse_and_complement() {
        let a = r(3, &[(0, 1), (1, 2)]);
        let inv = a.inverse();
        assert!(inv.contains(1, 0) && inv.contains(2, 1));
        assert_eq!(inv.len(), 2);
        let c = a.complement();
        assert!(!c.contains(0, 1));
        assert!(c.contains(1, 0));
        assert_eq!(c.len(), 9 - 2);
        assert_eq!(a.complement().complement(), a);
    }

    #[test]
    fn set_lifting_and_cross() {
        let s = EventSet::from_iter([0, 2]);
        let idr = Rel::id_on(3, s);
        assert!(idr.contains(0, 0) && idr.contains(2, 2) && !idr.contains(1, 1));
        let x = Rel::cross(3, EventSet::singleton(0), EventSet::from_iter([1, 2]));
        assert!(x.contains(0, 1) && x.contains(0, 2) && !x.contains(1, 2));
    }

    #[test]
    fn restriction_domain_range() {
        let a = r(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = a.restrict_domain(EventSet::from_iter([0, 2]));
        assert!(d.contains(0, 1) && d.contains(2, 3) && !d.contains(1, 2));
        let g = a.restrict_range(EventSet::from_iter([2]));
        assert!(g.contains(1, 2) && !g.contains(0, 1));
        assert_eq!(a.domain(), EventSet::from_iter([0, 1, 2]));
        assert_eq!(a.range(), EventSet::from_iter([1, 2, 3]));
    }

    #[test]
    fn total_order_check() {
        let s = EventSet::from_iter([0, 1, 2]);
        assert!(r(3, &[(0, 1), (1, 2), (0, 2)]).is_strict_total_order_on(s));
        // Missing transitive pair (0,2): not a strict total order.
        assert!(!r(3, &[(0, 1), (1, 2)]).is_strict_total_order_on(s));
        // Reflexive: no.
        assert!(!r(3, &[(0, 1), (1, 2), (0, 2), (0, 0)]).is_strict_total_order_on(s));
        // Symmetric pair: no.
        assert!(!r(3, &[(0, 1), (1, 0), (1, 2), (0, 2)]).is_strict_total_order_on(s));
        // Restriction to a subset ignores outside elements.
        assert!(r(3, &[(0, 1)]).is_strict_total_order_on(EventSet::from_iter([0, 1])));
    }

    #[test]
    fn subset_symmetric_transitive() {
        let a = r(3, &[(0, 1)]);
        let b = r(3, &[(0, 1), (1, 2)]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(r(3, &[(0, 1), (1, 0)]).is_symmetric());
        assert!(!a.is_symmetric());
        assert!(r(3, &[(0, 1), (1, 2), (0, 2)]).is_transitive());
        assert!(!b.is_transitive());
    }

    #[test]
    fn union_all_helper() {
        let a = r(3, &[(0, 1)]);
        let b = r(3, &[(1, 2)]);
        let u = union_all(3, [&a, &b]);
        assert!(u.contains(0, 1) && u.contains(1, 2));
    }

    #[test]
    fn display_pairs() {
        let a = r(3, &[(0, 1), (1, 2)]);
        assert_eq!(a.to_string(), "{(0,1), (1,2)}");
    }
}
