//! An arena for executions: inline, `Copy`-cheap storage.
//!
//! [`crate::rel::Rel`] already keeps its rows in a fixed inline array so
//! the whole relational algebra is allocation-free, but [`Execution`]
//! itself still heap-allocates its event and transaction lists. That
//! cost is invisible for a single check and dominant for a long-lived
//! serving process that interns thousands of executions. This module
//! closes the gap:
//!
//! * [`PackedExecution`] — a whole execution in one flat `Copy` value:
//!   events in a fixed `[Event; MAX_EVENTS]` array mirroring `Rel`'s
//!   `[u64; MAX_EVENTS]` rows, transaction classes as
//!   ([`EventSet`], atomic-flag) pairs. Packing and comparing are pure
//!   word operations; no allocation anywhere.
//! * [`ExecArena`] — an interning store of packed executions: equal
//!   executions share one [`ExecId`], so per-execution caches (verdicts,
//!   observability, analyses) can be keyed by a dense integer.
//!
//! Symmetry-aware (canonical) interning lives a layer up: callers that
//! want thread/location-permutation aliasing key the arena through a
//! canonical hash (see `txmm::Session`), while the arena itself dedups
//! on structural equality and is therefore always sound.

use std::collections::HashMap;

use crate::event::{Attrs, Event, EventKind};
use crate::exec::{Execution, TxnClass};
use crate::rel::Rel;
use crate::set::{EventSet, MAX_EVENTS};

/// Dense handle of an interned execution within one [`ExecArena`].
pub type ExecId = u32;

/// One transaction class, packed: the member set plus the atomic flag.
/// Program order within the class is recovered on unpacking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PackedTxn {
    members: EventSet,
    atomic: bool,
}

const NO_TXN: PackedTxn = PackedTxn {
    members: EventSet::EMPTY,
    atomic: false,
};

/// The filler for unused event slots; never observed (all accessors
/// bound by `len`) but fixed so derived `Eq`/`Hash` see identical bytes
/// for identical executions.
const FILLER_EVENT: Event = Event {
    kind: EventKind::Read,
    tid: 0,
    loc: None,
    attrs: Attrs::NONE,
};

/// A whole execution in one inline `Copy` value (≈ 5 KiB): events and
/// transactions in fixed arrays, relations as the existing inline
/// [`Rel`] bit-matrices. Packing, copying, hashing and comparing never
/// allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedExecution {
    len: u8,
    events: [Event; MAX_EVENTS],
    po: Rel,
    addr: Rel,
    ctrl: Rel,
    data: Rel,
    rmw: Rel,
    rf: Rel,
    co: Rel,
    ntxns: u8,
    txns: [PackedTxn; MAX_EVENTS],
}

impl PackedExecution {
    /// Pack an execution. Allocation-free.
    pub fn pack(x: &Execution) -> PackedExecution {
        assert!(x.len() <= MAX_EVENTS, "execution too large to pack");
        assert!(x.txns().len() <= MAX_EVENTS, "too many transactions");
        let mut events = [FILLER_EVENT; MAX_EVENTS];
        events[..x.len()].copy_from_slice(x.events());
        let mut txns = [NO_TXN; MAX_EVENTS];
        for (i, t) in x.txns().iter().enumerate() {
            txns[i] = PackedTxn {
                members: EventSet::from_iter(t.events.iter().copied()),
                atomic: t.atomic,
            };
        }
        PackedExecution {
            len: x.len() as u8,
            events,
            po: *x.po(),
            addr: *x.addr(),
            ctrl: *x.ctrl(),
            data: *x.data(),
            rmw: *x.rmw(),
            rf: *x.rf(),
            co: *x.co(),
            ntxns: x.txns().len() as u8,
            txns,
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the packed execution has no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of transaction classes.
    pub fn num_txns(&self) -> usize {
        self.ntxns as usize
    }

    /// Reconstruct the heap [`Execution`]. Transaction members come out
    /// in program order, so `unpack(pack(x)) == x` for every well-formed
    /// execution.
    pub fn unpack(&self) -> Execution {
        let n = self.len();
        let txns = self.txns[..self.num_txns()]
            .iter()
            .map(|t| {
                let mut evs: Vec<usize> = t.members.iter().collect();
                // Members are same-thread; order them by po (ids are
                // po-ordered in every constructor this workspace ships,
                // but `from_parts` accepts any per-thread total order).
                evs.sort_by(|&a, &b| {
                    if self.po.contains(a, b) {
                        std::cmp::Ordering::Less
                    } else if self.po.contains(b, a) {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Equal
                    }
                });
                TxnClass {
                    events: evs,
                    atomic: t.atomic,
                }
            })
            .collect();
        Execution::from_parts(
            self.events[..n].to_vec(),
            self.po,
            self.addr,
            self.ctrl,
            self.data,
            self.rmw,
            self.rf,
            self.co,
            txns,
        )
    }
}

impl From<&Execution> for PackedExecution {
    fn from(x: &Execution) -> PackedExecution {
        PackedExecution::pack(x)
    }
}

/// An interning arena of [`PackedExecution`]s.
///
/// Structurally equal executions (same events, relations, transaction
/// classes) intern to the same [`ExecId`]; lookups go through a hash
/// index with full equality verification, so collisions cannot alias
/// distinct executions.
#[derive(Default)]
pub struct ExecArena {
    execs: Vec<PackedExecution>,
    index: HashMap<u64, Vec<ExecId>>,
}

impl ExecArena {
    /// An empty arena.
    pub fn new() -> ExecArena {
        ExecArena::default()
    }

    /// Number of distinct interned executions.
    pub fn len(&self) -> usize {
        self.execs.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.execs.is_empty()
    }

    fn hash_of(p: &PackedExecution) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        p.hash(&mut h);
        h.finish()
    }

    /// Intern a packed execution; returns its id and whether it was new.
    pub fn intern_packed(&mut self, p: PackedExecution) -> (ExecId, bool) {
        let h = Self::hash_of(&p);
        let bucket = self.index.entry(h).or_default();
        for &id in bucket.iter() {
            if self.execs[id as usize] == p {
                return (id, false);
            }
        }
        let id = self.execs.len() as ExecId;
        bucket.push(id);
        self.execs.push(p);
        (id, true)
    }

    /// Intern an execution; returns its id and whether it was new.
    pub fn intern(&mut self, x: &Execution) -> (ExecId, bool) {
        self.intern_packed(PackedExecution::pack(x))
    }

    /// The packed execution behind an id.
    pub fn get(&self, id: ExecId) -> &PackedExecution {
        &self.execs[id as usize]
    }

    /// Unpack the execution behind an id.
    pub fn unpack(&self, id: ExecId) -> Execution {
        self.get(id).unpack()
    }

    /// Iterate over `(id, packed)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (ExecId, &PackedExecution)> {
        self.execs.iter().enumerate().map(|(i, p)| (i as ExecId, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ExecBuilder;
    use crate::event::Fence;

    fn sample() -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w0 = b.write(t0, 0);
        b.fence(t0, Fence::MFence);
        let r0 = b.read(t0, 1);
        let t1 = b.new_thread();
        let w1 = b.write(t1, 1);
        let r1 = b.read(t1, 0);
        b.rf(w1, r0);
        b.rf(w0, r1);
        b.txn(&[w1, r1]);
        b.build().unwrap()
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let x = sample();
        let p = PackedExecution::pack(&x);
        assert_eq!(p.len(), x.len());
        assert_eq!(p.num_txns(), x.txns().len());
        assert_eq!(p.unpack(), x);
    }

    #[test]
    fn roundtrip_preserves_txn_order_and_flags() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.write(t0, 0);
        let c = b.read(t0, 0);
        b.rf(a, c);
        b.txn_atomic(&[a, c]);
        let x = b.build().unwrap();
        let y = PackedExecution::pack(&x).unpack();
        assert_eq!(y.txns()[0].events, vec![a, c]);
        assert!(y.txns()[0].atomic);
        assert_eq!(x, y);
    }

    #[test]
    fn empty_execution_roundtrips() {
        let x = ExecBuilder::new().build().unwrap();
        let p = PackedExecution::pack(&x);
        assert!(p.is_empty());
        assert_eq!(p.unpack(), x);
    }

    #[test]
    fn packed_equality_matches_execution_equality() {
        let x = sample();
        let y = sample();
        assert_eq!(PackedExecution::pack(&x), PackedExecution::pack(&y));
        let z = x.erase_txns();
        assert_ne!(PackedExecution::pack(&x), PackedExecution::pack(&z));
    }

    #[test]
    fn arena_interns_structurally() {
        let mut arena = ExecArena::new();
        let x = sample();
        let (a, fresh_a) = arena.intern(&x);
        let (b, fresh_b) = arena.intern(&sample());
        assert!(fresh_a);
        assert!(!fresh_b);
        assert_eq!(a, b);
        assert_eq!(arena.len(), 1);
        let (c, fresh_c) = arena.intern(&x.erase_txns());
        assert!(fresh_c);
        assert_ne!(a, c);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.unpack(a), x);
        assert_eq!(arena.iter().count(), 2);
    }

    #[test]
    fn unpacked_analysis_matches_original() {
        let x = sample();
        let y = PackedExecution::pack(&x).unpack();
        let ax = x.analysis();
        let ay = y.analysis();
        assert_eq!(ax.fr(), ay.fr());
        assert_eq!(ax.com(), ay.com());
        assert_eq!(ax.stxn(), ay.stxn());
        assert_eq!(ax.tfence(), ay.tfence());
    }
}
