//! # txmm-core
//!
//! Event-graph executions and the relational algebra underlying axiomatic
//! memory models, as used in *"The Semantics of Transactions and Weak
//! Memory in x86, Power, ARM, and C++"* (Chong, Sorensen, Wickerson).
//!
//! An [`Execution`] is a graph whose vertices are runtime memory events
//! (reads, writes, fences, and — for the lock-elision study — method
//! calls) and whose edges are the relations of §2.1 of the paper:
//! program order `po`, dependencies `addr`/`ctrl`/`data`, `rmw` pairs,
//! reads-from `rf` and coherence `co`, extended in §3.1 with the
//! transaction equivalence `stxn`.
//!
//! The crate provides:
//!
//! * [`rel::Rel`] — dense, allocation-free bit-matrix relations with
//!   the full `.cat` operator set (`; | & \ ¬ ⁻¹ ? + *`, `[s]`,
//!   `acyclic`, ...), rows stored inline;
//! * [`exec::Execution`] — executions with derived relations (`fr`,
//!   `com`, `rfe`/`fre`/`coe`, fence relations, `stxn`, `tfence`, `scr`);
//! * [`analysis::ExecutionAnalysis`] — the shared per-execution cache
//!   of derived relations every model checks against;
//! * [`arena::PackedExecution`] / [`arena::ExecArena`] — whole
//!   executions as inline `Copy` values, interned for long-lived
//!   serving (events/txns in fixed arrays mirroring `Rel`'s rows);
//! * [`wf`] — the well-formedness conditions;
//! * [`build::ExecBuilder`] — a fluent constructor;
//! * [`display`] — text and Graphviz rendering.
//!
//! ## Example
//!
//! ```
//! use txmm_core::prelude::*;
//!
//! // Fig. 2 of the paper: a transaction writing and re-reading x, with
//! // an interfering external write.
//! let mut b = ExecBuilder::new();
//! let t0 = b.new_thread();
//! let a = b.write(t0, 0);
//! let r = b.read(t0, 0);
//! let t1 = b.new_thread();
//! let c = b.write(t1, 0);
//! b.rf(c, r).co(a, c).txn(&[a, r]);
//! let x = b.build().unwrap();
//!
//! // The external write communicates into and out of the transaction:
//! // a strong-isolation violation (see txmm-models for the axiom).
//! let lift = stronglift(&x.com(), &x.stxn());
//! assert!(!lift.is_acyclic());
//! ```

pub mod analysis;
pub mod arena;
pub mod build;
pub mod canon;
pub mod display;
pub mod event;
pub mod exec;
pub mod incr;
pub mod rel;
pub mod rng;
pub mod set;
pub mod wf;

pub use analysis::{ExecutionAnalysis, TxnFreeBase};
pub use arena::{ExecArena, ExecId, PackedExecution};
pub use build::ExecBuilder;
pub use canon::canon_key;
pub use event::{loc_name, Attrs, Call, Event, EventId, EventKind, Fence, Loc, Tid};
pub use exec::{CrClass, Execution, LocSet, ThreadEvents, TxnClass};
pub use incr::{
    judge_batch, set_delta_validation, ComposeRule, DeltaPlan, EdgeKind, EdgeSel, IncrOrder, Lift,
    NoPrune, Obligation, PartialCandidate, PruneOracle, PruneStats,
};
pub use rel::{stronglift, union_all, weaklift, Rel};
pub use set::{EventSet, MAX_EVENTS};
pub use wf::WfError;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::analysis::ExecutionAnalysis;
    pub use crate::build::ExecBuilder;
    pub use crate::event::{loc_name, Attrs, Call, Event, EventId, EventKind, Fence, Loc, Tid};
    pub use crate::exec::{CrClass, Execution, LocSet, ThreadEvents, TxnClass};
    pub use crate::rel::{stronglift, union_all, weaklift, Rel};
    pub use crate::set::EventSet;
    pub use crate::wf::WfError;
}
