//! Dense event sets over a small universe (≤ 64 events), as bit-sets.

use crate::event::EventId;
use std::fmt;

/// The maximum number of events an execution may contain.
///
/// Every relation row and event set fits in one `u64`; the paper's own
/// bounds (|E| ≤ 9) are far below this.
pub const MAX_EVENTS: usize = 64;

/// A set of events, represented as a 64-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EventSet(u64);

impl EventSet {
    /// The empty set.
    pub const EMPTY: EventSet = EventSet(0);

    /// The set `{0, 1, ..., n-1}`.
    pub fn universe(n: usize) -> EventSet {
        assert!(n <= MAX_EVENTS, "universe too large: {n}");
        if n == MAX_EVENTS {
            EventSet(!0)
        } else {
            EventSet((1u64 << n) - 1)
        }
    }

    /// The singleton `{e}`.
    pub fn singleton(e: EventId) -> EventSet {
        assert!(e < MAX_EVENTS);
        EventSet(1u64 << e)
    }

    /// Build a set from an iterator of event ids.
    ///
    /// Deliberately shadows the trait method's name: `EventSet` also
    /// implements `FromIterator` (which delegates here), and call sites
    /// read better without a `<EventSet as FromIterator>` turbofish.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> EventSet {
        let mut s = EventSet::EMPTY;
        for e in iter {
            s.insert(e);
        }
        s
    }

    /// Insert an event.
    pub fn insert(&mut self, e: EventId) {
        assert!(e < MAX_EVENTS);
        self.0 |= 1u64 << e;
    }

    /// Remove an event.
    pub fn remove(&mut self, e: EventId) {
        assert!(e < MAX_EVENTS);
        self.0 &= !(1u64 << e);
    }

    /// Membership test.
    pub fn contains(self, e: EventId) -> bool {
        e < MAX_EVENTS && self.0 & (1u64 << e) != 0
    }

    /// Set union.
    pub fn union(self, other: EventSet) -> EventSet {
        EventSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn inter(self, other: EventSet) -> EventSet {
        EventSet(self.0 & other.0)
    }

    /// Set difference.
    pub fn minus(self, other: EventSet) -> EventSet {
        EventSet(self.0 & !other.0)
    }

    /// Complement with respect to a universe of `n` events.
    pub fn complement(self, n: usize) -> EventSet {
        EventSet(!self.0).inter(EventSet::universe(n))
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of events in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(self, other: EventSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Do the sets share an element?
    pub fn intersects(self, other: EventSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterate over members in increasing order.
    pub fn iter(self) -> impl Iterator<Item = EventId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let e = bits.trailing_zeros() as EventId;
                bits &= bits - 1;
                Some(e)
            }
        })
    }

    /// Raw bit-mask (used by relation code).
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Construct from a raw bit-mask.
    pub fn from_bits(bits: u64) -> EventSet {
        EventSet(bits)
    }
}

impl fmt::Display for EventSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for e in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<EventId> for EventSet {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> EventSet {
        EventSet::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = EventSet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(5);
        assert!(s.contains(3) && s.contains(5) && !s.contains(4));
        assert_eq!(s.len(), 2);
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn universe_and_complement() {
        let u = EventSet::universe(5);
        assert_eq!(u.len(), 5);
        let s = EventSet::from_iter([0, 2, 4]);
        let c = s.complement(5);
        assert_eq!(c, EventSet::from_iter([1, 3]));
        assert_eq!(EventSet::universe(MAX_EVENTS).len(), MAX_EVENTS);
    }

    #[test]
    fn algebra() {
        let a = EventSet::from_iter([0, 1, 2]);
        let b = EventSet::from_iter([2, 3]);
        assert_eq!(a.union(b), EventSet::from_iter([0, 1, 2, 3]));
        assert_eq!(a.inter(b), EventSet::singleton(2));
        assert_eq!(a.minus(b), EventSet::from_iter([0, 1]));
        assert!(a.intersects(b));
        assert!(EventSet::singleton(2).is_subset(a));
        assert!(!a.is_subset(b));
    }

    #[test]
    fn iteration_order() {
        let s = EventSet::from_iter([7, 1, 4]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![1, 4, 7]);
    }

    #[test]
    fn display() {
        let s = EventSet::from_iter([1, 2]);
        assert_eq!(s.to_string(), "{1,2}");
        assert_eq!(EventSet::EMPTY.to_string(), "{}");
    }
}
