//! Executions: event graphs with the relations of §2.1 and §3.1.

use crate::event::{Attrs, Call, Event, EventId, EventKind, Fence, Loc, Tid};
use crate::rel::Rel;
use crate::set::{EventSet, MAX_EVENTS};
use crate::wf::{self, WfError};

/// The event ids of one thread in program order: an allocation-free
/// iterator whose backing store is a fixed inline array (this type sits
/// on the enumeration hot path, where a heap `Vec` per call dominated).
///
/// Also supports random access via [`ThreadEvents::get`] /
/// [`ThreadEvents::index_of`] for callers that need positions.
///
/// Deliberately `Clone` but not `Copy`: a `Copy` iterator makes
/// `for e in it` consume an implicit copy, silently restarting a later
/// `it.next()` from the beginning (the reason `std::ops::Range` is not
/// `Copy` either).
#[derive(Debug, Clone)]
pub struct ThreadEvents {
    ids: [u8; MAX_EVENTS],
    len: u8,
    pos: u8,
}

impl ThreadEvents {
    fn new(x: &Execution, tid: Tid) -> ThreadEvents {
        let mut ids = [0u8; MAX_EVENTS];
        let mut len = 0usize;
        for e in 0..x.len() {
            if x.events[e].tid == tid {
                ids[len] = e as u8;
                len += 1;
            }
        }
        // Order by po (insertion sort over ≤ 64 inline slots). Ids are
        // id-ordered already in every constructor this crate ships, but
        // `from_parts` accepts any per-thread total order.
        for i in 1..len {
            let mut j = i;
            while j > 0 && x.po.contains(ids[j] as usize, ids[j - 1] as usize) {
                ids.swap(j, j - 1);
                j -= 1;
            }
        }
        ThreadEvents {
            ids,
            len: len as u8,
            pos: 0,
        }
    }

    /// Remaining events.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        (self.len - self.pos) as usize
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.pos == self.len
    }

    /// The `i`-th remaining event (program order).
    pub fn get(&self, i: usize) -> EventId {
        assert!(i < self.len(), "thread event index out of range");
        self.ids[self.pos as usize + i] as EventId
    }

    /// The position of `e` among the remaining events, if present.
    pub fn index_of(&self, e: EventId) -> Option<usize> {
        (self.pos as usize..self.len as usize).position(|i| self.ids[i] as EventId == e)
    }
}

impl Iterator for ThreadEvents {
    type Item = EventId;

    fn next(&mut self) -> Option<EventId> {
        if self.pos < self.len {
            let e = self.ids[self.pos as usize] as EventId;
            self.pos += 1;
            Some(e)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for ThreadEvents {}

/// The set of locations an execution accesses, iterated in ascending
/// order: an allocation-free bit-set iterator (replaces a sorted,
/// deduplicated `Vec` built per call on hot enumeration paths).
///
/// `Clone` but not `Copy`, for the same implicit-restart reason as
/// [`ThreadEvents`].
#[derive(Debug, Clone, Default)]
pub struct LocSet {
    bits: [u64; 4],
}

impl LocSet {
    /// Insert a location.
    pub fn insert(&mut self, l: Loc) {
        self.bits[(l / 64) as usize] |= 1u64 << (l % 64);
    }

    /// Membership test.
    pub fn contains(&self, l: Loc) -> bool {
        self.bits[(l / 64) as usize] & (1u64 << (l % 64)) != 0
    }

    /// Number of locations.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no locations remain.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

impl Iterator for LocSet {
    type Item = Loc;

    fn next(&mut self) -> Option<Loc> {
        for (w, word) in self.bits.iter_mut().enumerate() {
            if *word != 0 {
                let b = word.trailing_zeros();
                *word &= *word - 1;
                return Some((w as u32 * 64 + b) as Loc);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for LocSet {}

/// One successful transaction: a contiguous run of events on one thread.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TxnClass {
    /// Members, in program order.
    pub events: Vec<EventId>,
    /// Is this an *atomic* transaction (C++ `atomic{...}`, the paper's
    /// `stxnat`)? Hardware transactions ignore this flag.
    pub atomic: bool,
}

/// A critical region delimited by lock/unlock call events (§8.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrClass {
    /// All events from the `lock()` to the `unlock()` call, inclusive.
    pub events: Vec<EventId>,
    /// True if the region uses the transactionalised `Lt`/`Ut` calls.
    pub elided: bool,
}

/// An execution graph.
///
/// Candidate executions are generated assuming a fully non-deterministic
/// memory system (each read may observe any same-location write, or the
/// initial value); memory models then filter them via their consistency
/// axioms.
#[derive(Debug, Clone)]
pub struct Execution {
    pub(crate) events: Vec<Event>,
    pub(crate) po: Rel,
    pub(crate) addr: Rel,
    pub(crate) ctrl: Rel,
    pub(crate) data: Rel,
    pub(crate) rmw: Rel,
    pub(crate) rf: Rel,
    pub(crate) co: Rel,
    pub(crate) txns: Vec<TxnClass>,
    /// Event → transaction-class index, precomputed at construction so
    /// [`Execution::txn_of`] is O(1) instead of scanning every class.
    /// `None` (the whole cache) after raw mutation via
    /// [`Execution::txns_mut`]; rebuilt by the constructors.
    txn_index: Option<Vec<Option<u32>>>,
}

/// Equality ignores the derived `txn_index` cache: two executions with
/// the same events, relations and transaction classes are equal
/// regardless of whether the index has been invalidated.
impl PartialEq for Execution {
    fn eq(&self, other: &Execution) -> bool {
        self.events == other.events
            && self.po == other.po
            && self.addr == other.addr
            && self.ctrl == other.ctrl
            && self.data == other.data
            && self.rmw == other.rmw
            && self.rf == other.rf
            && self.co == other.co
            && self.txns == other.txns
    }
}

impl Eq for Execution {}

fn build_txn_index(n: usize, txns: &[TxnClass]) -> Vec<Option<u32>> {
    let mut idx = vec![None; n];
    for (ti, t) in txns.iter().enumerate() {
        for &e in &t.events {
            if e < n {
                idx[e] = Some(ti as u32);
            }
        }
    }
    idx
}

impl Execution {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the execution has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, indexed by [`EventId`].
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// A single event.
    pub fn event(&self, e: EventId) -> &Event {
        &self.events[e]
    }

    /// The transaction classes.
    pub fn txns(&self) -> &[TxnClass] {
        &self.txns
    }

    /// The transaction index containing `e`, if any.
    ///
    /// O(1) via the precomputed event→class index; falls back to a
    /// linear scan only when the index was invalidated by raw mutation
    /// through [`Execution::txns_mut`].
    pub fn txn_of(&self, e: EventId) -> Option<usize> {
        match &self.txn_index {
            Some(idx) => idx.get(e).copied().flatten().map(|ti| ti as usize),
            None => self.txns.iter().position(|t| t.events.contains(&e)),
        }
    }

    /// The number of threads (`max tid + 1`).
    pub fn num_threads(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.tid as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Event ids on thread `tid`, in program order.
    ///
    /// Returns an allocation-free inline iterator; collect it only when
    /// a `Vec` is genuinely needed.
    pub fn thread_events(&self, tid: Tid) -> ThreadEvents {
        ThreadEvents::new(self, tid)
    }

    /// The set of locations accessed, iterated in ascending order
    /// (allocation-free).
    pub fn locations(&self) -> LocSet {
        let mut s = LocSet::default();
        for e in &self.events {
            if let Some(l) = e.loc {
                s.insert(l);
            }
        }
        s
    }

    // ---- Event sets ------------------------------------------------------

    fn set_where(&self, pred: impl Fn(&Event) -> bool) -> EventSet {
        EventSet::from_iter((0..self.len()).filter(|&e| pred(&self.events[e])))
    }

    /// The read events `R`.
    pub fn reads(&self) -> EventSet {
        self.set_where(|e| e.is_read())
    }

    /// The write events `W`.
    pub fn writes(&self) -> EventSet {
        self.set_where(|e| e.is_write())
    }

    /// Reads and writes.
    pub fn accesses(&self) -> EventSet {
        self.set_where(|e| e.is_access())
    }

    /// All fence events.
    pub fn fences(&self) -> EventSet {
        self.set_where(|e| e.kind.is_fence())
    }

    /// Fence events of one particular kind.
    pub fn fence_events(&self, f: Fence) -> EventSet {
        self.set_where(|e| e.kind == EventKind::Fence(f))
    }

    /// Call events of one particular kind (lock-elision study).
    pub fn call_events(&self, c: Call) -> EventSet {
        self.set_where(|e| e.kind == EventKind::Call(c))
    }

    /// All call events.
    pub fn calls(&self) -> EventSet {
        self.set_where(|e| e.kind.is_call())
    }

    /// Events carrying all the given attribute flags.
    pub fn with_attr(&self, a: Attrs) -> EventSet {
        self.set_where(|e| e.attrs.contains(a))
    }

    /// Acquire events.
    pub fn acq(&self) -> EventSet {
        self.with_attr(Attrs::ACQ)
    }

    /// Release events.
    pub fn rel_events(&self) -> EventSet {
        self.with_attr(Attrs::REL)
    }

    /// SC events.
    pub fn sc_events(&self) -> EventSet {
        self.with_attr(Attrs::SC)
    }

    /// C++ atomic events (`Ato`).
    pub fn ato(&self) -> EventSet {
        self.with_attr(Attrs::ATO)
    }

    /// Events inside any successful transaction.
    pub fn txn_events(&self) -> EventSet {
        EventSet::from_iter(self.txns.iter().flat_map(|t| t.events.iter().copied()))
    }

    /// Events accessing location `l`.
    pub fn at_loc(&self, l: Loc) -> EventSet {
        self.set_where(|e| e.loc == Some(l))
    }

    // ---- Primitive relations --------------------------------------------

    /// Program order.
    pub fn po(&self) -> &Rel {
        &self.po
    }

    /// Address dependencies.
    pub fn addr(&self) -> &Rel {
        &self.addr
    }

    /// Control dependencies.
    pub fn ctrl(&self) -> &Rel {
        &self.ctrl
    }

    /// Data dependencies.
    pub fn data(&self) -> &Rel {
        &self.data
    }

    /// Read-modify-write pairs.
    pub fn rmw(&self) -> &Rel {
        &self.rmw
    }

    /// Reads-from.
    pub fn rf(&self) -> &Rel {
        &self.rf
    }

    /// Coherence order.
    pub fn co(&self) -> &Rel {
        &self.co
    }

    // ---- Derived relations ----------------------------------------------

    /// Same-location: both events access the same location.
    ///
    /// Includes the diagonal on accesses; fences and calls are excluded.
    pub fn sloc(&self) -> Rel {
        let n = self.len();
        let mut r = Rel::empty(n);
        for l in self.locations() {
            let s = self.at_loc(l);
            r = r.union(&Rel::cross(n, s, s));
        }
        r
    }

    /// Same-thread pairs, including the diagonal: `(po ∪ po⁻¹)*`.
    pub fn sthd(&self) -> Rel {
        let n = self.len();
        let mut r = Rel::id(n);
        for t in 0..self.num_threads() {
            let s = self.set_where(|e| e.tid as usize == t);
            r = r.union(&Rel::cross(n, s, s));
        }
        r
    }

    /// The external (inter-thread) part of a relation: `r \ (po ∪ po⁻¹)*`.
    pub fn external(&self, r: &Rel) -> Rel {
        r.minus(&self.sthd())
    }

    /// The internal (intra-thread) part of a relation: `r ∩ (po ∪ po⁻¹)*`.
    pub fn internal(&self, r: &Rel) -> Rel {
        r.inter(&self.sthd())
    }

    /// `po` restricted to same-location accesses.
    pub fn po_loc(&self) -> Rel {
        self.po.inter(&self.sloc())
    }

    /// From-read: `fr = ([R] ; sloc ; [W]) \ (rf⁻¹ ; (co⁻¹)*)`.
    ///
    /// A read with no incoming `rf` edge observes the initial value and is
    /// therefore `fr`-before every write to its location.
    pub fn fr(&self) -> Rel {
        self.fr_with_sloc(&self.sloc())
    }

    /// [`Execution::fr`] with a caller-provided `sloc` (the single
    /// definition of from-read; [`crate::ExecutionAnalysis`] passes its
    /// cached `sloc` through here).
    pub(crate) fn fr_with_sloc(&self, sloc: &Rel) -> Rel {
        let n = self.len();
        let r_sloc_w = Rel::id_on(n, self.reads())
            .seq(sloc)
            .seq(&Rel::id_on(n, self.writes()));
        let seen_or_before = self.rf.inverse().seq(&self.co.inverse().star());
        r_sloc_w.minus(&seen_or_before)
    }

    /// Communication: `com = rf ∪ co ∪ fr`.
    pub fn com(&self) -> Rel {
        self.rf.union(&self.co).union(&self.fr())
    }

    /// External reads-from.
    pub fn rfe(&self) -> Rel {
        self.external(&self.rf)
    }

    /// Internal reads-from.
    pub fn rfi(&self) -> Rel {
        self.internal(&self.rf)
    }

    /// External coherence.
    pub fn coe(&self) -> Rel {
        self.external(&self.co)
    }

    /// Internal coherence.
    pub fn coi(&self) -> Rel {
        self.internal(&self.co)
    }

    /// External from-read.
    pub fn fre(&self) -> Rel {
        self.external(&self.fr())
    }

    /// Internal from-read.
    pub fn fri(&self) -> Rel {
        self.internal(&self.fr())
    }

    /// External communication `come = rfe ∪ coe ∪ fre`.
    pub fn come(&self) -> Rel {
        self.external(&self.com())
    }

    /// The fence relation induced by fence events of kind `f`:
    /// `po ; [F_f] ; po`.
    pub fn fence_rel(&self, f: Fence) -> Rel {
        let idf = Rel::id_on(self.len(), self.fence_events(f));
        self.po.seq(&idf).seq(&self.po)
    }

    /// The `stxn` relation: a partial equivalence with a class per
    /// successful transaction (reflexive on members).
    pub fn stxn(&self) -> Rel {
        let n = self.len();
        let mut r = Rel::empty(n);
        for t in &self.txns {
            let s = EventSet::from_iter(t.events.iter().copied());
            r = r.union(&Rel::cross(n, s, s));
        }
        r
    }

    /// The `stxnat` relation: only the atomic transactions.
    pub fn stxnat(&self) -> Rel {
        let n = self.len();
        let mut r = Rel::empty(n);
        for t in self.txns.iter().filter(|t| t.atomic) {
            let s = EventSet::from_iter(t.events.iter().copied());
            r = r.union(&Rel::cross(n, s, s));
        }
        r
    }

    /// Implicit transaction fences (§5.2):
    /// `tfence = po ∩ ((¬stxn ; stxn) ∪ (stxn ; ¬stxn))`.
    pub fn tfence(&self) -> Rel {
        let stxn = self.stxn();
        let nstxn = stxn.complement();
        let enter = nstxn.seq(&stxn);
        let exit = stxn.seq(&nstxn);
        self.po.inter(&enter.union(&exit))
    }

    /// Critical regions derived from the lock/unlock call events, in the
    /// order they open per thread (§8.3).
    pub fn cr_classes(&self) -> Vec<CrClass> {
        let mut crs = Vec::new();
        for t in 0..self.num_threads() {
            let mut open: Option<(bool, Vec<EventId>)> = None;
            for e in self.thread_events(t as Tid) {
                match self.events[e].kind {
                    EventKind::Call(Call::Lock) => {
                        open = Some((false, vec![e]));
                    }
                    EventKind::Call(Call::TLock) => {
                        open = Some((true, vec![e]));
                    }
                    EventKind::Call(Call::Unlock) | EventKind::Call(Call::TUnlock) => {
                        if let Some((elided, mut evs)) = open.take() {
                            evs.push(e);
                            crs.push(CrClass {
                                events: evs,
                                elided,
                            });
                        }
                    }
                    _ => {
                        if let Some((_, evs)) = open.as_mut() {
                            evs.push(e);
                        }
                    }
                }
            }
        }
        crs
    }

    /// The `scr` equivalence: events in the same critical region
    /// (reflexive on members).
    pub fn scr(&self) -> Rel {
        let n = self.len();
        let mut r = Rel::empty(n);
        for cr in self.cr_classes() {
            let s = EventSet::from_iter(cr.events.iter().copied());
            r = r.union(&Rel::cross(n, s, s));
        }
        r
    }

    /// The `scrt` sub-equivalence: only the transactionalised regions.
    pub fn scrt(&self) -> Rel {
        let n = self.len();
        let mut r = Rel::empty(n);
        for cr in self.cr_classes().into_iter().filter(|c| c.elided) {
            let s = EventSet::from_iter(cr.events.iter().copied());
            r = r.union(&Rel::cross(n, s, s));
        }
        r
    }

    // ---- Well-formedness and transformations -----------------------------

    /// Check the well-formedness conditions of §2.1/§3.1.
    pub fn check_wf(&self) -> Result<(), WfError> {
        wf::check(self)
    }

    /// A copy with all transactions erased (the non-TM baseline view).
    pub fn erase_txns(&self) -> Execution {
        let mut e = self.clone();
        e.txns.clear();
        e.txn_index = Some(vec![None; e.events.len()]);
        e
    }

    /// A copy with the given transaction classes (unchecked; call
    /// [`Execution::check_wf`] afterwards if the classes are not known to
    /// be contiguous).
    pub fn with_txns(&self, txns: Vec<TxnClass>) -> Execution {
        let mut e = self.clone();
        e.set_txns(txns);
        e
    }

    /// Replace the transaction classes in place (the allocation-free
    /// [`Execution::with_txns`] for enumerators cycling layouts over
    /// one structure).
    pub fn set_txns(&mut self, txns: Vec<TxnClass>) {
        self.txn_index = Some(build_txn_index(self.events.len(), &txns));
        self.txns = txns;
    }

    /// Remove event `e`, dropping incident edges and re-indexing.
    ///
    /// This is clause (i) of the paper's ⊏ weakening order (§4.2). Reads
    /// that observed a removed write observe the initial value instead;
    /// coherence stays total over the remaining writes.
    pub fn remove_event(&self, victim: EventId) -> Execution {
        let n = self.len();
        assert!(victim < n);
        let map = |e: EventId| -> Option<EventId> {
            use std::cmp::Ordering;
            match e.cmp(&victim) {
                Ordering::Less => Some(e),
                Ordering::Equal => None,
                Ordering::Greater => Some(e - 1),
            }
        };
        let remap = |r: &Rel| -> Rel {
            let mut out = Rel::empty(n - 1);
            for (a, b) in r.pairs() {
                if let (Some(a2), Some(b2)) = (map(a), map(b)) {
                    out.add(a2, b2);
                }
            }
            out
        };
        let mut events = self.events.clone();
        events.remove(victim);
        let txns = self
            .txns
            .iter()
            .filter_map(|t| {
                let evs: Vec<EventId> = t.events.iter().filter_map(|&e| map(e)).collect();
                if evs.is_empty() {
                    None
                } else {
                    Some(TxnClass {
                        events: evs,
                        atomic: t.atomic,
                    })
                }
            })
            .collect();
        Execution::from_parts(
            events,
            remap(&self.po),
            remap(&self.addr),
            remap(&self.ctrl),
            remap(&self.data),
            remap(&self.rmw),
            remap(&self.rf),
            remap(&self.co),
            txns,
        )
    }

    /// Raw constructor for crates that build executions directly
    /// (enumerators, transformation expanders). Prefer
    /// [`crate::build::ExecBuilder`] in user code.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        events: Vec<Event>,
        po: Rel,
        addr: Rel,
        ctrl: Rel,
        data: Rel,
        rmw: Rel,
        rf: Rel,
        co: Rel,
        txns: Vec<TxnClass>,
    ) -> Execution {
        let txn_index = Some(build_txn_index(events.len(), &txns));
        Execution {
            events,
            po,
            addr,
            ctrl,
            data,
            rmw,
            rf,
            co,
            txns,
            txn_index,
        }
    }

    /// Mutable access to the dependency relations (used by the ⊏
    /// weakening steps in the synthesiser).
    pub fn deps_mut(&mut self) -> (&mut Rel, &mut Rel, &mut Rel, &mut Rel) {
        (
            &mut self.addr,
            &mut self.ctrl,
            &mut self.data,
            &mut self.rmw,
        )
    }

    /// Mutable access to an event (attribute downgrades).
    pub fn event_mut(&mut self, e: EventId) -> &mut Event {
        &mut self.events[e]
    }

    /// Mutable access to the transaction classes.
    ///
    /// Invalidates the event→transaction index: subsequent
    /// [`Execution::txn_of`] calls fall back to a linear scan until a
    /// constructor ([`Execution::with_txns`], [`Execution::from_parts`],
    /// ...) rebuilds it.
    pub fn txns_mut(&mut self) -> &mut Vec<TxnClass> {
        self.txn_index = None;
        &mut self.txns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ExecBuilder;

    /// Fig. 1: Wx=1 po-before Rx (reads 2) on thread 0; Wx=2 on thread 1;
    /// co: a -> c, rf: c -> b.
    fn fig1() -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.write(t0, 0);
        let bb = b.read(t0, 0);
        let t1 = b.new_thread();
        let c = b.write(t1, 0);
        b.rf(c, bb);
        b.co(a, c);
        b.build().expect("fig1 well-formed")
    }

    #[test]
    fn fig1_structure() {
        let x = fig1();
        assert_eq!(x.len(), 3);
        assert_eq!(x.num_threads(), 2);
        assert!(x.po().contains(0, 1));
        assert!(!x.po().contains(0, 2));
        assert_eq!(x.reads(), EventSet::singleton(1));
        assert_eq!(x.writes(), EventSet::from_iter([0, 2]));
    }

    #[test]
    fn fig1_fr() {
        let x = fig1();
        // b read from c, the co-maximal write, so b has no fr successor.
        let fr = x.fr();
        assert!(fr.is_empty());
    }

    #[test]
    fn fr_with_init_read() {
        // A read with no rf edge observes the initial value: fr to all
        // writes at the location.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r = b.read(t0, 0);
        let t1 = b.new_thread();
        let w = b.write(t1, 0);
        let x = b.build().unwrap();
        assert!(x.fr().contains(r, w));
    }

    #[test]
    fn fr_middle_write() {
        // r reads w1; w1 -> w2 in co; so (r, w2) ∈ fr but (r, w1) ∉ fr.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w1 = b.write(t0, 0);
        let t1 = b.new_thread();
        let w2 = b.write(t1, 0);
        let t2 = b.new_thread();
        let r = b.read(t2, 0);
        b.rf(w1, r);
        b.co(w1, w2);
        let x = b.build().unwrap();
        let fr = x.fr();
        assert!(fr.contains(r, w2));
        assert!(!fr.contains(r, w1));
    }

    #[test]
    fn internal_external_split() {
        let x = fig1();
        // rf crosses threads: external.
        assert_eq!(x.rfe().len(), 1);
        assert!(x.rfi().is_empty());
        assert_eq!(x.coe().len(), 1);
    }

    #[test]
    fn sloc_diagonal_and_cross() {
        let x = fig1();
        let sloc = x.sloc();
        assert!(sloc.contains(0, 0));
        assert!(sloc.contains(0, 2));
        assert!(sloc.contains(2, 1));
    }

    #[test]
    fn stxn_reflexive_on_members() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.write(t0, 0);
        let r = b.read(t0, 0);
        b.rf(a, r);
        b.txn(&[a, r]);
        let x = b.build().unwrap();
        let stxn = x.stxn();
        assert!(stxn.contains(a, a));
        assert!(stxn.contains(a, r));
        assert!(stxn.contains(r, a));
        assert!(stxn.is_symmetric());
        assert!(stxn.is_transitive());
    }

    #[test]
    fn tfence_boundaries() {
        // w0 ; [t: r1 w2] ; r3  — tfence edges enter and exit the txn.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w0 = b.write(t0, 0);
        let r1 = b.read(t0, 0);
        let w2 = b.write(t0, 1);
        let r3 = b.read(t0, 1);
        b.rf(w0, r1);
        b.rf(w2, r3);
        b.txn(&[r1, w2]);
        let x = b.build().unwrap();
        let tf = x.tfence();
        assert!(tf.contains(w0, r1));
        assert!(tf.contains(w0, w2));
        assert!(tf.contains(r1, r3));
        assert!(tf.contains(w2, r3));
        assert!(!tf.contains(r1, w2));
        assert!(!tf.contains(w0, r3));
    }

    #[test]
    fn erase_txns_keeps_events() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.write(t0, 0);
        let c = b.read(t0, 0);
        b.rf(a, c);
        b.txn(&[a, c]);
        let x = b.build().unwrap();
        let y = x.erase_txns();
        assert_eq!(y.len(), 2);
        assert!(y.stxn().is_empty());
        assert!(y.tfence().is_empty());
    }

    #[test]
    fn remove_event_reindexes() {
        let x = fig1();
        // Remove the thread-1 write (id 2): b's rf vanishes, co vanishes.
        let y = x.remove_event(2);
        assert_eq!(y.len(), 2);
        assert!(y.rf().is_empty());
        assert!(y.co().is_empty());
        assert!(y.po().contains(0, 1));
        // Remove event 0: ids shift down.
        let z = x.remove_event(0);
        assert_eq!(z.len(), 2);
        assert!(z.rf().contains(1, 0));
    }

    #[test]
    fn remove_event_drops_empty_txn() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.write(t0, 0);
        let x = b.build().unwrap();
        assert_eq!(x.len(), 1);
        let mut xt = x.clone();
        xt.txns_mut().push(TxnClass {
            events: vec![a],
            atomic: false,
        });
        let y = xt.remove_event(a);
        assert!(y.txns().is_empty());
        assert!(y.is_empty());
    }

    #[test]
    fn txn_of_index_tracks_mutation() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.write(t0, 0);
        let r = b.read(t0, 0);
        b.rf(a, r);
        b.txn(&[a, r]);
        let x = b.build().unwrap();
        // Constructed path: O(1) index.
        assert_eq!(x.txn_of(a), Some(0));
        assert_eq!(x.txn_of(r), Some(0));
        // with_txns rebuilds the index.
        let y = x.with_txns(vec![TxnClass {
            events: vec![r],
            atomic: true,
        }]);
        assert_eq!(y.txn_of(a), None);
        assert_eq!(y.txn_of(r), Some(0));
        // erase_txns clears it.
        assert_eq!(x.erase_txns().txn_of(a), None);
        // Raw mutation invalidates the index; the linear fallback stays
        // correct.
        let mut z = x.clone();
        z.txns_mut().push(TxnClass {
            events: vec![],
            atomic: false,
        });
        z.txns_mut()[1].events.push(a);
        z.txns_mut()[0].events.retain(|&e| e != a);
        assert_eq!(z.txn_of(a), Some(1));
        assert_eq!(z.txn_of(r), Some(0));
        // Equality ignores index state.
        assert_eq!(x, x.with_txns(x.txns().to_vec()));
    }

    #[test]
    fn cr_classes_and_scr() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let l = b.call(t0, Call::Lock);
        let w = b.write(t0, 0);
        let u = b.call(t0, Call::Unlock);
        let t1 = b.new_thread();
        let lt = b.call(t1, Call::TLock);
        let r = b.read(t1, 0);
        let ut = b.call(t1, Call::TUnlock);
        b.rf(w, r);
        let x = b.build().unwrap();
        let crs = x.cr_classes();
        assert_eq!(crs.len(), 2);
        assert_eq!(crs[0].events, vec![l, w, u]);
        assert!(!crs[0].elided);
        assert_eq!(crs[1].events, vec![lt, r, ut]);
        assert!(crs[1].elided);
        let scr = x.scr();
        assert!(scr.contains(l, u));
        assert!(scr.contains(lt, r));
        assert!(!scr.contains(l, lt));
        let scrt = x.scrt();
        assert!(scrt.contains(lt, ut));
        assert!(!scrt.contains(l, u));
    }

    #[test]
    fn fence_rel_derivation() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        b.fence(t0, Fence::MFence);
        let r = b.read(t0, 1);
        let x = b.build().unwrap();
        let mf = x.fence_rel(Fence::MFence);
        assert!(mf.contains(w, r));
        assert!(!mf.contains(r, w));
        assert!(x.fence_rel(Fence::Sync).is_empty());
    }
}
