//! A fluent builder for executions.
//!
//! ```
//! use txmm_core::build::ExecBuilder;
//!
//! // The store-buffering shape: two threads, each writing one location
//! // and reading the other, both reads observing the initial value.
//! let mut b = ExecBuilder::new();
//! let t0 = b.new_thread();
//! let w0 = b.write(t0, 0);
//! let r0 = b.read(t0, 1);
//! let t1 = b.new_thread();
//! let w1 = b.write(t1, 1);
//! let r1 = b.read(t1, 0);
//! let x = b.build().unwrap();
//! assert_eq!(x.len(), 4);
//! assert!(x.fr().contains(r0, w1));
//! assert!(x.fr().contains(r1, w0));
//! # let _ = (w0, w1);
//! ```

use crate::event::{Attrs, Call, Event, EventId, Fence, Loc, Tid};
use crate::exec::{Execution, TxnClass};
use crate::rel::Rel;
use crate::set::MAX_EVENTS;
use crate::wf::WfError;

/// Builder for [`Execution`] values.
///
/// Events are appended per thread in program order; `co` may be given as
/// individual pairs (its per-location transitive closure is taken) or via
/// [`ExecBuilder::co_order`].
#[derive(Debug, Default, Clone)]
pub struct ExecBuilder {
    events: Vec<Event>,
    threads: usize,
    addr: Vec<(EventId, EventId)>,
    ctrl: Vec<(EventId, EventId)>,
    data: Vec<(EventId, EventId)>,
    rmw: Vec<(EventId, EventId)>,
    rf: Vec<(EventId, EventId)>,
    co: Vec<(EventId, EventId)>,
    txns: Vec<TxnClass>,
}

impl ExecBuilder {
    /// A fresh, empty builder.
    pub fn new() -> ExecBuilder {
        ExecBuilder::default()
    }

    /// Start a new thread; events are added to it explicitly by id.
    pub fn new_thread(&mut self) -> Tid {
        let t = self.threads;
        self.threads += 1;
        t as Tid
    }

    fn push(&mut self, ev: Event) -> EventId {
        assert!(self.events.len() < MAX_EVENTS, "too many events");
        self.events.push(ev);
        self.events.len() - 1
    }

    /// Append a plain read of `loc` on thread `t`.
    pub fn read(&mut self, t: Tid, loc: Loc) -> EventId {
        self.push(Event::read(t, loc))
    }

    /// Append a plain write of `loc` on thread `t`.
    pub fn write(&mut self, t: Tid, loc: Loc) -> EventId {
        self.push(Event::write(t, loc))
    }

    /// Append a fence on thread `t`.
    pub fn fence(&mut self, t: Tid, f: Fence) -> EventId {
        self.push(Event::fence(t, f))
    }

    /// Append a lock/unlock call event on thread `t`.
    pub fn call(&mut self, t: Tid, c: Call) -> EventId {
        self.push(Event::call(t, c))
    }

    /// Add attribute flags to an event. SC accesses are normalised to
    /// also carry their implied acquire/release flag (reads gain `ACQ`,
    /// writes gain `REL`, fences gain both), matching RC11's mode order.
    pub fn attr(&mut self, e: EventId, a: Attrs) -> &mut Self {
        let ev = &mut self.events[e];
        ev.attrs = ev.attrs.union(a);
        if a.contains(Attrs::SC) {
            if ev.is_read() {
                ev.attrs = ev.attrs.union(Attrs::ACQ);
            } else if ev.is_write() {
                ev.attrs = ev.attrs.union(Attrs::REL);
            } else if ev.kind.is_fence() {
                ev.attrs = ev.attrs.union(Attrs::ACQ).union(Attrs::REL);
            }
        }
        self
    }

    /// Shorthand: an acquire read (ARMv8 `LDAR` / C++ acquire load).
    pub fn read_acq(&mut self, t: Tid, loc: Loc) -> EventId {
        let e = self.read(t, loc);
        self.attr(e, Attrs::ACQ);
        e
    }

    /// Shorthand: a release write (ARMv8 `STLR` / C++ release store).
    pub fn write_rel(&mut self, t: Tid, loc: Loc) -> EventId {
        let e = self.write(t, loc);
        self.attr(e, Attrs::REL);
        e
    }

    /// Shorthand: a C++ atomic read with the given extra mode flags.
    pub fn read_ato(&mut self, t: Tid, loc: Loc, mode: Attrs) -> EventId {
        let e = self.read(t, loc);
        self.attr(e, Attrs::ATO.union(mode));
        e
    }

    /// Shorthand: a C++ atomic write with the given extra mode flags.
    pub fn write_ato(&mut self, t: Tid, loc: Loc, mode: Attrs) -> EventId {
        let e = self.write(t, loc);
        self.attr(e, Attrs::ATO.union(mode));
        e
    }

    /// Record an address dependency from read `r` to `e`.
    pub fn addr(&mut self, r: EventId, e: EventId) -> &mut Self {
        self.addr.push((r, e));
        self
    }

    /// Record a control dependency from read `r` to `e`.
    pub fn ctrl(&mut self, r: EventId, e: EventId) -> &mut Self {
        self.ctrl.push((r, e));
        self
    }

    /// Record a data dependency from read `r` to write `w`.
    pub fn data(&mut self, r: EventId, w: EventId) -> &mut Self {
        self.data.push((r, w));
        self
    }

    /// Mark `(r, w)` as a read-modify-write pair.
    pub fn rmw(&mut self, r: EventId, w: EventId) -> &mut Self {
        self.rmw.push((r, w));
        self
    }

    /// Make read `r` observe write `w`.
    pub fn rf(&mut self, w: EventId, r: EventId) -> &mut Self {
        self.rf.push((w, r));
        self
    }

    /// Order write `a` before write `b` in coherence.
    pub fn co(&mut self, a: EventId, b: EventId) -> &mut Self {
        self.co.push((a, b));
        self
    }

    /// Give the complete coherence order for one location.
    pub fn co_order(&mut self, ws: &[EventId]) -> &mut Self {
        for (i, &a) in ws.iter().enumerate() {
            for &b in &ws[i + 1..] {
                self.co.push((a, b));
            }
        }
        self
    }

    /// Group events into a successful (relaxed) transaction.
    pub fn txn(&mut self, evs: &[EventId]) -> &mut Self {
        self.txns.push(TxnClass {
            events: evs.to_vec(),
            atomic: false,
        });
        self
    }

    /// Group events into a successful *atomic* transaction (C++).
    pub fn txn_atomic(&mut self, evs: &[EventId]) -> &mut Self {
        self.txns.push(TxnClass {
            events: evs.to_vec(),
            atomic: true,
        });
        self
    }

    /// Construct the execution and check well-formedness.
    pub fn build(&self) -> Result<Execution, WfError> {
        let x = self.build_unchecked();
        x.check_wf()?;
        Ok(x)
    }

    /// Construct without checking (for tests that exercise ill-formed
    /// executions, and for enumerators that guarantee shape by
    /// construction).
    pub fn build_unchecked(&self) -> Execution {
        let n = self.events.len();
        let mut po = Rel::empty(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if self.events[a].tid == self.events[b].tid {
                    po.add(a, b);
                }
            }
        }
        let mk = |pairs: &[(EventId, EventId)]| Rel::from_pairs(n, pairs.iter().copied());
        // Close co transitively per location so users can give chains.
        let co = mk(&self.co).plus();
        Execution::from_parts(
            self.events.clone(),
            po,
            mk(&self.addr),
            mk(&self.ctrl),
            mk(&self.data),
            mk(&self.rmw),
            mk(&self.rf),
            co,
            self.txns.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn po_follows_insertion_order() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.read(t0, 0);
        let c = b.write(t0, 0);
        let t1 = b.new_thread();
        let d = b.write(t1, 0);
        b.rf(c, a); // ill-formed direction? c is po-later but rf is fine.
        b.co(c, d);
        let x = b.build().unwrap();
        assert!(x.po().contains(a, c));
        assert!(!x.po().contains(c, a));
        assert!(!x.po().contains(a, d));
    }

    #[test]
    fn co_order_expands() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w1 = b.write(t0, 0);
        let t1 = b.new_thread();
        let w2 = b.write(t1, 0);
        let t2 = b.new_thread();
        let w3 = b.write(t2, 0);
        b.co_order(&[w1, w2, w3]);
        let x = b.build().unwrap();
        assert!(x.co().contains(w1, w3));
        assert!(x.co().contains(w1, w2));
        assert!(x.co().contains(w2, w3));
    }

    #[test]
    fn co_pairs_closed_transitively() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w1 = b.write(t0, 0);
        let t1 = b.new_thread();
        let w2 = b.write(t1, 0);
        let t2 = b.new_thread();
        let w3 = b.write(t2, 0);
        b.co(w1, w2);
        b.co(w2, w3);
        let x = b.build().unwrap();
        assert!(x.co().contains(w1, w3));
    }

    #[test]
    fn sc_normalisation() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r = b.read_ato(t0, 0, Attrs::SC);
        let w = b.write_ato(t0, 0, Attrs::SC);
        let x = b.build().unwrap();
        assert!(x.event(r).attrs.contains(Attrs::ACQ));
        assert!(!x.event(r).attrs.contains(Attrs::REL));
        assert!(x.event(w).attrs.contains(Attrs::REL));
        assert!(!x.event(w).attrs.contains(Attrs::ACQ));
    }

    #[test]
    fn sc_fence_gets_both() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let f = b.fence(t0, Fence::CppFence);
        b.attr(f, Attrs::SC);
        let x = b.build().unwrap();
        assert!(x.event(f).attrs.contains(Attrs::ACQ));
        assert!(x.event(f).attrs.contains(Attrs::REL));
    }

    #[test]
    fn acquire_release_shorthands() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r = b.read_acq(t0, 0);
        let w = b.write_rel(t0, 0);
        let x = b.build().unwrap();
        assert!(x.event(r).attrs.contains(Attrs::ACQ));
        assert!(x.event(w).attrs.contains(Attrs::REL));
    }
}
