//! Events: the vertices of an execution graph.
//!
//! Following §2.1 of the paper, events are partitioned into reads, writes
//! and fences. For the lock-elision study (§8.3) we additionally support
//! *call* events (`lock()` / `unlock()` in both elided and non-elided
//! flavours). Architecture- and language-level distinctions (acquire,
//! release, SC, atomic) are carried as attribute flags.

use std::fmt;

/// Index of an event within an execution (dense, `0..n`).
pub type EventId = usize;

/// A memory location. Locations are small dense indices; pretty-printers
/// map them to names `x, y, z, w, v, u, ...`.
pub type Loc = u8;

/// A thread identifier (dense, `0..t`).
pub type Tid = u8;

/// The kind of fence event, covering every architecture we model.
///
/// Fences are encoded as events rather than edges (footnote 1 of the
/// paper) because this simplifies execution minimisation; the
/// architecture-specific fence *relations* (`mfence`, `sync`, ...) are
/// derived from them via [`crate::Execution::fence_rel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fence {
    /// x86 `MFENCE`.
    MFence,
    /// Power `sync` (hwsync): the full cumulative barrier.
    Sync,
    /// Power `lwsync`: lightweight barrier (no W→R ordering).
    Lwsync,
    /// Power `isync`: instruction-fetch barrier used in `ctrl+isync`.
    Isync,
    /// ARMv8 `DMB` (full).
    Dmb,
    /// ARMv8 `DMB LD`.
    DmbLd,
    /// ARMv8 `DMB ST`.
    DmbSt,
    /// ARMv8 `ISB`.
    Isb,
    /// A C++ `atomic_thread_fence`; its consistency mode is carried by
    /// the event's [`Attrs`] (`ACQ`, `REL`, `SC`).
    CppFence,
}

impl Fence {
    /// All fence kinds, in a stable order (used by enumerators).
    pub const ALL: [Fence; 9] = [
        Fence::MFence,
        Fence::Sync,
        Fence::Lwsync,
        Fence::Isync,
        Fence::Dmb,
        Fence::DmbLd,
        Fence::DmbSt,
        Fence::Isb,
        Fence::CppFence,
    ];

    /// The conventional mnemonic for this fence.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Fence::MFence => "MFENCE",
            Fence::Sync => "sync",
            Fence::Lwsync => "lwsync",
            Fence::Isync => "isync",
            Fence::Dmb => "DMB",
            Fence::DmbLd => "DMB LD",
            Fence::DmbSt => "DMB ST",
            Fence::Isb => "ISB",
            Fence::CppFence => "fence",
        }
    }
}

/// Method-call events used by the library-checking technique of §4.3/§8.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Call {
    /// `lock()` implemented by acquiring the lock in the ordinary fashion
    /// (the paper's `L` events).
    Lock,
    /// The corresponding `unlock()` (`U`).
    Unlock,
    /// `lock()` that will be transactionalised — lock elision (`Lt`).
    TLock,
    /// The corresponding `unlock()` (`Ut`).
    TUnlock,
}

impl Call {
    /// The paper's symbol for this call event.
    pub fn symbol(self) -> &'static str {
        match self {
            Call::Lock => "L",
            Call::Unlock => "U",
            Call::TLock => "Lt",
            Call::TUnlock => "Ut",
        }
    }
}

/// What an event does: read, write, fence or method call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A read of a memory location.
    Read,
    /// A write to a memory location.
    Write,
    /// A fence instruction, encoded as an event.
    Fence(Fence),
    /// A lock/unlock method call (lock-elision study only).
    Call(Call),
}

impl EventKind {
    /// True for [`EventKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, EventKind::Read)
    }

    /// True for [`EventKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, EventKind::Write)
    }

    /// True for reads and writes (the events that touch memory).
    pub fn is_access(self) -> bool {
        self.is_read() || self.is_write()
    }

    /// True for any fence kind.
    pub fn is_fence(self) -> bool {
        matches!(self, EventKind::Fence(_))
    }

    /// True for any call kind.
    pub fn is_call(self) -> bool {
        matches!(self, EventKind::Call(_))
    }
}

/// Attribute flags attached to events.
///
/// The flags cover both hardware annotations (ARMv8 acquire/release) and
/// the C++ consistency modes (`Ato`, `Acq`, `Rel`, `SC`). We keep them in
/// a compact bit-set so attribute algebra is cheap inside enumerators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Attrs(u8);

impl Attrs {
    /// No attributes: a plain (non-atomic, relaxed) access.
    pub const NONE: Attrs = Attrs(0);
    /// Acquire (ARMv8 `LDAR` / C++ `memory_order_acquire`).
    pub const ACQ: Attrs = Attrs(1);
    /// Release (ARMv8 `STLR` / C++ `memory_order_release`).
    pub const REL: Attrs = Attrs(1 << 1);
    /// Sequentially consistent (C++ `memory_order_seq_cst`).
    pub const SC: Attrs = Attrs(1 << 2);
    /// A C++ *atomic* operation (the paper's `Ato` set).
    pub const ATO: Attrs = Attrs(1 << 3);

    /// The union of two attribute sets.
    pub const fn union(self, other: Attrs) -> Attrs {
        Attrs(self.0 | other.0)
    }

    /// Does `self` contain every flag in `other`?
    pub const fn contains(self, other: Attrs) -> bool {
        self.0 & other.0 == other.0
    }

    /// Remove the flags in `other`.
    pub const fn minus(self, other: Attrs) -> Attrs {
        Attrs(self.0 & !other.0)
    }

    /// True if no flag is set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Raw bits (stable across runs; used for hashing/canonical forms).
    pub const fn bits(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Attrs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.contains(Attrs::ATO) {
            parts.push("Ato");
        }
        if self.contains(Attrs::ACQ) {
            parts.push("Acq");
        }
        if self.contains(Attrs::REL) {
            parts.push("Rel");
        }
        if self.contains(Attrs::SC) {
            parts.push("SC");
        }
        write!(f, "{}", parts.join(","))
    }
}

/// A single event of an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// What the event does.
    pub kind: EventKind,
    /// The thread the event belongs to.
    pub tid: Tid,
    /// The location accessed (`None` for fences and calls).
    pub loc: Option<Loc>,
    /// Attribute flags.
    pub attrs: Attrs,
}

impl Event {
    /// A plain read of `loc` on thread `tid`.
    pub fn read(tid: Tid, loc: Loc) -> Event {
        Event {
            kind: EventKind::Read,
            tid,
            loc: Some(loc),
            attrs: Attrs::NONE,
        }
    }

    /// A plain write of `loc` on thread `tid`.
    pub fn write(tid: Tid, loc: Loc) -> Event {
        Event {
            kind: EventKind::Write,
            tid,
            loc: Some(loc),
            attrs: Attrs::NONE,
        }
    }

    /// A fence event on thread `tid`.
    pub fn fence(tid: Tid, fence: Fence) -> Event {
        Event {
            kind: EventKind::Fence(fence),
            tid,
            loc: None,
            attrs: Attrs::NONE,
        }
    }

    /// A method-call event on thread `tid`.
    pub fn call(tid: Tid, call: Call) -> Event {
        Event {
            kind: EventKind::Call(call),
            tid,
            loc: None,
            attrs: Attrs::NONE,
        }
    }

    /// Add attributes (builder style).
    pub fn with_attrs(mut self, attrs: Attrs) -> Event {
        self.attrs = self.attrs.union(attrs);
        self
    }

    /// True for reads.
    pub fn is_read(&self) -> bool {
        self.kind.is_read()
    }

    /// True for writes.
    pub fn is_write(&self) -> bool {
        self.kind.is_write()
    }

    /// True for reads and writes.
    pub fn is_access(&self) -> bool {
        self.kind.is_access()
    }
}

/// Conventional names for the first few locations.
pub fn loc_name(loc: Loc) -> String {
    const NAMES: [&str; 6] = ["x", "y", "z", "w", "v", "u"];
    match NAMES.get(loc as usize) {
        Some(n) => (*n).to_string(),
        None => format!("l{loc}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attrs_algebra() {
        let a = Attrs::ACQ.union(Attrs::ATO);
        assert!(a.contains(Attrs::ACQ));
        assert!(a.contains(Attrs::ATO));
        assert!(!a.contains(Attrs::REL));
        assert!(a.minus(Attrs::ACQ).contains(Attrs::ATO));
        assert!(!a.minus(Attrs::ACQ).contains(Attrs::ACQ));
        assert!(Attrs::NONE.is_empty());
        assert!(!a.is_empty());
    }

    #[test]
    fn attrs_display() {
        let a = Attrs::ATO.union(Attrs::SC);
        assert_eq!(a.to_string(), "Ato,SC");
        assert_eq!(Attrs::NONE.to_string(), "");
    }

    #[test]
    fn event_constructors() {
        let r = Event::read(0, 1);
        assert!(r.is_read() && !r.is_write() && r.is_access());
        assert_eq!(r.loc, Some(1));
        let w = Event::write(1, 0).with_attrs(Attrs::REL);
        assert!(w.is_write());
        assert!(w.attrs.contains(Attrs::REL));
        let f = Event::fence(0, Fence::Sync);
        assert!(f.kind.is_fence());
        assert_eq!(f.loc, None);
        let c = Event::call(0, Call::Lock);
        assert!(c.kind.is_call());
    }

    #[test]
    fn kind_predicates() {
        assert!(EventKind::Read.is_access());
        assert!(EventKind::Write.is_access());
        assert!(!EventKind::Fence(Fence::Dmb).is_access());
        assert!(!EventKind::Call(Call::Lock).is_access());
        assert!(EventKind::Fence(Fence::Isb).is_fence());
        assert!(EventKind::Call(Call::TUnlock).is_call());
    }

    #[test]
    fn loc_names() {
        assert_eq!(loc_name(0), "x");
        assert_eq!(loc_name(1), "y");
        assert_eq!(loc_name(7), "l7");
    }

    #[test]
    fn fence_mnemonics_cover_all() {
        for f in Fence::ALL {
            assert!(!f.mnemonic().is_empty());
        }
    }
}
