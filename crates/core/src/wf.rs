//! Well-formedness of executions (§2.1, §3.1, §8.3).

use crate::event::{Call, EventId, EventKind};
use crate::exec::Execution;
use crate::set::EventSet;
use std::fmt;

/// Why an execution is not well-formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WfError {
    /// `po` is not a strict total order on some thread, or it relates
    /// events of different threads.
    PoNotTotalOrder,
    /// A dependency edge is outside `po`.
    DepOutsidePo(&'static str, EventId, EventId),
    /// A dependency edge does not originate at a read.
    DepNotFromRead(&'static str, EventId, EventId),
    /// An `addr` dependency must target a memory access.
    AddrTargetNotAccess(EventId, EventId),
    /// A `data` dependency must target a write.
    DataTargetNotWrite(EventId, EventId),
    /// An `rmw` edge must link a read to a po-later write at the same
    /// location on the same thread.
    BadRmw(EventId, EventId),
    /// An event participates in more than one `rmw` pair.
    RmwNotInjective(EventId),
    /// An `rf` edge must link a write to a same-location read.
    BadRf(EventId, EventId),
    /// A read has two incoming `rf` edges.
    MultipleRf(EventId),
    /// `co` relates events that are not writes to the same location.
    BadCo(EventId, EventId),
    /// `co` is not a strict total order on the writes to some location.
    CoNotTotalOrder(u8),
    /// A transaction class is empty.
    EmptyTxn,
    /// Transaction classes overlap.
    OverlappingTxns,
    /// A transaction spans more than one thread.
    TxnCrossesThreads(usize),
    /// A transaction is not contiguous in `po`.
    TxnNotContiguous(usize),
    /// Acquire/release/SC/atomic flags on an event kind that cannot carry
    /// them.
    BadAttrs(EventId),
    /// Lock/unlock call events are not properly bracketed on a thread.
    BadLockBracketing(u8),
    /// A fence or call event carries a location.
    NonAccessWithLoc(EventId),
    /// An access is missing its location.
    AccessWithoutLoc(EventId),
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WfError::PoNotTotalOrder => write!(f, "po is not a per-thread strict total order"),
            WfError::DepOutsidePo(k, a, b) => write!(f, "{k} edge ({a},{b}) outside po"),
            WfError::DepNotFromRead(k, a, b) => {
                write!(f, "{k} edge ({a},{b}) does not originate at a read")
            }
            WfError::AddrTargetNotAccess(a, b) => {
                write!(f, "addr edge ({a},{b}) does not target a memory access")
            }
            WfError::DataTargetNotWrite(a, b) => {
                write!(f, "data edge ({a},{b}) does not target a write")
            }
            WfError::BadRmw(a, b) => write!(f, "ill-formed rmw edge ({a},{b})"),
            WfError::RmwNotInjective(e) => write!(f, "event {e} in more than one rmw pair"),
            WfError::BadRf(a, b) => write!(f, "ill-formed rf edge ({a},{b})"),
            WfError::MultipleRf(e) => write!(f, "read {e} has multiple incoming rf edges"),
            WfError::BadCo(a, b) => write!(f, "ill-formed co edge ({a},{b})"),
            WfError::CoNotTotalOrder(l) => {
                write!(
                    f,
                    "co is not a strict total order on writes to location {l}"
                )
            }
            WfError::EmptyTxn => write!(f, "empty transaction class"),
            WfError::OverlappingTxns => write!(f, "transaction classes overlap"),
            WfError::TxnCrossesThreads(i) => write!(f, "transaction {i} spans threads"),
            WfError::TxnNotContiguous(i) => write!(f, "transaction {i} not contiguous in po"),
            WfError::BadAttrs(e) => write!(f, "event {e} carries attributes its kind cannot"),
            WfError::BadLockBracketing(t) => {
                write!(f, "lock/unlock calls not properly bracketed on thread {t}")
            }
            WfError::NonAccessWithLoc(e) => write!(f, "non-access event {e} has a location"),
            WfError::AccessWithoutLoc(e) => write!(f, "access event {e} has no location"),
        }
    }
}

impl std::error::Error for WfError {}

/// Check every well-formedness condition; returns the first violation.
pub fn check(x: &Execution) -> Result<(), WfError> {
    check_events(x)?;
    check_po(x)?;
    check_deps(x)?;
    check_rmw(x)?;
    check_rf(x)?;
    check_co(x)?;
    check_txns(x)?;
    check_locks(x)?;
    Ok(())
}

fn check_events(x: &Execution) -> Result<(), WfError> {
    for (e, ev) in x.events().iter().enumerate() {
        match ev.kind {
            EventKind::Read | EventKind::Write => {
                if ev.loc.is_none() {
                    return Err(WfError::AccessWithoutLoc(e));
                }
            }
            EventKind::Fence(_) | EventKind::Call(_) => {
                if ev.loc.is_some() {
                    return Err(WfError::NonAccessWithLoc(e));
                }
            }
        }
        // Attribute sanity: ACQ on reads/fences, REL on writes/fences;
        // ATO only on accesses; calls carry no attributes.
        use crate::event::Attrs;
        let a = ev.attrs;
        match ev.kind {
            EventKind::Read => {
                if a.contains(Attrs::REL) {
                    return Err(WfError::BadAttrs(e));
                }
            }
            EventKind::Write => {
                if a.contains(Attrs::ACQ) {
                    return Err(WfError::BadAttrs(e));
                }
            }
            EventKind::Fence(_) => {
                if a.contains(Attrs::ATO) {
                    return Err(WfError::BadAttrs(e));
                }
            }
            EventKind::Call(_) => {
                if !a.is_empty() {
                    return Err(WfError::BadAttrs(e));
                }
            }
        }
    }
    Ok(())
}

fn check_po(x: &Execution) -> Result<(), WfError> {
    let po = x.po();
    // No cross-thread edges.
    for (a, b) in po.pairs() {
        if x.event(a).tid != x.event(b).tid {
            return Err(WfError::PoNotTotalOrder);
        }
    }
    // Strict total per thread.
    for t in 0..x.num_threads() {
        let s = EventSet::from_iter((0..x.len()).filter(|&e| x.event(e).tid as usize == t));
        if !po.is_strict_total_order_on(s) {
            return Err(WfError::PoNotTotalOrder);
        }
    }
    Ok(())
}

fn check_deps(x: &Execution) -> Result<(), WfError> {
    let po = x.po();
    for (name, rel) in [("addr", x.addr()), ("ctrl", x.ctrl()), ("data", x.data())] {
        for (a, b) in rel.pairs() {
            if !po.contains(a, b) {
                return Err(WfError::DepOutsidePo(name, a, b));
            }
            // Dependencies originate at reads (§2.1), with one documented
            // exception: on Power, ctrl edges can begin at a
            // store-exclusive (footnote 3 of the paper), i.e. at a write
            // in range(rmw).
            let sx_ctrl = name == "ctrl" && x.event(a).is_write() && x.rmw().range().contains(a);
            if !x.event(a).is_read() && !sx_ctrl {
                return Err(WfError::DepNotFromRead(name, a, b));
            }
            match name {
                "addr" if !x.event(b).is_access() => {
                    return Err(WfError::AddrTargetNotAccess(a, b));
                }
                "data" if !x.event(b).is_write() => {
                    return Err(WfError::DataTargetNotWrite(a, b));
                }
                _ => {}
            }
        }
    }
    Ok(())
}

fn check_rmw(x: &Execution) -> Result<(), WfError> {
    let mut seen_src = EventSet::EMPTY;
    let mut seen_dst = EventSet::EMPTY;
    for (r, w) in x.rmw().pairs() {
        let er = x.event(r);
        let ew = x.event(w);
        let ok = er.is_read()
            && ew.is_write()
            && er.tid == ew.tid
            && er.loc == ew.loc
            && x.po().contains(r, w);
        if !ok {
            return Err(WfError::BadRmw(r, w));
        }
        if seen_src.contains(r) {
            return Err(WfError::RmwNotInjective(r));
        }
        if seen_dst.contains(w) {
            return Err(WfError::RmwNotInjective(w));
        }
        seen_src.insert(r);
        seen_dst.insert(w);
    }
    Ok(())
}

fn check_rf(x: &Execution) -> Result<(), WfError> {
    let mut incoming = vec![0usize; x.len()];
    for (w, r) in x.rf().pairs() {
        let ew = x.event(w);
        let er = x.event(r);
        if !ew.is_write() || !er.is_read() || ew.loc != er.loc {
            return Err(WfError::BadRf(w, r));
        }
        incoming[r] += 1;
        if incoming[r] > 1 {
            return Err(WfError::MultipleRf(r));
        }
    }
    Ok(())
}

fn check_co(x: &Execution) -> Result<(), WfError> {
    for (a, b) in x.co().pairs() {
        let ea = x.event(a);
        let eb = x.event(b);
        if !ea.is_write() || !eb.is_write() || ea.loc != eb.loc {
            return Err(WfError::BadCo(a, b));
        }
    }
    for l in x.locations() {
        let ws = x.at_loc(l).inter(x.writes());
        if !x.co().is_strict_total_order_on(ws) {
            return Err(WfError::CoNotTotalOrder(l));
        }
    }
    Ok(())
}

fn check_txns(x: &Execution) -> Result<(), WfError> {
    let mut seen = EventSet::EMPTY;
    for (i, t) in x.txns().iter().enumerate() {
        if t.events.is_empty() {
            return Err(WfError::EmptyTxn);
        }
        let s = EventSet::from_iter(t.events.iter().copied());
        if s.intersects(seen) {
            return Err(WfError::OverlappingTxns);
        }
        seen = seen.union(s);
        let tid = x.event(t.events[0]).tid;
        if t.events.iter().any(|&e| x.event(e).tid != tid) {
            return Err(WfError::TxnCrossesThreads(i));
        }
        // Contiguity: no non-member event po-between two members.
        for e in 0..x.len() {
            if s.contains(e) {
                continue;
            }
            let after_some = t.events.iter().any(|&m| x.po().contains(m, e));
            let before_some = t.events.iter().any(|&m| x.po().contains(e, m));
            if after_some && before_some {
                return Err(WfError::TxnNotContiguous(i));
            }
        }
    }
    Ok(())
}

fn check_locks(x: &Execution) -> Result<(), WfError> {
    // Every L must be followed by a U without an intervening Lt or Ut,
    // and symmetrically (§8.3); regions must not nest.
    for t in 0..x.num_threads() {
        let mut open: Option<Call> = None;
        for e in x.thread_events(t as u8) {
            if let EventKind::Call(c) = x.event(e).kind {
                match (open, c) {
                    (None, Call::Lock) => open = Some(Call::Lock),
                    (None, Call::TLock) => open = Some(Call::TLock),
                    (Some(Call::Lock), Call::Unlock) => open = None,
                    (Some(Call::TLock), Call::TUnlock) => open = None,
                    _ => return Err(WfError::BadLockBracketing(t as u8)),
                }
            }
        }
        if open.is_some() {
            return Err(WfError::BadLockBracketing(t as u8));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ExecBuilder;
    use crate::event::{Attrs, Call, Event, Fence};
    use crate::exec::TxnClass;
    use crate::rel::Rel;

    #[test]
    fn accepts_simple_execution() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        let r = b.read(t0, 0);
        b.rf(w, r);
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_rf_wrong_loc() {
        let events = vec![Event::write(0, 0), Event::read(0, 1)];
        let mut po = Rel::empty(2);
        po.add(0, 1);
        let mut rf = Rel::empty(2);
        rf.add(0, 1);
        let x = Execution::from_parts(
            events,
            po,
            Rel::empty(2),
            Rel::empty(2),
            Rel::empty(2),
            Rel::empty(2),
            rf,
            Rel::empty(2),
            vec![],
        );
        assert_eq!(check(&x), Err(WfError::BadRf(0, 1)));
    }

    #[test]
    fn rejects_multiple_rf() {
        let events = vec![Event::write(0, 0), Event::write(0, 0), Event::read(1, 0)];
        let mut po = Rel::empty(3);
        po.add(0, 1);
        let mut rf = Rel::empty(3);
        rf.add(0, 2);
        rf.add(1, 2);
        let mut co = Rel::empty(3);
        co.add(0, 1);
        let x = Execution::from_parts(
            events,
            po,
            Rel::empty(3),
            Rel::empty(3),
            Rel::empty(3),
            Rel::empty(3),
            rf,
            co,
            vec![],
        );
        assert_eq!(check(&x), Err(WfError::MultipleRf(2)));
    }

    #[test]
    fn rejects_partial_co() {
        // Two writes to x with no co edge: not total.
        let events = vec![Event::write(0, 0), Event::write(1, 0)];
        let x = Execution::from_parts(
            events,
            Rel::empty(2),
            Rel::empty(2),
            Rel::empty(2),
            Rel::empty(2),
            Rel::empty(2),
            Rel::empty(2),
            Rel::empty(2),
            vec![],
        );
        assert_eq!(check(&x), Err(WfError::CoNotTotalOrder(0)));
    }

    #[test]
    fn rejects_dep_not_from_read() {
        let events = vec![Event::write(0, 0), Event::write(0, 1)];
        let mut po = Rel::empty(2);
        po.add(0, 1);
        let mut data = Rel::empty(2);
        data.add(0, 1);
        let x = Execution::from_parts(
            events,
            po,
            Rel::empty(2),
            Rel::empty(2),
            data,
            Rel::empty(2),
            Rel::empty(2),
            Rel::empty(2),
            vec![],
        );
        assert_eq!(check(&x), Err(WfError::DepNotFromRead("data", 0, 1)));
    }

    #[test]
    fn rejects_noncontiguous_txn() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.read(t0, 0);
        let _mid = b.read(t0, 1);
        let c = b.read(t0, 0);
        b.txn(&[a, c]);
        assert_eq!(b.build(), Err(WfError::TxnNotContiguous(0)));
    }

    #[test]
    fn rejects_cross_thread_txn() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.read(t0, 0);
        let t1 = b.new_thread();
        let c = b.read(t1, 0);
        b.txn(&[a, c]);
        assert_eq!(b.build(), Err(WfError::TxnCrossesThreads(0)));
    }

    #[test]
    fn rejects_overlapping_txns() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let a = b.read(t0, 0);
        let c = b.read(t0, 0);
        b.txn(&[a, c]);
        b.txn(&[c]);
        assert_eq!(b.build(), Err(WfError::OverlappingTxns));
    }

    #[test]
    fn rejects_empty_txn() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let _ = b.read(t0, 0);
        let mut x = b.build().unwrap();
        x.txns_mut().push(TxnClass {
            events: vec![],
            atomic: false,
        });
        assert_eq!(check(&x), Err(WfError::EmptyTxn));
    }

    #[test]
    fn rejects_bad_rmw() {
        // rmw across locations.
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let r = b.read(t0, 0);
        let w = b.write(t0, 1);
        b.rmw(r, w);
        assert_eq!(b.build(), Err(WfError::BadRmw(r, w)));
    }

    #[test]
    fn rejects_acquire_write() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w = b.write(t0, 0);
        b.attr(w, Attrs::ACQ);
        assert_eq!(b.build(), Err(WfError::BadAttrs(w)));
    }

    #[test]
    fn rejects_unbracketed_locks() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.call(t0, Call::Lock);
        b.call(t0, Call::TUnlock);
        assert_eq!(b.build(), Err(WfError::BadLockBracketing(0)));
    }

    #[test]
    fn rejects_unclosed_lock() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.call(t0, Call::Lock);
        assert_eq!(b.build(), Err(WfError::BadLockBracketing(0)));
    }

    #[test]
    fn accepts_fences_and_locks() {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        b.call(t0, Call::Lock);
        b.fence(t0, Fence::Sync);
        b.call(t0, Call::Unlock);
        let t1 = b.new_thread();
        b.call(t1, Call::TLock);
        b.call(t1, Call::TUnlock);
        assert!(b.build().is_ok());
    }
}
