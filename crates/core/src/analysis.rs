//! Shared per-execution analysis: every derived relation the axiomatic
//! models consume, computed **once** per execution, lazily and cached.
//!
//! Before this type existed each of the six models re-derived `fr`,
//! `com`, the same-thread/same-location equivalences, the transaction
//! lifts and the fence relations independently on every check — the
//! dominant cost of the enumerate-and-check pipeline. A checking pass
//! now builds one [`ExecutionAnalysis`] per candidate execution and
//! hands it to every model (and to the `.cat` evaluator, the verifiers
//! and the hardware oracle), so shared structure is paid for once.
//!
//! The caches use [`std::cell::OnceCell`], so an analysis is cheap to
//! construct (no relation is computed until first use) and single
//! threaded by design: parallel drivers build one analysis per worker.
//! Cached relations are boxed: an unused cache slot costs a pointer,
//! not an inline `Rel`, keeping the analysis struct small enough to
//! build once per candidate in the enumeration hot loop.

use std::cell::OnceCell;

use crate::event::Fence;
use crate::exec::Execution;
use crate::rel::{stronglift, weaklift, Rel};
use crate::set::EventSet;

/// Number of model-specific memo slots an analysis carries (see
/// [`ExecutionAnalysis::memo`]). Large enough for every model in a
/// `check_all` sweep to claim its own key.
const MEMO_SLOTS: usize = 8;

/// One lazily-initialised relation slot (boxed so empty slots are
/// pointer-sized).
#[derive(Default)]
struct RelCache(OnceCell<Box<Rel>>);

impl RelCache {
    fn new() -> RelCache {
        RelCache(OnceCell::new())
    }

    fn get_or(&self, f: impl FnOnce() -> Rel) -> &Rel {
        self.0.get_or_init(|| Box::new(f()))
    }
}

/// Lazily cached derived relations and event sets of one [`Execution`].
pub struct ExecutionAnalysis<'x> {
    x: &'x Execution,
    /// Txn-independent slots borrowed from a sibling's captured
    /// analysis ([`TxnFreeBase::seed`]); consulted before the local
    /// caches so seeding copies nothing.
    shared: Option<&'x TxnFreeBase>,
    // Event sets.
    reads: OnceCell<EventSet>,
    writes: OnceCell<EventSet>,
    fences: OnceCell<EventSet>,
    acq: OnceCell<EventSet>,
    rel_events: OnceCell<EventSet>,
    sc_events: OnceCell<EventSet>,
    ato: OnceCell<EventSet>,
    // Equivalences and po restrictions.
    sloc: RelCache,
    sthd: RelCache,
    po_loc: RelCache,
    // Communication.
    fr: RelCache,
    com: RelCache,
    rfe: RelCache,
    rfi: RelCache,
    coe: RelCache,
    coi: RelCache,
    fre: RelCache,
    fri: RelCache,
    come: RelCache,
    // Transactions and critical regions.
    stxn: RelCache,
    stxnat: RelCache,
    tfence: RelCache,
    tfence_plus: RelCache,
    scr: RelCache,
    scrt: RelCache,
    // Dependency union.
    dp: RelCache,
    // Fence relations, indexed per fence kind.
    fence_rels: [RelCache; Fence::ALL.len()],
    // Shared axiom bodies.
    coherence: RelCache,
    rmw_isol: RelCache,
    weak_isol: RelCache,
    strong_isol: RelCache,
    strong_isol_atomic: RelCache,
    txn_cancels_rmw: RelCache,
    // Model-specific txn-independent relations, keyed by name.
    memos: [OnceCell<(&'static str, Box<Rel>)>; MEMO_SLOTS],
}

fn fence_index(f: Fence) -> usize {
    Fence::ALL
        .iter()
        .position(|&g| g == f)
        .expect("fence kind listed in Fence::ALL")
}

impl<'x> ExecutionAnalysis<'x> {
    /// A fresh analysis over `x`. Computes nothing until first use.
    pub fn new(x: &'x Execution) -> ExecutionAnalysis<'x> {
        ExecutionAnalysis {
            x,
            shared: None,
            reads: OnceCell::new(),
            writes: OnceCell::new(),
            fences: OnceCell::new(),
            acq: OnceCell::new(),
            rel_events: OnceCell::new(),
            sc_events: OnceCell::new(),
            ato: OnceCell::new(),
            sloc: RelCache::new(),
            sthd: RelCache::new(),
            po_loc: RelCache::new(),
            fr: RelCache::new(),
            com: RelCache::new(),
            rfe: RelCache::new(),
            rfi: RelCache::new(),
            coe: RelCache::new(),
            coi: RelCache::new(),
            fre: RelCache::new(),
            fri: RelCache::new(),
            come: RelCache::new(),
            stxn: RelCache::new(),
            stxnat: RelCache::new(),
            tfence: RelCache::new(),
            tfence_plus: RelCache::new(),
            scr: RelCache::new(),
            scrt: RelCache::new(),
            dp: RelCache::new(),
            fence_rels: Default::default(),
            coherence: RelCache::new(),
            rmw_isol: RelCache::new(),
            weak_isol: RelCache::new(),
            strong_isol: RelCache::new(),
            strong_isol_atomic: RelCache::new(),
            txn_cancels_rmw: RelCache::new(),
            memos: std::array::from_fn(|_| OnceCell::new()),
        }
    }

    /// An analysis whose `fr` slot is pre-seeded instead of derived
    /// from the closed form.
    ///
    /// The incremental engine ([`crate::incr`]) grows executions edge
    /// by edge and maintains the *partial* `fr` explicitly — the
    /// closed form misreads unassigned reads as init reads on partial
    /// executions. Every derived relation downstream of `fr` then
    /// reflects the seeded value.
    pub fn with_fr(x: &'x Execution, fr: Rel) -> ExecutionAnalysis<'x> {
        let a = ExecutionAnalysis::new(x);
        let _ = a.fr.0.set(Box::new(fr));
        a
    }

    /// The underlying execution.
    pub fn exec(&self) -> &'x Execution {
        self.x
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the execution has no events.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    // ---- Primitive relations (plain pass-throughs) -----------------------

    /// Program order.
    pub fn po(&self) -> &Rel {
        self.x.po()
    }

    /// Address dependencies.
    pub fn addr(&self) -> &Rel {
        self.x.addr()
    }

    /// Control dependencies.
    pub fn ctrl(&self) -> &Rel {
        self.x.ctrl()
    }

    /// Data dependencies.
    pub fn data(&self) -> &Rel {
        self.x.data()
    }

    /// Read-modify-write pairs.
    pub fn rmw(&self) -> &Rel {
        self.x.rmw()
    }

    /// Reads-from.
    pub fn rf(&self) -> &Rel {
        self.x.rf()
    }

    /// Coherence order.
    pub fn co(&self) -> &Rel {
        self.x.co()
    }

    // ---- Event sets ------------------------------------------------------

    /// The read events `R`.
    pub fn reads(&self) -> EventSet {
        if let Some(v) = self.shared.and_then(|s| s.reads) {
            return v;
        }
        *self.reads.get_or_init(|| self.x.reads())
    }

    /// The write events `W`.
    pub fn writes(&self) -> EventSet {
        if let Some(v) = self.shared.and_then(|s| s.writes) {
            return v;
        }
        *self.writes.get_or_init(|| self.x.writes())
    }

    /// All fence events.
    pub fn fences(&self) -> EventSet {
        if let Some(v) = self.shared.and_then(|s| s.fences) {
            return v;
        }
        *self.fences.get_or_init(|| self.x.fences())
    }

    /// Acquire events.
    pub fn acq(&self) -> EventSet {
        if let Some(v) = self.shared.and_then(|s| s.acq) {
            return v;
        }
        *self.acq.get_or_init(|| self.x.acq())
    }

    /// Release events.
    pub fn rel_events(&self) -> EventSet {
        if let Some(v) = self.shared.and_then(|s| s.rel_events) {
            return v;
        }
        *self.rel_events.get_or_init(|| self.x.rel_events())
    }

    /// SC events.
    pub fn sc_events(&self) -> EventSet {
        if let Some(v) = self.shared.and_then(|s| s.sc_events) {
            return v;
        }
        *self.sc_events.get_or_init(|| self.x.sc_events())
    }

    /// C++ atomic events.
    pub fn ato(&self) -> EventSet {
        if let Some(v) = self.shared.and_then(|s| s.ato) {
            return v;
        }
        *self.ato.get_or_init(|| self.x.ato())
    }

    // ---- Cached derived relations ----------------------------------------

    /// Same-location equivalence over accesses.
    pub fn sloc(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.sloc.as_ref()) {
            return r;
        }
        self.sloc.get_or(|| self.x.sloc())
    }

    /// Same-thread pairs including the diagonal.
    pub fn sthd(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.sthd.as_ref()) {
            return r;
        }
        self.sthd.get_or(|| self.x.sthd())
    }

    /// The external part of a relation: `r \ sthd`.
    pub fn external(&self, r: &Rel) -> Rel {
        r.minus(self.sthd())
    }

    /// The internal part of a relation: `r ∩ sthd`.
    pub fn internal(&self, r: &Rel) -> Rel {
        r.inter(self.sthd())
    }

    /// `po` restricted to same-location accesses.
    pub fn po_loc(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.po_loc.as_ref()) {
            return r;
        }
        self.po_loc.get_or(|| self.x.po().inter(self.sloc()))
    }

    /// From-read.
    pub fn fr(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.fr.as_ref()) {
            return r;
        }
        self.fr.get_or(|| self.x.fr_with_sloc(self.sloc()))
    }

    /// Communication: `com = rf ∪ co ∪ fr`.
    pub fn com(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.com.as_ref()) {
            return r;
        }
        self.com
            .get_or(|| self.x.rf().union(self.x.co()).union(self.fr()))
    }

    /// External reads-from.
    pub fn rfe(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.rfe.as_ref()) {
            return r;
        }
        self.rfe.get_or(|| self.external(self.x.rf()))
    }

    /// Internal reads-from.
    pub fn rfi(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.rfi.as_ref()) {
            return r;
        }
        self.rfi.get_or(|| self.internal(self.x.rf()))
    }

    /// External coherence.
    pub fn coe(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.coe.as_ref()) {
            return r;
        }
        self.coe.get_or(|| self.external(self.x.co()))
    }

    /// Internal coherence.
    pub fn coi(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.coi.as_ref()) {
            return r;
        }
        self.coi.get_or(|| self.internal(self.x.co()))
    }

    /// External from-read.
    pub fn fre(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.fre.as_ref()) {
            return r;
        }
        let fr = *self.fr();
        self.fre.get_or(|| self.external(&fr))
    }

    /// Internal from-read.
    pub fn fri(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.fri.as_ref()) {
            return r;
        }
        let fr = *self.fr();
        self.fri.get_or(|| self.internal(&fr))
    }

    /// External communication.
    pub fn come(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.come.as_ref()) {
            return r;
        }
        let com = *self.com();
        self.come.get_or(|| self.external(&com))
    }

    /// The `stxn` transaction equivalence.
    pub fn stxn(&self) -> &Rel {
        self.stxn.get_or(|| self.x.stxn())
    }

    /// The `stxnat` (atomic transactions only) equivalence.
    pub fn stxnat(&self) -> &Rel {
        self.stxnat.get_or(|| self.x.stxnat())
    }

    /// Implicit transaction-boundary fences.
    pub fn tfence(&self) -> &Rel {
        self.tfence.get_or(|| {
            let stxn = *self.stxn();
            let nstxn = stxn.complement();
            let enter = nstxn.seq(&stxn);
            let exit = stxn.seq(&nstxn);
            self.x.po().inter(&enter.union(&exit))
        })
    }

    /// `tfence⁺` (the body of `TxnCancelsRMW`).
    pub fn tfence_plus(&self) -> &Rel {
        self.tfence_plus.get_or(|| self.tfence().plus())
    }

    /// The critical-region equivalence `scr`.
    pub fn scr(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.scr.as_ref()) {
            return r;
        }
        self.scr.get_or(|| self.x.scr())
    }

    /// The elided-critical-region equivalence `scrt`.
    pub fn scrt(&self) -> &Rel {
        self.scrt.get_or(|| self.x.scrt())
    }

    /// The dependency union `addr ∪ data`.
    pub fn dp(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.dp.as_ref()) {
            return r;
        }
        self.dp.get_or(|| self.x.addr().union(self.x.data()))
    }

    /// The fence relation `po ; [F_f] ; po` for one fence kind.
    pub fn fence_rel(&self, f: Fence) -> &Rel {
        if let Some(r) = self
            .shared
            .and_then(|s| s.fence_rels[fence_index(f)].as_ref())
        {
            return r;
        }
        self.fence_rels[fence_index(f)].get_or(|| self.x.fence_rel(f))
    }

    // ---- Shared axiom bodies ---------------------------------------------

    /// The coherence axiom body `po-loc ∪ com` (every hardware model).
    pub fn coherence(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.coherence.as_ref()) {
            return r;
        }
        let po_loc = *self.po_loc();
        self.coherence.get_or(|| po_loc.union(self.com()))
    }

    /// The RMW-isolation axiom body `rmw ∩ (fre ; coe)`.
    pub fn rmw_isol(&self) -> &Rel {
        if let Some(r) = self.shared.and_then(|s| s.rmw_isol.as_ref()) {
            return r;
        }
        let fre = *self.fre();
        self.rmw_isol
            .get_or(|| self.x.rmw().inter(&fre.seq(self.coe())))
    }

    /// The weak-isolation lift `weaklift(com, stxn)` (§3.3).
    pub fn weak_isol(&self) -> &Rel {
        let com = *self.com();
        self.weak_isol.get_or(|| weaklift(&com, self.stxn()))
    }

    /// The strong-isolation lift `stronglift(com, stxn)` (§3.3).
    pub fn strong_isol(&self) -> &Rel {
        let com = *self.com();
        self.strong_isol.get_or(|| stronglift(&com, self.stxn()))
    }

    /// The atomic-transaction strong-isolation lift
    /// `stronglift(com, stxnat)` (Theorem 7.2).
    pub fn strong_isol_atomic(&self) -> &Rel {
        let com = *self.com();
        self.strong_isol_atomic
            .get_or(|| stronglift(&com, self.stxnat()))
    }

    /// The `TxnCancelsRMW` axiom body `rmw ∩ tfence⁺` (Power, ARMv8).
    pub fn txn_cancels_rmw(&self) -> &Rel {
        let tfp = *self.tfence_plus();
        self.txn_cancels_rmw.get_or(|| self.x.rmw().inter(&tfp))
    }

    /// Memoise a model-specific relation under a unique `key`.
    ///
    /// The value **must be transaction-independent** — derived only
    /// from the events, po, dependencies, rmw, rf and co — because
    /// [`TxnFreeBase`] captures memo slots and replays them across
    /// sibling transaction layouts. It must also be identical for
    /// every model variant that uses the key (e.g. a tm model and its
    /// baseline sharing one analysis in a `check_all` sweep), so keep
    /// any tm-only term (tfence lifts and the like) out of the
    /// memoised part and union it in afterwards.
    ///
    /// Models use this to split a derived relation into its fixed part
    /// (computed once per rf/co structure) plus the cheap txn-varying
    /// remainder: the x86 `hb` and ARMv8 `ob` fixed unions and the
    /// Power `ppo` fixpoint all qualify.
    pub fn memo(&self, key: &'static str, f: impl FnOnce() -> Rel) -> Rel {
        if let Some(s) = self.shared {
            for (k, r) in s.memos.iter().flatten() {
                if *k == key {
                    return *r;
                }
            }
        }
        for cell in &self.memos {
            match cell.get() {
                Some((k, r)) if *k == key => return **r,
                Some(_) => continue,
                None => return *cell.get_or_init(|| (key, Box::new(f()))).1,
            }
        }
        // Every slot claimed by another key: compute without caching.
        f()
    }
}

impl Execution {
    /// A fresh [`ExecutionAnalysis`] over this execution.
    pub fn analysis(&self) -> ExecutionAnalysis<'_> {
        ExecutionAnalysis::new(self)
    }
}

/// The transaction-independent analysis slots of one execution,
/// captured by value so they can seed the analyses of sibling
/// executions that differ **only** in their transaction classes
/// (`Execution::with_txns` variants of one rf/co assignment).
///
/// The enumerators check every transaction layout of a completed rf/co
/// candidate back to back; without sharing, each layout re-derives
/// `fr`, `com`, the equivalences and the fence relations from scratch
/// even though none of them can depend on `txns`. A `TxnFreeBase`
/// captures whichever of those slots the first layout's check
/// materialised and replays them into the next layout's analysis —
/// after a [`TxnFreeBase::matches`] fingerprint check over every
/// txn-independent constituent (events, po, deps, rmw, rf, co), so a
/// stale base can never leak across genuinely different candidates.
pub struct TxnFreeBase {
    // Fingerprint: every Execution field the shared slots derive from.
    events: Vec<crate::event::Event>,
    po: Rel,
    addr: Rel,
    ctrl: Rel,
    data: Rel,
    rmw: Rel,
    rf: Rel,
    co: Rel,
    // Captured event sets.
    reads: Option<EventSet>,
    writes: Option<EventSet>,
    fences: Option<EventSet>,
    acq: Option<EventSet>,
    rel_events: Option<EventSet>,
    sc_events: Option<EventSet>,
    ato: Option<EventSet>,
    // Captured relations (only the txn-independent slots).
    sloc: Option<Rel>,
    sthd: Option<Rel>,
    po_loc: Option<Rel>,
    fr: Option<Rel>,
    com: Option<Rel>,
    rfe: Option<Rel>,
    rfi: Option<Rel>,
    coe: Option<Rel>,
    coi: Option<Rel>,
    fre: Option<Rel>,
    fri: Option<Rel>,
    come: Option<Rel>,
    scr: Option<Rel>,
    dp: Option<Rel>,
    fence_rels: [Option<Rel>; Fence::ALL.len()],
    coherence: Option<Rel>,
    rmw_isol: Option<Rel>,
    memos: [Option<(&'static str, Rel)>; MEMO_SLOTS],
}

impl TxnFreeBase {
    /// Capture every txn-independent slot `a` has materialised.
    pub fn capture(a: &ExecutionAnalysis<'_>) -> TxnFreeBase {
        let rel = |c: &RelCache| c.0.get().map(|b| **b);
        let mut fence_rels: [Option<Rel>; Fence::ALL.len()] = Default::default();
        for (slot, cache) in fence_rels.iter_mut().zip(&a.fence_rels) {
            *slot = rel(cache);
        }
        let mut memos: [Option<(&'static str, Rel)>; MEMO_SLOTS] = Default::default();
        for (slot, cell) in memos.iter_mut().zip(&a.memos) {
            *slot = cell.get().map(|(k, r)| (*k, **r));
        }
        TxnFreeBase {
            events: a.x.events().to_vec(),
            po: *a.x.po(),
            addr: *a.x.addr(),
            ctrl: *a.x.ctrl(),
            data: *a.x.data(),
            rmw: *a.x.rmw(),
            rf: *a.x.rf(),
            co: *a.x.co(),
            reads: a.reads.get().copied(),
            writes: a.writes.get().copied(),
            fences: a.fences.get().copied(),
            acq: a.acq.get().copied(),
            rel_events: a.rel_events.get().copied(),
            sc_events: a.sc_events.get().copied(),
            ato: a.ato.get().copied(),
            sloc: rel(&a.sloc),
            sthd: rel(&a.sthd),
            po_loc: rel(&a.po_loc),
            fr: rel(&a.fr),
            com: rel(&a.com),
            rfe: rel(&a.rfe),
            rfi: rel(&a.rfi),
            coe: rel(&a.coe),
            coi: rel(&a.coi),
            fre: rel(&a.fre),
            fri: rel(&a.fri),
            come: rel(&a.come),
            scr: rel(&a.scr),
            dp: rel(&a.dp),
            fence_rels,
            coherence: rel(&a.coherence),
            rmw_isol: rel(&a.rmw_isol),
            memos,
        }
    }

    /// Does `y` share every txn-independent constituent with the
    /// execution this base was captured from?
    pub fn matches(&self, y: &Execution) -> bool {
        self.po == *y.po()
            && self.rf == *y.rf()
            && self.co == *y.co()
            && self.rmw == *y.rmw()
            && self.addr == *y.addr()
            && self.ctrl == *y.ctrl()
            && self.data == *y.data()
            && self.events == *y.events()
    }

    /// A fresh analysis over `y` whose txn-independent accessors
    /// answer from this base **by reference** — seeding copies and
    /// allocates nothing. Callers must have verified
    /// [`TxnFreeBase::matches`]`(y)`.
    pub fn seed<'x>(&'x self, y: &'x Execution) -> ExecutionAnalysis<'x> {
        debug_assert!(self.matches(y), "seeding from a non-matching base");
        let mut a = ExecutionAnalysis::new(y);
        a.shared = Some(self);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ExecBuilder;

    fn sample() -> Execution {
        let mut b = ExecBuilder::new();
        let t0 = b.new_thread();
        let w0 = b.write(t0, 0);
        b.fence(t0, Fence::MFence);
        let r0 = b.read(t0, 1);
        let t1 = b.new_thread();
        let w1 = b.write(t1, 1);
        let r1 = b.read(t1, 0);
        b.rf(w1, r0);
        b.txn(&[w1, r1]);
        let _ = (w0, r0);
        b.build().unwrap()
    }

    #[test]
    fn analysis_agrees_with_direct_derivations() {
        let x = sample();
        let a = x.analysis();
        assert_eq!(*a.fr(), x.fr());
        assert_eq!(*a.com(), x.com());
        assert_eq!(*a.sloc(), x.sloc());
        assert_eq!(*a.sthd(), x.sthd());
        assert_eq!(*a.po_loc(), x.po_loc());
        assert_eq!(*a.rfe(), x.rfe());
        assert_eq!(*a.rfi(), x.rfi());
        assert_eq!(*a.coe(), x.coe());
        assert_eq!(*a.coi(), x.coi());
        assert_eq!(*a.fre(), x.fre());
        assert_eq!(*a.fri(), x.fri());
        assert_eq!(*a.come(), x.come());
        assert_eq!(*a.stxn(), x.stxn());
        assert_eq!(*a.stxnat(), x.stxnat());
        assert_eq!(*a.tfence(), x.tfence());
        assert_eq!(*a.scr(), x.scr());
        assert_eq!(*a.scrt(), x.scrt());
        for f in Fence::ALL {
            assert_eq!(*a.fence_rel(f), x.fence_rel(f));
        }
        assert_eq!(a.reads(), x.reads());
        assert_eq!(a.writes(), x.writes());
        assert_eq!(a.acq(), x.acq());
        assert_eq!(a.ato(), x.ato());
    }

    #[test]
    fn caching_returns_same_value_twice() {
        let x = sample();
        let a = x.analysis();
        let first = *a.fr();
        let second = *a.fr();
        assert_eq!(first, second);
        assert_eq!(*a.coherence(), a.po_loc().union(a.com()));
        assert_eq!(*a.weak_isol(), weaklift(a.com(), a.stxn()));
        assert_eq!(*a.strong_isol(), stronglift(a.com(), a.stxn()));
        assert_eq!(*a.txn_cancels_rmw(), x.rmw().inter(&x.tfence().plus()));
    }

    #[test]
    fn external_internal_partition() {
        let x = sample();
        let a = x.analysis();
        assert_eq!(a.rfe().union(a.rfi()), *x.rf());
        assert!(a.rfe().inter(a.rfi()).is_empty());
        assert_eq!(a.fre().union(a.fri()), *a.fr());
    }
}
